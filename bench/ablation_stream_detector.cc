/**
 * @file
 * Ablation A: why arbitrary-length stream detection matters.
 *
 * Compares the SEQUITUR analysis against a fixed-depth pair/window
 * correlation detector (the design point of several prior prefetchers
 * the paper discusses): for each fixed window size W, a miss is
 * "covered" if the W-long sequence starting at it recurs. SEQUITUR's
 * arbitrary-length rules capture both the short and the very long
 * streams; fixed windows miss the length diversity the paper
 * documents (median ~8 but tails into the thousands, Section 4.4).
 */

#include <unordered_map>

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

/** Fraction of misses covered by recurring fixed-length windows. */
double
fixedWindowCoverage(const MissTrace &trace, unsigned w)
{
    // Group misses per CPU, then hash every W-window; windows seen
    // more than once cover their misses.
    std::vector<std::vector<BlockId>> percpu;
    for (const MissRecord &m : trace.misses) {
        if (percpu.size() <= m.cpu)
            percpu.resize(m.cpu + 1);
        percpu[m.cpu].push_back(m.block);
    }

    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    auto hashWindow = [&](const std::vector<BlockId> &seq,
                          std::size_t i) {
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        for (unsigned k = 0; k < w; ++k)
            h = (h ^ seq[i + k]) * 0x100000001b3ull;
        return h;
    };

    for (const auto &seq : percpu)
        for (std::size_t i = 0; i + w <= seq.size(); ++i)
            counts[hashWindow(seq, i)]++;

    std::uint64_t covered = 0, total = 0;
    for (const auto &seq : percpu) {
        std::vector<bool> cov(seq.size(), false);
        for (std::size_t i = 0; i + w <= seq.size(); ++i) {
            if (counts[hashWindow(seq, i)] >= 2)
                for (unsigned k = 0; k < w; ++k)
                    cov[i + k] = true;
        }
        for (bool c : cov)
            covered += c ? 1 : 0;
        total += seq.size();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(total);
}

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        if (r.kind == TraceKind::IntraChip)
            continue;
        BenchRow row;
        row.table = "coverage";
        row.trace = std::string(traceKindName(r.kind));
        row.text = strprintf(
            "%-10s %-12s %8.1f%%",
            std::string(workloadName(r.workload)).c_str(),
            std::string(traceKindName(r.kind)).c_str(),
            100.0 * r.streams.inStreamFraction());
        row.metrics = {
            {"sequitur_pct", 100.0 * r.streams.inStreamFraction()},
        };
        for (unsigned w : {2u, 4u, 8u, 16u}) {
            const double cov =
                100.0 * fixedWindowCoverage(r.trace, w);
            row.text += strprintf(" %6.1f%%", cov);
            row.metrics.emplace_back(strprintf("window_%u_pct", w),
                                     cov);
        }
        row.text +=
            strprintf(" %7.0f", r.streams.medianStreamLength());
        row.metrics.emplace_back("median_length",
                                 r.streams.medianStreamLength());
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "ablation_stream_detector");
    // OLTP and Apache as in PR 3, plus the KV store so the detector
    // comparison covers a scenario workload too.
    const auto grid = benchGrid(
        {WorkloadKind::Oltp, WorkloadKind::Apache,
         WorkloadKind::KvStore},
        opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Ablation A: SEQUITUR vs fixed-window stream "
                "detection (coverage of misses)\n");
    rule();
    std::printf("%-10s %-12s %9s %7s %7s %7s %7s %8s\n", "app",
                "context", "sequitur", "W=2", "W=4", "W=8", "W=16",
                "med-len");
    rule();
    printTable(cells, "coverage");

    std::printf("\nReading: small windows over-fragment long streams "
                "(repetition is found but\nsplit into pieces a "
                "prefetcher must re-look-up); large windows lose the\n"
                "short streams entirely. SEQUITUR's variable-length "
                "rules adapt, motivating\nthe paper's argument against "
                "fixed-depth fetch policies.\n");
    return emitReport(opts, "ablation_stream_detector", grid.size(),
                      std::move(cells));
}
