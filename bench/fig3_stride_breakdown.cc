/**
 * @file
 * Regenerates the paper's Figure 3: joint breakdown of strided and
 * repetitive miss sequences.
 *
 * Expected shape (paper Section 4.3): DSS is heavily strided
 * (especially single-chip, where page-sized copies dominate); the
 * other applications are mostly non-strided; strided patterns and
 * temporal streams are largely disjoint.
 */

#include <algorithm>

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        const StreamStats &s = r.streams;
        const double tot = std::max<double>(
            1.0, static_cast<double>(s.totalMisses));
        const double strided =
            100.0 * (s.stridedRepetitive + s.stridedNonRepetitive) /
            tot;
        BenchRow row;
        row.table = "strides";
        row.trace = std::string(traceKindName(r.kind));
        row.text = strprintf(
            "%-10s %-12s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %7.1f%%",
            std::string(workloadName(r.workload)).c_str(),
            std::string(traceKindName(r.kind)).c_str(),
            100.0 * s.stridedRepetitive / tot,
            100.0 * s.nonStridedRepetitive / tot,
            100.0 * s.stridedNonRepetitive / tot,
            100.0 * s.nonStridedNonRepetitive / tot, strided);
        row.metrics = {
            {"strided_repetitive_pct",
             100.0 * s.stridedRepetitive / tot},
            {"non_strided_repetitive_pct",
             100.0 * s.nonStridedRepetitive / tot},
            {"strided_non_repetitive_pct",
             100.0 * s.stridedNonRepetitive / tot},
            {"non_strided_non_repetitive_pct",
             100.0 * s.nonStridedNonRepetitive / tot},
            {"strided_pct", strided},
        };
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig3_stride_breakdown");
    const auto grid = benchGrid(kAllWorkloads, opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Figure 3: strides and temporal streams\n");
    rule();
    std::printf("%-10s %-12s %10s %10s %10s %10s %8s\n", "app",
                "context", "rep+str", "rep+nonstr", "nonrep+str",
                "nonrep+ns", "strided");
    rule();
    printTable(cells, "strides");

    std::printf("\nPaper shape check: DSS most strided; web/OLTP mostly "
                "non-strided; the\nstrided-and-repetitive overlap is "
                "small outside DSS.\n");
    return emitReport(opts, "fig3_stride_breakdown", grid.size(),
                      std::move(cells));
}
