/**
 * @file
 * Regenerates the paper's Figure 3: joint breakdown of strided and
 * repetitive miss sequences.
 *
 * Expected shape (paper Section 4.3): DSS is heavily strided
 * (especially single-chip, where page-sized copies dominate); the
 * other applications are mostly non-strided; strided patterns and
 * temporal streams are largely disjoint.
 */

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    const BenchBudgets budgets = parseBudgets(argc, argv);
    auto runs = runGrid(kAllWorkloads, budgets);

    std::printf("Figure 3: strides and temporal streams\n");
    rule();
    std::printf("%-10s %-12s %10s %10s %10s %10s %8s\n", "app",
                "context", "rep+str", "rep+nonstr", "nonrep+str",
                "nonrep+ns", "strided");
    rule();
    for (const RunOutput &r : runs) {
        const StreamStats &s = r.streams;
        const double tot = std::max<double>(
            1.0, static_cast<double>(s.totalMisses));
        const double strided =
            100.0 * (s.stridedRepetitive + s.stridedNonRepetitive) /
            tot;
        std::printf(
            "%-10s %-12s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %7.1f%%\n",
            std::string(workloadName(r.workload)).c_str(),
            std::string(traceKindName(r.kind)).c_str(),
            100.0 * s.stridedRepetitive / tot,
            100.0 * s.nonStridedRepetitive / tot,
            100.0 * s.stridedNonRepetitive / tot,
            100.0 * s.nonStridedNonRepetitive / tot, strided);
    }

    std::printf("\nPaper shape check: DSS most strided; web/OLTP mostly "
                "non-strided; the\nstrided-and-repetitive overlap is "
                "small outside DSS.\n");
    return 0;
}
