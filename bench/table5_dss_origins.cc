/**
 * @file
 * Regenerates the paper's Table 5: temporal stream origins in DSS.
 *
 * Expected shape (paper Section 5.3): bulk memory copies dominate and
 * are non-repetitive (streaming buffers); index/tuple accesses are
 * the second contributor and not repetitive off-chip (single-visit
 * scans); overall in-stream share is the lowest of the suite.
 */

#include "table_origins_common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    return runOriginsTable(
        "table5_dss_origins",
        "Table 5: temporal stream origins in DSS (DB2)",
        {WorkloadKind::DssQ1, WorkloadKind::DssQ2, WorkloadKind::DssQ17},
        /*web=*/false, /*db=*/true, argc, argv);
}
