/**
 * @file
 * Regenerates the paper's Figure 2: fraction of misses in temporal
 * streams (Non-repetitive / New stream / Recurring stream) for every
 * workload in all three contexts.
 *
 * Expected shape (paper Section 4.2): 35-90% of misses occur in
 * temporal streams; web applications around 75-85%; OLTP multi-chip
 * highly repetitive but single-chip only about half; DSS the lowest.
 */

#include <algorithm>

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        const StreamStats &s = r.streams;
        const double tot = std::max<double>(
            1.0, static_cast<double>(s.totalMisses));
        BenchRow row;
        row.table = "streams";
        row.trace = std::string(traceKindName(r.kind));
        row.text = strprintf(
            "%-10s %-12s %9.1f%% %9.1f%% %11.1f%% %9.1f%%",
            std::string(workloadName(r.workload)).c_str(),
            std::string(traceKindName(r.kind)).c_str(),
            100.0 * s.nonRepetitive / tot, 100.0 * s.newStream / tot,
            100.0 * s.recurringStream / tot,
            100.0 * s.inStreamFraction());
        row.metrics = {
            {"non_repetitive_pct", 100.0 * s.nonRepetitive / tot},
            {"new_stream_pct", 100.0 * s.newStream / tot},
            {"recurring_stream_pct", 100.0 * s.recurringStream / tot},
            {"in_streams_pct", 100.0 * s.inStreamFraction()},
        };
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig2_stream_fraction");
    const auto grid = benchGrid(kAllWorkloads, opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Figure 2: fraction of misses in temporal streams\n");
    rule();
    std::printf("%-10s %-12s %10s %10s %12s %10s\n", "app", "context",
                "non-rep", "new", "recurring", "in-streams");
    rule();
    printTable(cells, "streams");

    std::printf("\nPaper shape check: 35-90%% of misses in streams; web "
                "~75-85%%; OLTP single-chip\nmarkedly less repetitive "
                "than multi-chip; DSS lowest.\n");
    return emitReport(opts, "fig2_stream_fraction", grid.size(),
                      std::move(cells));
}
