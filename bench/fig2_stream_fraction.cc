/**
 * @file
 * Regenerates the paper's Figure 2: fraction of misses in temporal
 * streams (Non-repetitive / New stream / Recurring stream) for every
 * workload in all three contexts.
 *
 * Expected shape (paper Section 4.2): 35-90% of misses occur in
 * temporal streams; web applications around 75-85%; OLTP multi-chip
 * highly repetitive but single-chip only about half; DSS the lowest.
 */

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    const BenchBudgets budgets = parseBudgets(argc, argv);
    auto runs = runGrid(kAllWorkloads, budgets);

    std::printf("Figure 2: fraction of misses in temporal streams\n");
    rule();
    std::printf("%-10s %-12s %10s %10s %12s %10s\n", "app", "context",
                "non-rep", "new", "recurring", "in-streams");
    rule();
    for (const RunOutput &r : runs) {
        const StreamStats &s = r.streams;
        const double tot = std::max<double>(
            1.0, static_cast<double>(s.totalMisses));
        std::printf("%-10s %-12s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n",
                    std::string(workloadName(r.workload)).c_str(),
                    std::string(traceKindName(r.kind)).c_str(),
                    100.0 * s.nonRepetitive / tot,
                    100.0 * s.newStream / tot,
                    100.0 * s.recurringStream / tot,
                    100.0 * s.inStreamFraction());
    }

    std::printf("\nPaper shape check: 35-90%% of misses in streams; web "
                "~75-85%%; OLTP single-chip\nmarkedly less repetitive "
                "than multi-chip; DSS lowest.\n");
    return 0;
}
