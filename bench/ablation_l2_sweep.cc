/**
 * @file
 * Ablation B: L2 capacity vs reuse distance (the paper's Section 4.5
 * "soft lower bound" argument).
 *
 * A replacement miss implies the block was evicted, so blocks
 * re-referenced more often than roughly one L2-capacity's worth of
 * misses cannot miss again: the replacement-miss reuse-distance
 * distribution should shift right as the L2 grows. Coherence misses
 * have no such bound. This bench sweeps the multi-chip L2 size for
 * OLTP and reports the reuse-distance mass per decade plus the
 * replacement/coherence split.
 */

#include "common.hh"

#include "stats/histogram.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    const BenchBudgets budgets = parseBudgets(argc, argv);

    std::printf("Ablation B: L2 size sweep (OLTP, multi-chip)\n");
    rule();
    std::printf("%-8s %8s %8s %8s", "L2", "mpki", "repl", "coh");
    for (int d = 0; d < 7; ++d)
        std::printf("  1e%d-1e%d", d, d + 1);
    std::printf("\n");
    rule();

    for (const std::uint64_t mb : {1ull, 2ull, 4ull, 8ull, 16ull}) {
        ExperimentConfig cfg;
        cfg.workload = WorkloadKind::Oltp;
        cfg.context = SystemContext::MultiChip;
        cfg.warmupInstructions = budgets.warmup;
        cfg.measureInstructions = budgets.measure;
        cfg.scale = budgets.scale;
        cfg.multiChip.l2 = CacheConfig{mb * 1024 * 1024, 16};
        ExperimentResult res = runExperiment(cfg);

        std::uint64_t cls[kNumMissClasses] = {};
        for (const MissRecord &m : res.offChip.misses)
            cls[m.cls]++;
        const double tot = std::max<double>(
            1.0,
            static_cast<double>(res.offChip.misses.size()));

        StreamStats st = analyzeStreams(res.offChip);
        LogHistogram h(7, 1);
        for (const auto &[dist, w] : st.reuseWeighted)
            h.add(dist == 0 ? 1 : dist, w);

        std::printf("%3lluMB %9.2f %7.1f%% %7.1f%%",
                    static_cast<unsigned long long>(mb),
                    res.offChip.mpki(), 100.0 * cls[3] / tot,
                    100.0 * cls[1] / tot);
        for (int d = 0; d < 7; ++d)
            std::printf("  %6.1f%%",
                        100.0 * h.fraction(static_cast<std::size_t>(d)));
        std::printf("\n");
    }

    std::printf("\nReading: larger L2s suppress short-reuse replacement "
                "misses, pushing the\nreplacement reuse-distance mass "
                "right, while coherence reuse distances are\ncapacity-"
                "independent — the paper's storage-sizing argument.\n");
    return 0;
}
