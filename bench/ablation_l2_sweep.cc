/**
 * @file
 * Ablation B: L2 capacity vs reuse distance (the paper's Section 4.5
 * "soft lower bound" argument).
 *
 * A replacement miss implies the block was evicted, so blocks
 * re-referenced more often than roughly one L2-capacity's worth of
 * misses cannot miss again: the replacement-miss reuse-distance
 * distribution should shift right as the L2 grows. Coherence misses
 * have no such bound. This bench sweeps the multi-chip L2 size for
 * OLTP and reports the reuse-distance mass per decade plus the
 * replacement/coherence split.
 *
 * The sweep is a custom cell grid (one cell per L2 size, same
 * workload/context/budgets), so it shards and caches like any other
 * bench: configHash() covers the cache geometry, so each L2 point is
 * its own trace-cache entry.
 */

#include <algorithm>

#include "common.hh"

#include "stats/histogram.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

const std::uint64_t kL2SizesMb[] = {1, 2, 4, 8, 16};

/** Swept workloads: the paper's OLTP plus the scenario KV store
 *  (whose LRU churn makes the capacity argument visible too). */
const WorkloadKind kSweepWorkloads[] = {WorkloadKind::Oltp,
                                        WorkloadKind::KvStore};

std::vector<Cell>
l2SweepGrid(const BenchBudgets &budgets)
{
    std::vector<Cell> grid;
    for (const WorkloadKind w : kSweepWorkloads) {
        for (const std::uint64_t mb : kL2SizesMb) {
            Cell c;
            c.index = grid.size();
            c.cfg.workload = w;
            c.cfg.context = SystemContext::MultiChip;
            c.cfg.warmupInstructions = budgets.warmup;
            c.cfg.measureInstructions = budgets.measure;
            c.cfg.scale = budgets.scale;
            c.cfg.multiChip.l2 = CacheConfig{mb * 1024 * 1024, 16};
            c.id = strprintf("%s/multi-chip/l2=%lluMB",
                             std::string(workloadName(w)).c_str(),
                             static_cast<unsigned long long>(mb));
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    // The swept size comes from the cell's own config, not from grid
    // index arithmetic, so reordering the sweep loops cannot mislabel
    // rows.
    const std::uint64_t mb =
        res.cell.cfg.multiChip.l2.sizeBytes / (1024 * 1024);
    const RunOutput &r = res.runs.front();

    std::uint64_t cls[kNumMissClasses] = {};
    for (const MissRecord &m : r.trace.misses)
        cls[m.cls]++;
    const double tot = std::max<double>(
        1.0, static_cast<double>(r.trace.misses.size()));

    LogHistogram h(7, 1);
    for (const auto &[dist, w] : r.streams.reuseWeighted)
        h.add(dist == 0 ? 1 : dist, w);

    BenchRow row;
    row.table = "l2_sweep";
    row.trace = strprintf("%lluMB",
                          static_cast<unsigned long long>(mb));
    row.label = std::string(workloadName(r.workload));
    row.text = strprintf("%-10s %3lluMB %9.2f %7.1f%% %7.1f%%",
                         std::string(workloadName(r.workload)).c_str(),
                         static_cast<unsigned long long>(mb),
                         r.trace.mpki(), 100.0 * cls[3] / tot,
                         100.0 * cls[1] / tot);
    row.metrics = {
        {"l2_mb", static_cast<double>(mb)},
        {"mpki", r.trace.mpki()},
        {"replacement_pct", 100.0 * cls[3] / tot},
        {"coherence_pct", 100.0 * cls[1] / tot},
    };
    for (int d = 0; d < 7; ++d) {
        const double frac =
            100.0 * h.fraction(static_cast<std::size_t>(d));
        row.text += strprintf("  %6.1f%%", frac);
        row.metrics.emplace_back(
            strprintf("decade_1e%d_1e%d_pct", d, d + 1), frac);
    }
    return {std::move(row)};
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "ablation_l2_sweep");
    benchRejectWorkloadOverrides(opts); // fixed (app, L2-size) grid
    const auto grid = l2SweepGrid(opts.budgets);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Ablation B: L2 size sweep (OLTP + KVstore, "
                "multi-chip)\n");
    rule();
    std::printf("%-10s %-5s %8s %8s %8s", "app", "L2", "mpki", "repl",
                "coh");
    for (int d = 0; d < 7; ++d)
        std::printf("  1e%d-1e%d", d, d + 1);
    std::printf("\n");
    rule();
    printTable(cells, "l2_sweep");

    std::printf("\nReading: larger L2s suppress short-reuse replacement "
                "misses, pushing the\nreplacement reuse-distance mass "
                "right, while coherence reuse distances are\ncapacity-"
                "independent — the paper's storage-sizing argument.\n");
    return emitReport(opts, "ablation_l2_sweep", grid.size(),
                      std::move(cells));
}
