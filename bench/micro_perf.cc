/**
 * @file
 * google-benchmark microbenchmarks of the analysis substrate: SEQUITUR
 * grammar construction, cache-hierarchy simulation (per-block and
 * batched engine runs), stride detection, the full stream-analysis
 * pipeline, and the scenario-subsystem hot paths (KV slab/LRU,
 * broker append/replay). BENCH_baseline.json at the repo root records
 * these series; `tstream-bench compare` gates regressions against it
 * (docs/BENCHMARKING.md).
 */

#include <benchmark/benchmark.h>

#include "core/sequitur.hh"
#include "core/stream_analysis.hh"
#include "core/stride.hh"
#include "kernel/kernel.hh"
#include "kv/kvstore.hh"
#include "mem/multichip.hh"
#include "mem/singlechip.hh"
#include "mq/broker.hh"
#include "sim/engine.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

std::vector<std::uint64_t>
makeInput(std::size_t n, std::uint64_t alphabet, double repeat_frac)
{
    Rng rng(99);
    // A mix of random symbols and a recurring motif, roughly like a
    // miss trace with temporal streams.
    std::vector<std::uint64_t> motif(32);
    for (auto &v : motif)
        v = rng.below(alphabet);
    std::vector<std::uint64_t> out;
    out.reserve(n);
    while (out.size() < n) {
        if (rng.chance(repeat_frac)) {
            for (auto v : motif)
                out.push_back(v);
        } else {
            out.push_back(rng.below(alphabet));
        }
    }
    out.resize(n);
    return out;
}

void
BM_SequiturAppend(benchmark::State &state)
{
    const auto input = makeInput(
        static_cast<std::size_t>(state.range(0)), 4096, 0.5);
    for (auto _ : state) {
        Sequitur g;
        g.appendAll(input);
        benchmark::DoNotOptimize(g.ruleCount());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_SequiturAppend)->Arg(10000)->Arg(100000)->Arg(1000000);

void
BM_MultiChipAccess(benchmark::State &state)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    Rng rng(7);
    for (auto _ : state) {
        Access a;
        a.addr = rng.below(1 << 28) * kBlockSize;
        a.size = 64;
        a.cpu = static_cast<CpuId>(rng.below(16));
        a.type = rng.chance(0.3) ? AccessType::Write : AccessType::Read;
        sys.accessBlock(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiChipAccess);

void
BM_SingleChipAccess(benchmark::State &state)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    Rng rng(7);
    for (auto _ : state) {
        Access a;
        a.addr = rng.below(1 << 26) * kBlockSize;
        a.size = 64;
        a.cpu = static_cast<CpuId>(rng.below(4));
        a.type = rng.chance(0.3) ? AccessType::Write : AccessType::Read;
        sys.accessBlock(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleChipAccess);

void
BM_EngineAccessRuns(benchmark::State &state)
{
    // The engine's batched path: runs of same-CPU sequential reads (a
    // request parse / value stream shape) flushed through
    // MemorySystem::accessRun with one virtual dispatch per run,
    // versus the per-block dispatch BM_*ChipAccess measures.
    Engine eng(std::make_unique<SingleChipSystem>(), 7);
    Rng rng(7);
    for (auto _ : state) {
        const auto cpu = static_cast<CpuId>(rng.below(4));
        const Addr base = rng.below(1 << 26) * kBlockSize;
        for (unsigned i = 0; i < 16; ++i)
            eng.read(cpu, base + i * kBlockSize, 64, 0);
    }
    eng.flushAccesses();
    benchmark::DoNotOptimize(eng.totalInstructions());
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EngineAccessRuns);

void
BM_KvStoreGetSet(benchmark::State &state)
{
    // The PR 4 scenario hot path: hash-index walk, slab value
    // traffic, LRU recycling — a 90/10 get/set mix over a uniform
    // key population, like the KV workload's serve loop.
    Engine eng(std::make_unique<SingleChipSystem>(), 17);
    Kernel kern(eng);
    SysCtx ctx(eng, kern, 0, nullptr);
    KvConfig cfg;
    cfg.rescale(0.25);
    KvStore store(cfg, eng.registry(), /*pid=*/440);
    Rng rng(5);
    for (auto _ : state) {
        const std::uint64_t key = rng.below(cfg.keys);
        if (rng.chance(0.9)) {
            if (store.get(ctx, key) == 0)
                store.set(ctx, key, store.valueBlocks(key));
        } else {
            store.set(ctx, key, store.valueBlocks(key));
        }
    }
    benchmark::DoNotOptimize(store.hits());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvStoreGetSet);

void
BM_BrokerPublishReplay(benchmark::State &state)
{
    // Broker append + cursor replay: producer appends across topics
    // (rolling into recycled segments, trimming retention), one
    // consumer replays topic 0 in batches.
    Engine eng(std::make_unique<SingleChipSystem>(), 23);
    Kernel kern(eng);
    SysCtx ctx(eng, kern, 0, nullptr);
    MqConfig cfg;
    cfg.rescale(0.25);
    Broker broker(cfg, eng.registry(), /*pid=*/441);
    const std::size_t cur = broker.subscribe(0);
    Rng rng(6);
    for (auto _ : state) {
        const auto topic =
            static_cast<std::uint32_t>(rng.below(cfg.topics));
        broker.publish(ctx, topic,
                       256 + static_cast<std::uint32_t>(
                                 rng.below(1024)));
        broker.consume(ctx, cur, 4096);
    }
    benchmark::DoNotOptimize(broker.delivered());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerPublishReplay);

void
BM_StrideDetector(benchmark::State &state)
{
    Rng rng(3);
    StrideDetector det;
    std::uint64_t base = 0;
    for (auto _ : state) {
        base += rng.chance(0.7) ? 1 : rng.below(1000);
        benchmark::DoNotOptimize(
            det.observe(static_cast<CpuId>(rng.below(4)), base));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrideDetector);

void
BM_FullStreamAnalysis(benchmark::State &state)
{
    // Synthesize a plausible trace and time the whole analysis.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto blocks = makeInput(n, 1 << 20, 0.4);
    MissTrace trace;
    trace.numCpus = 4;
    Rng rng(11);
    for (std::size_t i = 0; i < n; ++i) {
        trace.misses.push_back(MissRecord{
            i, blocks[i], static_cast<CpuId>(rng.below(4)), 0, 0});
    }
    trace.instructions = n * 100;
    for (auto _ : state) {
        StreamStats st = analyzeStreams(trace);
        benchmark::DoNotOptimize(st.grammarRules);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullStreamAnalysis)->Arg(100000)->Arg(500000);

} // namespace
} // namespace tstream

BENCHMARK_MAIN();
