/**
 * @file
 * Regenerates the paper's Figure 4: temporal stream length CDF (left)
 * and reuse distance PDF (right).
 *
 * Expected shape (paper Sections 4.4-4.5): median stream length about
 * eight to ten misses with a heavy tail into the thousands; DSS shows
 * a step near 64 blocks (4 KB page copies); multi-chip (coherence)
 * reuse distances concentrate below ~2x10^5 misses while single-chip
 * (replacement) mass sits between 10^4 and 10^7; DSS peaks just under
 * 10^4 from bulk copies.
 */

#include "common.hh"

#include "stats/histogram.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

const std::vector<std::uint64_t> kLenPoints = {1,  2,   4,   8,  16,
                                               32, 64,  128, 512,
                                               1024, 4096};

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        {
            WeightedCdf cdf;
            for (const auto &[len, w] : r.streams.lengthWeighted)
                cdf.add(len, w);
            BenchRow row;
            row.table = "length_cdf";
            row.trace = std::string(traceKindName(r.kind));
            row.text = strprintf(
                "%-10s %-12s",
                std::string(workloadName(r.workload)).c_str(),
                std::string(traceKindName(r.kind)).c_str());
            for (auto p : kLenPoints) {
                row.text +=
                    strprintf(" %6.1f%%", 100.0 * cdf.cumulativeAt(p));
                row.metrics.emplace_back(
                    strprintf("cdf_le_%llu",
                              static_cast<unsigned long long>(p)),
                    100.0 * cdf.cumulativeAt(p));
            }
            row.text += strprintf(" %6.0f",
                                  r.streams.medianStreamLength());
            row.metrics.emplace_back("median_length",
                                     r.streams.medianStreamLength());
            rows.push_back(std::move(row));
        }
        {
            LogHistogram h(7, 1);
            for (const auto &[dist, w] : r.streams.reuseWeighted)
                h.add(dist == 0 ? 1 : dist, w);
            BenchRow row;
            row.table = "reuse_pdf";
            row.trace = std::string(traceKindName(r.kind));
            row.text = strprintf(
                "%-10s %-12s",
                std::string(workloadName(r.workload)).c_str(),
                std::string(traceKindName(r.kind)).c_str());
            for (int d = 0; d < 7; ++d) {
                const double frac =
                    100.0 * h.fraction(static_cast<std::size_t>(d));
                row.text += strprintf("  %6.1f%%", frac);
                row.metrics.emplace_back(
                    strprintf("decade_1e%d_1e%d_pct", d, d + 1), frac);
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig4_length_reuse");
    const auto grid = benchGrid(kAllWorkloads, opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Figure 4 (left): cumulative stream-length "
                "distribution, weighted by contribution\n");
    rule();
    std::printf("%-10s %-12s", "app", "context");
    for (auto p : kLenPoints)
        std::printf(" <=%-5llu", static_cast<unsigned long long>(p));
    std::printf(" median\n");
    rule();
    printTable(cells, "length_cdf");

    std::printf("\nFigure 4 (right): reuse-distance distribution "
                "(weight = stream length),\nper-decade shares\n");
    rule();
    std::printf("%-10s %-12s", "app", "context");
    for (int d = 0; d < 7; ++d)
        std::printf("  1e%d-1e%d", d, d + 1);
    std::printf("\n");
    rule();
    printTable(cells, "reuse_pdf");

    std::printf("\nPaper shape check: median length ~8-10; heavy tail; "
                "DSS step near 64-block\n(page) streams; multi-chip "
                "reuse distances shorter than single-chip.\n");
    return emitReport(opts, "fig4_length_reuse", grid.size(),
                      std::move(cells));
}
