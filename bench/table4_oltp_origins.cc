/**
 * @file
 * Regenerates the paper's Table 4: temporal stream origins in OLTP.
 *
 * Expected shape (paper Section 5.2): index/page/tuple accesses are
 * the largest DB2 category; request control and the runtime
 * interpreter are highly repetitive; scheduler and synchronization
 * activity is present multi-chip/intra-chip but vanishes from the
 * single-chip off-chip profile; MMU traps contribute substantially.
 */

#include "table_origins_common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    return runOriginsTable(
        "table4_oltp_origins",
        "Table 4: temporal stream origins in OLTP (DB2)",
        {WorkloadKind::Oltp}, /*web=*/false, /*db=*/true, argc, argv);
}
