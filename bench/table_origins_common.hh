/**
 * @file
 * Shared driver for the Tables 3/4/5 benches: run one workload class
 * across the three contexts on the cell driver and print the
 * per-category origin table. JSON rows carry one entry per category
 * (label = category name) plus the overall row, each with the exact
 * printed line and the two percentage columns as metrics.
 */

#ifndef TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH
#define TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH

#include "common.hh"

namespace tstream::bench
{

/** Print one paper-style origins table for @p workloads. */
inline int
runOriginsTable(const char *benchName, const char *title,
                const std::vector<WorkloadKind> &workloads, bool web_rows,
                bool db_rows, int argc, char **argv,
                bool scenario_rows = false)
{
    const BenchOptions opts = parseBenchArgs(argc, argv, benchName);
    const auto grid = benchGrid(workloads, opts);

    // The printed blocks need the table header lines around each row
    // group, so the per-cell rows carry a "header" row first whose
    // text is the block heading, followed by one row per category.
    auto build = [&](const CellResult &res) {
        std::vector<BenchRow> rows;
        for (const RunOutput &r : res.runs) {
            for (Category c : moduleTableCategories(web_rows, db_rows,
                                                    scenario_rows)) {
                BenchRow row;
                row.table = "origins";
                row.trace = std::string(traceKindName(r.kind));
                row.label = std::string(categoryName(c));
                row.text = renderModuleRow(r.modules, c);
                row.metrics = {
                    {"pct_misses", r.modules.pctMisses(c)},
                    {"pct_in_streams", r.modules.pctInStreams(c)},
                };
                rows.push_back(std::move(row));
            }
            BenchRow overall;
            overall.table = "origins";
            overall.trace = std::string(traceKindName(r.kind));
            overall.label = "overall";
            overall.text = renderModuleOverallRow(r.modules);
            overall.metrics = {
                {"overall_pct_in_streams",
                 r.modules.overallPctInStreams()},
            };
            rows.push_back(std::move(overall));

            BenchRow block;
            block.table = "origins_block";
            block.trace = std::string(traceKindName(r.kind));
            block.text = strprintf(
                "%s / %s  (%zu misses)",
                std::string(workloadName(r.workload)).c_str(),
                std::string(traceKindName(r.kind)).c_str(),
                r.trace.misses.size());
            block.text += "\n" + renderModuleTable(r.modules, web_rows,
                                                   db_rows,
                                                   scenario_rows);
            while (!block.text.empty() && block.text.back() == '\n')
                block.text.pop_back();
            rows.push_back(std::move(block));
        }
        return rows;
    };

    const auto cells = runBenchCells(grid, opts, opts.driver(), build);

    std::printf("%s\n", title);
    for (const BenchCell &cell : cells)
        for (const BenchRow &row : cell.rows)
            if (row.table == "origins_block") {
                rule();
                std::printf("%s\n", row.text.c_str());
            }
    return emitReport(opts, benchName, grid.size(), std::move(cells));
}

} // namespace tstream::bench

#endif // TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH
