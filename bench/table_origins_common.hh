/**
 * @file
 * Shared driver for the Tables 3/4/5 benches: run one workload class
 * across the three contexts and print the per-category origin table.
 */

#ifndef TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH
#define TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH

#include "common.hh"

namespace tstream::bench
{

/** Print one paper-style origins table for @p workloads. */
inline int
runOriginsTable(const char *title,
                const std::vector<WorkloadKind> &workloads, bool web_rows,
                bool db_rows, int argc, char **argv)
{
    const BenchBudgets budgets = parseBudgets(argc, argv);
    auto runs = runGrid(workloads, budgets);

    std::printf("%s\n", title);
    for (const RunOutput &r : runs) {
        rule();
        std::printf("%s / %s  (%zu misses)\n",
                    std::string(workloadName(r.workload)).c_str(),
                    std::string(traceKindName(r.kind)).c_str(),
                    r.trace.misses.size());
        rule();
        std::printf("%s", renderModuleTable(r.modules, web_rows, db_rows)
                              .c_str());
    }
    return 0;
}

} // namespace tstream::bench

#endif // TSTREAM_BENCH_TABLE_ORIGINS_COMMON_HH
