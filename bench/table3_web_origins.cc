/**
 * @file
 * Regenerates the paper's Table 3: temporal stream origins in Web
 * applications (Apache and Zeus), per category, per context.
 *
 * Expected shape (paper Section 5.1): the http server's own code is a
 * tiny fraction; STREAMS and IP dominate kernel activity multi-chip;
 * bulk copies grow in the single-chip context; perl input processing
 * is almost perfectly repetitive; overall in-stream share 75-85%.
 */

#include "table_origins_common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    return runOriginsTable(
        "table3_web_origins",
        "Table 3: temporal stream origins in Web applications",
        {WorkloadKind::Apache, WorkloadKind::Zeus}, /*web=*/true,
        /*db=*/false, argc, argv);
}
