/**
 * @file
 * Post-paper extension "Table 6": temporal stream origins in the
 * scenario suite — the key-value store (src/kv), the message broker
 * (src/mq), and the phased mix — per category, per context.
 *
 * Expected shape: the KV store's hash/chain walks and the broker's
 * log replay mirror the paper's web-serving results — high overall
 * in-stream shares driven by recycled buffers (slabs, log segments)
 * and fixed-address metadata; kernel categories (scheduler, syscalls,
 * copies, IP) carry the rest, exactly as in Tables 3-5.
 */

#include "table_origins_common.hh"

using namespace tstream;
using namespace tstream::bench;

int
main(int argc, char **argv)
{
    return runOriginsTable(
        "table6_scenario_origins",
        "Table 6 (extension): temporal stream origins in the scenario "
        "suite",
        kScenarioWorkloads, /*web=*/false, /*db=*/false, argc, argv,
        /*scenario=*/true);
}
