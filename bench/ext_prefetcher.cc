/**
 * @file
 * Extension bench: a temporal-streaming prefetcher over the collected
 * traces — the "so what" of the paper's characterization. Coverage
 * should track Figure 2's in-stream fractions (web/OLTP multi-chip
 * high, DSS low), and a replay-depth sweep shows why the paper argues
 * against fixed-depth policies (Section 4.4).
 *
 * Every evaluation routes through the prefetch-policy registry
 * (core/prefetch_policy.hh). On top of the classic depth-sweep table:
 *
 *  - --policy NAME[,NAME...] scores the named policies (fixed,
 *    adaptive, stride, hybrid) per trace in a "prefetcher_policy"
 *    table with storage/coverage/accuracy columns;
 *  - --budget-sweep adds the paper's Section 4.5 storage-budget sweep
 *    ("prefetcher_budget"): CMOB entries x coverage/accuracy, so the
 *    coverage-vs-storage trade-off is one table per workload;
 *  - --replay-depth N sets the replay depth those tables use.
 *
 * The default (flagless) output is byte-identical to the
 * pre-policy-API bench.
 */

#include "common.hh"

#include "core/prefetch_policy.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

/** The --policy / --budget-sweep / --replay-depth extension flags. */
struct ExtOptions
{
    std::vector<std::string> policies; ///< --policy, in given order
    bool budgetSweep = false;          ///< --budget-sweep
    std::string replayDepthArg;        ///< --replay-depth (raw)
    unsigned replayDepth = 8;          ///< validated value
};

/** CMOB budget points of the Section 4.5 sweep (entries per CPU). */
constexpr std::uint32_t kBudgetPoints[] = {1u << 12, 1u << 14,
                                           1u << 16, 1u << 18};

const char *const kExtraUsage =
    "  --policy NAMES comma-separated prefetch policies (fixed,\n"
    "                 adaptive, stride, hybrid — see\n"
    "                 core/prefetch_policy.hh), each scored per trace\n"
    "                 in an extra 'prefetcher_policy' table\n"
    "  --budget-sweep add the Section 4.5 storage-budget sweep table\n"
    "                 ('prefetcher_budget'): CMOB entries x coverage /\n"
    "                 accuracy per workload\n"
    "  --replay-depth N\n"
    "                 replay depth for the --policy / --budget-sweep\n"
    "                 tables (default 8; needs one of those modes)\n";

std::vector<std::string>
splitPolicies(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

/** Validate the extension flags; "" when fine. */
std::string
validateExt(ExtOptions &ext, const BenchOptions &opts)
{
    for (const std::string &name : ext.policies) {
        bool known = false;
        for (const std::string &k : prefetchPolicyNames())
            known = known || k == name;
        if (!known) {
            std::string diag = "--policy: unknown policy '" + name +
                               "' (known:";
            for (const std::string &k : prefetchPolicyNames())
                diag += " " + k;
            return diag + ")";
        }
    }
    if (!ext.replayDepthArg.empty()) {
        char *end = nullptr;
        const long n =
            std::strtol(ext.replayDepthArg.c_str(), &end, 10);
        if (!end || *end != '\0' || n <= 0 || n > 1024)
            return "--replay-depth wants a positive integer (<= 1024)";
        if (ext.policies.empty() && !ext.budgetSweep)
            return "--replay-depth needs --policy or --budget-sweep "
                   "(the default depth-sweep columns are fixed)";
        ext.replayDepth = static_cast<unsigned>(n);
    }
    if ((!ext.policies.empty() || ext.budgetSweep) && opts.resume)
        return "--policy/--budget-sweep and --resume are mutually "
               "exclusive (a stored report may lack the policy "
               "tables)";
    return "";
}

/** Policy-table and budget-sweep evaluation at @p depth. */
TsPrefetcherStats
scorePolicy(const MissTrace &trace, const std::string &name,
            unsigned depth, std::uint32_t historyEntries,
            std::uint64_t &storageBytes)
{
    PrefetchPolicyParams params;
    params.ts.replayDepth = depth;
    params.ts.historyEntries = historyEntries;
    auto policy = makePrefetchPolicy(name, params);
    const TsPrefetcherStats st =
        evaluatePolicy(trace, *policy, params.ts.bufferBlocks);
    storageBytes = policy->storageBytes();
    return st;
}

std::vector<BenchRow>
buildRows(const CellResult &res, const ExtOptions &ext)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        const std::string wl(workloadName(r.workload));
        const std::string kind(traceKindName(r.kind));

        // The classic depth-sweep table, now routed through the
        // policy registry (previously an inline TsPrefetcher loop —
        // numbers are bit-identical).
        BenchRow row;
        row.table = "prefetcher";
        row.trace = kind;
        row.text = strprintf("%-10s %-12s %9.1f%% |       ",
                             wl.c_str(), kind.c_str(),
                             100.0 * r.streams.inStreamFraction());
        row.metrics = {
            {"in_streams_pct", 100.0 * r.streams.inStreamFraction()},
        };
        double acc8 = 0.0;
        for (unsigned d : {1u, 4u, 8u, 16u, 32u}) {
            std::uint64_t storage = 0;
            const TsPrefetcherStats st = scorePolicy(
                r.trace, "fixed", d, TsPrefetcherConfig{}.historyEntries,
                storage);
            row.text += strprintf(" %6.1f%%", 100.0 * st.coverage());
            row.metrics.emplace_back(
                strprintf("coverage_depth_%u_pct", d),
                100.0 * st.coverage());
            if (d == 8)
                acc8 = st.accuracy();
        }
        // The paper's Section 4.3 synergy: add a stride engine.
        std::uint64_t storage = 0;
        const TsPrefetcherStats hs = scorePolicy(
            r.trace, "hybrid", 8, TsPrefetcherConfig{}.historyEntries,
            storage);
        row.text += strprintf(" %6.1f%% %7.1f%%", 100.0 * acc8,
                              100.0 * hs.coverage());
        row.metrics.emplace_back("accuracy_depth_8_pct", 100.0 * acc8);
        row.metrics.emplace_back("hybrid_coverage_depth_8_pct",
                                 100.0 * hs.coverage());
        rows.push_back(std::move(row));

        // --policy: one row per named policy.
        for (const std::string &name : ext.policies) {
            std::uint64_t bytes = 0;
            const TsPrefetcherStats st = scorePolicy(
                r.trace, name, ext.replayDepth,
                TsPrefetcherConfig{}.historyEntries, bytes);
            BenchRow pr;
            pr.table = "prefetcher_policy";
            pr.trace = kind;
            pr.policy = name;
            pr.text = strprintf(
                "%-10s %-12s %-9s %9.0fKB %7.1f%% %7.1f%%", wl.c_str(),
                kind.c_str(), name.c_str(),
                static_cast<double>(bytes) / 1024.0,
                100.0 * st.coverage(), 100.0 * st.accuracy());
            pr.metrics = {
                {"storage_bytes", static_cast<double>(bytes)},
                {"coverage_pct", 100.0 * st.coverage()},
                {"accuracy_pct", 100.0 * st.accuracy()},
            };
            rows.push_back(std::move(pr));
        }

        // --budget-sweep: coverage/accuracy per CMOB budget point
        // (Section 4.5). The stride policy has no CMOB, so it is
        // skipped — its storage does not move along this axis.
        if (ext.budgetSweep) {
            std::vector<std::string> sweep = ext.policies;
            if (sweep.empty())
                sweep.push_back("fixed");
            for (const std::string &name : sweep) {
                if (name == "stride")
                    continue;
                for (const std::uint32_t entries : kBudgetPoints) {
                    std::uint64_t bytes = 0;
                    const TsPrefetcherStats st =
                        scorePolicy(r.trace, name, ext.replayDepth,
                                    entries, bytes);
                    BenchRow br;
                    br.table = "prefetcher_budget";
                    br.trace = kind;
                    br.policy = name;
                    br.label = strprintf("%u", entries);
                    br.text = strprintf(
                        "%-10s %-12s %-9s %8u %9.0fKB %7.1f%% %7.1f%%",
                        wl.c_str(), kind.c_str(), name.c_str(),
                        entries, static_cast<double>(bytes) / 1024.0,
                        100.0 * st.coverage(), 100.0 * st.accuracy());
                    br.metrics = {
                        {"cmob_entries",
                         static_cast<double>(entries)},
                        {"storage_bytes", static_cast<double>(bytes)},
                        {"coverage_pct", 100.0 * st.coverage()},
                        {"accuracy_pct", 100.0 * st.accuracy()},
                    };
                    rows.push_back(std::move(br));
                }
            }
        }
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    ExtOptions ext;
    BenchExtraArgs extra;
    extra.usage = kExtraUsage;
    extra.handler = [&ext](std::string_view arg,
                           const std::function<const char *(
                               const char *)> &take) {
        if (arg == "--policy") {
            ext.policies = splitPolicies(take("--policy"));
            return true;
        }
        if (arg == "--budget-sweep") {
            ext.budgetSweep = true;
            return true;
        }
        if (arg == "--replay-depth") {
            ext.replayDepthArg = take("--replay-depth");
            return true;
        }
        return false;
    };
    extra.validate = [&ext](const BenchOptions &opts) {
        return validateExt(ext, opts);
    };

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "ext_prefetcher", &extra);
    const auto grid = benchGrid(kAllWorkloads, opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [&ext](const CellResult &res) { return buildRows(res, ext); });

    std::printf("Extension: temporal-streaming prefetcher coverage / "
                "accuracy\n");
    rule();
    std::printf("%-10s %-12s %10s | depth:", "app", "context",
                "in-streams");
    for (unsigned d : {1u, 4u, 8u, 16u, 32u})
        std::printf("  cov@%-2u", d);
    std::printf("  acc@8  hybrid@8\n");
    rule();
    printTable(cells, "prefetcher");

    if (!ext.policies.empty()) {
        std::printf("\nPolicy comparison (replay depth %u)\n",
                    ext.replayDepth);
        rule();
        std::printf("%-10s %-12s %-9s %11s %8s %8s\n", "app",
                    "context", "policy", "storage", "cov", "acc");
        rule();
        printTable(cells, "prefetcher_policy");
    }

    if (ext.budgetSweep) {
        std::printf("\nStorage-budget sweep (Section 4.5; replay "
                    "depth %u)\n",
                    ext.replayDepth);
        rule();
        std::printf("%-10s %-12s %-9s %8s %11s %8s %8s\n", "app",
                    "context", "policy", "entries", "storage", "cov",
                    "acc");
        rule();
        printTable(cells, "prefetcher_budget");
    }

    std::printf("\nReading: coverage tracks the in-stream fraction and "
                "grows with replay depth\nwhere streams are long "
                "(web/OLTP); DSS coverage stays low — temporal\n"
                "streaming cannot address compulsory misses, exactly "
                "the paper's conclusion.\nThe hybrid column adds a "
                "stride engine: it recovers most of the strided,\n"
                "non-repetitive DSS misses (the Section 4.3 synergy) "
                "while temporal replay\nkeeps the pointer-chasing "
                "coverage.\n");
    return emitReport(opts, "ext_prefetcher", grid.size(),
                      std::move(cells));
}
