/**
 * @file
 * Extension bench: a temporal-streaming prefetcher over the collected
 * traces — the "so what" of the paper's characterization. Coverage
 * should track Figure 2's in-stream fractions (web/OLTP multi-chip
 * high, DSS low), and a replay-depth sweep shows why the paper argues
 * against fixed-depth policies (Section 4.4).
 */

#include "common.hh"

#include "core/ts_prefetcher.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        BenchRow row;
        row.table = "prefetcher";
        row.trace = std::string(traceKindName(r.kind));
        row.text = strprintf(
            "%-10s %-12s %9.1f%% |       ",
            std::string(workloadName(r.workload)).c_str(),
            std::string(traceKindName(r.kind)).c_str(),
            100.0 * r.streams.inStreamFraction());
        row.metrics = {
            {"in_streams_pct", 100.0 * r.streams.inStreamFraction()},
        };
        double acc8 = 0.0;
        for (unsigned d : {1u, 4u, 8u, 16u, 32u}) {
            TsPrefetcherConfig cfg;
            cfg.replayDepth = d;
            TsPrefetcher pf(cfg);
            const TsPrefetcherStats st = pf.evaluate(r.trace);
            row.text += strprintf(" %6.1f%%", 100.0 * st.coverage());
            row.metrics.emplace_back(
                strprintf("coverage_depth_%u_pct", d),
                100.0 * st.coverage());
            if (d == 8)
                acc8 = st.accuracy();
        }
        // The paper's Section 4.3 synergy: add a stride engine.
        TsPrefetcherConfig hc;
        hc.replayDepth = 8;
        TsPrefetcher hybrid(hc);
        const TsPrefetcherStats hs = hybrid.evaluateHybrid(r.trace);
        row.text += strprintf(" %6.1f%% %7.1f%%", 100.0 * acc8,
                              100.0 * hs.coverage());
        row.metrics.emplace_back("accuracy_depth_8_pct",
                                 100.0 * acc8);
        row.metrics.emplace_back("hybrid_coverage_depth_8_pct",
                                 100.0 * hs.coverage());
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "ext_prefetcher");
    const auto grid = benchGrid(kAllWorkloads, opts);
    const auto cells = runBenchCells(
        grid, opts, opts.driver(),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Extension: temporal-streaming prefetcher coverage / "
                "accuracy\n");
    rule();
    std::printf("%-10s %-12s %10s | depth:", "app", "context",
                "in-streams");
    for (unsigned d : {1u, 4u, 8u, 16u, 32u})
        std::printf("  cov@%-2u", d);
    std::printf("  acc@8  hybrid@8\n");
    rule();
    printTable(cells, "prefetcher");

    std::printf("\nReading: coverage tracks the in-stream fraction and "
                "grows with replay depth\nwhere streams are long "
                "(web/OLTP); DSS coverage stays low — temporal\n"
                "streaming cannot address compulsory misses, exactly "
                "the paper's conclusion.\nThe hybrid column adds a "
                "stride engine: it recovers most of the strided,\n"
                "non-repetitive DSS misses (the Section 4.3 synergy) "
                "while temporal replay\nkeeps the pointer-chasing "
                "coverage.\n");
    return emitReport(opts, "ext_prefetcher", grid.size(),
                      std::move(cells));
}
