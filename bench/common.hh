/**
 * @file
 * Shared glue for the per-figure/per-table bench binaries, now thin
 * wrappers over the cell-level experiment driver (sim/driver.hh):
 * the driver enumerates the (workload x context x budget) grid as
 * independent cells, executes them on a bounded work-stealing pool
 * (--jobs / TSTREAM_JOBS), shards deterministically across processes
 * (--shard k/N / TSTREAM_SHARD), and reuses saved traces via
 * TSTREAM_TRACE_CACHE. Every bench prints its table from BenchRow
 * records and can emit the same rows as a versioned JSON report with
 * --json (sim/bench_report.hh); docs/BENCHMARKING.md is the guide.
 */

#ifndef TSTREAM_BENCH_COMMON_HH
#define TSTREAM_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/bench_report.hh"
#include "sim/driver.hh"
#include "util/work_pool.hh"

namespace tstream::bench
{

/** The paper's six applications in its figure order (Tables 3-5 keep
 *  exactly these rows). */
inline const std::vector<WorkloadKind> kPaperWorkloads = {
    WorkloadKind::Apache, WorkloadKind::Zeus,   WorkloadKind::Oltp,
    WorkloadKind::DssQ1,  WorkloadKind::DssQ2,  WorkloadKind::DssQ17,
};

/** The post-paper scenario suite (key-value store, message broker,
 *  phased mix — see src/kv, src/mq, sim/phased_workload.hh). */
inline const std::vector<WorkloadKind> kScenarioWorkloads = {
    WorkloadKind::KvStore,
    WorkloadKind::Broker,
    WorkloadKind::PhasedMix,
};

/** The full suite the figure benches sweep: paper six + scenarios
 *  (built by concatenation so the three lists cannot drift). */
inline const std::vector<WorkloadKind> kAllWorkloads = [] {
    std::vector<WorkloadKind> all = kPaperWorkloads;
    all.insert(all.end(), kScenarioWorkloads.begin(),
               kScenarioWorkloads.end());
    return all;
}();

/** printf into a std::string (for building BenchRow::text). */
inline std::string
strprintf(const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

/** Horizontal rule for table output. */
inline void
rule(char c = '-')
{
    for (int i = 0; i < 78; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/**
 * Print every row of @p cells whose table tag is @p table, in cell
 * order — the printed line is exactly BenchRow::text, which is also
 * what lands in the JSON report, so the two are bit-identical.
 */
inline void
printTable(const std::vector<BenchCell> &cells, const char *table)
{
    for (const BenchCell &c : cells)
        for (const BenchRow &r : c.rows)
            if (r.table == table)
                std::printf("%s\n", r.text.c_str());
}

/**
 * Execute @p grid for one bench and build its report cells: the cells
 * this shard owns are run on the driver pool, except — under
 * `--resume` — those already present in the existing `--json` report,
 * whose stored rows are reused verbatim (the simulator is
 * deterministic, so a stored cell equals a re-run one). A resume
 * mismatch (schema version, budgets, grid size, or a cell's config
 * hash) aborts with an error instead of mixing configurations. Under
 * `--claim-session` the whole grid is offered to the driver and the
 * claim protocol decides which cells this worker runs (--shard and
 * --resume are excluded by the parser). A cell that exhausted its
 * retries comes back as a failure row with no table rows. @p build
 * maps one executed CellResult to its table rows. Cells come back in
 * grid order either way.
 */
template <typename Build>
std::vector<BenchCell>
runBenchCells(const std::vector<Cell> &grid, const BenchOptions &opts,
              const DriverOptions &dopts, Build &&build)
{
    if (dopts.claim.enabled()) {
        const std::vector<CellResult> results = runCells(grid, dopts);
        std::vector<BenchCell> cells;
        cells.reserve(results.size());
        for (const CellResult &res : results)
            cells.push_back(makeBenchCell(
                res, res.failed ? std::vector<BenchRow>{}
                                : build(res)));
        return cells;
    }

    std::vector<BenchCell> prior;
    if (opts.resume) {
        std::string err;
        std::vector<BenchCell> all;
        if (!loadResumeCells(opts.jsonPath, opts.benchName, opts.quick,
                             opts.budgets, grid, all, err)) {
            std::fprintf(stderr, "%s: --resume: %s\n",
                         opts.benchName.c_str(), err.c_str());
            std::exit(1);
        }
        // Keep only the cells this shard owns, so a resumed shard run
        // emits exactly what a fresh shard run would.
        for (BenchCell &c : all)
            if (dopts.shard.owns(c.index))
                prior.push_back(std::move(c));
        if (!prior.empty())
            std::fprintf(stderr,
                         "[bench] --resume: reusing %zu cell(s) "
                         "from %s\n",
                         prior.size(), opts.jsonPath.c_str());
    }

    std::vector<bool> have(grid.size(), false);
    for (const BenchCell &c : prior)
        have[c.index] = true;
    std::vector<Cell> todo;
    for (const Cell &c : grid)
        if (dopts.shard.owns(c.index) && !have[c.index])
            todo.push_back(c);

    DriverOptions run = dopts;
    run.shard = ShardSpec{}; // todo is already shard-filtered
    const std::vector<CellResult> results = runCells(todo, run);

    std::vector<BenchCell> cells;
    cells.reserve(prior.size() + results.size());
    std::size_t p = 0, f = 0;
    while (p < prior.size() || f < results.size()) {
        if (f >= results.size() ||
            (p < prior.size() &&
             prior[p].index < results[f].cell.index))
            cells.push_back(std::move(prior[p++]));
        else {
            const CellResult &res = results[f++];
            cells.push_back(makeBenchCell(
                res, res.failed ? std::vector<BenchRow>{}
                                : build(res)));
        }
    }
    return cells;
}

/**
 * Write the bench's JSON report when --json was given. Returns the
 * process exit status (non-zero when the write failed).
 */
inline int
emitReport(const BenchOptions &opts, const char *benchName,
           std::size_t gridCells, std::vector<BenchCell> cells)
{
    if (opts.jsonPath.empty())
        return 0;
    BenchDoc doc;
    doc.bench = benchName;
    doc.quick = opts.quick;
    doc.budgets = opts.budgets;
    doc.gridCells = gridCells;
    doc.shard = opts.shard;
    doc.jobs = opts.jobs != 0 ? opts.jobs : WorkPool::defaultJobs();
    doc.cells = std::move(cells);
    std::string err;
    if (!writeBenchDoc(doc, opts.jsonPath, err)) {
        std::fprintf(stderr, "%s: %s\n", benchName, err.c_str());
        return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s (%zu cells)\n",
                 opts.jsonPath.c_str(), doc.cells.size());
    return 0;
}

} // namespace tstream::bench

#endif // TSTREAM_BENCH_COMMON_HH
