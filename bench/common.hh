/**
 * @file
 * Shared harness for the per-figure/per-table bench binaries: runs the
 * (workload x context) grid in parallel, with a --quick mode for smoke
 * runs, a trace cache (TSTREAM_TRACE_CACHE) that reuses saved traces
 * instead of re-simulating, and the formatting helpers the benches
 * share.
 */

#ifndef TSTREAM_BENCH_COMMON_HH
#define TSTREAM_BENCH_COMMON_HH

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "sim/experiment.hh"
#include "trace/trace_io.hh"

namespace tstream::bench
{

/** All six applications in the paper's figure order. */
inline const std::vector<WorkloadKind> kAllWorkloads = {
    WorkloadKind::Apache, WorkloadKind::Zeus,   WorkloadKind::Oltp,
    WorkloadKind::DssQ1,  WorkloadKind::DssQ2,  WorkloadKind::DssQ17,
};

/** The paper's three analysis contexts. */
enum class TraceKind
{
    MultiChip,  ///< off-chip trace of the 16-node DSM
    SingleChip, ///< off-chip trace of the 4-core CMP
    IntraChip,  ///< on-chip-satisfied L1 misses of the CMP
};

inline std::string_view
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::MultiChip: return "multi-chip";
      case TraceKind::SingleChip: return "single-chip";
      case TraceKind::IntraChip: return "intra-chip";
    }
    return "?";
}

/** Budgets used by every paper bench (presets in sim/experiment.hh,
 *  shared with the tstream-trace CLI). */
struct BenchBudgets
{
    std::uint64_t warmup = kPaperBudgets.warmupInstructions;
    std::uint64_t measure = kPaperBudgets.measureInstructions;
    double scale = kPaperBudgets.scale;
};

/** Parse --quick / TSTREAM_QUICK=1 into reduced budgets. */
inline BenchBudgets
parseBudgets(int argc, char **argv)
{
    BenchBudgets b;
    bool quick = std::getenv("TSTREAM_QUICK") != nullptr;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    if (quick) {
        b.warmup = kQuickBudgets.warmupInstructions;
        b.measure = kQuickBudgets.measureInstructions;
        b.scale = kQuickBudgets.scale;
    }
    return b;
}

/**
 * Cache-file path stem for @p cfg, or "" when the cache is disabled.
 * Set TSTREAM_TRACE_CACHE to a writable directory to enable: each
 * (workload, context, budget) cell is keyed on configHash() and
 * stored as `<stem>.off.tst` (off-chip trace, with the function table
 * so module attribution survives) plus `<stem>.l1.tst` (unfiltered
 * intra-chip trace, single-chip runs only).
 */
inline std::string
traceCacheStem(const ExperimentConfig &cfg)
{
    const char *dir = std::getenv("TSTREAM_TRACE_CACHE");
    if (!dir || !*dir)
        return {};
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, configHash(cfg));
    return std::string(dir) + "/" +
           std::string(workloadName(cfg.workload)) + "-" +
           std::string(contextName(cfg.context)) + "-" + hash;
}

/**
 * Reload a previously cached run for @p cfg. Returns nullopt when the
 * cache is disabled, the cell is absent, or a file fails to load (the
 * caller then simulates; a stale or corrupt cache is never fatal).
 */
inline std::optional<ExperimentResult>
traceCacheLoad(const ExperimentConfig &cfg)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return std::nullopt;

    auto reader = TraceReader::open(stem + ".off.tst");
    if (!reader)
        return std::nullopt;
    auto offChip = reader->readAll();
    auto registry = reader->functions();
    if (!offChip || !registry)
        return std::nullopt;

    ExperimentResult res;
    res.offChip = std::move(*offChip);
    res.registry = std::move(*registry);
    res.instructions = res.offChip.instructions;
    if (cfg.context == SystemContext::SingleChip) {
        auto intra = loadTrace(stem + ".l1.tst");
        if (!intra)
            return std::nullopt;
        res.intraChip = std::move(*intra);
    }
    std::fprintf(stderr,
                 "[trace-cache] hit %s (skipping simulation)\n",
                 stem.c_str());
    return res;
}

/** Save a freshly simulated run for @p cfg. No-op when disabled. */
inline void
traceCacheStore(const ExperimentConfig &cfg, const ExperimentResult &res)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return;

    TraceWriteOptions opts;
    opts.configHash = configHash(cfg);
    opts.registry = &res.registry;
    opts.kind = TraceContentKind::OffChip;
    bool ok = saveTrace(res.offChip, stem + ".off.tst", opts);
    if (ok && cfg.context == SystemContext::SingleChip) {
        opts.kind = TraceContentKind::IntraChip;
        ok = saveTrace(res.intraChip, stem + ".l1.tst", opts);
    }
    std::fprintf(stderr, "[trace-cache] %s %s\n",
                 ok ? "saved" : "failed to save", stem.c_str());
}

/** One completed run with its analyses. */
struct RunOutput
{
    WorkloadKind workload;
    TraceKind kind;
    MissTrace trace;
    StreamStats streams;
    ModuleProfile modules;
};

/**
 * Run every requested workload in both system contexts, producing all
 * three trace kinds, in parallel across workloads.
 *
 * @param analyze_streams Run the SEQUITUR analysis per trace.
 * @param filter_intra Restrict the intra-chip trace to on-chip-
 *        satisfied misses (the paper's context (3)); pass false to
 *        keep all L1 misses (Figure 1 right needs the Off-chip bar).
 */
inline std::vector<RunOutput>
runGrid(const std::vector<WorkloadKind> &workloads,
        const BenchBudgets &budgets, bool analyze_streams = true,
        bool filter_intra = true)
{
    struct WorkloadRuns
    {
        RunOutput multi, single, intra;
    };

    auto runOne = [&](WorkloadKind w) {
        WorkloadRuns out;
        for (int pass = 0; pass < 2; ++pass) {
            ExperimentConfig cfg;
            cfg.workload = w;
            cfg.context = pass == 0 ? SystemContext::MultiChip
                                    : SystemContext::SingleChip;
            cfg.warmupInstructions = budgets.warmup;
            cfg.measureInstructions = budgets.measure;
            cfg.scale = budgets.scale;
            ExperimentResult res;
            if (auto cached = traceCacheLoad(cfg)) {
                res = std::move(*cached);
            } else {
                res = runExperiment(cfg);
                traceCacheStore(cfg, res);
            }

            auto analyze = [&](MissTrace &&trace, TraceKind kind) {
                RunOutput r;
                r.workload = w;
                r.kind = kind;
                r.trace = std::move(trace);
                if (analyze_streams) {
                    r.streams = analyzeStreams(r.trace);
                    r.modules =
                        profileModules(r.trace, r.streams, res.registry);
                }
                return r;
            };

            if (pass == 0) {
                out.multi =
                    analyze(std::move(res.offChip), TraceKind::MultiChip);
            } else {
                out.single = analyze(std::move(res.offChip),
                                     TraceKind::SingleChip);
                out.intra = analyze(filter_intra
                                        ? res.intraChipOnChip()
                                        : std::move(res.intraChip),
                                    TraceKind::IntraChip);
            }
        }
        return out;
    };

    std::vector<std::future<WorkloadRuns>> futs;
    futs.reserve(workloads.size());
    for (WorkloadKind w : workloads)
        futs.push_back(std::async(std::launch::async, runOne, w));

    std::vector<RunOutput> flat;
    for (auto &f : futs) {
        WorkloadRuns r = f.get();
        flat.push_back(std::move(r.multi));
        flat.push_back(std::move(r.single));
        flat.push_back(std::move(r.intra));
    }
    return flat;
}

/** Horizontal rule for table output. */
inline void
rule(char c = '-')
{
    for (int i = 0; i < 78; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace tstream::bench

#endif // TSTREAM_BENCH_COMMON_HH
