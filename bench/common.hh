/**
 * @file
 * Shared glue for the per-figure/per-table bench binaries, now thin
 * wrappers over the cell-level experiment driver (sim/driver.hh):
 * the driver enumerates the (workload x context x budget) grid as
 * independent cells, executes them on a bounded work-stealing pool
 * (--jobs / TSTREAM_JOBS), shards deterministically across processes
 * (--shard k/N / TSTREAM_SHARD), and reuses saved traces via
 * TSTREAM_TRACE_CACHE. Every bench prints its table from BenchRow
 * records and can emit the same rows as a versioned JSON report with
 * --json (sim/bench_report.hh); docs/BENCHMARKING.md is the guide.
 */

#ifndef TSTREAM_BENCH_COMMON_HH
#define TSTREAM_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/bench_report.hh"
#include "sim/driver.hh"
#include "util/work_pool.hh"

namespace tstream::bench
{

/** All six applications in the paper's figure order. */
inline const std::vector<WorkloadKind> kAllWorkloads = {
    WorkloadKind::Apache, WorkloadKind::Zeus,   WorkloadKind::Oltp,
    WorkloadKind::DssQ1,  WorkloadKind::DssQ2,  WorkloadKind::DssQ17,
};

/** printf into a std::string (for building BenchRow::text). */
inline std::string
strprintf(const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

/** Horizontal rule for table output. */
inline void
rule(char c = '-')
{
    for (int i = 0; i < 78; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/**
 * Print every row of @p cells whose table tag is @p table, in cell
 * order — the printed line is exactly BenchRow::text, which is also
 * what lands in the JSON report, so the two are bit-identical.
 */
inline void
printTable(const std::vector<BenchCell> &cells, const char *table)
{
    for (const BenchCell &c : cells)
        for (const BenchRow &r : c.rows)
            if (r.table == table)
                std::printf("%s\n", r.text.c_str());
}

/**
 * Write the bench's JSON report when --json was given. Returns the
 * process exit status (non-zero when the write failed).
 */
inline int
emitReport(const BenchOptions &opts, const char *benchName,
           std::size_t gridCells, std::vector<BenchCell> cells)
{
    if (opts.jsonPath.empty())
        return 0;
    BenchDoc doc;
    doc.bench = benchName;
    doc.quick = opts.quick;
    doc.budgets = opts.budgets;
    doc.gridCells = gridCells;
    doc.shard = opts.shard;
    doc.jobs = opts.jobs != 0 ? opts.jobs : WorkPool::defaultJobs();
    doc.cells = std::move(cells);
    std::string err;
    if (!writeBenchDoc(doc, opts.jsonPath, err)) {
        std::fprintf(stderr, "%s: %s\n", benchName, err.c_str());
        return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s (%zu cells)\n",
                 opts.jsonPath.c_str(), doc.cells.size());
    return 0;
}

} // namespace tstream::bench

#endif // TSTREAM_BENCH_COMMON_HH
