/**
 * @file
 * Regenerates the paper's Figure 1: miss classification.
 *
 * Left: off-chip read misses per 1000 instructions, split into
 * Compulsory / I-O Coherence / Replacement / Coherence, for every
 * workload in the multi-chip and single-chip contexts.
 *
 * Right: intra-chip (L1) misses per 1000 instructions, split into
 * Coherence:Peer-L1 / Coherence:L2 / Replacement:L2 / Off-chip.
 *
 * Expected shape (paper Section 4.1): coherence dominates multi-chip
 * web/OLTP; the single-chip context has no processor coherence
 * off-chip and is replacement/I-O dominated; DSS is compulsory-heavy
 * everywhere; one third to one half of on-chip L1 traffic is
 * coherence.
 */

#include <algorithm>

#include "common.hh"

using namespace tstream;
using namespace tstream::bench;

namespace
{

std::vector<BenchRow>
buildRows(const CellResult &res)
{
    std::vector<BenchRow> rows;
    for (const RunOutput &r : res.runs) {
        std::uint64_t cls[kNumMissClasses] = {};
        for (const MissRecord &m : r.trace.misses)
            cls[m.cls]++;
        const double tot = std::max<double>(
            1.0, static_cast<double>(r.trace.misses.size()));
        BenchRow row;
        row.trace = std::string(traceKindName(r.kind));
        if (r.kind != TraceKind::IntraChip) {
            const double mpki = r.trace.mpki();
            row.table = "offchip";
            row.text = strprintf(
                "%-10s %-12s %8.2f %9.1f%% %5.1f%% %7.1f%% %9.1f%% "
                "%10zu",
                std::string(workloadName(r.workload)).c_str(),
                std::string(traceKindName(r.kind)).c_str(), mpki,
                100.0 * cls[0] / tot, 100.0 * cls[2] / tot,
                100.0 * cls[3] / tot, 100.0 * cls[1] / tot,
                r.trace.misses.size());
            row.metrics = {
                {"mpki", mpki},
                {"compulsory_pct", 100.0 * cls[0] / tot},
                {"io_coherence_pct", 100.0 * cls[2] / tot},
                {"replacement_pct", 100.0 * cls[3] / tot},
                {"coherence_pct", 100.0 * cls[1] / tot},
                {"misses",
                 static_cast<double>(r.trace.misses.size())},
            };
        } else {
            // Coherence share of on-chip-satisfied traffic (the
            // paper's "one third to one half of all L2 and peer-L1
            // accesses").
            const double onchip = std::max<double>(
                1.0, static_cast<double>(cls[0] + cls[1] + cls[2]));
            const double cohShare =
                100.0 * (cls[0] + cls[1]) / onchip;
            row.table = "intra";
            row.text = strprintf(
                "%-10s %8.2f %8.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%",
                std::string(workloadName(r.workload)).c_str(),
                r.trace.mpki(), 100.0 * cls[0] / tot,
                100.0 * cls[1] / tot, 100.0 * cls[2] / tot,
                100.0 * cls[3] / tot, cohShare);
            row.metrics = {
                {"mpki", r.trace.mpki()},
                {"peer_l1_pct", 100.0 * cls[0] / tot},
                {"coherence_l2_pct", 100.0 * cls[1] / tot},
                {"replacement_l2_pct", 100.0 * cls[2] / tot},
                {"offchip_pct", 100.0 * cls[3] / tot},
                {"coherence_share_pct", cohShare},
            };
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig1_miss_classification");
    const auto grid = benchGrid(kAllWorkloads, opts);
    // Figure 1 needs neither stream analysis nor intra filtering (the
    // right panel includes the Off-chip bar).
    const auto cells = runBenchCells(
        grid, opts,
        opts.driver(/*analyze_streams=*/false, /*filter_intra=*/false),
        [](const CellResult &res) { return buildRows(res); });

    std::printf("Figure 1 (left): off-chip read misses per 1000 "
                "instructions\n");
    rule();
    std::printf("%-10s %-12s %8s %10s %6s %8s %10s %10s\n", "app",
                "context", "MPKI", "Compulsory", "I/O", "Repl",
                "Coherence", "misses");
    rule();
    printTable(cells, "offchip");

    std::printf("\nFigure 1 (right): intra-chip (L1) read misses per "
                "1000 instructions\n");
    rule();
    std::printf("%-10s %8s %9s %8s %8s %8s %8s\n", "app", "MPKI",
                "Peer-L1", "Coh:L2", "Repl:L2", "Off-chip", "coh-shr");
    rule();
    printTable(cells, "intra");

    std::printf("\nPaper shape check: multi-chip web/OLTP coherence-"
                "dominated; single-chip has no\nprocessor coherence "
                "off-chip; DSS compulsory-dominated; on-chip traffic "
                "has a\nsubstantial coherence component.\n");
    return emitReport(opts, "fig1_miss_classification", grid.size(),
                      std::move(cells));
}
