/**
 * @file
 * Trace serialization tests: v1/v2 round trips and equivalence,
 * chunking, compression, the embedded function table, and rejection
 * of malformed files through the TraceResult error contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace_io.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

MissTrace
makeTrace(std::uint64_t count, std::uint64_t rngSeed = 55)
{
    Rng rng(rngSeed);
    MissTrace t;
    t.numCpus = 16;
    t.instructions = 99'000'000;
    for (std::uint64_t i = 0; i < count; ++i) {
        MissRecord m;
        m.seq = i * 3;
        m.block = rng.next() >> 8;
        m.cpu = static_cast<CpuId>(rng.below(16));
        m.cls = static_cast<std::uint8_t>(rng.below(4));
        m.fn = static_cast<FnId>(rng.below(500));
        t.misses.push_back(m);
    }
    return t;
}

void
expectSameRecords(const MissTrace &a, const MissTrace &b)
{
    ASSERT_EQ(a.misses.size(), b.misses.size());
    EXPECT_EQ(a.numCpus, b.numCpus);
    EXPECT_EQ(a.instructions, b.instructions);
    for (std::size_t i = 0; i < a.misses.size(); ++i) {
        EXPECT_EQ(a.misses[i].seq, b.misses[i].seq) << "record " << i;
        EXPECT_EQ(a.misses[i].block, b.misses[i].block) << "record " << i;
        EXPECT_EQ(a.misses[i].cpu, b.misses[i].cpu) << "record " << i;
        EXPECT_EQ(a.misses[i].cls, b.misses[i].cls) << "record " << i;
        EXPECT_EQ(a.misses[i].fn, b.misses[i].fn) << "record " << i;
    }
}

long
sizeOf(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long s = std::ftell(f);
    std::fclose(f);
    return s;
}

void
corruptByte(const std::string &path, long offset, unsigned char value)
{
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    std::fputc(value, f);
    std::fclose(f);
}

void
truncateTo(const std::string &src, const std::string &dst, long bytes)
{
    std::ifstream in(src, std::ios::binary);
    std::vector<char> buf(static_cast<std::size_t>(bytes));
    in.read(buf.data(), bytes);
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), in.gcount());
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    MissTrace t;
    t.numCpus = 4;
    t.instructions = 12345;
    const auto path = tmpPath("empty.tst");
    ASSERT_TRUE(saveTrace(t, path));
    const auto back = loadTrace(path);
    ASSERT_TRUE(back) << back.error();
    EXPECT_EQ(back->numCpus, 4u);
    EXPECT_EQ(back->instructions, 12345u);
    EXPECT_TRUE(back->misses.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, RandomTraceRoundTrip)
{
    const MissTrace t = makeTrace(10'000);
    const auto path = tmpPath("random.tst");
    ASSERT_TRUE(saveTrace(t, path));
    const auto back = loadTrace(path);
    ASSERT_TRUE(back) << back.error();
    expectSameRecords(t, *back);
    std::remove(path.c_str());
}

TEST(TraceIo, V1RoundTripEquivalence)
{
    const MissTrace t = makeTrace(5'000);
    const auto v1 = tmpPath("equiv.v1.tst");
    const auto v2 = tmpPath("equiv.v2.tst");
    TraceWriteOptions opts;
    opts.version = 1;
    ASSERT_TRUE(saveTrace(t, v1, opts));
    ASSERT_TRUE(saveTrace(t, v2));

    const auto fromV1 = loadTrace(v1);
    const auto fromV2 = loadTrace(v2);
    ASSERT_TRUE(fromV1) << fromV1.error();
    ASSERT_TRUE(fromV2) << fromV2.error();
    expectSameRecords(t, *fromV1);
    expectSameRecords(*fromV1, *fromV2);

    auto reader = TraceReader::open(v1);
    ASSERT_TRUE(reader) << reader.error();
    EXPECT_EQ(reader->meta().version, 1u);
    EXPECT_EQ(reader->meta().recordCount, 5'000u);
    EXPECT_FALSE(reader->hasFunctions());
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(TraceIo, CompressionOnOffEquivalence)
{
    // A highly repetitive trace: the same 16-block loop over and over,
    // the shape temporal streams actually have.
    MissTrace t;
    t.numCpus = 4;
    t.instructions = 1'000'000;
    for (std::uint64_t i = 0; i < 20'000; ++i) {
        MissRecord m;
        m.seq = i;
        m.block = 0x1000 + (i % 16) * 2;
        m.cpu = static_cast<CpuId>(i % 4);
        m.cls = static_cast<std::uint8_t>(i % 3);
        m.fn = static_cast<FnId>(i % 7);
        t.misses.push_back(m);
    }

    const auto raw = tmpPath("codec.none.tst");
    const auto lz4 = tmpPath("codec.lz4.tst");
    TraceWriteOptions opts;
    opts.codec = CodecId::None;
    ASSERT_TRUE(saveTrace(t, raw, opts));
    opts.codec = CodecId::Lz4;
    ASSERT_TRUE(saveTrace(t, lz4, opts));

    const auto fromRaw = loadTrace(raw);
    const auto fromLz4 = loadTrace(lz4);
    ASSERT_TRUE(fromRaw) << fromRaw.error();
    ASSERT_TRUE(fromLz4) << fromLz4.error();
    expectSameRecords(*fromRaw, *fromLz4);
    expectSameRecords(t, *fromLz4);
    EXPECT_LT(sizeOf(lz4), sizeOf(raw));

    auto reader = TraceReader::open(lz4);
    ASSERT_TRUE(reader) << reader.error();
    EXPECT_EQ(reader->meta().codec,
              static_cast<std::uint32_t>(CodecId::Lz4));
    std::remove(raw.c_str());
    std::remove(lz4.c_str());
}

TEST(TraceIo, MultiChunkBoundaries)
{
    const MissTrace t = makeTrace(100);
    const auto path = tmpPath("chunks.tst");
    TraceWriteOptions opts;
    opts.chunkRecords = 7;
    ASSERT_TRUE(saveTrace(t, path, opts));

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    ASSERT_EQ(reader->meta().chunks.size(), 15u); // ceil(100 / 7)
    EXPECT_EQ(reader->meta().chunks.back().records, 100u % 7);

    // Chunks are self-contained: random access must see absolute
    // values, not deltas relative to earlier chunks.
    auto third = reader->readChunk(3);
    ASSERT_TRUE(third) << third.error();
    ASSERT_EQ(third->size(), 7u);
    for (std::size_t i = 0; i < third->size(); ++i) {
        EXPECT_EQ((*third)[i].seq, t.misses[21 + i].seq);
        EXPECT_EQ((*third)[i].block, t.misses[21 + i].block);
    }
    EXPECT_EQ(reader->meta().chunks[3].firstSeq, t.misses[21].seq);

    const auto back = reader->readAll();
    ASSERT_TRUE(back) << back.error();
    expectSameRecords(t, *back);
    std::remove(path.c_str());
}

TEST(TraceIo, SingleRecordAndChunkExactFit)
{
    // Record counts at and around the chunk boundary.
    for (std::uint64_t count : {1u, 6u, 7u, 8u, 14u}) {
        const MissTrace t = makeTrace(count, count);
        const auto path = tmpPath("fit.tst");
        TraceWriteOptions opts;
        opts.chunkRecords = 7;
        ASSERT_TRUE(saveTrace(t, path, opts));
        const auto back = loadTrace(path);
        ASSERT_TRUE(back) << back.error();
        expectSameRecords(t, *back);
        std::remove(path.c_str());
    }
}

TEST(TraceIo, FunctionTableRoundTrip)
{
    FunctionRegistry reg;
    const FnId copy = reg.intern("default_copyout",
                                 Category::BulkMemoryCopies);
    const FnId disp = reg.intern("disp_getbest",
                                 Category::KernelScheduler);

    MissTrace t = makeTrace(50);
    for (auto &m : t.misses)
        m.fn = m.seq % 2 ? copy : disp;
    const auto path = tmpPath("fns.tst");
    TraceWriteOptions opts;
    opts.registry = &reg;
    opts.kind = TraceContentKind::OffChip;
    opts.configHash = 0xDEADBEEFCAFEF00Dull;
    ASSERT_TRUE(saveTrace(t, path, opts));

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    EXPECT_EQ(reader->meta().kind, TraceContentKind::OffChip);
    EXPECT_EQ(reader->meta().configHash, 0xDEADBEEFCAFEF00Dull);
    ASSERT_TRUE(reader->hasFunctions());
    ASSERT_EQ(reader->meta().functions.size(), 3u); // incl. <unknown>

    auto back = reader->functions();
    ASSERT_TRUE(back) << back.error();
    EXPECT_EQ(back->size(), reg.size());
    EXPECT_EQ(back->name(copy), "default_copyout");
    EXPECT_EQ(back->category(copy), Category::BulkMemoryCopies);
    EXPECT_EQ(back->name(disp), "disp_getbest");
    EXPECT_EQ(back->category(disp), Category::KernelScheduler);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    const auto r = loadTrace("/nonexistent-dir/missing.tst");
    EXPECT_FALSE(r);
    EXPECT_NE(r.error().find("cannot open"), std::string::npos);
}

TEST(TraceIo, BadMagicRejected)
{
    const auto path = tmpPath("magic.tst");
    ASSERT_TRUE(saveTrace(makeTrace(10), path));
    corruptByte(path, 0, 'X');
    const auto r = loadTrace(path);
    EXPECT_FALSE(r);
    EXPECT_NE(r.error().find("bad magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, UnsupportedVersionRejected)
{
    const auto path = tmpPath("version.tst");
    ASSERT_TRUE(saveTrace(makeTrace(10), path));
    corruptByte(path, 4, 99);
    const auto r = loadTrace(path);
    EXPECT_FALSE(r);
    EXPECT_NE(r.error().find("unsupported version"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, UnknownCodecRejected)
{
    const auto path = tmpPath("codec.tst");
    ASSERT_TRUE(saveTrace(makeTrace(10), path));
    corruptByte(path, 20, 42); // codec id field of the v2 header
    const auto r = loadTrace(path);
    EXPECT_FALSE(r);
    EXPECT_NE(r.error().find("unknown codec"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFilesRejected)
{
    const auto path = tmpPath("full.tst");
    ASSERT_TRUE(saveTrace(makeTrace(1'000), path));
    const long full = sizeOf(path);

    const auto cut = tmpPath("cut.tst");
    // Mid-magic, mid-header, mid-payload, and just shy of the full
    // index: every prefix must fail cleanly, never abort.
    for (long bytes : {2L, 20L, full / 2, full - 4}) {
        truncateTo(path, cut, bytes);
        const auto r = loadTrace(cut);
        EXPECT_FALSE(r) << "prefix of " << bytes << " bytes";
        EXPECT_FALSE(r.error().empty());
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(TraceIo, TruncatedV1Rejected)
{
    const auto path = tmpPath("v1full.tst");
    TraceWriteOptions opts;
    opts.version = 1;
    ASSERT_TRUE(saveTrace(makeTrace(100), path, opts));
    const long full = sizeOf(path);

    const auto cut = tmpPath("v1cut.tst");
    for (long bytes : {10L, 27L, full - 7}) {
        truncateTo(path, cut, bytes);
        const auto r = loadTrace(cut);
        EXPECT_FALSE(r) << "prefix of " << bytes << " bytes";
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(TraceIo, CorruptCompressedChunkRejected)
{
    MissTrace t;
    t.numCpus = 1;
    t.instructions = 1000;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        MissRecord m;
        m.seq = i;
        m.block = i % 8;
        t.misses.push_back(m);
    }
    const auto path = tmpPath("corrupt.tst");
    ASSERT_TRUE(saveTrace(t, path));

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    ASSERT_FALSE(reader->meta().chunks.empty());
    const auto &chunk = reader->meta().chunks[0];
    ASSERT_GT(chunk.storedBytes, 64u);
    // Flip bytes inside the compressed payload; decode must fail or
    // at minimum not crash (a flipped literal can decode to different
    // records, but the common case trips the codec's bounds checks).
    corruptByte(path, static_cast<long>(chunk.offset) + 8 + 3, 0xFF);
    corruptByte(path, static_cast<long>(chunk.offset) + 8 + 4, 0xFF);
    corruptByte(path, static_cast<long>(chunk.offset) + 8 + 5, 0xFF);
    auto damaged = TraceReader::open(path);
    ASSERT_TRUE(damaged) << damaged.error();
    auto records = damaged->readChunk(0);
    if (!records) {
        EXPECT_FALSE(records.error().empty());
    }
    std::remove(path.c_str());
}

TEST(TraceIo, SaveToInvalidPathFails)
{
    MissTrace t;
    EXPECT_FALSE(saveTrace(t, "/nonexistent-dir/x/y/z.tst"));
}

TEST(TraceIo, UnknownWriteVersionFails)
{
    MissTrace t;
    TraceWriteOptions opts;
    opts.version = 3;
    EXPECT_FALSE(saveTrace(t, tmpPath("v3.tst"), opts));
}

} // namespace
} // namespace tstream
