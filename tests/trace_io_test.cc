/**
 * @file
 * Round-trip tests for binary trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_io.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    MissTrace t;
    t.numCpus = 4;
    t.instructions = 12345;
    const auto path = tmpPath("empty.tst");
    ASSERT_TRUE(saveTrace(t, path));
    const MissTrace back = loadTrace(path);
    EXPECT_EQ(back.numCpus, 4u);
    EXPECT_EQ(back.instructions, 12345u);
    EXPECT_TRUE(back.misses.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, RandomTraceRoundTrip)
{
    Rng rng(55);
    MissTrace t;
    t.numCpus = 16;
    t.instructions = 99'000'000;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        MissRecord m;
        m.seq = i * 3;
        m.block = rng.next() >> 8;
        m.cpu = static_cast<CpuId>(rng.below(16));
        m.cls = static_cast<std::uint8_t>(rng.below(4));
        m.fn = static_cast<FnId>(rng.below(500));
        t.misses.push_back(m);
    }

    const auto path = tmpPath("random.tst");
    ASSERT_TRUE(saveTrace(t, path));
    const MissTrace back = loadTrace(path);
    ASSERT_EQ(back.misses.size(), t.misses.size());
    EXPECT_EQ(back.numCpus, t.numCpus);
    EXPECT_EQ(back.instructions, t.instructions);
    for (std::size_t i = 0; i < t.misses.size(); ++i) {
        EXPECT_EQ(back.misses[i].seq, t.misses[i].seq);
        EXPECT_EQ(back.misses[i].block, t.misses[i].block);
        EXPECT_EQ(back.misses[i].cpu, t.misses[i].cpu);
        EXPECT_EQ(back.misses[i].cls, t.misses[i].cls);
        EXPECT_EQ(back.misses[i].fn, t.misses[i].fn);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, SaveToInvalidPathFails)
{
    MissTrace t;
    EXPECT_FALSE(saveTrace(t, "/nonexistent-dir/x/y/z.tst"));
}

} // namespace
} // namespace tstream
