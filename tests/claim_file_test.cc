/**
 * @file
 * Tests for the atomic claim-file protocol (util/claim_file.hh) — the
 * work-distribution primitive behind `tstream-bench run --fleet`.
 *
 * Two filesystem assumptions are load-bearing and get dedicated
 * coverage ON THE FILESYSTEM THE TESTS RUN ON (locally and in CI):
 *
 *  - `link(2)` refuses an existing target atomically, so of N racers
 *    creating one claim exactly one wins (LinkIsExclusive, the race
 *    tests);
 *  - `rename(2)` of a single source by N racers succeeds for exactly
 *    one (the others get ENOENT), so a stale claim is stolen
 *    exactly-once (RenameStealIsExclusive).
 *
 * The exact-cover stress (threads inside one process and forked
 * processes racing on one claim directory, fixed-seed shuffled key
 * orders, >= 1000 claim attempts) asserts the protocol's core
 * guarantee: every cell claimed exactly once, no double execution.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hh"
#include "util/claim_file.hh"

namespace tstream
{
namespace
{

std::string
freshDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "/tstream_claim_" + tag +
                      "_" + std::to_string(::getpid());
    std::string cmd = "rm -rf '" + dir + "'";
    std::system(cmd.c_str());
    return dir;
}

// ---- the filesystem assumptions --------------------------------------------

TEST(ClaimAtomicity, LinkIsExclusive)
{
    const std::string dir = freshDir("link");
    ::mkdir(dir.c_str(), 0755);
    const std::string src1 = dir + "/a", src2 = dir + "/b";
    const std::string target = dir + "/claim";
    for (const std::string &p : {src1, src2}) {
        std::FILE *f = std::fopen(p.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    ASSERT_EQ(::link(src1.c_str(), target.c_str()), 0);
    // The second link onto the same name must fail with EEXIST — this
    // is what makes a claim a claim. rename() would NOT fail here
    // (it silently replaces), which is why claims never use rename.
    errno = 0;
    EXPECT_NE(::link(src2.c_str(), target.c_str()), 0);
    EXPECT_EQ(errno, EEXIST);
}

TEST(ClaimAtomicity, RenameStealIsExclusive)
{
    // N threads race to rename ONE source to distinct tombs; the
    // steal path relies on exactly one winning.
    const std::string dir = freshDir("rename");
    ::mkdir(dir.c_str(), 0755);
    const std::string src = dir + "/stale.claim";
    std::FILE *f = std::fopen(src.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    constexpr int kRacers = 8;
    std::atomic<int> wins{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kRacers; ++i)
        threads.emplace_back([&, i] {
            const std::string tomb =
                dir + "/tomb." + std::to_string(i);
            while (!go.load())
                std::this_thread::yield();
            if (::rename(src.c_str(), tomb.c_str()) == 0)
                wins.fetch_add(1);
        });
    go.store(true);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(wins.load(), 1);
}

// ---- basic protocol ---------------------------------------------------------

TEST(ClaimDirTest, ClaimHeldDoneLifecycle)
{
    ClaimDir::Options a;
    a.dir = freshDir("lifecycle");
    a.owner = "worker-a";
    ClaimDir da(a);
    ClaimDir::Options b = a;
    b.owner = "worker-b";
    ClaimDir db(b);

    EXPECT_EQ(da.tryClaim("cell-0"), ClaimDir::Outcome::Claimed);
    EXPECT_EQ(db.tryClaim("cell-0"), ClaimDir::Outcome::Held);
    // Re-claiming one's own live claim is Held, not Claimed: the
    // caller must not run the cell twice.
    EXPECT_EQ(da.tryClaim("cell-0"), ClaimDir::Outcome::Held);

    EXPECT_TRUE(da.markDone("cell-0", "ok"));
    std::string status;
    EXPECT_TRUE(db.done("cell-0", &status));
    EXPECT_EQ(status, "ok");
    EXPECT_EQ(db.tryClaim("cell-0"), ClaimDir::Outcome::Done);
    EXPECT_EQ(da.tryClaim("cell-0"), ClaimDir::Outcome::Done);
}

TEST(ClaimDirTest, FailedStatusRoundTrips)
{
    ClaimDir::Options o;
    o.dir = freshDir("failed");
    o.owner = "worker-a";
    ClaimDir d(o);
    ASSERT_EQ(d.tryClaim("k"), ClaimDir::Outcome::Claimed);
    ASSERT_TRUE(d.markDone("k", "failed:timeout after 500ms"));
    std::string status;
    ASSERT_TRUE(d.done("k", &status));
    EXPECT_EQ(status, "failed:timeout after 500ms");
}

TEST(ClaimDirTest, ReleaseMakesClaimableAgain)
{
    ClaimDir::Options a;
    a.dir = freshDir("release");
    a.owner = "worker-a";
    ClaimDir da(a);
    ClaimDir::Options b = a;
    b.owner = "worker-b";
    ClaimDir db(b);

    ASSERT_EQ(da.tryClaim("k"), ClaimDir::Outcome::Claimed);
    EXPECT_FALSE(db.release("k")); // not the owner
    EXPECT_TRUE(da.release("k"));
    EXPECT_EQ(db.tryClaim("k"), ClaimDir::Outcome::Claimed);
}

TEST(ClaimDirTest, SanitizeKey)
{
    EXPECT_EQ(ClaimDir::sanitizeKey("oltp/single-chip"),
              "oltp-single-chip");
    EXPECT_EQ(ClaimDir::sanitizeKey("a b\tc"), "a-b-c");
    EXPECT_EQ(ClaimDir::sanitizeKey("ok_1.2-x"), "ok_1.2-x");
}

// ---- staleness / steal (fake clock, no sleeps) -----------------------------

TEST(ClaimDirTest, StaleClaimIsStolenAfterTtl)
{
    const std::string dir = freshDir("stale");
    std::int64_t now = 1'000'000;
    auto clock = [&now] { return now; };

    ClaimDir::Options a;
    a.dir = dir;
    a.owner = "dead-worker";
    a.ttlMs = 1000;
    a.now = clock;
    ClaimDir da(a);
    ClaimDir::Options b = a;
    b.owner = "live-worker";
    ClaimDir db(b);

    ASSERT_EQ(da.tryClaim("cell-3"), ClaimDir::Outcome::Claimed);
    // Within the TTL the claim is respected...
    now += 999;
    EXPECT_EQ(db.tryClaim("cell-3"), ClaimDir::Outcome::Held);
    // ...heartbeats extend it...
    ASSERT_TRUE(da.heartbeat("cell-3"));
    now += 999;
    EXPECT_EQ(db.tryClaim("cell-3"), ClaimDir::Outcome::Held);
    // ...and once the last beat ages past the TTL it is stolen.
    now += 2;
    EXPECT_EQ(db.tryClaim("cell-3"), ClaimDir::Outcome::Claimed);
    // The previous owner notices the loss on its next heartbeat.
    EXPECT_FALSE(da.heartbeat("cell-3"));
    EXPECT_TRUE(db.markDone("cell-3", "ok"));
}

TEST(ClaimDirTest, OnlyOneStealerWinsAStaleClaim)
{
    const std::string dir = freshDir("stealrace");
    std::int64_t now = 0;
    auto clock = [&now] { return now; };

    ClaimDir::Options dead;
    dead.dir = dir;
    dead.owner = "dead";
    dead.ttlMs = 10;
    dead.now = clock;
    ClaimDir dd(dead);
    ASSERT_EQ(dd.tryClaim("k"), ClaimDir::Outcome::Claimed);
    now = 1'000; // well past the TTL

    constexpr int kStealers = 8;
    std::vector<std::unique_ptr<ClaimDir>> stealers;
    for (int i = 0; i < kStealers; ++i) {
        ClaimDir::Options o;
        o.dir = dir;
        o.owner = "stealer-" + std::to_string(i);
        o.ttlMs = 10;
        o.now = clock;
        stealers.push_back(std::make_unique<ClaimDir>(o));
    }
    std::atomic<int> claimed{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kStealers; ++i)
        threads.emplace_back([&, i] {
            while (!go.load())
                std::this_thread::yield();
            if (stealers[i]->tryClaim("k") ==
                ClaimDir::Outcome::Claimed)
                claimed.fetch_add(1);
        });
    go.store(true);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(claimed.load(), 1);
}

// ---- exact-cover races ------------------------------------------------------

/** Claim every key of @p keys in a fixed-seed shuffled order, mark
 *  each win done, and return the number of wins + attempts made. */
std::pair<int, int>
drainKeys(ClaimDir &d, std::vector<std::string> keys, unsigned seed)
{
    std::mt19937 rng(seed);
    std::shuffle(keys.begin(), keys.end(), rng);
    int wins = 0, attempts = 0;
    for (const std::string &k : keys) {
        ++attempts;
        if (d.tryClaim(k) == ClaimDir::Outcome::Claimed) {
            ++wins;
            EXPECT_TRUE(d.markDone(k, "ok"));
        }
    }
    return {wins, attempts};
}

TEST(ClaimRaceTest, ThreadsCoverEveryKeyExactlyOnce)
{
    const std::string dir = freshDir("threads");
    constexpr int kThreads = 4;
    constexpr int kKeys = 300; // 4 threads x 300 keys = 1200 attempts
    std::vector<std::string> keys;
    for (int i = 0; i < kKeys; ++i)
        keys.push_back("cell-" + std::to_string(i));

    std::vector<std::unique_ptr<ClaimDir>> dirs;
    for (int t = 0; t < kThreads; ++t) {
        ClaimDir::Options o;
        o.dir = dir;
        o.owner = "thread-" + std::to_string(t);
        dirs.push_back(std::make_unique<ClaimDir>(o));
    }
    std::vector<int> wins(kThreads, 0);
    std::atomic<int> attempts{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            auto [w, a] = drainKeys(*dirs[t], keys, 1234 + t);
            wins[t] = w;
            attempts.fetch_add(a);
        });
    for (std::thread &t : threads)
        t.join();

    int total = 0;
    for (int w : wins)
        total += w;
    EXPECT_EQ(total, kKeys); // exact cover: no loss, no double-claim
    EXPECT_GE(attempts.load(), 1000);
    ClaimDir::Options o;
    o.dir = dir;
    o.owner = "checker";
    ClaimDir checker(o);
    for (const std::string &k : keys)
        EXPECT_TRUE(checker.done(k)) << k;
}

TEST(ClaimRaceTest, ProcessesCoverEveryKeyExactlyOnce)
{
    const std::string dir = freshDir("procs");
    constexpr int kProcs = 4;
    constexpr int kKeys = 300;
    std::vector<std::string> keys;
    for (int i = 0; i < kKeys; ++i)
        keys.push_back("cell-" + std::to_string(i));

    // Each forked child drains the key set in its own shuffled order
    // and exits with its win count; exact cover means the counts sum
    // to kKeys across the processes (the claim directory is the only
    // shared state).
    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ClaimDir::Options o;
            o.dir = dir;
            o.owner = "proc-" + std::to_string(::getpid());
            ClaimDir d(o);
            auto [w, a] = drainKeys(d, keys, 99 + p);
            (void)a;
            ::_exit(w > 255 ? 255 : w);
        }
        pids.push_back(pid);
    }
    int total = 0;
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        total += WEXITSTATUS(status);
    }
    EXPECT_EQ(total, kKeys);
    ClaimDir::Options o;
    o.dir = dir;
    o.owner = "checker";
    ClaimDir checker(o);
    for (const std::string &k : keys)
        EXPECT_TRUE(checker.done(k)) << k;
}

// ---- the resurrection hole, made visible -----------------------------------
// An owner that stalls past the TTL and then heartbeats collides with
// the thief. The protocol tolerates the double execution (merge
// accepts bit-identical duplicates); telemetry must make it count.

TEST(ClaimDirTest, ResurrectionRaceIsCountedNotSilent)
{
    telemetry::enable(""); // in-memory
    telemetry::reset();

    const std::string dir = freshDir("resurrect");
    std::int64_t now = 0;
    auto clock = [&now] { return now; };

    ClaimDir::Options a;
    a.dir = dir;
    a.owner = "stalled-owner";
    a.ttlMs = 1000;
    a.now = clock;
    ClaimDir da(a);
    ClaimDir::Options b = a;
    b.owner = "thief";
    ClaimDir db(b);

    ASSERT_EQ(da.tryClaim("cell-9"), ClaimDir::Outcome::Claimed);
    EXPECT_EQ(telemetry::counterValue("claim.wins"), 1u);

    // The owner stalls past the TTL; the thief steals the claim.
    now += 1001;
    ASSERT_EQ(db.tryClaim("cell-9"), ClaimDir::Outcome::Claimed);
    EXPECT_EQ(telemetry::counterValue("claim.steals"), 1u);

    // The stalled owner wakes and heartbeats: it must observe the
    // loss (return false) and count the resurrection race.
    EXPECT_FALSE(da.heartbeat("cell-9"));
    EXPECT_EQ(telemetry::counterValue("claim.resurrections"), 1u);

    // The thief's heartbeat still works — its ownership is intact.
    EXPECT_TRUE(db.heartbeat("cell-9"));
    EXPECT_GE(telemetry::counterValue("claim.heartbeats"), 1u);

    telemetry::disable();
}

TEST(ClaimDirTest, DoubleDoneIsCounted)
{
    telemetry::enable("");
    telemetry::reset();

    const std::string dir = freshDir("doubledone");
    std::int64_t now = 0;
    auto clock = [&now] { return now; };

    ClaimDir::Options a;
    a.dir = dir;
    a.owner = "stalled-owner";
    a.ttlMs = 1000;
    a.now = clock;
    ClaimDir da(a);
    ClaimDir::Options b = a;
    b.owner = "thief";
    ClaimDir db(b);

    ASSERT_EQ(da.tryClaim("cell-2"), ClaimDir::Outcome::Claimed);
    now += 1001;
    ASSERT_EQ(db.tryClaim("cell-2"), ClaimDir::Outcome::Claimed);

    // Both finish the cell: the thief first, then the resurrected
    // owner overwrites the marker — the downstream symptom of the
    // hole, counted as claim.double_done.
    ASSERT_TRUE(db.markDone("cell-2", "ok"));
    EXPECT_EQ(telemetry::counterValue("claim.double_done"), 0u);
    ASSERT_TRUE(da.markDone("cell-2", "ok"));
    EXPECT_EQ(telemetry::counterValue("claim.double_done"), 1u);

    telemetry::disable();
}

TEST(ClaimDirTest, DoneMarkerCarriesCompletionStamp)
{
    const std::string dir = freshDir("doneat");
    std::int64_t now = 123'456;
    auto clock = [&now] { return now; };

    ClaimDir::Options o;
    o.dir = dir;
    o.owner = "worker-a";
    o.now = clock;
    ClaimDir d(o);
    ASSERT_EQ(d.tryClaim("k"), ClaimDir::Outcome::Claimed);
    now = 130'000;
    ASSERT_TRUE(d.markDone("k", "ok"));

    DoneInfo info;
    ASSERT_TRUE(ClaimDir::readDone(
        dir + "/" + ClaimDir::sanitizeKey("k") + ".done", info));
    EXPECT_EQ(info.owner, "worker-a");
    EXPECT_EQ(info.status, "ok");
    EXPECT_EQ(info.atMs, 130'000); // `tstream-bench status` ETA input
}

} // namespace
} // namespace tstream
