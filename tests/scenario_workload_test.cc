/**
 * @file
 * Scenario-suite tests: the KV store, broker and phased-mix
 * workloads are deterministic down to the trace bytes, the phase
 * schedule switches op mixes exactly at the configured edges, and the
 * phased configHash covers the schedule.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "kernel/kernel.hh"
#include "mem/singlechip.hh"
#include "sim/experiment.hh"
#include "sim/phased_workload.hh"
#include "trace/trace_io.hh"

namespace tstream
{
namespace
{

/** Small budgets: enough work to exercise every subsystem, fast. */
ExperimentConfig
tinyConfig(WorkloadKind w, SystemContext c)
{
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.context = c;
    cfg.warmupInstructions = 300'000;
    cfg.measureInstructions = 800'000;
    cfg.scale = 0.1;
    return cfg;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempPath(const char *tag)
{
    // Keyed on the running test's name so parameterized instances can
    // execute concurrently (ctest -j) without racing on one file.
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string unique = info ? info->name() : "unnamed";
    for (char &c : unique)
        if (c == '/' || c == ' ' || c == '<' || c == '>')
            c = '_';
    return ::testing::TempDir() + "/tstream_scenario_" + unique + "_" +
           tag + ".tst";
}

// ---- fixed-seed determinism -------------------------------------------------

class ScenarioDeterminismTest
    : public ::testing::TestWithParam<WorkloadKind>
{
};

/** Two runs of one config: equal configHash, byte-identical traces. */
TEST_P(ScenarioDeterminismTest, IdenticalHashAndTraceBytes)
{
    const auto cfg =
        tinyConfig(GetParam(), SystemContext::MultiChip);
    ASSERT_EQ(configHash(cfg), configHash(cfg));

    const std::string pathA = tempPath("a"), pathB = tempPath("b");
    for (int run = 0; run < 2; ++run) {
        ExperimentResult res = runExperiment(cfg);
        ASSERT_GT(res.offChip.misses.size(), 1000u);
        TraceWriteOptions opts;
        opts.configHash = configHash(cfg);
        opts.registry = &res.registry;
        ASSERT_TRUE(saveTrace(res.offChip,
                              run == 0 ? pathA : pathB, opts));
    }
    const std::string a = fileBytes(pathA), b = fileBytes(pathB);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "trace bytes differ across identical runs";
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

TEST_P(ScenarioDeterminismTest, DifferentSeedsDiverge)
{
    auto cfg = tinyConfig(GetParam(), SystemContext::MultiChip);
    auto r1 = runExperiment(cfg);
    cfg.seed = 1234;
    auto r2 = runExperiment(cfg);
    EXPECT_NE(configHash(tinyConfig(GetParam(),
                                    SystemContext::MultiChip)),
              configHash(cfg));
    bool differ =
        r1.offChip.misses.size() != r2.offChip.misses.size();
    for (std::size_t i = 0;
         !differ && i < r1.offChip.misses.size(); ++i)
        differ = r1.offChip.misses[i].block !=
                 r2.offChip.misses[i].block;
    EXPECT_TRUE(differ);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioDeterminismTest,
                         ::testing::Values(WorkloadKind::KvStore,
                                           WorkloadKind::Broker,
                                           WorkloadKind::PhasedMix));

// ---- phase schedule edges ---------------------------------------------------

TEST(PhaseSchedule, SwitchesExactlyAtConfiguredEdges)
{
    PhaseSchedule s;
    s.phases = {
        {WorkloadKind::KvStore, 0.9, 1000},
        {WorkloadKind::Broker, 0.5, 500},
        {WorkloadKind::KvStore, 0.2, 250},
    };
    ASSERT_EQ(s.cycleLength(), 1750u);

    // Phase 0 covers [0, 1000): the instruction *at* the edge already
    // belongs to the next phase.
    EXPECT_EQ(s.ordinalAt(0), 0u);
    EXPECT_EQ(s.ordinalAt(999), 0u);
    EXPECT_EQ(s.ordinalAt(1000), 1u);
    EXPECT_EQ(s.ordinalAt(1499), 1u);
    EXPECT_EQ(s.ordinalAt(1500), 2u);
    EXPECT_EQ(s.ordinalAt(1749), 2u);

    // Cyclic wrap: ordinals keep increasing across cycles.
    EXPECT_EQ(s.ordinalAt(1750), 3u);
    EXPECT_EQ(s.ordinalAt(1750 + 999), 3u);
    EXPECT_EQ(s.ordinalAt(1750 + 1000), 4u);
    EXPECT_EQ(s.ordinalAt(2 * 1750), 6u);

    // at() maps an ordinal back to its phase definition.
    EXPECT_EQ(s.at(0).kind, WorkloadKind::KvStore);
    EXPECT_EQ(s.at(1).kind, WorkloadKind::Broker);
    EXPECT_EQ(s.at(4).kind, WorkloadKind::Broker);
    EXPECT_DOUBLE_EQ(s.at(5).mix, 0.2);
}

TEST(PhaseSchedule, StandardMixAlternatesKinds)
{
    const PhaseSchedule s = PhaseSchedule::standardMix();
    ASSERT_EQ(s.phases.size(), 4u);
    EXPECT_EQ(s.phases[0].kind, WorkloadKind::KvStore);
    EXPECT_EQ(s.phases[1].kind, WorkloadKind::Broker);
    EXPECT_EQ(s.phases[2].kind, WorkloadKind::KvStore);
    EXPECT_EQ(s.phases[3].kind, WorkloadKind::Broker);
    EXPECT_GT(s.cycleLength(), 0u);
}

/** The phased workload honours the schedule: both op kinds run, and
 *  every observed transition lands at-or-after its configured edge
 *  while the previous observation was still before it. */
TEST(PhaseSchedule, WorkloadSwitchesOpMixAtEdges)
{
    PhasedConfig cfg;
    cfg.rescale(0.1);
    cfg.seed = 42;
    cfg.schedule.phases = {
        {WorkloadKind::KvStore, 0.9, 400'000},
        {WorkloadKind::Broker, 0.6, 400'000},
    };

    Engine eng(std::make_unique<SingleChipSystem>(), cfg.seed);
    Kernel kern(eng);
    PhasedWorkload wl(cfg);
    wl.setup(kern);
    kern.run(2'000'000); // ~2.5 cycles

    EXPECT_GT(wl.kvOps(), 0u);
    EXPECT_GT(wl.mqOps(), 0u);

    const auto &log = wl.switchLog();
    ASSERT_GE(log.size(), 3u); // saw at least ordinals 0, 1, 2
    for (std::size_t i = 0; i < log.size(); ++i) {
        // The edge where this ordinal begins.
        const std::uint64_t cycle = cfg.schedule.cycleLength();
        const std::uint64_t start =
            (log[i].ordinal / cfg.schedule.phases.size()) * cycle +
            (log[i].ordinal % cfg.schedule.phases.size()) * 400'000;
        EXPECT_GE(log[i].instructions, start)
            << "switch observed before its phase edge";
        EXPECT_EQ(cfg.schedule.ordinalAt(log[i].instructions),
                  log[i].ordinal);
        if (i > 0) {
            EXPECT_EQ(log[i].ordinal, log[i - 1].ordinal + 1);
            EXPECT_LT(log[i - 1].instructions, start)
                << "previous phase observation at/after this edge";
        }
    }
}

// ---- configHash covers the schedule ----------------------------------------

TEST(PhasedConfigHash, CoversPhaseSchedule)
{
    auto base = tinyConfig(WorkloadKind::PhasedMix,
                           SystemContext::MultiChip);

    // Empty schedule hashes like an explicit copy of the default.
    auto explicitDefault = base;
    explicitDefault.phases = PhaseSchedule::standardMix();
    EXPECT_EQ(configHash(base), configHash(explicitDefault));

    // Any real change re-keys the cell.
    auto longer = explicitDefault;
    longer.phases.phases[0].duration += 1;
    EXPECT_NE(configHash(base), configHash(longer));

    auto mixed = explicitDefault;
    mixed.phases.phases[1].mix = 0.51;
    EXPECT_NE(configHash(base), configHash(mixed));

    auto swapped = explicitDefault;
    swapped.phases.phases[0].kind = WorkloadKind::Broker;
    EXPECT_NE(configHash(base), configHash(swapped));

    // Standalone scenario workloads hash their *resolved* schedule:
    // spelling out the built-in defaults is the same cell, changing
    // one distribution parameter is not.
    auto kv = tinyConfig(WorkloadKind::KvStore,
                         SystemContext::MultiChip);
    auto kvExplicit = kv;
    kvExplicit.phases =
        resolvedSchedule(WorkloadKind::KvStore, PhaseSchedule{});
    ASSERT_EQ(kvExplicit.phases.phases.size(), 1u);
    EXPECT_EQ(configHash(kv), configHash(kvExplicit));

    auto kvHot = kvExplicit;
    kvHot.phases.phases[0].dist.theta = 0.99;
    EXPECT_NE(configHash(kv), configHash(kvHot));

    auto kvDist = kvExplicit;
    kvDist.phases.phases[0].dist.kind = KeyDistKind::Hotspot;
    EXPECT_NE(configHash(kv), configHash(kvDist));
}

// ---- engine-level invariants ------------------------------------------------

TEST(ScenarioShape, KvStoreIsHighlyRepetitive)
{
    auto res = runExperiment(
        tinyConfig(WorkloadKind::KvStore, SystemContext::MultiChip));
    // Hash/LRU/slab reuse should put the KV store at web-like
    // in-stream fractions (top of the paper's 35-90% band).
    const double frac =
        analyzeStreams(res.offChip).inStreamFraction();
    EXPECT_GT(frac, 0.6);
}

TEST(ScenarioShape, BrokerReplayFormsStreams)
{
    auto res = runExperiment(
        tinyConfig(WorkloadKind::Broker, SystemContext::MultiChip));
    const double frac =
        analyzeStreams(res.offChip).inStreamFraction();
    EXPECT_GT(frac, 0.6);
}

TEST(ScenarioShape, ScenarioCategoriesAttributed)
{
    {
        auto res = runExperiment(tinyConfig(WorkloadKind::KvStore,
                                            SystemContext::MultiChip));
        auto streams = analyzeStreams(res.offChip);
        auto prof = profileModules(res.offChip, streams, res.registry);
        EXPECT_GT(prof.pctMisses(Category::KvHashIndex) +
                      prof.pctMisses(Category::KvSlabLru),
                  1.0);
        EXPECT_LT(prof.pctMisses(Category::Uncategorized), 5.0);
    }
    {
        auto res = runExperiment(tinyConfig(WorkloadKind::Broker,
                                            SystemContext::MultiChip));
        auto streams = analyzeStreams(res.offChip);
        auto prof = profileModules(res.offChip, streams, res.registry);
        EXPECT_GT(prof.pctMisses(Category::MqTopicLog) +
                      prof.pctMisses(Category::MqCursorIndex),
                  1.0);
        EXPECT_LT(prof.pctMisses(Category::Uncategorized), 5.0);
    }
}

TEST(ScenarioShape, NamesAndPredicates)
{
    EXPECT_EQ(workloadName(WorkloadKind::KvStore), "KVstore");
    EXPECT_EQ(workloadName(WorkloadKind::Broker), "Broker");
    EXPECT_EQ(workloadName(WorkloadKind::PhasedMix), "PhasedMix");
    EXPECT_TRUE(workloadIsScenario(WorkloadKind::KvStore));
    EXPECT_TRUE(workloadIsScenario(WorkloadKind::Broker));
    EXPECT_TRUE(workloadIsScenario(WorkloadKind::PhasedMix));
    EXPECT_FALSE(workloadIsScenario(WorkloadKind::Apache));
    EXPECT_FALSE(workloadIsDb(WorkloadKind::KvStore));
    EXPECT_TRUE(categoryIsScenario(Category::KvHashIndex));
    EXPECT_TRUE(categoryIsScenario(Category::MqTopicLog));
    EXPECT_FALSE(categoryIsScenario(Category::WebWorker));
}

} // namespace
} // namespace tstream
