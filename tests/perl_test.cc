/**
 * @file
 * Tests for the perl interpreter emulator (FastCGI dynamic content).
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernel/kernel.hh"
#include "mem/multichip.hh"
#include "web/perl.hh"

namespace tstream
{
namespace
{

class PerlTest : public ::testing::Test
{
  protected:
    PerlTest()
        : eng_(std::make_unique<MultiChipSystem>(), 3), kern_(eng_)
    {
        eng_.setTracing(true);
    }

    SysCtx
    ctx(unsigned cpu = 0)
    {
        return SysCtx(eng_, kern_, static_cast<CpuId>(cpu), nullptr);
    }

    std::uint64_t
    categoryMisses(Category cat) const
    {
        std::uint64_t n = 0;
        for (const auto &m : eng_.memory().offChipTrace().misses)
            if (eng_.registry().category(m.fn) == cat)
                ++n;
        return n;
    }

    Engine eng_;
    Kernel kern_;
};

TEST_F(PerlTest, BuffersLiveInOwnUserSegment)
{
    PerlProcess p1(kern_, 1);
    PerlProcess p2(kern_, 2);
    EXPECT_GE(p1.inputBuf(), seg::userHeap(1));
    EXPECT_LT(p1.inputBuf(), seg::userHeap(2));
    EXPECT_GE(p2.outputBuf(), seg::userHeap(2));
    EXPECT_NE(p1.inputBuf(), p2.inputBuf());
}

TEST_F(PerlTest, ParseEmitsPerlInputCategory)
{
    PerlProcess p(kern_, 1);
    auto c = ctx();
    p.parseInput(c, 512);
    EXPECT_GT(categoryMisses(Category::CgiPerlInput), 0u);
}

TEST_F(PerlTest, ExecuteEmitsEngineAndOtherCategories)
{
    PerlProcess p(kern_, 1);
    auto c = ctx();
    p.executeScript(c, 2048);
    EXPECT_GT(categoryMisses(Category::CgiPerlEngine) +
                  categoryMisses(Category::CgiPerlOther),
              50u);
}

TEST_F(PerlTest, RepeatedExecutionIsMostlyWarm)
{
    PerlProcess p(kern_, 1);
    auto c = ctx();
    p.executeScript(c, 2048);
    const auto cold = eng_.memory().offChipTrace().misses.size();
    p.executeScript(c, 2048);
    const auto warm =
        eng_.memory().offChipTrace().misses.size() - cold;
    // The second walk reuses the op-tree/pads: far fewer misses.
    EXPECT_LT(warm, cold / 2);
}

TEST_F(PerlTest, MigrationRefetchesTheOpTree)
{
    PerlProcess p(kern_, 1);
    auto c0 = ctx(0);
    p.executeScript(c0, 2048);
    const auto before = eng_.memory().offChipTrace().misses.size();
    auto c1 = ctx(5); // process migrated to another node
    p.executeScript(c1, 2048);
    const auto after = eng_.memory().offChipTrace().misses.size();
    EXPECT_GT(after - before, 50u);
}

TEST_F(PerlTest, ExecutionTriggersTlbActivity)
{
    PerlProcess p(kern_, 1);
    auto c = ctx();
    const auto before = kern_.vm().tlbMisses();
    p.executeScript(c, 2048);
    // Page-scattered op nodes: many pages touched.
    EXPECT_GT(kern_.vm().tlbMisses(), before + 20);
}

} // namespace
} // namespace tstream
