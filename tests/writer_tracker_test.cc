/**
 * @file
 * Unit tests for the 4C's+I/O classification rules (WriterTracker),
 * exercising every row of the paper's Section 4.1 taxonomy.
 */

#include <gtest/gtest.h>

#include "mem/writer_tracker.hh"

namespace tstream
{
namespace
{

TEST(WriterTracker, FirstEverReadIsCompulsory)
{
    WriterTracker t(4);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Compulsory);
}

TEST(WriterTracker, SecondReadSameReaderIsReplacement)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Replacement);
}

TEST(WriterTracker, FirstReadAtOtherReaderIsReplacementNotCoherence)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, 0);
    // Reader 2 never read the block: cold there, not an invalidation.
    EXPECT_EQ(t.classifyRead(1, 2), MissClass::Replacement);
}

TEST(WriterTracker, RemoteWriteSinceLastReadIsCoherence)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, 3);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Coherence);
}

TEST(WriterTracker, OwnWriteSinceLastReadIsReplacement)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, 0);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Replacement);
}

TEST(WriterTracker, DmaWriteSinceLastReadIsIoCoherence)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, kWriterDma);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::IoCoherence);
}

TEST(WriterTracker, CopyoutWriteSinceLastReadIsIoCoherence)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, kWriterCopyout);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::IoCoherence);
}

TEST(WriterTracker, WriteThenFirstReadIsCompulsoryForDma)
{
    // The paper's DSS profile: data arrives by DMA but its first read
    // is still Compulsory ("never previously accessed" by a CPU).
    WriterTracker t(4);
    t.recordWrite(1, kWriterDma);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Compulsory);
}

TEST(WriterTracker, LastWriterWins)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, kWriterDma);
    t.recordWrite(1, 2); // processor writes after DMA
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Coherence);
}

TEST(WriterTracker, ReadClearsPendingInvalidation)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.recordWrite(1, 3);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Coherence);
    // No further writes: the next read is a plain replacement.
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Replacement);
}

TEST(WriterTracker, ReadersAreIndependent)
{
    WriterTracker t(4);
    t.classifyRead(1, 0);
    t.classifyRead(1, 1);
    t.recordWrite(1, 0);
    EXPECT_EQ(t.classifyRead(1, 1), MissClass::Coherence);
    EXPECT_EQ(t.classifyRead(1, 0), MissClass::Replacement);
}

TEST(WriterTracker, BlocksAreIndependent)
{
    WriterTracker t(2);
    t.classifyRead(10, 0);
    t.recordWrite(11, 1);
    EXPECT_EQ(t.classifyRead(10, 0), MissClass::Replacement);
    EXPECT_EQ(t.classifyRead(11, 0), MissClass::Compulsory);
}

TEST(WriterTracker, CoherenceCausedPredicate)
{
    WriterTracker t(4);
    EXPECT_FALSE(t.coherenceCaused(5, 0)); // untouched
    t.classifyRead(5, 0);
    EXPECT_FALSE(t.coherenceCaused(5, 0)); // no writes
    t.recordWrite(5, 2);
    EXPECT_TRUE(t.coherenceCaused(5, 0));
    EXPECT_FALSE(t.coherenceCaused(5, 2)); // own write
    EXPECT_FALSE(t.coherenceCaused(5, 1)); // never read there
    // Predicate must not mutate state.
    EXPECT_TRUE(t.coherenceCaused(5, 0));
    EXPECT_EQ(t.classifyRead(5, 0), MissClass::Coherence);
}

TEST(WriterTracker, RecordTouchMakesReadNonCompulsory)
{
    WriterTracker t(2);
    t.recordTouch(7);
    EXPECT_EQ(t.classifyRead(7, 0), MissClass::Replacement);
}

TEST(WriterTracker, DistinctBlocksCount)
{
    WriterTracker t(2);
    t.classifyRead(1, 0);
    t.classifyRead(2, 0);
    t.recordWrite(3, 1);
    EXPECT_EQ(t.distinctBlocks(), 3u);
}

} // namespace
} // namespace tstream
