/**
 * @file
 * Workload config tests (gen/workload_config.hh): a table of
 * malformed configs each rejected with a distinct, line-numbered
 * diagnostic (the parser must never crash or half-apply a config),
 * golden round-trips through serialize(), the --phases record
 * grammar, and the cache-correctness contract — a config spelling out
 * the compiled-in defaults lands in the same configHash() cell and
 * reproduces the default run bit-for-bit, while a one-parameter change
 * re-keys the cell and measurably reshapes the stream-length
 * distribution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/stream_analysis.hh"
#include "gen/workload_config.hh"
#include "sim/experiment.hh"

namespace tstream
{
namespace
{

constexpr const char *kStandardKv = "workload kv\n"
                                    "phase kv mix=0.85 dist=zipfian "
                                    "theta=0.95\n";

// ---- rejection table --------------------------------------------------------

struct BadConfig
{
    const char *label;
    const char *text;
    const char *errSubstring;
};

const BadConfig kBadConfigs[] = {
    {"empty", "", "config has no 'workload' line"},
    {"comment only", "# nothing here\n\n",
     "config has no 'workload' line"},
    {"no phases", "workload kv\n", "config has no 'phase' lines"},
    {"phase before workload",
     "phase kv mix=0.5 dist=uniform\nworkload kv\n",
     "line 1: expected a 'workload' line before any phase"},
    {"unknown workload kind", "workload oltp\n",
     "line 1: unknown workload kind 'oltp' (want kv, broker or "
     "phased-mix)"},
    {"workload arity", "workload kv broker\n",
     "line 1: 'workload' wants exactly one argument"},
    {"duplicate workload",
     "workload kv\nworkload broker\n"
     "phase kv mix=0.5 dist=uniform\n",
     "line 2: duplicate 'workload' line"},
    {"unknown directive",
     "workload kv\nspeed fast\nphase kv mix=0.5 dist=uniform\n",
     "line 2: unknown directive 'speed' (want 'workload' or "
     "'phase')"},
    {"second phase on standalone",
     "workload kv\nphase kv mix=0.5 dist=uniform\n"
     "phase kv mix=0.9 dist=uniform\n",
     "line 3: a kv workload takes exactly one phase line"},
    {"bare phase", "workload kv\nphase\n",
     "line 2: phase wants a kind (kv or broker)"},
    {"phase kind phased-mix",
     "workload phased-mix\n"
     "phase phased-mix mix=0.5 dist=uniform duration=1000\n",
     "line 2: unknown phase kind 'phased-mix' (want kv or broker)"},
    {"param without value",
     "workload kv\nphase kv mix dist=uniform\n",
     "line 2: malformed parameter 'mix' (want key=value)"},
    {"param empty value",
     "workload kv\nphase kv mix= dist=uniform\n",
     "line 2: malformed parameter 'mix=' (want key=value)"},
    {"mix not a number",
     "workload kv\nphase kv mix=fast dist=uniform\n",
     "line 2: bad number 'fast' for 'mix'"},
    {"mix out of range",
     "workload kv\nphase kv mix=1.5 dist=uniform\n",
     "line 2: mix must be within [0, 1]"},
    {"mix trailing garbage",
     "workload kv\nphase kv mix=0.5x dist=uniform\n",
     "line 2: bad number '0.5x' for 'mix'"},
    {"duplicate param",
     "workload kv\nphase kv mix=0.5 mix=0.6 dist=uniform\n",
     "line 2: duplicate parameter 'mix'"},
    {"unknown distribution",
     "workload kv\nphase kv mix=0.5 dist=pareto\n",
     "line 2: unknown distribution 'pareto' (want uniform, zipfian, "
     "hotspot or latest)"},
    {"unknown param",
     "workload kv\nphase kv mix=0.5 dist=zipfian skew=0.9\n",
     "line 2: unknown phase parameter 'skew'"},
    {"theta out of range",
     "workload kv\nphase kv mix=0.5 dist=zipfian theta=2.5\n",
     "line 2: theta must be within (0, 2)"},
    {"theta zero",
     "workload kv\nphase kv mix=0.5 dist=zipfian theta=0\n",
     "line 2: theta must be within (0, 2)"},
    {"frac out of range",
     "workload kv\nphase kv mix=0.5 dist=hotspot frac=1 prob=0.9\n",
     "line 2: frac must be within (0, 1)"},
    {"prob out of range",
     "workload kv\nphase kv mix=0.5 dist=hotspot frac=0.2 prob=0\n",
     "line 2: prob must be within (0, 1)"},
    {"missing mix", "workload kv\nphase kv dist=uniform\n",
     "line 2: phase is missing required parameter 'mix'"},
    {"missing dist", "workload kv\nphase kv mix=0.5\n",
     "line 2: phase is missing required parameter 'dist'"},
    {"theta on hotspot",
     "workload kv\n"
     "phase kv mix=0.5 dist=hotspot frac=0.2 prob=0.9 theta=0.9\n",
     "line 2: 'theta' applies only to zipfian/latest distributions"},
    {"frac on zipfian",
     "workload kv\nphase kv mix=0.5 dist=zipfian frac=0.2\n",
     "line 2: 'frac'/'prob' apply only to the hotspot distribution"},
    {"missing duration on phased-mix",
     "workload phased-mix\nphase kv mix=0.5 dist=uniform\n",
     "line 2: phased-mix phases want an explicit duration"},
    {"duration on standalone",
     "workload kv\nphase kv mix=0.5 dist=uniform duration=1000\n",
     "line 2: 'duration' applies only to phased-mix phases"},
    {"zero duration",
     "workload phased-mix\n"
     "phase kv mix=0.5 dist=uniform duration=0\n",
     "line 2: duration wants a positive instruction count, got '0'"},
    {"negative duration",
     "workload phased-mix\n"
     "phase kv mix=0.5 dist=uniform duration=-5\n",
     "line 2: duration wants a positive instruction count, got "
     "'-5'"},
    {"duration not a count",
     "workload phased-mix\n"
     "phase kv mix=0.5 dist=uniform duration=1e6\n",
     "line 2: duration wants a positive instruction count, got "
     "'1e6'"},
    {"phase kind mismatch",
     "workload kv\nphase broker mix=0.5 dist=uniform\n",
     "line 2: phase kind 'broker' does not match 'workload kv'"},
};

TEST(WorkloadConfigRejects, EveryBadConfigWithDistinctError)
{
    for (const BadConfig &bad : kBadConfigs) {
        WorkloadConfig cfg;
        std::string err;
        EXPECT_FALSE(cfg.loadFromString(bad.text, err)) << bad.label;
        EXPECT_NE(err.find(bad.errSubstring), std::string::npos)
            << bad.label << ": error was \"" << err << "\"";
        // A failed load leaves the config untouched (still the
        // default-constructed empty schedule).
        EXPECT_TRUE(cfg.schedule.empty()) << bad.label;
    }
}

TEST(WorkloadConfigRejects, ErrorMessagesAreDistinct)
{
    // Every rejection names its own cause: no two table entries may
    // share a diagnostic (line prefix aside, which several intended
    // duplicates rely on — compare full strings).
    for (std::size_t i = 0; i < std::size(kBadConfigs); ++i)
        for (std::size_t j = i + 1; j < std::size(kBadConfigs); ++j) {
            if (std::string(kBadConfigs[i].errSubstring) ==
                kBadConfigs[j].errSubstring)
                continue; // intentionally shared (e.g. theta range)
            WorkloadConfig a, b;
            std::string ea, eb;
            a.loadFromString(kBadConfigs[i].text, ea);
            b.loadFromString(kBadConfigs[j].text, eb);
            EXPECT_NE(ea, eb)
                << kBadConfigs[i].label << " vs "
                << kBadConfigs[j].label;
        }
}

// ---- accepted configs & round-trips ----------------------------------------

TEST(WorkloadConfigParses, StandaloneKvWithDefaults)
{
    WorkloadConfig cfg;
    std::string err;
    ASSERT_TRUE(cfg.loadFromString(kStandardKv, err)) << err;
    EXPECT_EQ(cfg.kind, WorkloadKind::KvStore);
    ASSERT_EQ(cfg.schedule.phases.size(), 1u);
    const WorkloadPhase &p = cfg.schedule.phases[0];
    EXPECT_EQ(p.kind, WorkloadKind::KvStore);
    EXPECT_DOUBLE_EQ(p.mix, 0.85);
    EXPECT_EQ(p.duration, 0u);
    EXPECT_EQ(p.dist.kind, KeyDistKind::Zipfian);
    EXPECT_DOUBLE_EQ(p.dist.theta, 0.95);
}

TEST(WorkloadConfigParses, CommentsAliasesAndWhitespace)
{
    const char *text = "# scenario: write-heavy broker\n"
                       "\n"
                       "workload mq   # 'mq' aliases 'broker'\n"
                       "  phase   broker   mix=0.25 "
                       "dist=hotspot frac=0.1 prob=0.8  # skewed\n";
    WorkloadConfig cfg;
    std::string err;
    ASSERT_TRUE(cfg.loadFromString(text, err)) << err;
    EXPECT_EQ(cfg.kind, WorkloadKind::Broker);
    ASSERT_EQ(cfg.schedule.phases.size(), 1u);
    EXPECT_EQ(cfg.schedule.phases[0].dist.kind, KeyDistKind::Hotspot);
    EXPECT_DOUBLE_EQ(cfg.schedule.phases[0].dist.hotFrac, 0.1);
    EXPECT_DOUBLE_EQ(cfg.schedule.phases[0].dist.hotProb, 0.8);
}

TEST(WorkloadConfigParses, GoldenRoundTripAllDistributions)
{
    const char *text =
        "workload phased-mix\n"
        "phase kv mix=0.9 dist=zipfian theta=0.99 duration=1000000\n"
        "phase broker mix=0.75 dist=latest theta=0.7 "
        "duration=500000\n"
        "phase kv mix=0.5 dist=hotspot frac=0.25 prob=0.95 "
        "duration=250000\n"
        "phase broker mix=0.3 dist=uniform duration=125000\n";
    WorkloadConfig cfg;
    std::string err;
    ASSERT_TRUE(cfg.loadFromString(text, err)) << err;
    ASSERT_EQ(cfg.schedule.phases.size(), 4u);

    // load → serialize → reparse must be a fixed point.
    const std::string text2 = cfg.serialize();
    WorkloadConfig cfg2;
    ASSERT_TRUE(cfg2.loadFromString(text2, err)) << err;
    EXPECT_EQ(cfg, cfg2);
    EXPECT_EQ(cfg2.serialize(), text2);
}

TEST(WorkloadConfigParses, SerializePreservesExactDoubles)
{
    // An awkward theta must survive serialize() → strtod exactly, so
    // a round-tripped config hashes into the same cache cell.
    const char *text = "workload kv\n"
                       "phase kv mix=0.333333333333333315 "
                       "dist=zipfian theta=1.0000000000000002\n";
    WorkloadConfig cfg;
    std::string err;
    ASSERT_TRUE(cfg.loadFromString(text, err)) << err;
    WorkloadConfig cfg2;
    ASSERT_TRUE(cfg2.loadFromString(cfg.serialize(), err)) << err;
    EXPECT_EQ(cfg.schedule.phases[0].mix,
              cfg2.schedule.phases[0].mix);
    EXPECT_EQ(cfg.schedule.phases[0].dist.theta,
              cfg2.schedule.phases[0].dist.theta);
}

TEST(WorkloadConfigFile, LoadFromFileAndMissingFile)
{
    const std::string path =
        ::testing::TempDir() + "/tstream_wcfg_test.conf";
    {
        std::ofstream out(path);
        out << kStandardKv;
    }
    WorkloadConfig cfg;
    std::string err;
    ASSERT_TRUE(cfg.loadFromFile(path, err)) << err;
    EXPECT_EQ(cfg.kind, WorkloadKind::KvStore);
    std::remove(path.c_str());

    // Errors carry the path: both open failures and parse failures.
    WorkloadConfig missing;
    EXPECT_FALSE(missing.loadFromFile(path, err));
    EXPECT_NE(err.find(path), std::string::npos);
    EXPECT_NE(err.find("cannot open workload config"),
              std::string::npos);

    {
        std::ofstream out(path);
        out << "workload kv\n";
    }
    WorkloadConfig broken;
    EXPECT_FALSE(broken.loadFromFile(path, err));
    EXPECT_NE(err.find(path), std::string::npos);
    EXPECT_NE(err.find("no 'phase' lines"), std::string::npos);
    std::remove(path.c_str());
}

// ---- --phases records -------------------------------------------------------

TEST(PhasesSpec, ParsesSemicolonSeparatedRecords)
{
    PhaseSchedule sched;
    std::string err;
    ASSERT_TRUE(parsePhasesSpec(
        "kv mix=0.9 dist=zipfian theta=0.99 duration=1000; "
        "broker mix=0.5 dist=uniform duration=500",
        sched, err))
        << err;
    ASSERT_EQ(sched.phases.size(), 2u);
    EXPECT_EQ(sched.phases[0].kind, WorkloadKind::KvStore);
    EXPECT_EQ(sched.phases[0].duration, 1000u);
    EXPECT_EQ(sched.phases[1].kind, WorkloadKind::Broker);
    EXPECT_EQ(sched.phases[1].dist.kind, KeyDistKind::Uniform);
}

TEST(PhasesSpec, ErrorsNameTheRecord)
{
    PhaseSchedule sched;
    std::string err;
    EXPECT_FALSE(parsePhasesSpec(
        "kv mix=0.9 dist=uniform duration=1000; "
        "broker mix=0.5 dist=uniform",
        sched, err));
    EXPECT_NE(err.find("phase record 2"), std::string::npos);
    EXPECT_NE(err.find("explicit duration"), std::string::npos);

    EXPECT_FALSE(parsePhasesSpec(
        "kv mix=0.9 dist=uniform duration=1000;", sched, err));
    EXPECT_NE(err.find("phase record 2 is empty"), std::string::npos);

    EXPECT_FALSE(parsePhasesSpec("", sched, err));
    EXPECT_NE(err.find("phase record 1 is empty"), std::string::npos);

    // A failed parse leaves the output schedule untouched.
    EXPECT_TRUE(sched.empty());
}

// ---- cache correctness ------------------------------------------------------

ExperimentConfig
tinyConfig(WorkloadKind w)
{
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.context = SystemContext::MultiChip;
    cfg.warmupInstructions = 300'000;
    cfg.measureInstructions = 800'000;
    cfg.scale = 0.1;
    return cfg;
}

TEST(ConfigCache, DefaultSpellingSharesTheCellOneParamDoesNot)
{
    // A config file that spells out the compiled-in KV defaults must
    // land in the same trace-cache cell as the flagless binary...
    WorkloadConfig file;
    std::string err;
    ASSERT_TRUE(file.loadFromString(kStandardKv, err)) << err;

    auto base = tinyConfig(WorkloadKind::KvStore);
    auto fromFile = base;
    fromFile.phases = file.schedule;
    EXPECT_EQ(configHash(base), configHash(fromFile));

    // ...while any one-parameter difference re-keys it.
    for (const char *variant : {
             "workload kv\n"
             "phase kv mix=0.85 dist=zipfian theta=0.99\n",
             "workload kv\nphase kv mix=0.86 dist=zipfian "
             "theta=0.95\n",
             "workload kv\nphase kv mix=0.85 dist=uniform\n",
             "workload kv\nphase kv mix=0.85 dist=hotspot frac=0.2 "
             "prob=0.9\n",
         }) {
        WorkloadConfig v;
        ASSERT_TRUE(v.loadFromString(variant, err)) << err;
        auto changed = base;
        changed.phases = v.schedule;
        EXPECT_NE(configHash(base), configHash(changed)) << variant;
    }

    // Hotspot parameters are covered too, not just the kind.
    WorkloadConfig hot1, hot2;
    ASSERT_TRUE(hot1.loadFromString("workload kv\nphase kv mix=0.85 "
                                    "dist=hotspot frac=0.2 prob=0.9\n",
                                    err));
    ASSERT_TRUE(hot2.loadFromString("workload kv\nphase kv mix=0.85 "
                                    "dist=hotspot frac=0.3 prob=0.9\n",
                                    err));
    auto h1 = base, h2 = base;
    h1.phases = hot1.schedule;
    h2.phases = hot2.schedule;
    EXPECT_NE(configHash(h1), configHash(h2));
}

TEST(ConfigCache, DefaultSpellingReproducesTraceBitForBit)
{
    // The hash-equality above is honest only if the traces really are
    // identical: run both and compare every miss record.
    const auto base = tinyConfig(WorkloadKind::KvStore);
    WorkloadConfig file;
    std::string err;
    ASSERT_TRUE(file.loadFromString(kStandardKv, err)) << err;
    auto fromFile = base;
    fromFile.phases = file.schedule;

    const auto a = runExperiment(base);
    const auto b = runExperiment(fromFile);
    ASSERT_GT(a.offChip.misses.size(), 1000u);
    ASSERT_EQ(a.offChip.misses.size(), b.offChip.misses.size());
    for (std::size_t i = 0; i < a.offChip.misses.size(); ++i) {
        ASSERT_EQ(a.offChip.misses[i].block, b.offChip.misses[i].block)
            << "miss " << i;
        ASSERT_EQ(a.offChip.misses[i].cpu, b.offChip.misses[i].cpu);
    }
}

TEST(ConfigCache, ThetaSweepReshapesStreamLengths)
{
    // The fig4 acceptance check: sweeping zipfian theta through a
    // config file must measurably move the stream-length
    // distribution, not just re-key the cache.
    const auto base = tinyConfig(WorkloadKind::KvStore);
    WorkloadConfig file;
    std::string err;
    ASSERT_TRUE(file.loadFromString("workload kv\n"
                                    "phase kv mix=0.85 dist=zipfian "
                                    "theta=0.5\n",
                                    err))
        << err;
    auto swept = base;
    swept.phases = file.schedule;

    const auto a = runExperiment(base);
    const auto b = runExperiment(swept);
    const auto sa = analyzeStreams(a.offChip);
    const auto sb = analyzeStreams(b.offChip);
    EXPECT_NE(sa.lengthWeighted, sb.lengthWeighted)
        << "theta sweep left the stream-length distribution "
           "untouched";
    // The traces themselves diverge (different key popularity ⇒
    // different hash-chain / slab walks).
    bool differ = a.offChip.misses.size() != b.offChip.misses.size();
    for (std::size_t i = 0;
         !differ && i < a.offChip.misses.size(); ++i)
        differ =
            a.offChip.misses[i].block != b.offChip.misses[i].block;
    EXPECT_TRUE(differ);
}

TEST(ConfigCache, ResolvedScheduleMatchesConfigDefaults)
{
    // resolvedSchedule() and the example configs must agree on what
    // "the defaults" are — this is the contract that makes the
    // default-spelling test above meaningful for broker too.
    const PhaseSchedule kv =
        resolvedSchedule(WorkloadKind::KvStore, PhaseSchedule{});
    ASSERT_EQ(kv.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(kv.phases[0].mix, 0.85);
    EXPECT_EQ(kv.phases[0].dist.kind, KeyDistKind::Zipfian);
    EXPECT_DOUBLE_EQ(kv.phases[0].dist.theta, 0.95);
    EXPECT_EQ(kv.phases[0].duration, 0u);

    const PhaseSchedule mq =
        resolvedSchedule(WorkloadKind::Broker, PhaseSchedule{});
    ASSERT_EQ(mq.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(mq.phases[0].dist.theta, 0.80);
    EXPECT_NEAR(mq.phases[0].mix, 2.0 / 3.0, 1e-12);

    // PhasedMix: empty resolves to the standard mix; explicit
    // schedules pass through untouched.
    EXPECT_EQ(resolvedSchedule(WorkloadKind::PhasedMix,
                               PhaseSchedule{})
                  .phases,
              PhaseSchedule::standardMix().phases);
    WorkloadConfig custom;
    std::string err;
    ASSERT_TRUE(custom.loadFromString(
        "workload phased-mix\n"
        "phase kv mix=0.5 dist=uniform duration=1000\n",
        err));
    EXPECT_EQ(resolvedSchedule(WorkloadKind::PhasedMix,
                               custom.schedule)
                  .phases,
              custom.schedule.phases);

    // Paper workloads never carry a schedule.
    EXPECT_TRUE(resolvedSchedule(WorkloadKind::Oltp,
                                 PhaseSchedule::standardMix())
                    .empty());
}

} // namespace
} // namespace tstream
