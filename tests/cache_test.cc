/**
 * @file
 * Unit tests for the set-associative cache model: geometry, LRU
 * replacement, state transitions, invalidation.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace tstream
{
namespace
{

TEST(Cache, GeometryFromConfig)
{
    CacheConfig cfg{64 * 1024, 2};
    EXPECT_EQ(cfg.numSets(), 64u * 1024 / (64 * 2));
    Cache c(cfg);
    EXPECT_EQ(c.residentCount(), 0u);
}

TEST(Cache, PaperConfigs)
{
    EXPECT_EQ(cachecfg::kL1.numSets(), 512u);
    EXPECT_EQ(cachecfg::kL2.numSets(), 8192u);
    EXPECT_EQ(cachecfg::kL2.ways, 16u);
}

TEST(Cache, MissThenHit)
{
    Cache c(CacheConfig{8 * 1024, 2});
    EXPECT_FALSE(c.lookup(100));
    c.insert(100, CohState::Shared);
    auto st = c.lookup(100);
    ASSERT_TRUE(st);
    EXPECT_EQ(*st, CohState::Shared);
}

TEST(Cache, InsertReturnsNoVictimWhenSetHasRoom)
{
    Cache c(CacheConfig{8 * 1024, 2});
    EXPECT_FALSE(c.insert(1, CohState::Shared).has_value());
    // Same set: sets = 64, so block 1 + 64 map together.
    EXPECT_FALSE(c.insert(1 + 64, CohState::Shared).has_value());
    EXPECT_EQ(c.residentCount(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way: fill a set, touch the first way, insert a third block;
    // the untouched way must be the victim.
    Cache c(CacheConfig{8 * 1024, 2});
    const std::uint64_t sets = CacheConfig{8 * 1024, 2}.numSets();
    const BlockId a = 7, b = 7 + sets, d = 7 + 2 * sets;
    c.insert(a, CohState::Shared);
    c.insert(b, CohState::Shared);
    c.lookup(a); // a is now MRU
    auto victim = c.insert(d, CohState::Shared);
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->block, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_TRUE(c.probe(d));
    EXPECT_FALSE(c.probe(b));
}

TEST(Cache, ReinsertUpdatesStateWithoutEviction)
{
    Cache c(CacheConfig{8 * 1024, 2});
    c.insert(5, CohState::Shared);
    auto victim = c.insert(5, CohState::Modified);
    EXPECT_FALSE(victim);
    EXPECT_EQ(*c.probe(5), CohState::Modified);
    EXPECT_EQ(c.residentCount(), 1u);
}

TEST(Cache, VictimCarriesItsState)
{
    Cache c(CacheConfig{8 * 1024, 1}); // direct-mapped
    const std::uint64_t sets = CacheConfig{8 * 1024, 1}.numSets();
    c.insert(3, CohState::Modified);
    auto victim = c.insert(3 + sets, CohState::Shared);
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->block, 3u);
    EXPECT_EQ(victim->state, CohState::Modified);
}

TEST(Cache, InvalidateReturnsPriorState)
{
    Cache c(CacheConfig{8 * 1024, 2});
    c.insert(9, CohState::Owned);
    auto prior = c.invalidate(9);
    ASSERT_TRUE(prior);
    EXPECT_EQ(*prior, CohState::Owned);
    EXPECT_FALSE(c.probe(9));
    EXPECT_FALSE(c.invalidate(9));
}

TEST(Cache, SetStateOnResidentOnly)
{
    Cache c(CacheConfig{8 * 1024, 2});
    EXPECT_FALSE(c.setState(11, CohState::Modified));
    c.insert(11, CohState::Shared);
    EXPECT_TRUE(c.setState(11, CohState::Modified));
    EXPECT_EQ(*c.probe(11), CohState::Modified);
}

TEST(Cache, ProbeDoesNotPerturbLru)
{
    Cache c(CacheConfig{8 * 1024, 2});
    const std::uint64_t sets = CacheConfig{8 * 1024, 2}.numSets();
    const BlockId a = 2, b = 2 + sets, d = 2 + 2 * sets;
    c.insert(a, CohState::Shared);
    c.insert(b, CohState::Shared);
    // probe(a) must NOT refresh it; a stays LRU and gets evicted.
    c.probe(a);
    auto victim = c.insert(d, CohState::Shared);
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->block, a);
}

TEST(Cache, InvalidWaysArePreferredOverEviction)
{
    Cache c(CacheConfig{8 * 1024, 2});
    const std::uint64_t sets = CacheConfig{8 * 1024, 2}.numSets();
    c.insert(1, CohState::Shared);
    c.insert(1 + sets, CohState::Shared);
    c.invalidate(1);
    // Room exists again: no victim.
    EXPECT_FALSE(c.insert(1 + 2 * sets, CohState::Shared).has_value());
    EXPECT_EQ(c.residentCount(), 2u);
}

/** Property sweep: distinct blocks never exceed capacity. */
class CacheCapacityTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{
};

TEST_P(CacheCapacityTest, ResidentCountBounded)
{
    const auto [size, ways] = GetParam();
    Cache c(CacheConfig{size, ways});
    const std::uint64_t capacity = size / kBlockSize;
    for (BlockId b = 0; b < 4 * capacity; ++b)
        c.insert(b * 977, CohState::Shared);
    EXPECT_LE(c.residentCount(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacityTest,
    ::testing::Values(std::pair{4096ull, 1u}, std::pair{8192ull, 2u},
                      std::pair{65536ull, 2u}, std::pair{65536ull, 4u},
                      std::pair{1048576ull, 8u},
                      std::pair{8388608ull, 16u}));

} // namespace
} // namespace tstream
