/**
 * @file
 * Tests for the versioned bench reports (sim/bench_report.hh): JSON
 * round-trips, shard merging with the exact-cover guarantee, and the
 * content-equivalence check behind `tstream-bench check-equal`.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/bench_report.hh"

namespace tstream
{
namespace
{

BenchRow
makeRow(const std::string &table, const std::string &trace,
        double value)
{
    BenchRow r;
    r.table = table;
    r.trace = trace;
    r.text = table + " " + trace + " row";
    r.metrics = {{"value_pct", value}, {"count", 3.0}};
    return r;
}

BenchCell
makeCell(std::size_t index, double value)
{
    BenchCell c;
    c.index = index;
    c.id = "cell-" + std::to_string(index);
    c.workload = "DB2-OLTP";
    c.context = index % 2 ? "single-chip" : "multi-chip";
    c.configHash = 0xfedcba9876543210ull + index; // exercises >2^53
    c.cacheHit = index % 2 == 0;
    c.wallSeconds = 0.25 * static_cast<double>(index + 1);
    c.instructions = 4'000'000 + index;
    c.rows = {makeRow("streams", c.context, value),
              makeRow("strides", c.context, value / 2)};
    return c;
}

BenchDoc
makeDoc(std::size_t cellCount)
{
    BenchDoc d;
    d.bench = "fig2_stream_fraction";
    d.quick = true;
    d.budgets.warmup = 2'000'000;
    d.budgets.measure = 4'000'000;
    d.budgets.scale = 0.15;
    d.gridCells = cellCount;
    d.jobs = 4;
    for (std::size_t i = 0; i < cellCount; ++i)
        d.cells.push_back(makeCell(i, 88.44581859765782 + i));
    return d;
}

// ---- --resume loading -------------------------------------------------------

/** A real grid + a report whose cells match it hash-for-hash. */
struct ResumeFixture
{
    std::vector<Cell> grid;
    BenchDoc doc;
    std::string path;

    explicit ResumeFixture(const char *tag)
    {
        BenchBudgets budgets;
        budgets.warmup = 2'000'000;
        budgets.measure = 4'000'000;
        budgets.scale = 0.15;
        grid = standardGrid({WorkloadKind::Oltp, WorkloadKind::KvStore},
                            budgets);
        doc.bench = "fig2_stream_fraction";
        doc.quick = true;
        doc.budgets = budgets;
        doc.gridCells = grid.size();
        for (const Cell &c : grid) {
            BenchCell cell;
            cell.index = c.index;
            cell.id = c.id;
            cell.workload = std::string(workloadName(c.cfg.workload));
            cell.context = std::string(contextName(c.cfg.context));
            cell.configHash = configHash(c.cfg);
            cell.instructions = 1;
            cell.rows = {makeRow("streams", cell.context, 1.0)};
            doc.cells.push_back(std::move(cell));
        }
        path = ::testing::TempDir() + "/tstream_resume_" + tag +
               ".json";
    }

    ~ResumeFixture() { std::remove(path.c_str()); }

    void
    write()
    {
        std::string err;
        ASSERT_TRUE(writeBenchDoc(doc, path, err)) << err;
    }
};

TEST(ResumeTest, MissingFileIsFreshRun)
{
    ResumeFixture fx("missing");
    std::vector<BenchCell> out{makeCell(0, 1.0)};
    std::string err;
    EXPECT_TRUE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                fx.doc.budgets, fx.grid, out, err))
        << err;
    EXPECT_TRUE(out.empty());
}

TEST(ResumeTest, LoadsMatchingCellsInGridOrder)
{
    ResumeFixture fx("ok");
    // Store them shuffled; the loader must return ascending indexes.
    std::swap(fx.doc.cells[0], fx.doc.cells.back());
    fx.write();

    std::vector<BenchCell> out;
    std::string err;
    ASSERT_TRUE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                fx.doc.budgets, fx.grid, out, err))
        << err;
    ASSERT_EQ(out.size(), fx.grid.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].index, i);
        EXPECT_EQ(out[i].id, fx.grid[i].id);
    }
}

TEST(ResumeTest, PartialReportLoadsPartially)
{
    ResumeFixture fx("partial");
    fx.doc.cells.erase(fx.doc.cells.begin() + 1,
                       fx.doc.cells.begin() + 3);
    fx.write();
    std::vector<BenchCell> out;
    std::string err;
    ASSERT_TRUE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                fx.doc.budgets, fx.grid, out, err))
        << err;
    EXPECT_EQ(out.size(), fx.grid.size() - 2);
}

TEST(ResumeTest, ConfigHashMismatchFails)
{
    ResumeFixture fx("hash");
    fx.doc.cells[1].configHash ^= 1;
    fx.write();
    std::vector<BenchCell> out;
    std::string err;
    EXPECT_FALSE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                 fx.doc.budgets, fx.grid, out, err));
    EXPECT_NE(err.find("config hash mismatch"), std::string::npos)
        << err;
}

TEST(ResumeTest, BudgetMismatchFails)
{
    ResumeFixture fx("budget");
    fx.write();
    BenchBudgets other = fx.doc.budgets;
    other.measure += 1;
    std::vector<BenchCell> out;
    std::string err;
    EXPECT_FALSE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                 other, fx.grid, out, err));
}

TEST(ResumeTest, GridSizeMismatchFails)
{
    ResumeFixture fx("grid");
    fx.write();
    std::vector<Cell> bigger = fx.grid;
    bigger.push_back(fx.grid.back());
    bigger.back().index = fx.grid.size();
    std::vector<BenchCell> out;
    std::string err;
    EXPECT_FALSE(loadResumeCells(fx.path, "fig2_stream_fraction", true,
                                 fx.doc.budgets, bigger, out, err));
}

TEST(ResumeTest, WrongBenchNameFails)
{
    ResumeFixture fx("name");
    fx.write();
    std::vector<BenchCell> out;
    std::string err;
    EXPECT_FALSE(loadResumeCells(fx.path, "fig1_miss_classification",
                                 true, fx.doc.budgets, fx.grid, out,
                                 err));
    EXPECT_NE(err.find("no document"), std::string::npos) << err;
}

TEST(BenchReportTest, JsonRoundTripPreservesEverything)
{
    const BenchDoc doc = makeDoc(4);
    const json::Value v = benchDocToJson(doc);
    // Through text and back, as `tstream-bench` consumers will see it.
    json::Value reparsed;
    std::string err;
    ASSERT_TRUE(json::Value::parse(v.dump(2), reparsed, err)) << err;

    BenchDoc back;
    ASSERT_TRUE(benchDocFromJson(reparsed, back, err)) << err;
    EXPECT_EQ(back.bench, doc.bench);
    EXPECT_EQ(back.quick, doc.quick);
    EXPECT_EQ(back.budgets.warmup, doc.budgets.warmup);
    EXPECT_EQ(back.budgets.measure, doc.budgets.measure);
    EXPECT_DOUBLE_EQ(back.budgets.scale, doc.budgets.scale);
    EXPECT_EQ(back.gridCells, doc.gridCells);
    EXPECT_EQ(back.jobs, doc.jobs);
    ASSERT_EQ(back.cells.size(), doc.cells.size());
    for (std::size_t i = 0; i < doc.cells.size(); ++i) {
        const BenchCell &a = doc.cells[i];
        const BenchCell &b = back.cells[i];
        EXPECT_EQ(b.index, a.index);
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.configHash, a.configHash);
        EXPECT_EQ(b.cacheHit, a.cacheHit);
        EXPECT_EQ(b.wallSeconds, a.wallSeconds); // bit-exact doubles
        EXPECT_EQ(b.instructions, a.instructions);
        ASSERT_EQ(b.rows.size(), a.rows.size());
        for (std::size_t r = 0; r < a.rows.size(); ++r) {
            EXPECT_EQ(b.rows[r].table, a.rows[r].table);
            EXPECT_EQ(b.rows[r].trace, a.rows[r].trace);
            EXPECT_EQ(b.rows[r].text, a.rows[r].text);
            ASSERT_EQ(b.rows[r].metrics.size(),
                      a.rows[r].metrics.size());
            for (std::size_t m = 0; m < a.rows[r].metrics.size(); ++m) {
                EXPECT_EQ(b.rows[r].metrics[m].first,
                          a.rows[r].metrics[m].first);
                EXPECT_EQ(b.rows[r].metrics[m].second,
                          a.rows[r].metrics[m].second); // bit-exact
            }
        }
    }

    std::string why;
    EXPECT_TRUE(benchDocsEquivalent(doc, back, why)) << why;
}

TEST(BenchReportTest, FileRoundTripAndCombinedReports)
{
    const BenchDoc doc = makeDoc(2);
    const std::string single =
        testing::TempDir() + "/bench_doc.json";
    std::string err;
    ASSERT_TRUE(writeBenchDoc(doc, single, err)) << err;

    std::vector<BenchDoc> docs;
    ASSERT_TRUE(readBenchDocs(single, docs, err)) << err;
    ASSERT_EQ(docs.size(), 1u);

    // A combined report contributes every contained document.
    BenchDoc other = makeDoc(2);
    other.bench = "fig3_stride_breakdown";
    const std::string combined =
        testing::TempDir() + "/bench_combined.json";
    ASSERT_TRUE(json::writeFile(combinedReportToJson({doc, other}),
                                combined, err))
        << err;
    docs.clear();
    ASSERT_TRUE(readBenchDocs(combined, docs, err)) << err;
    ASSERT_EQ(docs.size(), 2u);
    EXPECT_EQ(docs[0].bench, "fig2_stream_fraction");
    EXPECT_EQ(docs[1].bench, "fig3_stride_breakdown");
}

TEST(BenchReportTest, RejectsUnknownSchema)
{
    json::Value v = json::Value::object();
    v["schema"] = json::Value("tstream-bench/v999");
    BenchDoc doc;
    std::string err;
    EXPECT_FALSE(benchDocFromJson(v, doc, err));
    EXPECT_NE(err.find("unsupported schema"), std::string::npos);
}

TEST(BenchReportTest, MergeReassemblesShardsExactly)
{
    const BenchDoc full = makeDoc(7);

    // Split cells the way --shard k/N does: index % N == k.
    std::vector<BenchDoc> shards;
    for (unsigned k = 0; k < 3; ++k) {
        BenchDoc s = full;
        s.shard = ShardSpec{k, 3};
        s.cells.clear();
        for (const BenchCell &c : full.cells)
            if (s.shard.owns(c.index))
                s.cells.push_back(c);
        shards.push_back(std::move(s));
    }

    BenchDoc merged;
    std::string err;
    ASSERT_TRUE(mergeBenchDocs(shards, merged, err)) << err;
    EXPECT_EQ(merged.shard.count, 1u);
    std::string why;
    EXPECT_TRUE(benchDocsEquivalent(full, merged, why)) << why;
}

TEST(BenchReportTest, MergeFailsOnMissingCells)
{
    const BenchDoc full = makeDoc(6);
    BenchDoc partial = full;
    partial.cells.erase(partial.cells.begin() + 2); // drop index 2
    partial.cells.erase(partial.cells.begin() + 3); // drop index 4

    BenchDoc merged;
    std::string err;
    EXPECT_FALSE(mergeBenchDocs({partial}, merged, err));
    EXPECT_NE(err.find("missing cell indexes: 2, 4"),
              std::string::npos)
        << err;
}

TEST(BenchReportTest, MergeFailsOnIncompatibleHeaders)
{
    BenchDoc a = makeDoc(2);
    BenchDoc b = makeDoc(2);
    b.budgets.measure += 1;
    BenchDoc merged;
    std::string err;
    EXPECT_FALSE(mergeBenchDocs({a, b}, merged, err));
    EXPECT_NE(err.find("budgets differ"), std::string::npos);

    b = makeDoc(2);
    b.bench = "something_else";
    EXPECT_FALSE(mergeBenchDocs({a, b}, merged, err));
    EXPECT_NE(err.find("bench names differ"), std::string::npos);
}

TEST(BenchReportTest, MergeToleratesEquivalentDuplicates)
{
    BenchDoc a = makeDoc(2);
    BenchDoc b = makeDoc(2);
    // Execution details may differ between the duplicate runs ...
    b.cells[0].wallSeconds *= 7;
    b.cells[0].cacheHit = !b.cells[0].cacheHit;
    BenchDoc merged;
    std::string err;
    EXPECT_TRUE(mergeBenchDocs({a, b}, merged, err)) << err;

    // ... but conflicting *content* is an error.
    b.cells[0].rows[0].metrics[0].second += 0.5;
    EXPECT_FALSE(mergeBenchDocs({a, b}, merged, err));
    EXPECT_NE(err.find("conflicting duplicates"), std::string::npos);
}

TEST(BenchReportTest, EquivalenceIgnoresExecutionDetails)
{
    const BenchDoc a = makeDoc(3);
    BenchDoc b = a;
    b.jobs = 16;
    b.shard = ShardSpec{0, 1};
    for (BenchCell &c : b.cells) {
        c.wallSeconds *= 3;
        c.cacheHit = !c.cacheHit;
    }
    std::string why;
    EXPECT_TRUE(benchDocsEquivalent(a, b, why)) << why;
}

TEST(BenchReportTest, EquivalenceCatchesContentDrift)
{
    const BenchDoc a = makeDoc(3);

    BenchDoc b = a;
    b.cells[1].rows[0].text += "x";
    std::string why;
    EXPECT_FALSE(benchDocsEquivalent(a, b, why));
    EXPECT_NE(why.find("row text differs"), std::string::npos);

    b = a;
    b.cells[2].rows[1].metrics[0].second += 1e-9;
    EXPECT_FALSE(benchDocsEquivalent(a, b, why));
    EXPECT_NE(why.find("metric"), std::string::npos);

    b = a;
    b.cells[0].configHash ^= 1;
    EXPECT_FALSE(benchDocsEquivalent(a, b, why));
    EXPECT_NE(why.find("config hashes differ"), std::string::npos);

    b = a;
    b.cells.pop_back();
    EXPECT_FALSE(benchDocsEquivalent(a, b, why));
    // The union walk names the exact absent cell and which side.
    EXPECT_NE(why.find("cell cell-2 (index 2) missing from the "
                       "second report"),
              std::string::npos)
        << why;
}

// ---- failure rows -----------------------------------------------------------

BenchCell
makeFailedCell(std::size_t index, const std::string &cause,
               unsigned attempts)
{
    BenchCell c = makeCell(index, 0.0);
    c.failed = true;
    c.failureCause = cause;
    c.attempts = attempts;
    c.rows.clear(); // a failure row never carries table rows
    c.instructions = 0;
    return c;
}

TEST(FailureRowTest, RoundTripsThroughJson)
{
    BenchDoc doc = makeDoc(3);
    doc.cells[1] = makeFailedCell(1, "timeout after 500ms", 3);

    json::Value reparsed;
    std::string err;
    ASSERT_TRUE(
        json::Value::parse(benchDocToJson(doc).dump(2), reparsed, err))
        << err;
    BenchDoc back;
    ASSERT_TRUE(benchDocFromJson(reparsed, back, err)) << err;

    ASSERT_EQ(back.cells.size(), 3u);
    EXPECT_FALSE(back.cells[0].failed);
    EXPECT_EQ(back.cells[0].attempts, 1u);
    EXPECT_TRUE(back.cells[1].failed);
    EXPECT_EQ(back.cells[1].failureCause, "timeout after 500ms");
    EXPECT_EQ(back.cells[1].attempts, 3u);
    EXPECT_TRUE(back.cells[1].rows.empty());
}

TEST(FailureRowTest, MergeDistinguishesFailedFromMissing)
{
    // A failed cell *covers* its grid index: merge succeeds and
    // carries the failure row through.
    BenchDoc withFailure = makeDoc(3);
    withFailure.cells[1] = makeFailedCell(1, "exception: boom", 2);
    BenchDoc merged;
    std::string err;
    ASSERT_TRUE(mergeBenchDocs({withFailure}, merged, err)) << err;
    ASSERT_EQ(merged.cells.size(), 3u);
    EXPECT_TRUE(merged.cells[1].failed);
    EXPECT_EQ(merged.cells[1].failureCause, "exception: boom");

    // A missing cell is still a hard error naming the absent index.
    BenchDoc withHole = makeDoc(3);
    withHole.cells.erase(withHole.cells.begin() + 1);
    EXPECT_FALSE(mergeBenchDocs({withHole}, merged, err));
    EXPECT_NE(err.find("missing cell indexes: 1"), std::string::npos)
        << err;
}

TEST(FailureRowTest, MergeSuccessBeatsFailureEitherOrder)
{
    const BenchDoc good = makeDoc(2);
    BenchDoc bad = makeDoc(2);
    bad.cells[0] = makeFailedCell(0, "timeout after 500ms", 3);

    for (const auto &docs :
         {std::vector<BenchDoc>{good, bad},
          std::vector<BenchDoc>{bad, good}}) {
        BenchDoc merged;
        std::string err;
        ASSERT_TRUE(mergeBenchDocs(docs, merged, err)) << err;
        ASSERT_EQ(merged.cells.size(), 2u);
        // Another worker recovered the cell: the success wins.
        EXPECT_FALSE(merged.cells[0].failed) << merged.cells[0].failureCause;
        EXPECT_FALSE(merged.cells[0].rows.empty());
    }
}

TEST(FailureRowTest, MergeKeepsFirstOfTwoFailures)
{
    BenchDoc a = makeDoc(2);
    a.cells[0] = makeFailedCell(0, "timeout after 500ms", 3);
    BenchDoc b = makeDoc(2);
    b.cells[0] = makeFailedCell(0, "exception: boom", 2);

    BenchDoc merged;
    std::string err;
    ASSERT_TRUE(mergeBenchDocs({a, b}, merged, err)) << err;
    EXPECT_TRUE(merged.cells[0].failed);
    // Causes may legitimately differ between workers; first is kept.
    EXPECT_EQ(merged.cells[0].failureCause, "timeout after 500ms");
}

TEST(FailureRowTest, EquivalenceNeverTreatsFailureAsEqual)
{
    const BenchDoc good = makeDoc(2);

    // Failed on one side: named diagnostic with cause and attempts.
    BenchDoc oneFailed = good;
    oneFailed.cells[1] = makeFailedCell(1, "timeout after 500ms", 3);
    std::string why;
    EXPECT_FALSE(benchDocsEquivalent(good, oneFailed, why));
    EXPECT_NE(why.find("cell cell-1 (index 1) failed in the second "
                       "report (cause=timeout after 500ms, attempts=3)"
                       " but succeeded in the other"),
              std::string::npos)
        << why;

    // Failed on both sides: still not silently equal.
    BenchDoc bothFailed = oneFailed;
    EXPECT_FALSE(benchDocsEquivalent(oneFailed, bothFailed, why));
    EXPECT_NE(why.find("failed in both reports"), std::string::npos)
        << why;
    EXPECT_NE(why.find("timeout after 500ms"), std::string::npos)
        << why;
}

TEST(FailureRowTest, SubsetCheckRejectsFailures)
{
    BenchDoc full = makeDoc(3);
    BenchDoc sub = makeDoc(3);
    sub.cells = {sub.cells[1]};
    std::string why;
    ASSERT_TRUE(benchDocIsSubset(sub, full, why)) << why;

    sub.cells[0] = makeFailedCell(1, "exception: boom", 1);
    EXPECT_FALSE(benchDocIsSubset(sub, full, why));
    EXPECT_NE(why.find("failed"), std::string::npos) << why;
}

TEST(FailureRowTest, PerfSeriesSkipsFailedCells)
{
    BenchDoc doc = makeDoc(3);
    doc.cells[2] = makeFailedCell(2, "timeout after 500ms", 3);
    const std::string path =
        testing::TempDir() + "/bench_failed_perf.json";
    std::string err;
    ASSERT_TRUE(writeBenchDoc(doc, path, err)) << err;

    std::vector<PerfSample> samples;
    ASSERT_TRUE(loadPerfSeries(path, samples, err)) << err;
    // One sample per *successful* cell; the failed cell has no
    // wall-time worth trending.
    ASSERT_EQ(samples.size(), 2u);
    for (const PerfSample &s : samples)
        EXPECT_EQ(s.name.find("fig2_stream_fraction/cell-2"),
                  std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace tstream
