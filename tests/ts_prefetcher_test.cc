/**
 * @file
 * Tests for the temporal-streaming prefetcher extension.
 */

#include <gtest/gtest.h>

#include "core/ts_prefetcher.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

MissTrace
traceOf(const std::vector<BlockId> &blocks, unsigned ncpu = 1)
{
    MissTrace t;
    t.numCpus = ncpu;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        t.misses.push_back(MissRecord{
            i, blocks[i], static_cast<CpuId>(i % ncpu), 0, 0});
    return t;
}

TEST(TsPrefetcher, EmptyTrace)
{
    TsPrefetcher pf;
    const auto st = pf.evaluate(MissTrace{});
    EXPECT_EQ(st.misses, 0u);
    EXPECT_EQ(st.coverage(), 0.0);
    EXPECT_EQ(st.accuracy(), 0.0);
}

TEST(TsPrefetcher, UniqueMissesAreNeverCovered)
{
    std::vector<BlockId> blocks;
    for (BlockId b = 0; b < 1000; ++b)
        blocks.push_back(b * 1009);
    TsPrefetcher pf;
    const auto st = pf.evaluate(traceOf(blocks));
    EXPECT_EQ(st.covered, 0u);
}

TEST(TsPrefetcher, RepeatedStreamGetsCovered)
{
    // The motif repeats 5 times; from the second occurrence on, the
    // replay should cover most of its misses.
    std::vector<BlockId> motif;
    for (BlockId b = 0; b < 32; ++b)
        motif.push_back(5000 + b * 7);
    std::vector<BlockId> blocks;
    BlockId fresh = 0;
    for (int rep = 0; rep < 5; ++rep) {
        blocks.insert(blocks.end(), motif.begin(), motif.end());
        for (int i = 0; i < 20; ++i)
            blocks.push_back(900000 + fresh++);
    }
    TsPrefetcher pf;
    const auto st = pf.evaluate(traceOf(blocks));
    // 4 recurrences x ~31 coverable misses each, less ramp-up.
    EXPECT_GT(st.coverage(), 0.3);
    EXPECT_GT(st.accuracy(), 0.5);
}

TEST(TsPrefetcher, DeeperReplayCoversLongerStreams)
{
    std::vector<BlockId> motif;
    for (BlockId b = 0; b < 64; ++b)
        motif.push_back(7000 + b * 3);
    std::vector<BlockId> blocks;
    BlockId fresh = 0;
    for (int rep = 0; rep < 4; ++rep) {
        blocks.insert(blocks.end(), motif.begin(), motif.end());
        for (int i = 0; i < 30; ++i)
            blocks.push_back(800000 + fresh++);
    }

    auto statsAt = [&](std::uint32_t depth) {
        TsPrefetcherConfig cfg;
        cfg.replayDepth = depth;
        TsPrefetcher pf(cfg);
        return pf.evaluate(traceOf(blocks));
    };
    // Depth-1 replay still covers by chaining (each covered miss
    // looks up the stream again), so coverage is monotone rather than
    // strictly increasing; deeper replay must issue further ahead.
    const auto s1 = statsAt(1);
    const auto s16 = statsAt(16);
    EXPECT_GE(s16.coverage(), s1.coverage());
    EXPECT_GT(s16.issued, s1.issued);
}

TEST(TsPrefetcher, CrossCpuRecurrenceRequiresCrossCpuLookup)
{
    // Motif on cpu 0, then replayed on cpu 1.
    std::vector<BlockId> motif;
    for (BlockId b = 0; b < 24; ++b)
        motif.push_back(4000 + b);

    MissTrace t;
    t.numCpus = 2;
    std::uint64_t seq = 0;
    for (auto b : motif)
        t.misses.push_back(MissRecord{seq++, b, 0, 0, 0});
    for (auto b : motif)
        t.misses.push_back(MissRecord{seq++, b, 1, 0, 0});

    TsPrefetcherConfig on;
    on.crossCpu = true;
    TsPrefetcherConfig off;
    off.crossCpu = false;
    const auto covOn = TsPrefetcher(on).evaluate(t).coverage();
    const auto covOff = TsPrefetcher(off).evaluate(t).coverage();
    EXPECT_GT(covOn, 0.3);
    EXPECT_LT(covOff, covOn);
}

TEST(TsPrefetcher, BufferCapacityBoundsOutstandingPrefetches)
{
    TsPrefetcherConfig cfg;
    cfg.bufferBlocks = 4;
    cfg.replayDepth = 32;
    std::vector<BlockId> motif;
    for (BlockId b = 0; b < 64; ++b)
        motif.push_back(b + 100);
    std::vector<BlockId> blocks = motif;
    blocks.insert(blocks.end(), motif.begin(), motif.end());
    TsPrefetcher pf(cfg);
    const auto st = pf.evaluate(traceOf(blocks));
    // With a 4-entry buffer, deep replay displaces most of its own
    // prefetches: accuracy suffers.
    EXPECT_LT(st.accuracy(), 0.6);
}

TEST(TsPrefetcher, HistoryWrapInvalidatesStalePositions)
{
    TsPrefetcherConfig cfg;
    cfg.historyEntries = 128; // tiny ring
    std::vector<BlockId> blocks;
    blocks.push_back(42);
    for (BlockId b = 0; b < 500; ++b)
        blocks.push_back(100000 + b); // flushes the ring
    blocks.push_back(42);             // stale index entry
    TsPrefetcher pf(cfg);
    const auto st = pf.evaluate(traceOf(blocks));
    // Must not crash or replay garbage; the stale lookup is skipped
    // (or harmlessly replays recent entries if re-indexed).
    EXPECT_EQ(st.covered, 0u);
}

TEST(TsPrefetcher, HybridCoversStridedNonRepetitiveMisses)
{
    // A long fresh sequential sweep: pure temporal streaming covers
    // nothing (no repetition), the hybrid's stride engine covers
    // almost everything.
    std::vector<BlockId> sweep;
    for (BlockId b = 0; b < 2000; ++b)
        sweep.push_back(100000 + b);
    const MissTrace t = traceOf(sweep);
    TsPrefetcher temporal, hybrid;
    EXPECT_EQ(temporal.evaluate(t).covered, 0u);
    EXPECT_GT(hybrid.evaluateHybrid(t).coverage(), 0.8);
}

TEST(TsPrefetcher, HybridKeepsTemporalCoverage)
{
    // A pointer-chase motif (non-strided) repeated: the hybrid must
    // not lose the temporal engine's coverage.
    Rng rng(23);
    std::vector<BlockId> motif;
    for (int i = 0; i < 40; ++i)
        motif.push_back(rng.below(1 << 20));
    std::vector<BlockId> blocks;
    BlockId fresh = 1 << 24;
    for (int rep = 0; rep < 6; ++rep) {
        blocks.insert(blocks.end(), motif.begin(), motif.end());
        for (int i = 0; i < 25; ++i)
            blocks.push_back(fresh++ * 97);
    }
    const MissTrace t = traceOf(blocks);
    TsPrefetcher temporal, hybrid;
    const double tcov = temporal.evaluate(t).coverage();
    const double hcov = hybrid.evaluateHybrid(t).coverage();
    EXPECT_GT(tcov, 0.3);
    EXPECT_GE(hcov, tcov * 0.9);
}

TEST(TsPrefetcher, CoverageTracksRepetitionQualitatively)
{
    Rng rng(17);
    auto makeTrace = [&](double repeatFrac) {
        std::vector<BlockId> motif;
        for (int i = 0; i < 40; ++i)
            motif.push_back(rng.below(1 << 16));
        std::vector<BlockId> blocks;
        BlockId fresh = 1 << 20;
        while (blocks.size() < 20000) {
            if (rng.chance(repeatFrac))
                blocks.insert(blocks.end(), motif.begin(), motif.end());
            else
                blocks.push_back(fresh++);
        }
        return traceOf(blocks);
    };
    TsPrefetcher pf1, pf2;
    const double covHigh = pf1.evaluate(makeTrace(0.5)).coverage();
    const double covLow = pf2.evaluate(makeTrace(0.05)).coverage();
    EXPECT_GT(covHigh, covLow);
}

} // namespace
} // namespace tstream
