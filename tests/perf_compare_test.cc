/**
 * @file
 * Tests for the perf-series comparison behind `tstream-bench compare`
 * (sim/bench_report.hh): loading Google Benchmark JSON and
 * tstream-bench reports into a named series, and the regression gate
 * semantics — improvement vs. regression vs. missing series, the
 * exact threshold boundary, series filtering, and malformed-report
 * rejection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/bench_report.hh"

namespace tstream
{
namespace
{

std::string
tempFile(const char *tag, const std::string &content)
{
    const std::string path =
        ::testing::TempDir() + "/tstream_perf_" + tag + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
}

/** A minimal Google Benchmark JSON document. */
std::string
gbReport(const std::string &entries)
{
    return "{\"context\": {\"num_cpus\": 1},\n"
           "\"benchmarks\": [" + entries + "]}";
}

std::string
gbEntry(const std::string &name, double cpuTime,
        const std::string &unit = "ns",
        const std::string &runType = "iteration")
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"run_type\": \"%s\", "
                  "\"cpu_time\": %.17g, \"time_unit\": \"%s\"}",
                  name.c_str(), runType.c_str(), cpuTime,
                  unit.c_str());
    return buf;
}

PerfSample
sample(const std::string &name, double ns)
{
    return PerfSample{name, ns};
}

// ---- loading ---------------------------------------------------------------

TEST(PerfSeriesLoad, GoogleBenchmarkJson)
{
    const std::string path = tempFile(
        "gb", gbReport(gbEntry("BM_A/1000", 1500.0) + ",\n" +
                       gbEntry("BM_B", 2.5, "ms")));
    std::vector<PerfSample> out;
    std::string err;
    ASSERT_TRUE(loadPerfSeries(path, out, err)) << err;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].name, "BM_A/1000");
    EXPECT_DOUBLE_EQ(out[0].timeNs, 1500.0);
    EXPECT_EQ(out[1].name, "BM_B");
    EXPECT_DOUBLE_EQ(out[1].timeNs, 2.5e6); // ms normalized to ns
    std::remove(path.c_str());
}

TEST(PerfSeriesLoad, SkipsAggregatesAndKeepsBestRepetition)
{
    const std::string path = tempFile(
        "reps",
        gbReport(gbEntry("BM_A", 120.0) + ",\n" +
                 gbEntry("BM_A", 100.0) + ",\n" +
                 gbEntry("BM_A", 140.0) + ",\n" +
                 gbEntry("BM_A_mean", 115.0, "ns", "aggregate")));
    std::vector<PerfSample> out;
    std::string err;
    ASSERT_TRUE(loadPerfSeries(path, out, err)) << err;
    ASSERT_EQ(out.size(), 1u); // aggregates skipped, reps collapsed
    EXPECT_EQ(out[0].name, "BM_A");
    EXPECT_DOUBLE_EQ(out[0].timeNs, 100.0); // fastest repetition
    std::remove(path.c_str());
}

TEST(PerfSeriesLoad, BenchDocCellsBecomeSeries)
{
    BenchDoc doc;
    doc.bench = "fig2_stream_fraction";
    doc.gridCells = 1;
    BenchCell cell;
    cell.index = 0;
    cell.id = "DB2-OLTP/multi-chip";
    cell.wallSeconds = 2.0;
    BenchRow row;
    row.table = "streams";
    row.trace = "multi-chip";
    row.text = "row";
    cell.rows.push_back(row);
    doc.cells.push_back(cell);

    const std::string path =
        ::testing::TempDir() + "/tstream_perf_doc.json";
    std::string err;
    ASSERT_TRUE(writeBenchDoc(doc, path, err)) << err;

    std::vector<PerfSample> out;
    ASSERT_TRUE(loadPerfSeries(path, out, err)) << err;
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].name, "fig2_stream_fraction/DB2-OLTP/multi-chip");
    EXPECT_DOUBLE_EQ(out[0].timeNs, 2.0e9);
    std::remove(path.c_str());
}

TEST(PerfSeriesLoad, RejectsMalformedReports)
{
    std::vector<PerfSample> out;
    std::string err;

    // Not JSON at all.
    const std::string junk = tempFile("junk", "not json {");
    EXPECT_FALSE(loadPerfSeries(junk, out, err));
    std::remove(junk.c_str());

    // JSON, but neither format.
    const std::string neither = tempFile("neither", "{\"x\": 1}");
    EXPECT_FALSE(loadPerfSeries(neither, out, err));
    EXPECT_NE(err.find("benchmarks"), std::string::npos) << err;
    std::remove(neither.c_str());

    // Google-Benchmark-shaped but an entry lacks cpu_time.
    const std::string noCpu = tempFile(
        "nocpu", gbReport("{\"name\": \"BM_A\"}"));
    EXPECT_FALSE(loadPerfSeries(noCpu, out, err));
    std::remove(noCpu.c_str());

    // An empty benchmarks array is not a usable baseline.
    const std::string empty = tempFile("empty", gbReport(""));
    EXPECT_FALSE(loadPerfSeries(empty, out, err));
    std::remove(empty.c_str());
}

// ---- gate semantics --------------------------------------------------------

TEST(PerfCompare, ImprovementPasses)
{
    const auto cmp = comparePerfSeries(
        {sample("a", 1000.0)}, {sample("a", 500.0)}, PerfGateOptions{});
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_EQ(cmp.rows[0].status, PerfDelta::Status::Improved);
    EXPECT_DOUBLE_EQ(cmp.rows[0].ratio, 0.5);
    EXPECT_TRUE(cmp.pass);
}

TEST(PerfCompare, RegressionBeyondThresholdFails)
{
    const auto cmp = comparePerfSeries(
        {sample("a", 1000.0)}, {sample("a", 1300.0)},
        PerfGateOptions{});
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_EQ(cmp.rows[0].status, PerfDelta::Status::Regressed);
    EXPECT_EQ(cmp.regressed, 1u);
    EXPECT_FALSE(cmp.pass);
}

TEST(PerfCompare, ThresholdBoundaryPasses)
{
    // ratio == maxRegress exactly (both sides representable): passes.
    const auto at = comparePerfSeries(
        {sample("a", 100.0)}, {sample("a", 125.0)}, PerfGateOptions{});
    EXPECT_EQ(at.rows[0].status, PerfDelta::Status::Ok);
    EXPECT_TRUE(at.pass);

    // The next representable step beyond fails.
    const auto over = comparePerfSeries(
        {sample("a", 100.0)}, {sample("a", 125.1)}, PerfGateOptions{});
    EXPECT_EQ(over.rows[0].status, PerfDelta::Status::Regressed);
    EXPECT_FALSE(over.pass);
}

TEST(PerfCompare, MissingBaselineSeriesFails)
{
    const auto cmp = comparePerfSeries(
        {sample("a", 100.0), sample("gone", 100.0)},
        {sample("a", 100.0)}, PerfGateOptions{});
    ASSERT_EQ(cmp.rows.size(), 2u);
    EXPECT_EQ(cmp.rows[1].status, PerfDelta::Status::Missing);
    EXPECT_EQ(cmp.missing, 1u);
    EXPECT_FALSE(cmp.pass);
}

TEST(PerfCompare, FreshSeriesIsReportedButNotGated)
{
    const auto cmp = comparePerfSeries(
        {sample("a", 100.0)},
        {sample("a", 100.0), sample("brand-new", 9e9)},
        PerfGateOptions{});
    ASSERT_EQ(cmp.rows.size(), 2u);
    EXPECT_EQ(cmp.rows[1].status, PerfDelta::Status::Fresh);
    EXPECT_EQ(cmp.fresh, 1u);
    EXPECT_TRUE(cmp.pass);
}

TEST(PerfCompare, SeriesFilterGatesOnlyNamedSeries)
{
    PerfGateOptions opts;
    opts.series = {"gated"};
    // "other" regresses wildly but is not gated (and not listed).
    const auto cmp = comparePerfSeries(
        {sample("gated", 100.0), sample("other", 100.0)},
        {sample("gated", 110.0), sample("other", 9000.0)}, opts);
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_EQ(cmp.rows[0].name, "gated");
    EXPECT_EQ(cmp.rows[0].status, PerfDelta::Status::Ok);
    EXPECT_TRUE(cmp.pass);
}

TEST(PerfCompare, FilterNameAbsentFromBaselineFails)
{
    PerfGateOptions opts;
    opts.series = {"tpyo"};
    const auto cmp = comparePerfSeries(
        {sample("real", 100.0)}, {sample("real", 100.0)}, opts);
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_EQ(cmp.rows[0].name, "tpyo");
    EXPECT_EQ(cmp.rows[0].status, PerfDelta::Status::Missing);
    EXPECT_FALSE(cmp.pass);
}

// ---- trend (`tstream-bench trend`) -----------------------------------------

TEST(PerfTrend, AlignsSeriesAcrossReportsInFirstAppearanceOrder)
{
    const auto t = computeTrend(
        {"r0", "r1", "r2"},
        {{sample("a", 100.0), sample("b", 50.0)},
         {sample("b", 55.0), sample("a", 110.0)},
         {sample("a", 120.0), sample("b", 60.0), sample("c", 7.0)}},
        {});
    ASSERT_EQ(t.labels.size(), 3u);
    ASSERT_EQ(t.rows.size(), 3u);
    EXPECT_EQ(t.rows[0].name, "a");
    EXPECT_EQ(t.rows[1].name, "b");
    EXPECT_EQ(t.rows[2].name, "c");
    ASSERT_EQ(t.rows[0].timesNs.size(), 3u);
    EXPECT_DOUBLE_EQ(t.rows[0].timesNs[0], 100.0);
    EXPECT_DOUBLE_EQ(t.rows[0].timesNs[1], 110.0);
    EXPECT_DOUBLE_EQ(t.rows[0].timesNs[2], 120.0);
    EXPECT_DOUBLE_EQ(t.rows[0].lastVsFirst, 1.2);
    EXPECT_DOUBLE_EQ(t.rows[1].lastVsFirst, 1.2);
}

TEST(PerfTrend, AbsentReportsAreZeroAndSkippedInRatio)
{
    // "a" is missing from the middle report: slot is 0, the ratio
    // still spans first-present to last-present.
    const auto t = computeTrend(
        {"r0", "r1", "r2"},
        {{sample("a", 100.0)}, {}, {sample("a", 90.0)}}, {});
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(t.rows[0].timesNs[1], 0.0);
    EXPECT_DOUBLE_EQ(t.rows[0].lastVsFirst, 0.9);
}

TEST(PerfTrend, SinglePointHasNoRatio)
{
    const auto t = computeTrend(
        {"r0", "r1"}, {{sample("once", 42.0)}, {}}, {});
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(t.rows[0].lastVsFirst, 0.0); // <2 points
}

TEST(PerfTrend, FilterRestrictsToNamedSeries)
{
    const auto t = computeTrend(
        {"r0", "r1"},
        {{sample("keep", 10.0), sample("drop", 10.0)},
         {sample("keep", 11.0), sample("drop", 99.0)}},
        {"keep"});
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0].name, "keep");
    EXPECT_DOUBLE_EQ(t.rows[0].lastVsFirst, 1.1);
}

TEST(PerfTrend, FilteredNameAbsentEverywhereYieldsNoRow)
{
    // No row at all — `tstream-bench trend` detects the absence and
    // fails loudly rather than printing a quiet empty row.
    const auto t = computeTrend(
        {"r0"}, {{sample("real", 1.0)}}, {"tpyo"});
    EXPECT_TRUE(t.rows.empty());
}

} // namespace
} // namespace tstream
