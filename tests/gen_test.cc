/**
 * @file
 * Statistical tests for the key choosers (gen/key_chooser.hh): every
 * distribution is checked against its closed form with fixed seeds,
 * so a sampler regression shows up as a deterministic failure, not a
 * flaky one. Also pins the bit-identity contract: ZipfianChooser must
 * reproduce ZipfSampler draw-for-draw, since the default workload
 * traces depend on it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/key_chooser.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

constexpr std::uint64_t kSeed = 0x7453545247454eull; // "tSTRGEN"

KeyDistSpec
spec(KeyDistKind kind)
{
    KeyDistSpec s;
    s.kind = kind;
    return s;
}

/** Empirical per-key frequencies over @p draws samples. */
std::vector<double>
frequencies(KeyChooser &chooser, std::size_t draws,
            std::uint64_t seed = kSeed)
{
    Rng rng(seed);
    std::vector<double> freq(chooser.size(), 0.0);
    for (std::size_t i = 0; i < draws; ++i) {
        const std::size_t k = chooser.sample(rng);
        EXPECT_LT(k, chooser.size());
        freq[k] += 1.0;
    }
    for (double &f : freq)
        f /= static_cast<double>(draws);
    return freq;
}

/** Closed-form zipfian PMF over [0, n): p(i) ∝ 1/(i+1)^theta. */
std::vector<double>
zipfPmf(std::size_t n, double theta)
{
    std::vector<double> p(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
        sum += p[i];
    }
    for (double &v : p)
        v /= sum;
    return p;
}

/** Kolmogorov–Smirnov statistic of empirical vs expected PMF. */
double
ksStatistic(const std::vector<double> &freq,
            const std::vector<double> &pmf)
{
    EXPECT_EQ(freq.size(), pmf.size());
    double emp = 0.0, exp = 0.0, dev = 0.0;
    for (std::size_t i = 0; i < freq.size(); ++i) {
        emp += freq[i];
        exp += pmf[i];
        dev = std::max(dev, std::abs(emp - exp));
    }
    return dev;
}

// ---------------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------------

TEST(ZipfianChooser, EcdfMatchesClosedFormHarmonicWeights)
{
    // 1M draws over 1000 keys at the KV default theta: the empirical
    // CDF must track the normalized harmonic weights. The KS bound is
    // loose relative to the ~0.0016 sampling noise at this count but
    // far below any mis-parameterized distribution (uniform, or a
    // theta off by 0.05, both deviate by > 0.01).
    const std::size_t n = 1000;
    const double theta = 0.95;
    KeyDistSpec s = spec(KeyDistKind::Zipfian);
    s.theta = theta;
    auto chooser = makeKeyChooser(s, n);
    ASSERT_TRUE(chooser);
    EXPECT_EQ(chooser->size(), n);

    const auto freq = frequencies(*chooser, 1'000'000);
    EXPECT_LT(ksStatistic(freq, zipfPmf(n, theta)), 0.005);

    // Skew sanity: the head must dominate (rank 0 carries ~12% at
    // theta 0.95 over 1000 keys; uniform would give 0.1%).
    EXPECT_GT(freq[0], 0.10);
    EXPECT_GT(freq[0], 10.0 * freq[99]);
}

TEST(ZipfianChooser, ThetaControlsSkew)
{
    const std::size_t n = 500;
    KeyDistSpec mild = spec(KeyDistKind::Zipfian);
    mild.theta = 0.5;
    KeyDistSpec steep = spec(KeyDistKind::Zipfian);
    steep.theta = 1.2;
    auto mildC = makeKeyChooser(mild, n);
    auto steepC = makeKeyChooser(steep, n);

    const auto mildF = frequencies(*mildC, 200'000);
    const auto steepF = frequencies(*steepC, 200'000);
    // Each empirical CDF must match its own closed form and *not* the
    // other's — theta measurably reshapes the distribution.
    EXPECT_LT(ksStatistic(mildF, zipfPmf(n, 0.5)), 0.01);
    EXPECT_LT(ksStatistic(steepF, zipfPmf(n, 1.2)), 0.01);
    EXPECT_GT(ksStatistic(mildF, zipfPmf(n, 1.2)), 0.05);
    EXPECT_GT(ksStatistic(steepF, zipfPmf(n, 0.5)), 0.05);
}

TEST(ZipfianChooser, BitIdenticalToZipfSampler)
{
    // The default workload traces are byte-identical only if the
    // chooser consumes the Rng exactly like the raw sampler.
    const std::size_t n = 4096;
    const double theta = 0.80; // broker default
    KeyDistSpec s = spec(KeyDistKind::Zipfian);
    s.theta = theta;
    auto chooser = makeKeyChooser(s, n);
    ZipfSampler sampler(n, theta);

    Rng a(kSeed), b(kSeed);
    for (int i = 0; i < 10'000; ++i)
        ASSERT_EQ(chooser->sample(a), sampler.sample(b)) << "draw " << i;
    // noteInsert is a no-op for zipfian: the streams stay in lockstep.
    chooser->noteInsert();
    for (int i = 0; i < 1'000; ++i)
        ASSERT_EQ(chooser->sample(a), sampler.sample(b));
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

TEST(UniformChooser, FlatWithinSamplingNoise)
{
    const std::size_t n = 200;
    auto chooser = makeKeyChooser(spec(KeyDistKind::Uniform), n);
    const std::size_t draws = 1'000'000;
    const auto freq = frequencies(*chooser, draws);

    // Expected 1/n = 0.5% per key, sd ≈ sqrt(p(1-p)/draws) ≈ 7e-5;
    // allow 6 sigma per bucket and a tight KS bound overall.
    const double expect = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(freq[i], expect, 6.0 * 7.1e-5) << "key " << i;
    EXPECT_LT(ksStatistic(freq, std::vector<double>(n, expect)),
              0.003);
}

// ---------------------------------------------------------------------------
// Hotspot
// ---------------------------------------------------------------------------

TEST(HotspotChooser, HitRateAndIntraSetUniformity)
{
    const std::size_t n = 1000;
    KeyDistSpec s = spec(KeyDistKind::Hotspot);
    s.hotFrac = 0.2;
    s.hotProb = 0.9;
    auto chooser = makeKeyChooser(s, n);
    const std::size_t draws = 1'000'000;
    const auto freq = frequencies(*chooser, draws);

    // The hot set is the first ceil(0.2 * 1000) = 200 keys and must
    // absorb 90% of requests (binomial sd ≈ 3e-4 at 1M draws).
    const std::size_t hot = 200;
    double hotMass = 0.0;
    for (std::size_t i = 0; i < hot; ++i)
        hotMass += freq[i];
    EXPECT_NEAR(hotMass, 0.9, 0.002);

    // Within each set the distribution is uniform: hot keys at
    // 0.9/200 = 0.45%, cold keys at 0.1/800 = 0.0125%.
    for (std::size_t i = 0; i < hot; ++i)
        EXPECT_NEAR(freq[i], 0.9 / 200.0, 6.0 * 2.2e-4)
            << "hot key " << i;
    for (std::size_t i = hot; i < n; ++i)
        EXPECT_NEAR(freq[i], 0.1 / 800.0, 6.0 * 3.6e-5)
            << "cold key " << i;
}

TEST(HotspotChooser, HotCountClampedToValidRange)
{
    // frac near 0 still keeps >= 1 hot key; frac near 1 keeps >= 1
    // cold key, so both rng.below() bounds stay positive.
    KeyDistSpec tiny = spec(KeyDistKind::Hotspot);
    tiny.hotFrac = 1e-9;
    tiny.hotProb = 0.99;
    auto lo = makeKeyChooser(tiny, 10);

    KeyDistSpec huge = spec(KeyDistKind::Hotspot);
    huge.hotFrac = 0.999999;
    huge.hotProb = 0.5;
    auto hi = makeKeyChooser(huge, 10);

    Rng rng(kSeed);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(lo->sample(rng), 10u);
        EXPECT_LT(hi->sample(rng), 10u);
    }
    // With frac=1e-9 and prob=0.99 essentially every draw hits the
    // single hot key.
    const auto freq = frequencies(*lo, 100'000);
    EXPECT_NEAR(freq[0], 0.99, 0.005);
}

// ---------------------------------------------------------------------------
// Latest
// ---------------------------------------------------------------------------

TEST(LatestChooser, TracksInsertFrontier)
{
    const std::size_t n = 100;
    KeyDistSpec s = spec(KeyDistKind::Latest);
    s.theta = 0.99;
    auto chooser = makeKeyChooser(s, n);

    // Before any insert the frontier is 0, so the most recent key is
    // (0 + n - 1 - 0) % n = n - 1 and it dominates.
    {
        const auto freq = frequencies(*chooser, 200'000);
        const auto m = std::max_element(freq.begin(), freq.end());
        EXPECT_EQ(m - freq.begin(),
                  static_cast<std::ptrdiff_t>(n - 1));
    }

    // After 10 inserts the mode shifts to key 9 and popularity decays
    // with distance behind the frontier.
    for (int i = 0; i < 10; ++i)
        chooser->noteInsert();
    {
        const auto freq = frequencies(*chooser, 200'000);
        const auto m = std::max_element(freq.begin(), freq.end());
        EXPECT_EQ(m - freq.begin(), 9);
        EXPECT_GT(freq[9], freq[8]);
        EXPECT_GT(freq[8], freq[5]);
    }
}

TEST(LatestChooser, FrontierWrapsAroundKeySpace)
{
    const std::size_t n = 16;
    KeyDistSpec s = spec(KeyDistKind::Latest);
    s.theta = 1.2;
    auto chooser = makeKeyChooser(s, n);

    // n + 3 inserts: frontier = 3, most recent key = 2.
    for (std::size_t i = 0; i < n + 3; ++i)
        chooser->noteInsert();
    const auto freq = frequencies(*chooser, 200'000);
    const auto m = std::max_element(freq.begin(), freq.end());
    EXPECT_EQ(m - freq.begin(), 2);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_GT(freq[i], 0.0) << "key " << i << " never drawn";
}

TEST(LatestChooser, OffsetsAreZipfianOverRecency)
{
    // Mapping samples back to offsets behind the frontier must
    // recover the zipfian offset distribution exactly.
    const std::size_t n = 256;
    const double theta = 0.95;
    KeyDistSpec s = spec(KeyDistKind::Latest);
    s.theta = theta;
    auto chooser = makeKeyChooser(s, n);
    for (int i = 0; i < 7; ++i) // arbitrary frontier position
        chooser->noteInsert();

    Rng rng(kSeed);
    const std::size_t draws = 500'000;
    std::vector<double> offFreq(n, 0.0);
    for (std::size_t i = 0; i < draws; ++i) {
        const std::size_t k = chooser->sample(rng);
        // key = (frontier + n - 1 - offset) % n with frontier = 7
        const std::size_t offset = (7 + n - 1 - k) % n;
        offFreq[offset] += 1.0;
    }
    for (double &f : offFreq)
        f /= static_cast<double>(draws);
    EXPECT_LT(ksStatistic(offFreq, zipfPmf(n, theta)), 0.005);
}

// ---------------------------------------------------------------------------
// Determinism & names
// ---------------------------------------------------------------------------

TEST(KeyChooser, SameSeedSameStream)
{
    for (const KeyDistKind kind :
         {KeyDistKind::Uniform, KeyDistKind::Zipfian,
          KeyDistKind::Hotspot, KeyDistKind::Latest}) {
        auto a = makeKeyChooser(spec(kind), 333);
        auto b = makeKeyChooser(spec(kind), 333);
        Rng ra(42), rb(42);
        for (int i = 0; i < 5'000; ++i)
            ASSERT_EQ(a->sample(ra), b->sample(rb))
                << keyDistName(kind) << " draw " << i;
    }
}

TEST(KeyDistNames, RoundTripAndRejectUnknown)
{
    for (const KeyDistKind kind :
         {KeyDistKind::Uniform, KeyDistKind::Zipfian,
          KeyDistKind::Hotspot, KeyDistKind::Latest}) {
        KeyDistKind parsed;
        ASSERT_TRUE(parseKeyDistName(keyDistName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    KeyDistKind out;
    EXPECT_FALSE(parseKeyDistName("zipf", out));
    EXPECT_FALSE(parseKeyDistName("", out));
    EXPECT_FALSE(parseKeyDistName("ZIPFIAN", out));
}

} // namespace
} // namespace tstream
