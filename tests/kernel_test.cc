/**
 * @file
 * Tests for the Solaris-like kernel substrate: dispatcher (including
 * the work-stealing scan), synchronization, VM/TLB, copies, block
 * device + DMA, STREAMS queues, IP assembly, and syscalls.
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernel/kernel.hh"
#include "mem/multichip.hh"
#include "mem/singlechip.hh"

namespace tstream
{
namespace
{

/** Fixture owning an engine + kernel over a small multi-chip. */
class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : eng_(std::make_unique<MultiChipSystem>(), 1234), kern_(eng_)
    {
        eng_.setTracing(true);
    }

    SysCtx
    ctx(unsigned cpu)
    {
        return SysCtx(eng_, kern_, static_cast<CpuId>(cpu), nullptr);
    }

    Engine eng_;
    Kernel kern_;
};

/** A task counting its own quanta. */
class CountingTask : public Task
{
  public:
    explicit CountingTask(int limit, RunResult then = RunResult::Done)
        : limit_(limit), then_(then)
    {
    }

    RunResult
    run(SysCtx &c) override
    {
        ++runs;
        c.exec(100);
        return runs >= limit_ ? then_ : RunResult::Yield;
    }

    int runs = 0;

  private:
    int limit_;
    RunResult then_;
};

TEST_F(KernelTest, SpawnMakesThreadRunnable)
{
    auto *task = new CountingTask(3);
    kern_.spawn(std::unique_ptr<Task>(task), 0);
    EXPECT_EQ(kern_.dispatcher().runnableCount(), 1u);
    kern_.run(100'000);
    EXPECT_EQ(task->runs, 3);
    EXPECT_EQ(kern_.liveThreads(), 0u);
}

TEST_F(KernelTest, RoundRobinAcrossCpus)
{
    std::vector<CountingTask *> tasks;
    for (unsigned i = 0; i < 8; ++i) {
        tasks.push_back(new CountingTask(5));
        kern_.spawn(std::unique_ptr<Task>(tasks.back()),
                    static_cast<CpuId>(i % eng_.numCpus()));
    }
    kern_.run(10'000'000);
    for (auto *t : tasks)
        EXPECT_EQ(t->runs, 5);
}

TEST_F(KernelTest, WorkStealingFindsRemoteWork)
{
    // All tasks pinned to cpu 0's queue: other cpus must steal.
    std::vector<CountingTask *> tasks;
    for (unsigned i = 0; i < 6; ++i) {
        tasks.push_back(new CountingTask(4));
        kern_.spawn(std::unique_ptr<Task>(tasks.back()), 0);
    }
    kern_.run(10'000'000);
    for (auto *t : tasks)
        EXPECT_EQ(t->runs, 4);
}

TEST_F(KernelTest, SchedulerEmitsCategorizedAccesses)
{
    for (unsigned i = 0; i < 4; ++i)
        kern_.spawn(std::make_unique<CountingTask>(50), 0);
    kern_.run(1'000'000);
    std::uint64_t sched = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::KernelScheduler)
            ++sched;
    EXPECT_GT(sched, 0u);
}

TEST_F(KernelTest, CvBlockAndWake)
{
    class Blocker : public Task
    {
      public:
        Blocker(SimCondVar &cv)
            : cv_(cv)
        {
        }
        RunResult
        run(SysCtx &c) override
        {
            ++runs;
            if (runs == 1) {
                c.kernel().cvBlock(c, cv_);
                return RunResult::Blocked;
            }
            return RunResult::Done;
        }
        int runs = 0;

      private:
        SimCondVar &cv_;
    };

    class Waker : public Task
    {
      public:
        Waker(SimCondVar &cv)
            : cv_(cv)
        {
        }
        RunResult
        run(SysCtx &c) override
        {
            ++calls;
            if (calls < 3)
                return RunResult::Yield; // let the blocker block
            c.kernel().cvWake(c, cv_);
            return RunResult::Done;
        }
        int calls = 0;

      private:
        SimCondVar &cv_;
    };

    SimCondVar cv = kern_.makeCondVar();
    auto *blocker = new Blocker(cv);
    kern_.spawn(std::unique_ptr<Task>(blocker), 0);
    kern_.spawn(std::make_unique<Waker>(cv), 1);
    kern_.run(5'000'000);
    EXPECT_EQ(blocker->runs, 2); // blocked once, woken, finished
    EXPECT_EQ(kern_.liveThreads(), 0u);
}

TEST_F(KernelTest, MutexContentionTouchesTurnstile)
{
    SimMutex m = kern_.makeMutex();
    auto c0 = ctx(0);
    auto c1 = ctx(1);
    m.acquire(c0);
    const auto before = eng_.totalInstructions();
    m.acquire(c1); // contended: spins + turnstile
    EXPECT_GT(eng_.totalInstructions(), before);
    m.release(c1);
}

TEST_F(KernelTest, MutexBouncesBetweenCpus)
{
    SimMutex m = kern_.makeMutex();
    // Alternate acquire/release between two cpus; the lock word must
    // produce coherence misses.
    for (int i = 0; i < 20; ++i) {
        auto c = ctx(i % 2);
        m.acquire(c);
        m.release(c);
    }
    std::uint64_t coh = 0;
    for (const auto &mr : eng_.memory().offChipTrace().misses)
        if (static_cast<MissClass>(mr.cls) == MissClass::Coherence)
            ++coh;
    EXPECT_GT(coh, 5u);
}

TEST_F(KernelTest, CondVarQueueFifo)
{
    SimCondVar cv = kern_.makeCondVar();
    auto t1 = std::make_unique<CountingTask>(1);
    auto t2 = std::make_unique<CountingTask>(1);
    KThread *k1 = kern_.spawn(std::move(t1), 0);
    KThread *k2 = kern_.spawn(std::move(t2), 0);
    auto c = ctx(0);
    cv.enqueue(c, k1);
    cv.enqueue(c, k2);
    EXPECT_EQ(cv.waiters(), 2u);
    EXPECT_EQ(cv.dequeue(c), k1);
    EXPECT_EQ(cv.dequeue(c), k2);
    EXPECT_EQ(cv.dequeue(c), nullptr);
}

TEST_F(KernelTest, VmTlbHitsAreFree)
{
    auto c = ctx(0);
    const Addr a = seg::userHeap(0);
    kern_.vm().translate(c, a); // miss: fills
    const auto misses = kern_.vm().tlbMisses();
    kern_.vm().translate(c, a); // hit
    kern_.vm().translate(c, a + 8); // same page: hit
    EXPECT_EQ(kern_.vm().tlbMisses(), misses);
}

TEST_F(KernelTest, VmTlbIsPerCpu)
{
    auto c0 = ctx(0);
    auto c1 = ctx(1);
    const Addr a = seg::userHeap(0);
    kern_.vm().translate(c0, a);
    const auto misses = kern_.vm().tlbMisses();
    kern_.vm().translate(c1, a); // other cpu: its own miss
    EXPECT_EQ(kern_.vm().tlbMisses(), misses + 1);
}

TEST_F(KernelTest, VmEmitsMmuCategorizedAccesses)
{
    auto c = ctx(0);
    for (unsigned p = 0; p < 2000; ++p)
        kern_.vm().translate(c, seg::userHeap(0) + p * kPageSize);
    std::uint64_t mmu = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::KernelMmuTrap)
            ++mmu;
    EXPECT_GT(mmu, 0u);
}

TEST_F(KernelTest, CopyoutInvalidatesDestination)
{
    auto c = ctx(0);
    const Addr src = kern_.kernelHeap().allocBlocks(8);
    const Addr dst = seg::userHeap(3);
    // Make dst cached first.
    eng_.read(0, dst, 512, 0);
    kern_.copy().copyout(c, dst, src, 512);
    // dst blocks were invalidated by the non-allocating stores: the
    // next read misses with IoCoherence.
    const auto before = eng_.memory().offChipTrace().misses.size();
    eng_.read(0, dst, 512, 0);
    const auto &ms = eng_.memory().offChipTrace().misses;
    ASSERT_GT(ms.size(), before);
    EXPECT_EQ(static_cast<MissClass>(ms.back().cls),
              MissClass::IoCoherence);
}

TEST_F(KernelTest, BlockDevRecycledStagingReusesAddresses)
{
    auto c = ctx(0);
    const Addr dst = seg::kBufferPool;
    const auto io0 = kern_.blockdev().ioCount();
    kern_.blockdev().read(c, dst, 4096, /*recycle=*/true);
    kern_.blockdev().read(c, dst, 4096, /*recycle=*/true);
    EXPECT_EQ(kern_.blockdev().ioCount(), io0 + 2);
    // With recycling, the same staging buffer is DMA'd twice: the
    // copy's source reads must hit IoCoherence on the second read.
    std::uint64_t io = 0;
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (static_cast<MissClass>(m.cls) == MissClass::IoCoherence)
            ++io;
    EXPECT_GT(io, 32u);
}

TEST_F(KernelTest, BlockDevStreamingStagingIsCompulsory)
{
    auto c = ctx(0);
    const Addr dst = seg::kBufferPool;
    kern_.blockdev().read(c, dst, 4096, /*recycle=*/false);
    kern_.blockdev().read(c, dst + 4096, 4096, /*recycle=*/false);
    std::uint64_t comp = 0, io = 0;
    for (const auto &m : eng_.memory().offChipTrace().misses) {
        if (static_cast<MissClass>(m.cls) == MissClass::Compulsory)
            ++comp;
        if (static_cast<MissClass>(m.cls) == MissClass::IoCoherence)
            ++io;
    }
    // Fresh staging every time: compulsory reads dominate.
    EXPECT_GT(comp, 100u);
    EXPECT_LT(io, 16u);
}

TEST_F(KernelTest, StreamsQueuePutGetRoundTrip)
{
    StreamsQueue q(kern_.streams(), kern_.kernelHeap());
    auto c0 = ctx(0);
    auto c1 = ctx(1);
    EXPECT_TRUE(q.empty());
    q.put(c0, seg::userHeap(1), 1024);
    q.put(c0, seg::userHeap(1) + 2048, 512);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.get(c1, seg::userHeap(2)), 1024u);
    EXPECT_EQ(q.get(c1, seg::userHeap(2)), 512u);
    EXPECT_EQ(q.get(c1, seg::userHeap(2)), 0u);
}

TEST_F(KernelTest, StreamsEmitsStreamsCategory)
{
    StreamsQueue q(kern_.streams(), kern_.kernelHeap());
    for (int i = 0; i < 50; ++i) {
        auto cp = ctx(i % 2);
        q.put(cp, seg::userHeap(1), 1024);
        auto cg = ctx((i + 1) % 2);
        q.get(cg, seg::userHeap(2));
    }
    std::uint64_t streams = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::KernelStreams)
            ++streams;
    EXPECT_GT(streams, 10u);
}

TEST_F(KernelTest, IpSendPacketizes)
{
    auto c = ctx(0);
    const Addr pcb = kern_.ip().newPcb();
    const auto p0 = kern_.ip().packetsSent();
    kern_.ip().send(c, pcb, seg::userHeap(4), 4000);
    EXPECT_EQ(kern_.ip().packetsSent(), p0 + 3); // ceil(4000/1460)
    kern_.ip().send(c, pcb, seg::userHeap(4), 100);
    EXPECT_EQ(kern_.ip().packetsSent(), p0 + 4);
}

TEST_F(KernelTest, SyscallsTouchPerProcessState)
{
    auto p = kern_.syscalls().newProc();
    for (int i = 0; i < 8; ++i)
        kern_.syscalls().newFile();
    auto c = ctx(0);
    kern_.syscalls().poll(c, p, {0, 1, 2, 3});
    kern_.syscalls().readEntry(c, p, 1);
    kern_.syscalls().writeEntry(c, p, 2);
    kern_.syscalls().openStat(c, p, 999);
    std::uint64_t sys = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::SystemCalls)
            ++sys;
    EXPECT_GT(sys, 0u);
}

TEST_F(KernelTest, RunStopsWhenNoThreadsLeft)
{
    kern_.spawn(std::make_unique<CountingTask>(1), 0);
    const auto before = eng_.totalInstructions();
    kern_.run(100'000'000); // budget far beyond the single quantum
    // Must terminate early rather than burn the full budget.
    EXPECT_LT(eng_.totalInstructions() - before, 1'000'000u);
}

TEST(KernelSingleChip, RunWorksOnCmpToo)
{
    Engine eng(std::make_unique<SingleChipSystem>(), 77);
    Kernel kern(eng);
    eng.setTracing(true);
    auto *t = new CountingTask(10);
    kern.spawn(std::unique_ptr<Task>(t), 2);
    kern.run(1'000'000);
    EXPECT_EQ(t->runs, 10);
}

} // namespace
} // namespace tstream
