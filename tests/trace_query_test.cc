/**
 * @file
 * Differential and fuzz tests for the queryable trace store
 * (trace/query.hh + the mmap/slice TraceReader).
 *
 * The core correctness argument is differential: a naive reference
 * scanner (decode *everything*, filter in a loop, no index use) is
 * compared bit-for-bit against the indexed query engine on a fixed-
 * seed randomized suite of filter/window combinations. On top of that
 * sit decode-counter checks (window queries decode only overlapping
 * chunks), mmap-vs-stdio equivalence, archive round trips, and
 * corruption/truncation fuzz enforcing the "diagnostic failure, never
 * a crash" contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <vector>

#include "core/stream_analysis.hh"
#include "trace/query.hh"
#include "trace/trace_io.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

long
sizeOf(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long s = std::ftell(f);
    std::fclose(f);
    return s;
}

std::vector<unsigned char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * A synthetic trace with enough structure for every filter to bite:
 * several cpus, all four miss classes, a smallish function id pool
 * (so --module matches many records), clustered blocks, and seq gaps
 * (so window boundaries land between records, not only on them).
 */
MissTrace
makeTrace(std::uint64_t count, std::uint64_t seed, unsigned numCpus,
          std::uint16_t fnPool)
{
    Rng rng(seed);
    MissTrace t;
    t.numCpus = numCpus;
    t.instructions = 40'000'000;
    std::uint64_t seq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        seq += 1 + rng.below(5); // gaps: windows can split records
        MissRecord m;
        m.seq = seq;
        m.block = 0x1000 + rng.below(2048); // clustered: ranges match
        m.cpu = static_cast<CpuId>(rng.below(numCpus));
        m.cls = static_cast<std::uint8_t>(rng.below(4));
        m.fn = static_cast<FnId>(rng.below(fnPool));
        t.misses.push_back(m);
    }
    return t;
}

/** A registry whose ids cover makeTrace()'s fn pool. */
FunctionRegistry
makeRegistry(std::uint16_t fnPool)
{
    FunctionRegistry reg; // id 0 is the reserved unknown entry
    for (std::uint16_t i = 1; i < fnPool; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "fn_%03u", i);
        reg.intern(name,
                   static_cast<Category>(i % kNumCategories));
    }
    return reg;
}

// ---------------------------------------------------------------------------
// The naive reference scanner: decode everything, filter in a loop.
// Deliberately index-free and structured differently from the engine.
// ---------------------------------------------------------------------------

struct NaiveResult
{
    bool ok = false;
    std::string error;
    std::vector<MissRecord> records;
};

NaiveResult
naiveScan(const std::string &path, const QuerySpec &spec)
{
    NaiveResult out;
    auto reader = TraceReader::open(path);
    if (!reader) {
        out.error = reader.error();
        return out;
    }
    const TraceMeta &meta = reader->meta();

    const bool intra = meta.kind == TraceContentKind::IntraChip ||
                       meta.kind == TraceContentKind::IntraChipOnChip;

    std::optional<std::uint8_t> wantCls;
    if (!spec.cls.empty()) {
        const std::size_t n =
            intra ? kNumIntraClasses : kNumMissClasses;
        for (std::size_t c = 0; c < n; ++c) {
            const std::string_view name =
                intra ? intraClassName(static_cast<IntraClass>(c))
                      : missClassName(static_cast<MissClass>(c));
            if (name == spec.cls)
                wantCls = static_cast<std::uint8_t>(c);
        }
        if (!wantCls) {
            out.error = "naive: unknown class";
            return out;
        }
    }

    std::optional<FnId> wantFn;
    if (!spec.module.empty()) {
        for (std::size_t i = 0; i < meta.functions.size(); ++i)
            if (meta.functions[i].name == spec.module)
                wantFn = static_cast<FnId>(i);
        if (!wantFn) {
            out.error = "naive: unknown module";
            return out;
        }
    }

    std::optional<Category> wantCat;
    if (!spec.category.empty()) {
        for (std::size_t c = 0; c < kNumCategories; ++c)
            if (categoryName(static_cast<Category>(c)) ==
                spec.category)
                wantCat = static_cast<Category>(c);
        if (!wantCat) {
            out.error = "naive: unknown category";
            return out;
        }
        if (meta.functions.empty()) {
            out.error = "naive: no function table";
            return out;
        }
    }

    auto all = reader->readAll();
    if (!all) {
        out.error = all.error();
        return out;
    }
    for (const MissRecord &m : all->misses) {
        if (spec.seqLo && m.seq < *spec.seqLo)
            continue;
        if (spec.seqHi && m.seq >= *spec.seqHi)
            continue;
        if (spec.cpu && m.cpu != *spec.cpu)
            continue;
        if (wantCls && m.cls != *wantCls)
            continue;
        if (spec.blockLo && m.block < *spec.blockLo)
            continue;
        if (spec.blockHi && m.block >= *spec.blockHi)
            continue;
        if (wantFn && m.fn != *wantFn)
            continue;
        if (wantCat) {
            const Category c =
                m.fn < meta.functions.size()
                    ? meta.functions[m.fn].category
                    : Category::Uncategorized;
            if (c != *wantCat)
                continue;
        }
        out.records.push_back(m);
    }
    out.ok = true;
    return out;
}

void
expectSameRecords(const std::vector<MissRecord> &a,
                  const std::vector<MissRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq) << "record " << i;
        EXPECT_EQ(a[i].block, b[i].block) << "record " << i;
        EXPECT_EQ(a[i].cpu, b[i].cpu) << "record " << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << "record " << i;
        EXPECT_EQ(a[i].fn, b[i].fn) << "record " << i;
    }
}

/** Save makeTrace() output with a small chunk size (many chunks). */
std::string
saveFixture(const char *name, const MissTrace &t,
            const FunctionRegistry *reg, std::uint32_t chunkRecords,
            TraceContentKind kind = TraceContentKind::OffChip)
{
    const std::string path = tmpPath(name);
    TraceWriteOptions w;
    w.chunkRecords = chunkRecords;
    w.kind = kind;
    w.registry = reg;
    w.configHash = 0xfeedface12345678ull;
    EXPECT_TRUE(saveTrace(t, path, w));
    return path;
}

// ---------------------------------------------------------------------------
// chunkRangeForSeq unit cases
// ---------------------------------------------------------------------------

TEST(TraceQuery, ChunkRangeForSeqBounds)
{
    const MissTrace t = makeTrace(4000, 7, 8, 64);
    const std::string path =
        saveFixture("range_unit.tst", t, nullptr, 256);
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    const std::vector<TraceChunk> &chunks = reader->meta().chunks;
    ASSERT_GT(chunks.size(), 4u);

    // Degenerate windows select nothing.
    EXPECT_EQ(reader->chunkRangeForSeq(10, 10).second,
              reader->chunkRangeForSeq(10, 10).first);
    EXPECT_EQ(reader->chunkRangeForSeq(20, 10).second,
              reader->chunkRangeForSeq(20, 10).first);

    // The full seq span selects every chunk.
    const auto full = reader->chunkRangeForSeq(0, ~0ull);
    EXPECT_EQ(full.first, 0u);
    EXPECT_EQ(full.second, chunks.size());

    // A window past the end selects at most the last chunk (the
    // conservative lo-1 step keeps one candidate).
    const std::uint64_t lastSeq = t.misses.back().seq;
    const auto past = reader->chunkRangeForSeq(lastSeq + 10'000,
                                               lastSeq + 20'000);
    EXPECT_LE(past.second - past.first, 1u);

    // Exhaustive agreement with a linear overlap scan, on every
    // chunk-boundary seed plus offsets around it.
    const auto lastOf = [&](std::size_t i) {
        return i + 1 < chunks.size() ? chunks[i + 1].firstSeq - 1
                                     : lastSeq;
    };
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        for (const std::int64_t d0 : {-2, -1, 0, 1, 2}) {
            const std::uint64_t t0 =
                chunks[i].firstSeq +
                static_cast<std::uint64_t>(d0 + 2) -
                2; // may wrap for chunk 0; harmless, still a window
            const std::uint64_t t1 = t0 + 700;
            const auto r = reader->chunkRangeForSeq(t0, t1);
            for (std::size_t c = 0; c < chunks.size(); ++c) {
                const bool overlaps = chunks[c].firstSeq < t1 &&
                                      lastOf(c) >= t0;
                if (overlaps) {
                    EXPECT_GE(c, r.first) << "t0=" << t0;
                    EXPECT_LT(c, r.second) << "t0=" << t0;
                }
            }
            // And at most one non-overlapping chunk is included.
            std::size_t extra = 0;
            for (std::size_t c = r.first; c < r.second; ++c)
                if (!(chunks[c].firstSeq < t1 && lastOf(c) >= t0))
                    ++extra;
            EXPECT_LE(extra, 1u) << "t0=" << t0;
        }
    }
}

// ---------------------------------------------------------------------------
// The differential suite: ~100 fixed-seed random filter/window combos
// on two recorded-trace-shaped fixtures, indexed engine vs naive scan.
// ---------------------------------------------------------------------------

QuerySpec
randomSpec(Rng &rng, const MissTrace &t, const TraceMeta &meta)
{
    QuerySpec spec;
    const std::uint64_t lastSeq = t.misses.back().seq;

    if (rng.below(2) == 0) { // temporal window (half get one)
        const std::uint64_t a = rng.below(lastSeq + 200);
        const std::uint64_t b = rng.below(lastSeq + 200);
        spec.seqLo = std::min(a, b);
        spec.seqHi = std::max(a, b) + 1;
    }
    if (rng.below(3) == 0)
        spec.cpu = static_cast<std::uint32_t>(
            rng.below(meta.numCpus + 1)); // sometimes matches nothing
    if (rng.below(3) == 0)
        spec.cls = std::string(missClassName(
            static_cast<MissClass>(rng.below(kNumMissClasses))));
    if (rng.below(4) == 0) {
        const std::uint64_t lo = 0x1000 + rng.below(2048);
        spec.blockLo = lo;
        spec.blockHi = lo + 1 + rng.below(512);
    }
    if (!meta.functions.empty()) {
        if (rng.below(4) == 0)
            spec.module =
                meta.functions[rng.below(meta.functions.size())]
                    .name;
        else if (rng.below(4) == 0)
            spec.category = std::string(categoryName(
                static_cast<Category>(rng.below(kNumCategories))));
    }
    return spec;
}

TEST(TraceQuery, DifferentialRandomizedVsNaiveScan)
{
    const std::uint16_t fnPool = 48;
    const FunctionRegistry reg = makeRegistry(fnPool);
    const MissTrace big = makeTrace(20'000, 11, 16, fnPool);
    const MissTrace small = makeTrace(900, 12, 4, fnPool);

    struct Fixture
    {
        std::string path;
        const MissTrace *trace;
    };
    const Fixture fixtures[] = {
        {saveFixture("diff_big.tst", big, &reg, 512), &big},
        {saveFixture("diff_small.tst", small, nullptr, 128), &small},
    };

    Rng rng(20260808);
    int ran = 0;
    for (int iter = 0; iter < 50; ++iter) {
        for (const Fixture &fx : fixtures) {
            auto reader = TraceReader::open(fx.path);
            ASSERT_TRUE(reader) << reader.error();
            const QuerySpec spec =
                randomSpec(rng, *fx.trace, reader->meta());

            const NaiveResult ref = naiveScan(fx.path, spec);
            auto got = queryRecords(*reader, spec);
            if (!ref.ok) {
                // Both sides must agree a filter doesn't resolve
                // (e.g. category filter on the table-free fixture).
                EXPECT_FALSE(static_cast<bool>(got))
                    << "engine matched where naive failed: "
                    << ref.error;
                continue;
            }
            ASSERT_TRUE(got) << got.error();
            expectSameRecords(ref.records, *got);
            ++ran;
        }
    }
    // The suite must actually exercise the comparison, not skip it.
    EXPECT_GE(ran, 80);
}

TEST(TraceQuery, WindowDecodesOnlyOverlappingChunks)
{
    const MissTrace t = makeTrace(20'000, 31, 8, 32);
    const std::string path =
        saveFixture("window_decode.tst", t, nullptr, 512);

    Rng rng(99);
    for (int iter = 0; iter < 25; ++iter) {
        const std::uint64_t lastSeq = t.misses.back().seq;
        const std::uint64_t a = rng.below(lastSeq);
        const std::uint64_t b = a + 1 + rng.below(lastSeq / 4);

        // Fresh reader per query: chunksDecoded() accumulates.
        auto reader = TraceReader::open(path);
        ASSERT_TRUE(reader) << reader.error();
        QuerySpec spec;
        spec.seqLo = a;
        spec.seqHi = b;
        const auto range = reader->chunkRangeForSeq(a, b);
        auto got = queryRecords(*reader, spec);
        ASSERT_TRUE(got) << got.error();
        EXPECT_EQ(reader->chunksDecoded(),
                  range.second - range.first);
        // Tight upper bound: chunks whose seq span intersects the
        // window, plus at most one conservative extra.
        std::size_t overlapping = 0;
        const std::vector<TraceChunk> &chunks =
            reader->meta().chunks;
        for (std::size_t c = 0; c < chunks.size(); ++c) {
            const std::uint64_t first = chunks[c].firstSeq;
            const std::uint64_t last =
                c + 1 < chunks.size() ? chunks[c + 1].firstSeq - 1
                                      : lastSeq;
            if (first < b && last >= a)
                ++overlapping;
        }
        EXPECT_LE(reader->chunksDecoded(), overlapping + 1);
        EXPECT_GE(reader->chunksDecoded(), overlapping);
    }
}

TEST(TraceQuery, MmapAndStdioPathsAgree)
{
    const std::uint16_t fnPool = 40;
    const FunctionRegistry reg = makeRegistry(fnPool);
    const MissTrace t = makeTrace(8'000, 17, 8, fnPool);
    const std::string path =
        saveFixture("mmap_vs_stdio.tst", t, &reg, 1024);

    TraceOpenOptions mm, io;
    io.allowMmap = false;

    auto a = TraceReader::open(path, mm);
    auto b = TraceReader::open(path, io);
    ASSERT_TRUE(a) << a.error();
    ASSERT_TRUE(b) << b.error();
    EXPECT_FALSE(b->usingMmap());
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(a->usingMmap());
#endif

    QuerySpec spec;
    spec.seqLo = 1'000;
    spec.seqHi = 9'000;
    spec.cls = std::string(missClassName(MissClass::Replacement));
    auto ra = queryRecords(*a, spec);
    auto rb = queryRecords(*b, spec);
    ASSERT_TRUE(ra) << ra.error();
    ASSERT_TRUE(rb) << rb.error();
    expectSameRecords(*ra, *rb);

    auto fa = a->readAll();
    auto fb = b->readAll();
    ASSERT_TRUE(fa) << fa.error();
    ASSERT_TRUE(fb) << fb.error();
    expectSameRecords(fa->misses, fb->misses);
}

// ---------------------------------------------------------------------------
// Aggregates: recomputed naively from the reference matched set.
// ---------------------------------------------------------------------------

TEST(TraceQuery, CountsAggregateMatchesNaiveRecount)
{
    const MissTrace t = makeTrace(6'000, 23, 8, 32);
    const std::string path =
        saveFixture("counts.tst", t, nullptr, 512);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    QuerySpec spec;
    spec.seqLo = 500;
    spec.seqHi = 9'500;
    spec.aggregates = {"counts"};
    spec.intervals = 6;
    auto out = runQuery(*reader, spec);
    ASSERT_TRUE(out) << out.error();

    const NaiveResult ref = naiveScan(path, spec);
    ASSERT_TRUE(ref.ok) << ref.error;
    EXPECT_EQ(out->matched, ref.records.size());

    ASSERT_EQ(out->rows.size(), 6u);
    std::uint64_t total = 0;
    for (const QueryRow &row : out->rows) {
        ASSERT_EQ(row.table, "counts");
        std::uint64_t lo = 0, hi = 0, misses = 0;
        double perClass[kNumMissClasses] = {};
        for (const auto &[name, value] : row.metrics) {
            if (name == "seq_lo")
                lo = static_cast<std::uint64_t>(value);
            else if (name == "seq_hi")
                hi = static_cast<std::uint64_t>(value);
            else if (name == "misses")
                misses = static_cast<std::uint64_t>(value);
            else
                for (std::size_t c = 0; c < kNumMissClasses; ++c)
                    if (name == missClassName(
                                    static_cast<MissClass>(c)))
                        perClass[c] = value;
        }
        std::uint64_t want = 0;
        double wantClass[kNumMissClasses] = {};
        for (const MissRecord &m : ref.records)
            if (m.seq >= lo && m.seq < hi) {
                ++want;
                wantClass[m.cls] += 1.0;
            }
        EXPECT_EQ(misses, want) << row.trace;
        for (std::size_t c = 0; c < kNumMissClasses; ++c)
            EXPECT_EQ(perClass[c], wantClass[c]) << row.trace;
        total += misses;
    }
    EXPECT_EQ(total, out->matched); // intervals partition the window
}

TEST(TraceQuery, StreamsAggregateMatchesDirectAnalysis)
{
    const MissTrace t = makeTrace(6'000, 29, 8, 32);
    const std::string path =
        saveFixture("streams.tst", t, nullptr, 1024);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    QuerySpec spec;
    spec.cpu = 3;
    spec.aggregates = {"streams"};
    auto out = runQuery(*reader, spec);
    ASSERT_TRUE(out) << out.error();
    ASSERT_EQ(out->rows.size(), 1u);

    const NaiveResult ref = naiveScan(path, spec);
    ASSERT_TRUE(ref.ok);
    MissTrace sub;
    sub.misses = ref.records;
    sub.instructions = reader->meta().instructions;
    sub.numCpus = reader->meta().numCpus;
    const StreamStats s = analyzeStreams(sub);
    const double tot =
        std::max<double>(1.0, static_cast<double>(s.totalMisses));

    const auto metric = [&](const char *name) {
        for (const auto &[k, v] : out->rows[0].metrics)
            if (k == name)
                return v;
        ADD_FAILURE() << "missing metric " << name;
        return 0.0;
    };
    EXPECT_EQ(metric("non_repetitive_pct"),
              100.0 * static_cast<double>(s.nonRepetitive) / tot);
    EXPECT_EQ(metric("in_streams_pct"),
              100.0 * s.inStreamFraction());
}

TEST(TraceQuery, StreamsAggregateRejectsOutOfRangeCpu)
{
    // A decodable-but-inconsistent trace: header says 2 cpus, records
    // carry cpu 5. analyzeStreams() would panic on this; the query
    // layer must fail with a diagnostic instead (fuzz contract).
    MissTrace t = makeTrace(200, 41, 2, 16);
    for (MissRecord &m : t.misses)
        m.cpu = 5;
    const std::string path =
        saveFixture("bad_cpu.tst", t, nullptr, 64);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    QuerySpec spec;
    spec.aggregates = {"streams"};
    auto out = runQuery(*reader, spec);
    ASSERT_FALSE(static_cast<bool>(out));
    EXPECT_NE(out.error().find("cpu out of range"),
              std::string::npos)
        << out.error();
}

TEST(TraceQuery, RunQueryRejectsUnknownAggregate)
{
    const MissTrace t = makeTrace(100, 43, 4, 16);
    const std::string path =
        saveFixture("bad_agg.tst", t, nullptr, 64);
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader) << reader.error();
    QuerySpec spec;
    spec.aggregates = {"sumary"};
    auto out = runQuery(*reader, spec);
    ASSERT_FALSE(static_cast<bool>(out));
    EXPECT_NE(out.error().find("unknown aggregate"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Archives: round trip, catalog fidelity, member queries.
// ---------------------------------------------------------------------------

TEST(TraceQuery, ArchiveRoundTripAndMemberQuery)
{
    const std::uint16_t fnPool = 32;
    const FunctionRegistry reg = makeRegistry(fnPool);
    const MissTrace a = makeTrace(5'000, 51, 16, fnPool);
    const MissTrace b = makeTrace(700, 52, 4, fnPool);
    const std::string pa = saveFixture("arch_a.tst", a, &reg, 512);
    const std::string pb =
        saveFixture("arch_b.tst", b, nullptr, 256,
                    TraceContentKind::IntraChipOnChip);

    const std::string ap = tmpPath("round.tsar");
    auto merged = mergeArchive(
        {{"oltp/multi-chip", pa}, {"kv/single-chip", pb}}, ap);
    ASSERT_TRUE(merged) << merged.error();
    EXPECT_EQ(*merged, 2u);

    EXPECT_TRUE(TraceArchive::isArchive(ap));
    EXPECT_FALSE(TraceArchive::isArchive(pa));

    auto ar = TraceArchive::open(ap);
    ASSERT_TRUE(ar) << ar.error();
    ASSERT_EQ(ar->members().size(), 2u);
    EXPECT_EQ(ar->find("nope"), nullptr);

    const ArchiveMember *ma = ar->find("oltp/multi-chip");
    const ArchiveMember *mb = ar->find("kv/single-chip");
    ASSERT_NE(ma, nullptr);
    ASSERT_NE(mb, nullptr);

    // Catalog fields are lifted verbatim from the member headers.
    EXPECT_EQ(ma->records, a.misses.size());
    EXPECT_EQ(ma->instructions, a.instructions);
    EXPECT_EQ(ma->numCpus, a.numCpus);
    EXPECT_EQ(ma->kind, TraceContentKind::OffChip);
    EXPECT_EQ(ma->configHash, 0xfeedface12345678ull);
    EXPECT_EQ(ma->seqFirst, a.misses.front().seq);
    EXPECT_EQ(ma->seqLast, a.misses.back().seq);
    EXPECT_EQ(mb->kind, TraceContentKind::IntraChipOnChip);
    EXPECT_EQ(mb->seqLast, b.misses.back().seq);
    EXPECT_EQ(static_cast<long>(ma->bytes), sizeOf(pa));
    EXPECT_EQ(static_cast<long>(mb->bytes), sizeOf(pb));

    // A member slice reads byte-identically to the standalone file.
    auto ra = ar->openMember(*ma);
    ASSERT_TRUE(ra) << ra.error();
    auto full = ra->readAll();
    ASSERT_TRUE(full) << full.error();
    expectSameRecords(full->misses, a.misses);

    // ... under both byte access paths.
    TraceOpenOptions io;
    io.allowMmap = false;
    auto rb = ar->openMember(*mb, io);
    ASSERT_TRUE(rb) << rb.error();
    auto fullB = rb->readAll();
    ASSERT_TRUE(fullB) << fullB.error();
    expectSameRecords(fullB->misses, b.misses);

    // Queries against the member equal queries on the original file.
    QuerySpec spec;
    spec.seqLo = 2'000;
    spec.seqHi = 11'000;
    spec.cls = std::string(missClassName(MissClass::Coherence));
    auto viaArchive = ar->openMember(*ma);
    ASSERT_TRUE(viaArchive) << viaArchive.error();
    auto standalone = TraceReader::open(pa);
    ASSERT_TRUE(standalone) << standalone.error();
    auto qa = queryRecords(*viaArchive, spec);
    auto qs = queryRecords(*standalone, spec);
    ASSERT_TRUE(qa) << qa.error();
    ASSERT_TRUE(qs) << qs.error();
    expectSameRecords(*qa, *qs);
    // Index acceleration works identically through the slice.
    EXPECT_EQ(viaArchive->chunksDecoded(),
              standalone->chunksDecoded());
    EXPECT_LT(viaArchive->chunksDecoded(),
              viaArchive->meta().chunks.size());
}

TEST(TraceQuery, MergeArchiveRejectsBadInputs)
{
    const MissTrace t = makeTrace(100, 61, 4, 16);
    const std::string p = saveFixture("merge_in.tst", t, nullptr, 64);
    const std::string out = tmpPath("merge_bad.tsar");

    EXPECT_FALSE(static_cast<bool>(mergeArchive({}, out)));
    EXPECT_FALSE(static_cast<bool>(
        mergeArchive({{"", p}}, out))); // empty name
    EXPECT_FALSE(static_cast<bool>(
        mergeArchive({{"a", p}, {"a", p}}, out))); // duplicate
    EXPECT_FALSE(static_cast<bool>(mergeArchive(
        {{"a", tmpPath("enoent.tst")}}, out))); // unreadable member

    // A text file is not a valid member trace.
    const std::string text = tmpPath("not_a_trace.txt");
    writeFileBytes(text, {'h', 'e', 'l', 'l', 'o', '\n'});
    EXPECT_FALSE(static_cast<bool>(mergeArchive({{"a", text}}, out)));
}

// ---------------------------------------------------------------------------
// Corruption/truncation fuzz: diagnostic failure, never a crash, and
// the differential rule — whenever the naive scan succeeds on the
// mutated file, the indexed engine succeeds with identical rows.
// ---------------------------------------------------------------------------

/** Run both engines on @p path; enforce the crash-free contract. */
void
fuzzOne(const std::string &path, const QuerySpec &spec)
{
    const NaiveResult ref = naiveScan(path, spec);
    auto reader = TraceReader::open(path);
    if (!reader) {
        EXPECT_FALSE(reader.error().empty());
        // open() failing means readAll() could not have run either.
        EXPECT_FALSE(ref.ok);
        return;
    }
    auto got = queryRecords(*reader, spec);
    if (ref.ok) {
        ASSERT_TRUE(got) << got.error();
        expectSameRecords(ref.records, *got);
    } else if (!got) {
        EXPECT_FALSE(got.error().empty());
    }
    // ref failed but the windowed query succeeded: legal — the naive
    // scan decodes chunks the window never touches.
}

TEST(TraceQuery, FuzzBitFlipsNeverCrash)
{
    const std::uint16_t fnPool = 24;
    const FunctionRegistry reg = makeRegistry(fnPool);
    const MissTrace t = makeTrace(3'000, 71, 8, fnPool);
    const std::string clean =
        saveFixture("fuzz_src.tst", t, &reg, 256);
    const std::vector<unsigned char> bytes = readFile(clean);
    ASSERT_FALSE(bytes.empty());

    QuerySpec window;
    window.seqLo = 100;
    window.seqHi = 4'000;
    const QuerySpec everything;

    const std::string mutant = tmpPath("fuzz_mut.tst");
    Rng rng(424242);
    for (int iter = 0; iter < 160; ++iter) {
        std::vector<unsigned char> mut = bytes;
        // Bias half the flips into the header + chunk index (the
        // trust-critical regions); spray the rest over the payload.
        std::size_t off;
        if (iter % 2 == 0 && bytes.size() > 96)
            off = rng.below(2) == 0
                      ? rng.below(96)
                      : bytes.size() - 1 - rng.below(192);
        else
            off = rng.below(bytes.size());
        mut[off] ^= static_cast<unsigned char>(
            1u << rng.below(8));
        writeFileBytes(mutant, mut);
        fuzzOne(mutant, everything);
        fuzzOne(mutant, window);
    }
}

TEST(TraceQuery, FuzzTruncationsNeverCrash)
{
    const MissTrace t = makeTrace(2'000, 73, 8, 16);
    const std::string clean =
        saveFixture("trunc_src.tst", t, nullptr, 256);
    const std::vector<unsigned char> bytes = readFile(clean);

    const std::string mutant = tmpPath("trunc_mut.tst");
    Rng rng(515151);
    std::vector<std::size_t> cuts = {0,  1,  4,  27, 71, 72,
                                     73, bytes.size() - 1};
    for (int i = 0; i < 24; ++i)
        cuts.push_back(rng.below(bytes.size()));
    for (const std::size_t cut : cuts) {
        std::vector<unsigned char> mut(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<long>(cut));
        writeFileBytes(mutant, mut);
        fuzzOne(mutant, QuerySpec{});
    }
}

TEST(TraceQuery, FuzzArchiveCatalogNeverCrashes)
{
    const MissTrace a = makeTrace(800, 81, 4, 16);
    const MissTrace b = makeTrace(600, 82, 4, 16);
    const std::string pa =
        saveFixture("afz_a.tst", a, nullptr, 128);
    const std::string pb =
        saveFixture("afz_b.tst", b, nullptr, 128);
    const std::string ap = tmpPath("afz.tsar");
    auto merged = mergeArchive({{"a", pa}, {"b", pb}}, ap);
    ASSERT_TRUE(merged) << merged.error();
    const std::vector<unsigned char> bytes = readFile(ap);

    const std::string mutant = tmpPath("afz_mut.tsar");
    Rng rng(616161);
    for (int iter = 0; iter < 120; ++iter) {
        std::vector<unsigned char> mut = bytes;
        // Target the archive header and catalog tail most often.
        std::size_t off;
        if (iter % 3 != 0)
            off = rng.below(2) == 0
                      ? rng.below(24)
                      : bytes.size() - 1 - rng.below(160);
        else
            off = rng.below(bytes.size());
        mut[off] ^= static_cast<unsigned char>(1u << rng.below(8));
        writeFileBytes(mutant, mut);

        auto ar = TraceArchive::open(mutant);
        if (!ar) {
            EXPECT_FALSE(ar.error().empty());
            continue;
        }
        for (const ArchiveMember &m : ar->members()) {
            auto r = ar->openMember(m);
            if (!r)
                continue; // diagnostic failure is the contract
            auto all = r->readAll();
            if (!all)
                continue;
            // Readable member: records must satisfy the index
            // invariants the reader promises (ordered seqs).
            for (std::size_t i = 1; i < all->misses.size(); ++i)
                EXPECT_GE(all->misses[i].seq,
                          all->misses[i - 1].seq);
        }
    }

    // Truncations across the whole file, catalog included.
    for (int i = 0; i < 24; ++i) {
        const std::size_t cut = rng.below(bytes.size());
        std::vector<unsigned char> mut(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<long>(cut));
        writeFileBytes(mutant, mut);
        auto ar = TraceArchive::open(mutant);
        if (ar)
            for (const ArchiveMember &m : ar->members()) {
                auto r = ar->openMember(m);
                if (r)
                    (void)r->readAll();
            }
    }
}

TEST(TraceQuery, SliceBoundsAreEnforced)
{
    const MissTrace t = makeTrace(500, 91, 4, 16);
    const std::string p = saveFixture("slice.tst", t, nullptr, 128);
    const long size = sizeOf(p);

    // Past-the-end slices fail up front with the bounds diagnostic.
    auto past = TraceReader::openSlice(
        p, static_cast<std::uint64_t>(size) + 1, 4);
    EXPECT_FALSE(static_cast<bool>(past));
    auto overlong = TraceReader::openSlice(
        p, 8, static_cast<std::uint64_t>(size));
    EXPECT_FALSE(static_cast<bool>(overlong));

    // A whole-file slice is just the file.
    auto whole = TraceReader::openSlice(
        p, 0, static_cast<std::uint64_t>(size));
    ASSERT_TRUE(whole) << whole.error();
    auto all = whole->readAll();
    ASSERT_TRUE(all) << all.error();
    expectSameRecords(all->misses, t.misses);
}

} // namespace
} // namespace tstream
