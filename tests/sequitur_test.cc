/**
 * @file
 * Unit and property tests for the SEQUITUR grammar builder: exact
 * reconstruction, invariant maintenance, and known-grammar cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sequitur.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

std::vector<std::uint64_t>
buildAndExpand(const std::vector<std::uint64_t> &in)
{
    Sequitur g;
    g.appendAll(in);
    return g.expandRule(Sequitur::kRootRule);
}

TEST(Sequitur, EmptyGrammar)
{
    Sequitur g;
    EXPECT_EQ(g.inputLength(), 0u);
    EXPECT_EQ(g.ruleCount(), 1u); // just the root
    EXPECT_TRUE(g.expandRule(Sequitur::kRootRule).empty());
    g.checkInvariants();
}

TEST(Sequitur, SingleSymbol)
{
    Sequitur g;
    g.append(42);
    EXPECT_EQ(g.expandRule(Sequitur::kRootRule),
              (std::vector<std::uint64_t>{42}));
    g.checkInvariants();
}

TEST(Sequitur, NoRepetitionCreatesNoRules)
{
    Sequitur g;
    g.appendAll({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_EQ(g.ruleCount(), 1u);
    g.checkInvariants();
}

TEST(Sequitur, ClassicAbcdbc)
{
    // From the SEQUITUR paper: "abcdbc" yields root a A d A with
    // A -> b c.
    Sequitur g;
    g.appendAll({'a', 'b', 'c', 'd', 'b', 'c'});
    EXPECT_EQ(g.ruleCount(), 2u);
    EXPECT_EQ(buildAndExpand({'a', 'b', 'c', 'd', 'b', 'c'}),
              (std::vector<std::uint64_t>{'a', 'b', 'c', 'd', 'b', 'c'}));
    g.checkInvariants();
}

TEST(Sequitur, HierarchyFormation)
{
    // "abcdbcabcdbc": the whole half repeats; expect nested rules and a
    // root of two identical non-terminals.
    Sequitur g;
    const std::vector<std::uint64_t> in{'a', 'b', 'c', 'd', 'b', 'c',
                                        'a', 'b', 'c', 'd', 'b', 'c'};
    g.appendAll(in);
    EXPECT_EQ(g.expandRule(Sequitur::kRootRule), in);
    const auto root = g.ruleBody(Sequitur::kRootRule);
    ASSERT_EQ(root.size(), 2u);
    EXPECT_TRUE(root[0].isRule);
    EXPECT_TRUE(root[1].isRule);
    EXPECT_EQ(root[0].value, root[1].value);
    g.checkInvariants();
}

TEST(Sequitur, RunsOfIdenticalSymbols)
{
    for (std::size_t n = 1; n <= 40; ++n) {
        std::vector<std::uint64_t> in(n, 7);
        Sequitur g;
        g.appendAll(in);
        EXPECT_EQ(g.expandRule(Sequitur::kRootRule), in) << "n=" << n;
        g.checkInvariants(true);
    }
}

TEST(Sequitur, RuleUtilityInlinesSingleUseRules)
{
    // "aabaaab" exercises rule creation then inlining (from the JAIR
    // paper's discussion of utility).
    const std::vector<std::uint64_t> in{'a', 'a', 'b', 'a', 'a', 'a',
                                        'b'};
    Sequitur g;
    g.appendAll(in);
    EXPECT_EQ(g.expandRule(Sequitur::kRootRule), in);
    g.checkInvariants(true);
    // Every non-root rule must be referenced at least twice.
    for (auto id : g.liveRuleIds()) {
        if (id == Sequitur::kRootRule)
            continue;
        EXPECT_GE(g.ruleRefs(id), 1u);
    }
}

TEST(Sequitur, RuleLengthsMatchExpansion)
{
    Sequitur g;
    std::vector<std::uint64_t> in;
    for (int rep = 0; rep < 6; ++rep)
        for (std::uint64_t v : {1, 2, 3, 4, 5, 9, 2, 3, 4, 7})
            in.push_back(v);
    g.appendAll(in);
    const auto lens = g.ruleLengths();
    for (auto id : g.liveRuleIds()) {
        EXPECT_EQ(lens[id], g.expandRule(id).size()) << "rule " << id;
    }
    EXPECT_EQ(lens[Sequitur::kRootRule], in.size());
}

TEST(Sequitur, DetectsLongRepeatedSequence)
{
    // A 50-symbol "stream" occurring three times among noise: expect a
    // rule whose expansion length is (close to) 50.
    Rng rng(123);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 50; ++i)
        stream.push_back(1000 + i);

    std::vector<std::uint64_t> in;
    auto noise = [&](int n) {
        for (int i = 0; i < n; ++i)
            in.push_back(rng.range(1, 500)); // mostly unique pairs
    };
    noise(100);
    in.insert(in.end(), stream.begin(), stream.end());
    noise(100);
    in.insert(in.end(), stream.begin(), stream.end());
    noise(100);
    in.insert(in.end(), stream.begin(), stream.end());

    Sequitur g;
    g.appendAll(in);
    EXPECT_EQ(g.expandRule(Sequitur::kRootRule), in);

    const auto lens = g.ruleLengths();
    std::uint64_t longest = 0;
    for (auto id : g.liveRuleIds())
        if (id != Sequitur::kRootRule)
            longest = std::max(longest, lens[id]);
    EXPECT_GE(longest, 45u);
    g.checkInvariants(true);
}

// ---------------------------------------------------------------------
// Property tests over random inputs: exact reconstruction and both
// SEQUITUR invariants for a spread of alphabet sizes and lengths.
// ---------------------------------------------------------------------

struct SequiturPropertyParam
{
    std::uint64_t seed;
    std::size_t length;
    std::uint64_t alphabet;
};

class SequiturPropertyTest
    : public ::testing::TestWithParam<SequiturPropertyParam>
{
};

TEST_P(SequiturPropertyTest, ReconstructsInputAndKeepsInvariants)
{
    const auto param = GetParam();
    Rng rng(param.seed);
    std::vector<std::uint64_t> in(param.length);
    for (auto &v : in)
        v = rng.below(param.alphabet);

    Sequitur g;
    g.appendAll(in);
    EXPECT_EQ(g.expandRule(Sequitur::kRootRule), in);
    g.checkInvariants(true);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SequiturPropertyTest,
    ::testing::Values(
        SequiturPropertyParam{1, 10, 2}, SequiturPropertyParam{2, 100, 2},
        SequiturPropertyParam{3, 1000, 2},
        SequiturPropertyParam{4, 10000, 2},
        SequiturPropertyParam{5, 100, 4},
        SequiturPropertyParam{6, 1000, 4},
        SequiturPropertyParam{7, 10000, 4},
        SequiturPropertyParam{8, 1000, 16},
        SequiturPropertyParam{9, 10000, 16},
        SequiturPropertyParam{10, 50000, 16},
        SequiturPropertyParam{11, 1000, 256},
        SequiturPropertyParam{12, 10000, 256},
        SequiturPropertyParam{13, 50000, 1024},
        SequiturPropertyParam{14, 20000, 8},
        SequiturPropertyParam{15, 30000, 3}));

TEST(Sequitur, RepeatedBlocksWithPeriodicStructure)
{
    // Periodic input with a long period: SEQUITUR should compress the
    // repetition heavily (few root symbols relative to input).
    std::vector<std::uint64_t> period;
    Rng rng(77);
    for (int i = 0; i < 97; ++i)
        period.push_back(rng.below(64));

    Sequitur g;
    for (int rep = 0; rep < 50; ++rep)
        g.appendAll(period);

    EXPECT_EQ(g.inputLength(), 97u * 50u);
    const auto root = g.ruleBody(Sequitur::kRootRule);
    EXPECT_LT(root.size(), 97u * 5u);
    const auto out = g.expandRule(Sequitur::kRootRule);
    ASSERT_EQ(out.size(), 97u * 50u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], period[i % 97]) << "at " << i;
    g.checkInvariants(true);
}

} // namespace
} // namespace tstream
