/**
 * @file
 * Deterministic tests for the per-cell timeout/retry state machine
 * (util/retry.hh). Every path runs against a fake millisecond clock —
 * no real sleeps anywhere: success after retry, exhaustion into a
 * failure row, the backoff sequence and its cap, and the
 * timeout-vs-completion race in both delivery orders.
 */

#include <gtest/gtest.h>

#include "util/retry.hh"

namespace tstream
{
namespace
{

using Kind = RetryState::Decision::Kind;

RetryPolicy
policy(unsigned maxAttempts, std::int64_t timeoutMs)
{
    RetryPolicy p;
    p.maxAttempts = maxAttempts;
    p.timeoutMs = timeoutMs;
    p.backoffBaseMs = 200;
    p.backoffFactor = 2.0;
    p.backoffMaxMs = 10'000;
    return p;
}

TEST(RetryTest, FirstAttemptSucceeds)
{
    RetryState s(policy(3, 0));
    EXPECT_EQ(s.phase(), RetryState::Phase::Idle);
    EXPECT_EQ(s.beginAttempt(1000), 1u);
    EXPECT_EQ(s.phase(), RetryState::Phase::Running);
    EXPECT_EQ(s.onSuccess(1500).kind, Kind::Done);
    EXPECT_EQ(s.phase(), RetryState::Phase::Done);
    EXPECT_EQ(s.attempts(), 1u);
}

TEST(RetryTest, SuccessAfterRetry)
{
    RetryState s(policy(3, 0));
    EXPECT_EQ(s.beginAttempt(0), 1u);
    auto d = s.onFailure("exception: transient", 10);
    ASSERT_EQ(d.kind, Kind::RetryAt);
    EXPECT_EQ(d.retryAtMs, 10 + 200); // base backoff after attempt 1
    EXPECT_EQ(s.phase(), RetryState::Phase::Backoff);

    EXPECT_EQ(s.beginAttempt(d.retryAtMs), 2u);
    EXPECT_EQ(s.onSuccess(300).kind, Kind::Done);
    EXPECT_EQ(s.attempts(), 2u);
    EXPECT_EQ(s.failureCause(), "exception: transient");
}

TEST(RetryTest, ExhaustionBecomesFailure)
{
    RetryState s(policy(3, 0));
    std::int64_t now = 0;
    for (unsigned a = 1; a <= 2; ++a) {
        EXPECT_EQ(s.beginAttempt(now), a);
        auto d = s.onFailure("exception: boom", now);
        ASSERT_EQ(d.kind, Kind::RetryAt);
        now = d.retryAtMs;
    }
    EXPECT_EQ(s.beginAttempt(now), 3u);
    auto d = s.onFailure("exception: final boom", now);
    EXPECT_EQ(d.kind, Kind::Failed);
    EXPECT_EQ(s.phase(), RetryState::Phase::Failed);
    EXPECT_EQ(s.attempts(), 3u);
    EXPECT_EQ(s.failureCause(), "exception: final boom"); // last wins
}

TEST(RetryTest, BackoffSequenceIsExponentialAndCapped)
{
    RetryPolicy p = policy(10, 0);
    RetryState s(p);
    EXPECT_EQ(s.backoffDelayMs(1), 200);
    EXPECT_EQ(s.backoffDelayMs(2), 400);
    EXPECT_EQ(s.backoffDelayMs(3), 800);
    EXPECT_EQ(s.backoffDelayMs(4), 1600);
    EXPECT_EQ(s.backoffDelayMs(7), 10'000); // 12800 capped
    EXPECT_EQ(s.backoffDelayMs(9), 10'000);
}

TEST(RetryTest, AttemptTimesOutOnlyPastDeadline)
{
    RetryState s(policy(2, 500));
    s.beginAttempt(1000);
    EXPECT_FALSE(s.attemptTimedOut(1500)); // exactly at budget: no
    EXPECT_TRUE(s.attemptTimedOut(1501));
    // onTimeout is guarded: delivering it early changes nothing.
    EXPECT_EQ(s.onTimeout(1400).kind, Kind::None);
    EXPECT_EQ(s.phase(), RetryState::Phase::Running);
}

TEST(RetryTest, TimeoutThenRetryThenFailureRow)
{
    RetryState s(policy(2, 500));
    s.beginAttempt(0);
    auto d = s.onTimeout(501);
    ASSERT_EQ(d.kind, Kind::RetryAt);
    EXPECT_EQ(s.failureCause(), "timeout after 500ms");

    s.beginAttempt(d.retryAtMs);
    d = s.onTimeout(d.retryAtMs + 501);
    EXPECT_EQ(d.kind, Kind::Failed);
    EXPECT_EQ(s.attempts(), 2u);
}

// ---- the timeout-vs-completion race, both orders ---------------------------

TEST(RetryTest, CompletionDeliveredFirstWinsEvenPastDeadline)
{
    // The attempt overran its budget but the driver saw the result
    // before declaring the timeout: a result in hand beats an
    // abandoned retry.
    RetryState s(policy(2, 500));
    s.beginAttempt(0);
    EXPECT_TRUE(s.attemptTimedOut(900));
    EXPECT_EQ(s.onSuccess(900).kind, Kind::Done);
    // The late timeout is now a no-op.
    EXPECT_EQ(s.onTimeout(901).kind, Kind::None);
    EXPECT_EQ(s.phase(), RetryState::Phase::Done);
}

TEST(RetryTest, TimeoutDeliveredFirstMakesLateSuccessANoOp)
{
    RetryState s(policy(3, 500));
    s.beginAttempt(0);
    auto d = s.onTimeout(600);
    ASSERT_EQ(d.kind, Kind::RetryAt);
    // The abandoned attempt finishes later: ignored, phase unchanged.
    EXPECT_EQ(s.onSuccess(700).kind, Kind::None);
    EXPECT_EQ(s.phase(), RetryState::Phase::Backoff);
    // The retry then proceeds normally.
    s.beginAttempt(d.retryAtMs);
    EXPECT_EQ(s.onSuccess(d.retryAtMs + 10).kind, Kind::Done);
}

TEST(RetryTest, ZeroTimeoutNeverTimesOut)
{
    RetryState s(policy(1, 0));
    s.beginAttempt(0);
    EXPECT_FALSE(s.attemptTimedOut(1'000'000'000));
    EXPECT_EQ(s.onTimeout(1'000'000'000).kind, Kind::None);
}

} // namespace
} // namespace tstream
