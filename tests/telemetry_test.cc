/**
 * @file
 * Tests for the run-telemetry registry (obs/telemetry.hh): exact
 * counter/gauge/histogram totals under thread contention, span
 * nesting depths in the Chrome trace output, metrics/trace JSON
 * round-trips, and — the load-bearing performance contract — zero
 * heap allocations on every recording path while telemetry is
 * disabled (proved by a counting global operator new).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hh"
#include "util/json.hh"

// ---- counting global allocator ---------------------------------------------
// Every heap allocation in the test binary bumps gAllocs; the
// disabled-telemetry test asserts the delta across a burst of
// recording calls is exactly zero.

namespace
{
std::atomic<std::size_t> gAllocs{0};
} // namespace

void *
operator new(std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tstream
{
namespace
{

/** Fresh in-memory telemetry for each test. */
void
freshTelemetry()
{
    telemetry::enable(""); // in-memory: no exit artifacts
    telemetry::reset();
}

// ---- registry concurrency: exact totals ------------------------------------

TEST(TelemetryRegistry, ConcurrentCountsAreExact)
{
    freshTelemetry();
    constexpr int kThreads = 8;
    constexpr int kIncrements = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < kIncrements; ++i) {
                telemetry::count("test.counter");
                telemetry::gaugeAdd("test.gauge", 1);
                telemetry::observe("test.hist", 4.0);
            }
        });
    for (std::thread &t : threads)
        t.join();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kIncrements;
    EXPECT_EQ(telemetry::counterValue("test.counter"), total);
    EXPECT_EQ(telemetry::gaugeValue("test.gauge"),
              static_cast<std::int64_t>(total));
    EXPECT_EQ(telemetry::histogramCount("test.hist"), total);
    telemetry::disable();
}

TEST(TelemetryRegistry, CountersGaugesAndAbsentNames)
{
    freshTelemetry();
    telemetry::count("a", 5);
    telemetry::count("a", 2);
    telemetry::gaugeSet("g", 42);
    telemetry::gaugeAdd("g", -2);
    EXPECT_EQ(telemetry::counterValue("a"), 7u);
    EXPECT_EQ(telemetry::gaugeValue("g"), 40);
    EXPECT_EQ(telemetry::counterValue("no.such"), 0u);
    EXPECT_EQ(telemetry::gaugeValue("no.such"), 0);
    EXPECT_EQ(telemetry::histogramCount("no.such"), 0u);
    telemetry::disable();
}

TEST(TelemetryRegistry, HistogramSummaryIsExact)
{
    freshTelemetry();
    for (double v : {0.5, 1.0, 2.0, 1000.0})
        telemetry::observe("h", v);

    const json::Value doc = telemetry::metricsJson();
    ASSERT_TRUE(doc.isObject());
    const json::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "tstream-telemetry/v1");

    const json::Value *hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *h = hists->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->asUint(), 4u);
    EXPECT_DOUBLE_EQ(h->find("sum")->asDouble(), 1003.5);
    EXPECT_DOUBLE_EQ(h->find("min")->asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(h->find("max")->asDouble(), 1000.0);
    // Log-scale buckets: each sample lands in exactly one.
    std::uint64_t bucketTotal = 0;
    for (const json::Value &b : h->find("buckets")->items())
        bucketTotal += b.items()[1].asUint();
    EXPECT_EQ(bucketTotal, 4u);
    telemetry::disable();
}

// ---- spans ------------------------------------------------------------------

TEST(TelemetrySpans, NestingDepthsAppearInTrace)
{
    freshTelemetry();
    {
        telemetry::Span outer("outer", "test");
        outer.arg("id", std::string_view("cell-0"));
        {
            telemetry::Span inner("inner", "test");
            inner.arg("n", static_cast<std::int64_t>(7));
        }
    }
    EXPECT_EQ(telemetry::spanCount(), 2u);

    const json::Value doc = telemetry::traceEventsJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items().size(), 2u);

    std::int64_t outerDepth = -1, innerDepth = -1;
    for (const json::Value &ev : events->items()) {
        EXPECT_EQ(ev.find("ph")->asString(), "X");
        const json::Value *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        if (ev.find("name")->asString() == "outer") {
            outerDepth = args->find("depth")->asInt();
            EXPECT_EQ(args->find("id")->asString(), "cell-0");
        } else if (ev.find("name")->asString() == "inner") {
            innerDepth = args->find("depth")->asInt();
            EXPECT_EQ(args->find("n")->asInt(), 7);
        }
    }
    EXPECT_EQ(outerDepth, 0);
    EXPECT_EQ(innerDepth, 1);
    telemetry::disable();
}

TEST(TelemetrySpans, RecordSpanUsesExplicitTimestamps)
{
    freshTelemetry();
    telemetry::recordSpan("queue-wait", "test", 100, 350, "id", "c3");
    const json::Value doc = telemetry::traceEventsJson();
    const auto &events = doc.find("traceEvents")->items();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].find("name")->asString(), "queue-wait");
    EXPECT_EQ(events[0].find("ts")->asInt(), 100);
    EXPECT_EQ(events[0].find("dur")->asInt(), 250);
    EXPECT_EQ(events[0].find("args")->find("id")->asString(), "c3");
    telemetry::disable();
}

// ---- JSON round-trips -------------------------------------------------------

TEST(TelemetryJson, MetricsAndTraceRoundTripThroughParser)
{
    freshTelemetry();
    telemetry::count("rt.counter", 3);
    telemetry::gaugeSet("rt.gauge", -5);
    telemetry::observe("rt.hist", 12.0);
    { telemetry::Span s("rt.span", "test"); }

    for (const json::Value &doc :
         {telemetry::metricsJson(), telemetry::traceEventsJson()}) {
        json::Value parsed;
        std::string err;
        ASSERT_TRUE(json::Value::parse(doc.dump(), parsed, err)) << err;
        EXPECT_EQ(parsed, doc);
    }
    telemetry::disable();
}

TEST(TelemetryJson, TracePathDerivation)
{
    EXPECT_EQ(telemetry::tracePathFor("run.json"), "run.trace.json");
    EXPECT_EQ(telemetry::tracePathFor("out/metrics.json"),
              "out/metrics.trace.json");
    EXPECT_EQ(telemetry::tracePathFor("weird.dat"),
              "weird.dat.trace.json");
}

// ---- disabled telemetry is free --------------------------------------------

TEST(TelemetryDisabled, RecordingPathsAreAllocationFree)
{
    telemetry::disable();
    {
        telemetry::Span probe("off.probe", "test");
        EXPECT_FALSE(probe.active());
    }
    // No gtest assertions inside the measured region — only telemetry
    // calls may run between the two counter reads.
    const std::size_t before =
        gAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        telemetry::count("off.counter");
        telemetry::count("off.counter", 3);
        telemetry::gaugeSet("off.gauge", i);
        telemetry::gaugeAdd("off.gauge", -1);
        telemetry::observe("off.hist", static_cast<double>(i));
        telemetry::Span span("off.span", "test");
        span.arg("key", std::string_view("value"));
        span.arg("n", static_cast<std::int64_t>(i));
        telemetry::recordSpan("off.rec", "test", 0, 1);
    }
    const std::size_t after = gAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
    // And nothing was recorded.
    telemetry::enable("");
    EXPECT_EQ(telemetry::counterValue("off.counter"), 0u);
    telemetry::disable();
}

} // namespace
} // namespace tstream
