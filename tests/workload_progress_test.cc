/**
 * @file
 * Workload progress tests: the application emulators actually make
 * forward progress (transactions commit, requests complete, batches
 * finish) under the kernel's scheduler, in both system contexts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernel/kernel.hh"
#include "mem/multichip.hh"
#include "mem/singlechip.hh"
#include "sim/dss_workload.hh"
#include "sim/oltp_workload.hh"
#include "sim/web_workload.hh"

namespace tstream
{
namespace
{

template <typename System>
std::unique_ptr<Engine>
makeEngine(std::uint64_t seed)
{
    return std::make_unique<Engine>(std::make_unique<System>(), seed);
}

TEST(WorkloadProgress, OltpCommitsTransactions)
{
    auto eng = makeEngine<MultiChipSystem>(1);
    Kernel kern(*eng);
    OltpConfig cfg;
    cfg.rescale(0.05);
    OltpWorkload w(cfg);
    w.setup(kern);
    kern.run(3'000'000);
    EXPECT_GT(w.committed(), 50u);
}

TEST(WorkloadProgress, OltpCommitsOnSingleChipToo)
{
    auto eng = makeEngine<SingleChipSystem>(2);
    Kernel kern(*eng);
    OltpConfig cfg;
    cfg.rescale(0.05);
    OltpWorkload w(cfg);
    w.setup(kern);
    kern.run(3'000'000);
    EXPECT_GT(w.committed(), 50u);
}

TEST(WorkloadProgress, WebServesRequests)
{
    auto eng = makeEngine<MultiChipSystem>(3);
    Kernel kern(*eng);
    WebConfig cfg = WebConfig::apache();
    cfg.rescale(0.2);
    WebWorkload w(cfg);
    w.setup(kern);
    kern.run(4'000'000);
    EXPECT_GT(w.requestsServed(), 30u);
}

TEST(WorkloadProgress, ZeusBatchesServeMoreRequestsPerQuantum)
{
    auto engA = makeEngine<MultiChipSystem>(4);
    Kernel kernA(*engA);
    WebConfig ca = WebConfig::apache();
    ca.rescale(0.2);
    WebWorkload apache(ca);
    apache.setup(kernA);
    kernA.run(3'000'000);

    auto engZ = makeEngine<MultiChipSystem>(4);
    Kernel kernZ(*engZ);
    WebConfig cz = WebConfig::zeus();
    cz.rescale(0.2);
    WebWorkload zeus(cz);
    zeus.setup(kernZ);
    kernZ.run(3'000'000);

    EXPECT_GT(apache.requestsServed(), 0u);
    EXPECT_GT(zeus.requestsServed(), 0u);
}

TEST(WorkloadProgress, DssConsumesBatches)
{
    for (auto q : {DssConfig::Query::Q1, DssConfig::Query::Q2,
                   DssConfig::Query::Q17}) {
        auto eng = makeEngine<MultiChipSystem>(5);
        Kernel kern(*eng);
        DssConfig cfg;
        cfg.query = q;
        cfg.rescale(0.05);
        DssWorkload w(cfg);
        w.setup(kern);
        kern.run(2'000'000);
        EXPECT_GT(w.batchesDone(), 10u)
            << "query " << static_cast<int>(q);
    }
}

TEST(WorkloadProgress, WorkloadsKeepThreadsAlive)
{
    // Server workloads are closed loops: no thread should exit.
    auto eng = makeEngine<MultiChipSystem>(6);
    Kernel kern(*eng);
    OltpConfig cfg;
    cfg.rescale(0.05);
    OltpWorkload w(cfg);
    w.setup(kern);
    const auto live = kern.liveThreads();
    kern.run(2'000'000);
    EXPECT_EQ(kern.liveThreads(), live);
}

TEST(WorkloadProgress, ScaledConfigsStayConsistent)
{
    OltpConfig o;
    o.rescale(0.01);
    EXPECT_GE(o.customerPages, 16u);
    WebConfig wcfg = WebConfig::zeus();
    wcfg.rescale(0.01);
    EXPECT_GE(wcfg.workers, 4u);
    EXPECT_GE(wcfg.perlProcs, 2u);
    DssConfig d;
    d.rescale(0.01);
    EXPECT_GE(d.partPages, 16u);
}

} // namespace
} // namespace tstream
