/**
 * @file
 * Tests for the utility layer: deterministic RNG, Zipf sampling, the
 * simulated allocators, address helpers, and histograms.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address.hh"
#include "mem/sim_alloc.hh"
#include "stats/histogram.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, SkewConcentratesMassAtHead)
{
    ZipfSampler z(1000, 0.9);
    Rng r(5);
    std::uint64_t head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (z.sample(r) < 100)
            ++head;
    // With theta=0.9 the top 10% of items draw well over a third.
    EXPECT_GT(static_cast<double>(head) / n, 0.35);
}

TEST(Zipf, ThetaZeroIsUniformish)
{
    ZipfSampler z(100, 0.0);
    Rng r(6);
    std::uint64_t head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (z.sample(r) < 10)
            ++head;
    EXPECT_NEAR(static_cast<double>(head) / n, 0.10, 0.02);
}

TEST(Address, BlockHelpers)
{
    EXPECT_EQ(kBlockSize, 64u);
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kBlocksPerPage, 64u);
    EXPECT_EQ(blockOf(0), 0u);
    EXPECT_EQ(blockOf(63), 0u);
    EXPECT_EQ(blockOf(64), 1u);
    EXPECT_EQ(blockBase(3), 192u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(pageOf(4096), 1u);
}

TEST(Address, BlocksSpanned)
{
    EXPECT_EQ(blocksSpanned(0, 0), 0u);
    EXPECT_EQ(blocksSpanned(0, 1), 1u);
    EXPECT_EQ(blocksSpanned(0, 64), 1u);
    EXPECT_EQ(blocksSpanned(0, 65), 2u);
    EXPECT_EQ(blocksSpanned(63, 2), 2u);
    EXPECT_EQ(blocksSpanned(0, 4096), 64u);
}

TEST(BumpAllocator, MonotonicAndAligned)
{
    BumpAllocator a(0x1000, 0x100000);
    const Addr p1 = a.alloc(100, 64);
    const Addr p2 = a.alloc(10, 64);
    EXPECT_EQ(p1 % 64, 0u);
    EXPECT_EQ(p2 % 64, 0u);
    EXPECT_GT(p2, p1);
    EXPECT_GE(p2 - p1, 100u);
}

TEST(BumpAllocator, UsedTracksConsumption)
{
    BumpAllocator a(0, 4096);
    a.allocBlocks(2);
    EXPECT_EQ(a.used(), 128u);
}

TEST(RecyclingAllocator, ReusesFreedChunks)
{
    RecyclingAllocator a(0x1000, 0x100000, 2048, /*jitter=*/1);
    const Addr p1 = a.alloc();
    a.free(p1);
    EXPECT_EQ(a.alloc(), p1); // exact LIFO with jitter 1
}

TEST(RecyclingAllocator, JitterStaysWithinFreedSet)
{
    RecyclingAllocator a(0x1000, 0x100000, 1024, /*jitter=*/4);
    std::set<Addr> freed;
    std::vector<Addr> live;
    for (int i = 0; i < 8; ++i)
        live.push_back(a.alloc());
    for (Addr p : live)
        freed.insert(p), a.free(p);
    for (int i = 0; i < 8; ++i) {
        const Addr p = a.alloc();
        EXPECT_TRUE(freed.count(p)) << "reuse must come from the "
                                       "free list before fresh chunks";
        freed.erase(p);
    }
}

TEST(RecyclingAllocator, ChunkAlignment)
{
    RecyclingAllocator a(0x1000, 0x100000, 100);
    EXPECT_EQ(a.chunkSize() % kBlockSize, 0u);
    EXPECT_EQ(a.alloc() % kBlockSize, 0u);
}

TEST(Segments, UserHeapsAreDisjoint)
{
    EXPECT_GE(seg::userHeap(1) - seg::userHeap(0), seg::kUserStride);
    EXPECT_LT(seg::userHeap(0), seg::kDmaRegion);
    EXPECT_LT(seg::kKernelHeap + seg::kSegmentSize, seg::kBufferPool);
}

TEST(LogHistogram, BucketsAndCumulative)
{
    LogHistogram h(7, 1);
    h.add(1, 10);
    h.add(50, 20);
    h.add(5000, 30);
    h.add(5'000'000, 40);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_NEAR(h.fraction(h.bucketOf(50)), 0.20, 1e-9);
    EXPECT_NEAR(h.cumulativeAt(10000), 0.60, 1e-9);
    EXPECT_NEAR(h.cumulativeAt(10'000'000), 1.00, 1e-9);
}

TEST(LogHistogram, OverflowClampsToLastBucket)
{
    LogHistogram h(3, 2);
    h.add(999'999'999, 5);
    EXPECT_EQ(h.counts().back(), 5u);
}

TEST(WeightedCdf, PercentilesAndCumulative)
{
    WeightedCdf c;
    c.add(2, 50);
    c.add(8, 25);
    c.add(100, 25);
    EXPECT_NEAR(c.percentile(40), 2.0, 1e-9);
    EXPECT_NEAR(c.percentile(60), 8.0, 1e-9);
    EXPECT_NEAR(c.percentile(99), 100.0, 1e-9);
    EXPECT_NEAR(c.cumulativeAt(7), 0.50, 1e-9);
    EXPECT_NEAR(c.cumulativeAt(8), 0.75, 1e-9);
}

TEST(WeightedCdf, EmptyIsZero)
{
    WeightedCdf c;
    EXPECT_EQ(c.percentile(50), 0.0);
    EXPECT_EQ(c.cumulativeAt(10), 0.0);
}

} // namespace
} // namespace tstream
