/**
 * @file
 * Tests for the sharded cell-level experiment driver (sim/driver.hh)
 * and its work-stealing pool (util/work_pool.hh): deterministic grid
 * enumeration, disjoint-exact-cover sharding for any N, bounded pool
 * concurrency, strict bench argument parsing, and cell execution with
 * result ordering independent of the job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <thread>

#include "sim/driver.hh"
#include "util/work_pool.hh"

namespace tstream
{
namespace
{

const std::vector<WorkloadKind> kTwoWorkloads = {WorkloadKind::Oltp,
                                                 WorkloadKind::Apache};

BenchBudgets
tinyBudgets()
{
    BenchBudgets b;
    b.warmup = 100'000;
    b.measure = 300'000;
    b.scale = 0.05;
    return b;
}

TEST(DriverGridTest, EnumerationIsDeterministic)
{
    const auto a = standardGrid(kTwoWorkloads, tinyBudgets());
    const auto b = standardGrid(kTwoWorkloads, tinyBudgets());
    ASSERT_EQ(a.size(), 4u); // 2 workloads x 2 contexts
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, i);
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(configHash(a[i].cfg), configHash(b[i].cfg));
    }
    // Workload-major, multi-chip before single-chip.
    EXPECT_EQ(a[0].id, "DB2-OLTP/multi-chip");
    EXPECT_EQ(a[1].id, "DB2-OLTP/single-chip");
    EXPECT_EQ(a[2].id, "Apache/multi-chip");
    EXPECT_EQ(a[3].id, "Apache/single-chip");
}

TEST(DriverGridTest, GridCellsCarryBudgets)
{
    const BenchBudgets budgets = tinyBudgets();
    for (const Cell &c : standardGrid(kTwoWorkloads, budgets)) {
        EXPECT_EQ(c.cfg.warmupInstructions, budgets.warmup);
        EXPECT_EQ(c.cfg.measureInstructions, budgets.measure);
        EXPECT_DOUBLE_EQ(c.cfg.scale, budgets.scale);
    }
}

TEST(DriverShardTest, ShardsAreDisjointExactCoverForAnyN)
{
    const auto grid =
        standardGrid({WorkloadKind::Apache, WorkloadKind::Zeus,
                      WorkloadKind::Oltp, WorkloadKind::DssQ1,
                      WorkloadKind::DssQ2, WorkloadKind::DssQ17},
                     tinyBudgets());
    for (unsigned n = 1; n <= 13; ++n) {
        std::multiset<std::size_t> covered;
        for (unsigned k = 0; k < n; ++k) {
            const auto mine = shardCells(grid, ShardSpec{k, n});
            // Deterministic grid order within the shard.
            for (std::size_t i = 1; i < mine.size(); ++i)
                EXPECT_LT(mine[i - 1].index, mine[i].index);
            for (const Cell &c : mine)
                covered.insert(c.index);
        }
        // Exact cover: every cell exactly once across the N shards.
        ASSERT_EQ(covered.size(), grid.size()) << "N=" << n;
        for (std::size_t i = 0; i < grid.size(); ++i)
            EXPECT_EQ(covered.count(i), 1u) << "N=" << n;
    }
}

TEST(DriverShardTest, ParseShardSpec)
{
    ShardSpec s;
    EXPECT_TRUE(parseShardSpec("0/1", s));
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 1u);
    EXPECT_TRUE(parseShardSpec("3/8", s));
    EXPECT_EQ(s.index, 3u);
    EXPECT_EQ(s.count, 8u);

    EXPECT_FALSE(parseShardSpec("", s));
    EXPECT_FALSE(parseShardSpec("3", s));
    EXPECT_FALSE(parseShardSpec("/2", s));
    EXPECT_FALSE(parseShardSpec("2/", s));
    EXPECT_FALSE(parseShardSpec("2/2", s));  // k must be < N
    EXPECT_FALSE(parseShardSpec("0/0", s));
    EXPECT_FALSE(parseShardSpec("a/b", s));
    EXPECT_FALSE(parseShardSpec("1/2x", s));
}

TEST(WorkPoolTest, RunsEverySubmittedTask)
{
    WorkPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
    // wait() after completion is a no-op, and the pool can be reused.
    pool.wait();
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(WorkPoolTest, ConcurrencyIsBoundedByJobs)
{
    constexpr unsigned kJobs = 3;
    WorkPool pool(kJobs);
    std::atomic<int> current{0};
    std::atomic<int> maxSeen{0};
    std::atomic<int> ran{0};
    for (int i = 0; i < 48; ++i)
        pool.submit([&] {
            const int now = current.fetch_add(1) + 1;
            int prev = maxSeen.load();
            while (now > prev && !maxSeen.compare_exchange_weak(prev, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            current.fetch_sub(1);
            ran.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 48);
    EXPECT_LE(maxSeen.load(), static_cast<int>(kJobs));
    EXPECT_GE(maxSeen.load(), 1);
}

TEST(WorkPoolTest, StealsFromBusyNeighbours)
{
    // 2 workers, round-robin submission puts tasks 0,2,4.. on queue 0
    // and 1,3,5.. on queue 1; a long task on one queue must not stop
    // the other worker from stealing the rest.
    WorkPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ran.fetch_add(1);
    });
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    const auto t0 = std::chrono::steady_clock::now();
    pool.wait();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(ran.load(), 21);
    // All 20 short tasks fit comfortably inside the long task's 50 ms
    // if stealing works; give a wide margin for slow CI machines.
    EXPECT_LT(ms, 2000.0);
}

TEST(WorkPoolTest, DefaultJobsHonoursEnvironment)
{
    ::setenv("TSTREAM_JOBS", "5", 1);
    EXPECT_EQ(WorkPool::defaultJobs(), 5u);
    ::setenv("TSTREAM_JOBS", "not-a-number", 1);
    EXPECT_GE(WorkPool::defaultJobs(), 1u);
    ::unsetenv("TSTREAM_JOBS");
    EXPECT_GE(WorkPool::defaultJobs(), 1u);
}

TEST(BenchArgsTest, ParsesSupportedFlags)
{
    const char *argv[] = {"bench",      "--quick", "--jobs", "3",
                          "--shard",    "1/4",     "--json", "out.json"};
    const BenchOptions opts = parseBenchArgs(
        8, const_cast<char **>(argv), "bench_under_test");
    EXPECT_TRUE(opts.quick);
    EXPECT_EQ(opts.budgets.warmup, kQuickBudgets.warmupInstructions);
    EXPECT_EQ(opts.budgets.measure, kQuickBudgets.measureInstructions);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.shard.index, 1u);
    EXPECT_EQ(opts.shard.count, 4u);
    EXPECT_EQ(opts.jsonPath, "out.json");
}

TEST(BenchArgsTest, DefaultsToPaperBudgets)
{
    const char *argv[] = {"bench"};
    const BenchOptions opts =
        parseBenchArgs(1, const_cast<char **>(argv), "bench");
    EXPECT_FALSE(opts.quick);
    EXPECT_EQ(opts.budgets.warmup, kPaperBudgets.warmupInstructions);
    EXPECT_EQ(opts.shard.count, 1u);
}

TEST(BenchArgsDeathTest, RejectsUnknownFlags)
{
    // A typo must not silently fall back to paper-scale budgets.
    const char *argv[] = {"bench", "--qiuck"};
    EXPECT_EXIT(
        parseBenchArgs(2, const_cast<char **>(argv), "bench"),
        testing::ExitedWithCode(2), "unknown option: --qiuck");
}

TEST(BenchArgsDeathTest, RejectsBadShard)
{
    const char *argv[] = {"bench", "--shard", "4/4"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv), "bench"),
                testing::ExitedWithCode(2), "--shard wants k/N");
}

TEST(BenchArgsDeathTest, RejectsMissingValue)
{
    const char *argv[] = {"bench", "--jobs"};
    EXPECT_EXIT(parseBenchArgs(2, const_cast<char **>(argv), "bench"),
                testing::ExitedWithCode(2), "missing value");
}

// ---- claiming / retry flags -------------------------------------------------

class ClaimArgsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("TSTREAM_TRACE_CACHE");
        ::unsetenv("TSTREAM_CLAIM_SESSION");
        ::unsetenv("TSTREAM_CLAIM_TTL_MS");
        ::unsetenv("TSTREAM_HEARTBEAT_MS");
        ::unsetenv("TSTREAM_CELL_TIMEOUT_MS");
        ::unsetenv("TSTREAM_CELL_RETRIES");
        ::unsetenv("TSTREAM_SHARD");
        ::unsetenv("TSTREAM_QUICK");
    }

    void
    TearDown() override
    {
        SetUp(); // same scrub on the way out
    }
};

using ClaimArgsDeathTest = ClaimArgsTest;

TEST_F(ClaimArgsTest, ParsesClaimAndRetryFlags)
{
    ::setenv("TSTREAM_TRACE_CACHE", "/tmp/tstream-cache", 1);
    const char *argv[] = {"bench",        "--claim-session", "sweep1",
                          "--claim-ttl",  "5000",            "--heartbeat",
                          "250",          "--cell-timeout",  "2000",
                          "--cell-retries", "5"};
    const BenchOptions opts = parseBenchArgs(
        11, const_cast<char **>(argv), "bench_under_test");
    EXPECT_EQ(opts.claimSession, "sweep1");
    EXPECT_EQ(opts.claimTtlMs, 5000);
    EXPECT_EQ(opts.heartbeatMs, 250);
    EXPECT_EQ(opts.cellTimeoutMs, 2000);
    EXPECT_EQ(opts.cellRetries, 5u);
    EXPECT_EQ(opts.claimDir(),
              "/tmp/tstream-cache/claims/sweep1/bench_under_test");

    // The driver options carry the whole claiming + retry surface.
    const DriverOptions d = opts.driver();
    EXPECT_TRUE(d.claim.enabled());
    EXPECT_EQ(d.claim.session, "sweep1");
    EXPECT_EQ(d.claim.dir, opts.claimDir());
    EXPECT_EQ(d.claim.ttlMs, 5000);
    EXPECT_EQ(d.claim.heartbeatMs, 250);
    EXPECT_EQ(d.retry.maxAttempts, 5u);
    EXPECT_EQ(d.retry.timeoutMs, 2000);
}

TEST_F(ClaimArgsTest, ClaimEnvFallbacks)
{
    ::setenv("TSTREAM_TRACE_CACHE", "/tmp/tstream-cache", 1);
    ::setenv("TSTREAM_CLAIM_SESSION", "env-sweep", 1);
    ::setenv("TSTREAM_CLAIM_TTL_MS", "7000", 1);
    ::setenv("TSTREAM_HEARTBEAT_MS", "0", 1);
    ::setenv("TSTREAM_CELL_TIMEOUT_MS", "0", 1);
    ::setenv("TSTREAM_CELL_RETRIES", "2", 1);
    const char *argv[] = {"bench"};
    const BenchOptions opts =
        parseBenchArgs(1, const_cast<char **>(argv), "bench");
    EXPECT_EQ(opts.claimSession, "env-sweep");
    EXPECT_EQ(opts.claimTtlMs, 7000);
    EXPECT_EQ(opts.heartbeatMs, 0);
    EXPECT_EQ(opts.cellTimeoutMs, 0);
    EXPECT_EQ(opts.cellRetries, 2u);
}

TEST_F(ClaimArgsTest, ClaimingDisabledByDefault)
{
    const char *argv[] = {"bench"};
    const BenchOptions opts =
        parseBenchArgs(1, const_cast<char **>(argv), "bench");
    EXPECT_TRUE(opts.claimSession.empty());
    EXPECT_EQ(opts.claimDir(), "");
    EXPECT_FALSE(opts.driver().claim.enabled());
    EXPECT_EQ(opts.cellRetries, 3u);
    EXPECT_EQ(opts.cellTimeoutMs, 0);
}

TEST_F(ClaimArgsDeathTest, ClaimSessionNeedsTraceCache)
{
    const char *argv[] = {"bench", "--claim-session", "s"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(argv), "bench"),
                testing::ExitedWithCode(2),
                "--claim-session needs TSTREAM_TRACE_CACHE");
}

TEST_F(ClaimArgsDeathTest, ClaimSessionExcludesShard)
{
    ::setenv("TSTREAM_TRACE_CACHE", "/tmp/tstream-cache", 1);
    const char *argv[] = {"bench", "--claim-session", "s", "--shard",
                          "0/2"};
    EXPECT_EXIT(parseBenchArgs(5, const_cast<char **>(argv), "bench"),
                testing::ExitedWithCode(2),
                "--claim-session and --shard are mutually exclusive");
}

TEST_F(ClaimArgsDeathTest, ClaimSessionExcludesResume)
{
    ::setenv("TSTREAM_TRACE_CACHE", "/tmp/tstream-cache", 1);
    const char *argv[] = {"bench", "--claim-session", "s", "--resume",
                          "--json", "out.json"};
    EXPECT_EXIT(parseBenchArgs(6, const_cast<char **>(argv), "bench"),
                testing::ExitedWithCode(2),
                "--claim-session and --resume are mutually exclusive");
}

TEST_F(ClaimArgsDeathTest, RejectsNonNumericKnobs)
{
    const char *ttl[] = {"bench", "--claim-ttl", "0"};
    EXPECT_EXIT(parseBenchArgs(3, const_cast<char **>(ttl), "bench"),
                testing::ExitedWithCode(2),
                "--claim-ttl wants a positive integer");

    const char *retries[] = {"bench", "--cell-retries", "-1"};
    EXPECT_EXIT(
        parseBenchArgs(3, const_cast<char **>(retries), "bench"),
        testing::ExitedWithCode(2),
        "--cell-retries wants a positive integer");

    const char *timeout[] = {"bench", "--cell-timeout", "2s"};
    EXPECT_EXIT(
        parseBenchArgs(3, const_cast<char **>(timeout), "bench"),
        testing::ExitedWithCode(2),
        "--cell-timeout wants a non-negative integer");

    // Bad *environment* values die too — a typo in a fleet wrapper
    // must not silently fall back to defaults.
    ::setenv("TSTREAM_CELL_RETRIES", "many", 1);
    const char *plain[] = {"bench"};
    EXPECT_EXIT(parseBenchArgs(1, const_cast<char **>(plain), "bench"),
                testing::ExitedWithCode(2),
                "TSTREAM_CELL_RETRIES wants a positive integer");
}

class DriverRunTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Keep these tests hermetic from any user-level cache.
        ::unsetenv("TSTREAM_TRACE_CACHE");
        ::unsetenv("TSTREAM_SHARD");
        ::unsetenv("TSTREAM_QUICK");
    }
};

TEST_F(DriverRunTest, ExecutesCellsInGridOrder)
{
    const auto grid = standardGrid(kTwoWorkloads, tinyBudgets());
    DriverOptions opts;
    opts.jobs = 2;
    const auto results = runCells(grid, opts);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].cell.index, grid[i].index);
        EXPECT_EQ(results[i].cell.id, grid[i].id);
        EXPECT_GT(results[i].instructions, 0u);
        EXPECT_FALSE(results[i].cacheHit);
        // Multi-chip cells yield one trace, single-chip cells two.
        const bool single = results[i].cell.cfg.context ==
                            SystemContext::SingleChip;
        ASSERT_EQ(results[i].runs.size(), single ? 2u : 1u);
        EXPECT_EQ(results[i].runs[0].kind,
                  single ? TraceKind::SingleChip
                         : TraceKind::MultiChip);
        if (single) {
            EXPECT_EQ(results[i].runs[1].kind, TraceKind::IntraChip);
        }
        for (const RunOutput &r : results[i].runs) {
            EXPECT_FALSE(r.trace.misses.empty());
            EXPECT_GT(r.streams.totalMisses, 0u);
        }
    }
}

TEST_F(DriverRunTest, ShardedRunsPartitionTheGrid)
{
    const auto grid = standardGrid(kTwoWorkloads, tinyBudgets());
    DriverOptions opts;
    opts.jobs = 2;
    opts.analyzeStreams = false; // keep the test fast

    std::vector<std::string> ids;
    for (unsigned k = 0; k < 2; ++k) {
        opts.shard = ShardSpec{k, 2};
        for (const CellResult &res : runCells(grid, opts))
            ids.push_back(res.cell.id);
    }
    ASSERT_EQ(ids.size(), grid.size());
    std::set<std::string> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), grid.size());
}

TEST_F(DriverRunTest, AnalysisTogglesPerRun)
{
    auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    grid.resize(1); // multi-chip cell only
    DriverOptions opts;
    opts.jobs = 1;
    opts.analyzeStreams = false;
    const auto results = runCells(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].runs[0].streams.totalMisses, 0u);
    EXPECT_EQ(results[0].runs[0].modules.total, 0u);
}

TEST_F(DriverRunTest, TraceCacheCreatesMissingDirectoryAndHits)
{
    // Intentionally not created: traceCacheStore must mkdir -p it.
    // (remove_all first so a rerun does not inherit stale cells)
    const std::string root =
        testing::TempDir() + "/tstream_cache_test";
    std::filesystem::remove_all(root);
    const std::string cacheDir = root + "/nested/dir";
    ::setenv("TSTREAM_TRACE_CACHE", cacheDir.c_str(), 1);

    auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    DriverOptions opts;
    opts.jobs = 1;
    opts.analyzeStreams = false;

    const auto first = runCells(grid, opts);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_FALSE(first[0].cacheHit);
    EXPECT_FALSE(first[1].cacheHit);

    const auto second = runCells(grid, opts);
    ::unsetenv("TSTREAM_TRACE_CACHE");
    ASSERT_EQ(second.size(), 2u);
    EXPECT_TRUE(second[0].cacheHit);
    EXPECT_TRUE(second[1].cacheHit);

    // A cached cell reproduces the simulated one exactly.
    for (std::size_t c = 0; c < 2; ++c) {
        ASSERT_EQ(second[c].runs.size(), first[c].runs.size());
        EXPECT_EQ(second[c].instructions, first[c].instructions);
        for (std::size_t r = 0; r < first[c].runs.size(); ++r) {
            const MissTrace &a = first[c].runs[r].trace;
            const MissTrace &b = second[c].runs[r].trace;
            ASSERT_EQ(a.misses.size(), b.misses.size());
            for (std::size_t i = 0; i < a.misses.size(); ++i) {
                EXPECT_EQ(a.misses[i].block, b.misses[i].block);
                EXPECT_EQ(a.misses[i].cpu, b.misses[i].cpu);
                EXPECT_EQ(a.misses[i].cls, b.misses[i].cls);
            }
        }
    }
}

} // namespace
} // namespace tstream
