/**
 * @file
 * Tests for the DB2-like engine: buffer pool, B+-tree, heap tables,
 * transaction manager, plan interpreter, and client IPC.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/interp.hh"
#include "db/ipc.hh"
#include "db/table.hh"
#include "db/txn.hh"
#include "kernel/kernel.hh"
#include "mem/multichip.hh"

namespace tstream
{
namespace
{

class DbTest : public ::testing::Test
{
  protected:
    DbTest()
        : eng_(std::make_unique<MultiChipSystem>(), 99), kern_(eng_)
    {
        eng_.setTracing(true);
    }

    SysCtx
    ctx(unsigned cpu = 0)
    {
        return SysCtx(eng_, kern_, static_cast<CpuId>(cpu), nullptr);
    }

    Engine eng_;
    Kernel kern_;
};

// ---------------------------------------------------------------------
// Buffer pool.
// ---------------------------------------------------------------------

TEST_F(DbTest, PoolMissThenHit)
{
    BufferPoolConfig cfg;
    cfg.frames = 64;
    BufferPool bp(kern_, cfg);
    auto c = ctx();
    EXPECT_FALSE(bp.resident(5));
    const Addr f1 = bp.fix(c, 5);
    EXPECT_TRUE(bp.resident(5));
    EXPECT_EQ(bp.misses(), 1u);
    const Addr f2 = bp.fix(c, 5);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(bp.misses(), 1u);
    EXPECT_GT(bp.hitRate(), 0.0);
}

TEST_F(DbTest, PoolFrameAddressesAreDistinctAndPageAligned)
{
    BufferPoolConfig cfg;
    cfg.frames = 64;
    BufferPool bp(kern_, cfg);
    auto c = ctx();
    std::set<Addr> frames;
    for (PageId p = 0; p < 32; ++p) {
        const Addr f = bp.fix(c, p);
        EXPECT_EQ(f % kPageSize, 0u);
        frames.insert(f);
    }
    EXPECT_EQ(frames.size(), 32u);
}

TEST_F(DbTest, PoolEvictsWhenFull)
{
    BufferPoolConfig cfg;
    cfg.frames = 16;
    BufferPool bp(kern_, cfg);
    auto c = ctx();
    for (PageId p = 0; p < 64; ++p)
        bp.fix(c, p);
    // Capacity respected: at most 16 pages resident.
    unsigned resident = 0;
    for (PageId p = 0; p < 64; ++p)
        resident += bp.resident(p) ? 1 : 0;
    EXPECT_LE(resident, 16u);
}

TEST_F(DbTest, PoolMissTriggersDiskIo)
{
    BufferPoolConfig cfg;
    cfg.frames = 16;
    BufferPool bp(kern_, cfg);
    auto c = ctx();
    const auto io0 = kern_.blockdev().ioCount();
    bp.fix(c, 1);
    EXPECT_EQ(kern_.blockdev().ioCount(), io0 + 1);
    bp.fix(c, 1);
    EXPECT_EQ(kern_.blockdev().ioCount(), io0 + 1);
}

TEST_F(DbTest, FixNewAllocatesWithoutDisk)
{
    BufferPoolConfig cfg;
    cfg.frames = 16;
    BufferPool bp(kern_, cfg);
    auto c = ctx();
    const auto io0 = kern_.blockdev().ioCount();
    const Addr f = bp.fixNew(c, 42);
    EXPECT_EQ(kern_.blockdev().ioCount(), io0);
    EXPECT_TRUE(bp.resident(42));
    EXPECT_EQ(f, bp.fix(c, 42));
}

// ---------------------------------------------------------------------
// B+-tree.
// ---------------------------------------------------------------------

TEST_F(DbTest, BTreeBuildGeometry)
{
    BufferPoolConfig cfg;
    cfg.frames = 2048;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0, /*fanout=*/128);
    t.build(128 * 128); // exactly two levels of 128
    EXPECT_EQ(t.height(), 2u);
    EXPECT_EQ(t.keyCount(), 128u * 128u);
    EXPECT_EQ(t.pagesUsed(), 128u + 1u);
}

TEST_F(DbTest, BTreeSingleLeaf)
{
    BufferPoolConfig cfg;
    cfg.frames = 64;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0);
    t.build(10);
    EXPECT_EQ(t.height(), 1u);
    auto c = ctx();
    EXPECT_EQ(t.lookup(c, 7), 7u);
}

TEST_F(DbTest, BTreeLookupReturnsKeyAsRid)
{
    BufferPoolConfig cfg;
    cfg.frames = 2048;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0);
    t.build(50'000);
    auto c = ctx();
    for (std::uint64_t k : {0ull, 1ull, 127ull, 128ull, 49'999ull})
        EXPECT_EQ(t.lookup(c, k), k);
    // Out-of-range clamps.
    EXPECT_EQ(t.lookup(c, 1'000'000), 49'999u);
}

TEST_F(DbTest, BTreeRangeScanVisitsEveryKeyInOrder)
{
    BufferPoolConfig cfg;
    cfg.frames = 2048;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0);
    t.build(1000);
    auto c = ctx();
    std::vector<std::uint64_t> seen;
    t.rangeScan(c, 100, 300,
                [&](SysCtx &, std::uint64_t r) { seen.push_back(r); });
    ASSERT_EQ(seen.size(), 300u);
    EXPECT_EQ(seen.front(), 100u);
    EXPECT_EQ(seen.back(), 399u);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], seen[i - 1] + 1);
}

TEST_F(DbTest, BTreeRangeScanStopsAtEnd)
{
    BufferPoolConfig cfg;
    cfg.frames = 256;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0);
    t.build(200);
    auto c = ctx();
    std::vector<std::uint64_t> seen;
    t.rangeScan(c, 150, 500,
                [&](SysCtx &, std::uint64_t r) { seen.push_back(r); });
    EXPECT_EQ(seen.size(), 50u);
}

TEST_F(DbTest, BTreeInsertDirtiesLeafAndEventuallySplits)
{
    BufferPoolConfig cfg;
    cfg.frames = 256;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0, /*fanout=*/16);
    t.build(64);
    auto c = ctx();
    const PageId before = t.pagesUsed();
    // 4*fanout inserts into the same leaf force one split.
    for (int i = 0; i < 64; ++i)
        t.insert(c, 3);
    EXPECT_GT(t.pagesUsed(), before);
}

TEST_F(DbTest, OverlappingRangeScansRevisitLeafPages)
{
    // The paper's example one: the same leaves are fixed again in the
    // same order by a second overlapping scan.
    BufferPoolConfig cfg;
    cfg.frames = 2048;
    BufferPool bp(kern_, cfg);
    BTree t(kern_, bp, 0);
    t.build(10'000);
    auto c = ctx();
    const auto missesBefore = bp.misses();
    t.rangeScan(c, 1000, 4000);
    const auto missesAfterFirst = bp.misses();
    // The second scan's range is contained in the first one's.
    t.rangeScan(c, 1500, 3000);
    // Second scan: all pages already resident.
    EXPECT_EQ(bp.misses(), missesAfterFirst);
    EXPECT_GT(missesAfterFirst, missesBefore);
}

// ---------------------------------------------------------------------
// Heap table.
// ---------------------------------------------------------------------

TEST_F(DbTest, TableGeometry)
{
    BufferPoolConfig cfg;
    cfg.frames = 256;
    BufferPool bp(kern_, cfg);
    HeapTable t(kern_, bp, 10, 100, 16, 240);
    EXPECT_EQ(t.tupleCount(), 1600u);
    EXPECT_EQ(t.firstPage(), 10u);
    EXPECT_EQ(t.pageCount(), 100u);
}

TEST_F(DbTest, TableFetchFixesTheRightPage)
{
    BufferPoolConfig cfg;
    cfg.frames = 256;
    BufferPool bp(kern_, cfg);
    HeapTable t(kern_, bp, 0, 100, 16, 240);
    auto c = ctx();
    t.fetch(c, 0);
    EXPECT_TRUE(bp.resident(0));
    t.fetch(c, 17); // second page
    EXPECT_TRUE(bp.resident(1));
    t.update(c, 1599); // last page
    EXPECT_TRUE(bp.resident(99));
}

TEST_F(DbTest, TableScanInvokesCallbackPerTuple)
{
    BufferPoolConfig cfg;
    cfg.frames = 256;
    BufferPool bp(kern_, cfg);
    HeapTable t(kern_, bp, 0, 10, 20, 100);
    auto c = ctx();
    unsigned calls = 0;
    t.scan(c, 0, 4, 0.5, [&](SysCtx &, std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 4u * 10u); // 50% of 20 tuples over 4 pages
}

// ---------------------------------------------------------------------
// Transactions, interpreter, IPC.
// ---------------------------------------------------------------------

TEST_F(DbTest, TxnLifecycleEmitsRequestControl)
{
    TxnManager txns(kern_, 8);
    auto c = ctx();
    const auto id = txns.begin(c, 3);
    txns.logAppend(c, 300);
    txns.touchCursor(c, 3, true);
    txns.commit(c, id);
    std::uint64_t rc = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::DbRequestControl)
            ++rc;
    EXPECT_GT(rc, 0u);
}

TEST_F(DbTest, LogWrapsAround)
{
    TxnConfig cfg;
    cfg.logBlocks = 8;
    TxnManager txns(kern_, 4, cfg);
    // Append more than the log capacity; must not fault and must
    // reuse addresses (coherence on the wrapped blocks when another
    // cpu appends).
    for (int i = 0; i < 10; ++i) {
        auto cc = ctx(i % 2);
        txns.logAppend(cc, 256);
    }
    std::uint64_t coh = 0;
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (static_cast<MissClass>(m.cls) == MissClass::Coherence)
            ++coh;
    EXPECT_GT(coh, 0u);
}

TEST_F(DbTest, InterpWalksEveryOp)
{
    InterpConfig cfg;
    cfg.nplans = 4;
    cfg.opsPerPlan = 10;
    PlanInterp interp(kern_, cfg);
    auto c = ctx();
    unsigned ops = 0;
    interp.execute(c, 2, [&](SysCtx &, unsigned) { ++ops; });
    EXPECT_EQ(ops, 10u);
    EXPECT_EQ(interp.planCount(), 4u);
}

TEST_F(DbTest, InterpPlansShareAcrossCpusCoherently)
{
    PlanInterp interp(kern_);
    for (int i = 0; i < 30; ++i) {
        auto c = ctx(i % 4);
        interp.execute(c, 1, [](SysCtx &, unsigned) {});
    }
    // The shared runtime-section writes make plan blocks migrate.
    std::uint64_t coh = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (static_cast<MissClass>(m.cls) == MissClass::Coherence &&
            reg.category(m.fn) == Category::DbRuntimeInterp)
            ++coh;
    EXPECT_GT(coh, 0u);
}

TEST_F(DbTest, IpcRoundTrip)
{
    DbIpc ipc(kern_, 16);
    auto c0 = ctx(0);
    auto c1 = ctx(1);
    ipc.receiveRequest(c0, 5);
    ipc.sendReply(c0, 5);
    // Another cpu serving the same client re-misses coherently.
    ipc.receiveRequest(c1, 5);
    std::uint64_t dbipc = 0;
    const auto &reg = eng_.registry();
    for (const auto &m : eng_.memory().offChipTrace().misses)
        if (reg.category(m.fn) == Category::DbIpc)
            ++dbipc;
    EXPECT_GT(dbipc, 0u);
}

} // namespace
} // namespace tstream
