/**
 * @file
 * Tests of the temporal-stream analysis: repetition labelling,
 * New/Recurring split, cross-CPU recurrence, stream lengths, reuse
 * distances, and the strided x repetitive joint breakdown.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/stream_analysis.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

/** Build a single-CPU trace from a block sequence. */
MissTrace
traceOf(const std::vector<BlockId> &blocks)
{
    MissTrace t;
    t.numCpus = 1;
    t.instructions = 1000 * blocks.size();
    for (std::size_t i = 0; i < blocks.size(); ++i)
        t.misses.push_back(
            MissRecord{i, blocks[i], 0, 0, 0});
    return t;
}

/** Append a per-CPU interleaved trace. */
MissTrace
traceOf(const std::vector<std::pair<unsigned, BlockId>> &seq,
        unsigned ncpu)
{
    MissTrace t;
    t.numCpus = ncpu;
    t.instructions = 1000 * seq.size();
    for (std::size_t i = 0; i < seq.size(); ++i)
        t.misses.push_back(MissRecord{
            i, seq[i].second, static_cast<CpuId>(seq[i].first), 0, 0});
    return t;
}

TEST(StreamAnalysis, EmptyTrace)
{
    MissTrace t;
    t.numCpus = 1;
    StreamStats s = analyzeStreams(t);
    EXPECT_EQ(s.totalMisses, 0u);
    EXPECT_EQ(s.inStreamFraction(), 0.0);
}

TEST(StreamAnalysis, AllUniqueIsNonRepetitive)
{
    std::vector<BlockId> blocks;
    for (BlockId b = 0; b < 500; ++b)
        blocks.push_back(b * 977 + 13);
    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_EQ(s.nonRepetitive, 500u);
    EXPECT_EQ(s.newStream + s.recurringStream, 0u);
}

TEST(StreamAnalysis, RepeatedSequenceSplitsNewAndRecurring)
{
    // The motif M (10 misses) appears 3 times among unique noise:
    // first occurrence New, later two Recurring.
    std::vector<BlockId> motif;
    for (BlockId b = 0; b < 10; ++b)
        motif.push_back(1000 + b * 3);

    std::vector<BlockId> blocks;
    BlockId fresh = 1;
    auto noise = [&](int n) {
        for (int i = 0; i < n; ++i)
            blocks.push_back(100000 + fresh++ * 7);
    };
    noise(30);
    blocks.insert(blocks.end(), motif.begin(), motif.end());
    noise(30);
    blocks.insert(blocks.end(), motif.begin(), motif.end());
    noise(30);
    blocks.insert(blocks.end(), motif.begin(), motif.end());
    noise(30);

    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_GE(s.newStream, 8u);
    EXPECT_LE(s.newStream, 14u); // about one motif's worth
    EXPECT_GE(s.recurringStream, 16u); // about two motifs' worth
    EXPECT_NEAR(static_cast<double>(s.nonRepetitive), 120.0, 8.0);
}

TEST(StreamAnalysis, LabelsAlignWithTraceOrder)
{
    std::vector<BlockId> blocks = {1, 2, 3, 900, 1, 2, 3, 901};
    StreamStats s = analyzeStreams(traceOf(blocks));
    ASSERT_EQ(s.labels.size(), 8u);
    // The two [1 2 3] occurrences are the stream.
    EXPECT_EQ(s.labels[0], RepLabel::NewStream);
    EXPECT_EQ(s.labels[4], RepLabel::RecurringStream);
    EXPECT_EQ(s.labels[3], RepLabel::NonRepetitive);
    EXPECT_EQ(s.labels[7], RepLabel::NonRepetitive);
}

TEST(StreamAnalysis, CrossCpuRecurrenceIsFound)
{
    // CPU 0 sees the motif first; CPU 1 replays it later. The paper's
    // streams recur across processors (Section 2.1).
    std::vector<std::pair<unsigned, BlockId>> seq;
    for (BlockId b = 0; b < 12; ++b)
        seq.push_back({0, 5000 + b});
    for (BlockId b = 0; b < 20; ++b)
        seq.push_back({1, 90000 + b * 991}); // unique noise on cpu 1
    for (BlockId b = 0; b < 12; ++b)
        seq.push_back({1, 5000 + b});

    StreamStats s = analyzeStreams(traceOf(seq, 2));
    EXPECT_GE(s.newStream + s.recurringStream, 20u);
    EXPECT_GE(s.recurringStream, 8u);
}

TEST(StreamAnalysis, PerCpuProjectionIgnoresInterleavingNoise)
{
    // The motif on CPU 0 is chopped up by CPU 1's misses in global
    // order; the per-CPU projection must still find it whole.
    std::vector<std::pair<unsigned, BlockId>> seq;
    BlockId fresh = 0;
    for (int rep = 0; rep < 3; ++rep) {
        for (BlockId b = 0; b < 10; ++b) {
            seq.push_back({0, 7000 + b});
            seq.push_back({1, 400000 + fresh++}); // unique
        }
    }
    StreamStats s = analyzeStreams(traceOf(seq, 2));
    // All 30 cpu-0 misses are stream misses.
    std::uint64_t cpu0InStream = 0;
    for (std::size_t i = 0; i < seq.size(); ++i)
        if (seq[i].first == 0 &&
            s.labels[i] != RepLabel::NonRepetitive)
            ++cpu0InStream;
    EXPECT_GE(cpu0InStream, 28u);
}

TEST(StreamAnalysis, StreamLengthWeighting)
{
    // One long motif (100) repeated twice and one short motif (4)
    // repeated twice: the length CDF is dominated by the long one.
    std::vector<BlockId> blocks;
    for (int rep = 0; rep < 2; ++rep) {
        for (BlockId b = 0; b < 100; ++b)
            blocks.push_back(10000 + b);
        for (BlockId b = 0; b < 4; ++b)
            blocks.push_back(20000 + b);
        blocks.push_back(777000 + rep); // separator noise
    }
    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_GE(s.medianStreamLength(), 50.0);
    // Total weighted length mass ~ all stream misses.
    std::uint64_t mass = 0;
    for (const auto &[len, w] : s.lengthWeighted)
        mass += w;
    EXPECT_NEAR(static_cast<double>(mass),
                static_cast<double>(s.newStream + s.recurringStream),
                static_cast<double>(s.totalMisses) * 0.15);
}

TEST(StreamAnalysis, ReuseDistanceCountsInterveningMisses)
{
    // Motif (len 8), then exactly 50 unique misses, then the motif
    // again, all on one CPU: reuse distance ~50.
    std::vector<BlockId> blocks;
    for (BlockId b = 0; b < 8; ++b)
        blocks.push_back(100 + b);
    for (BlockId b = 0; b < 50; ++b)
        blocks.push_back(50000 + b * 13);
    for (BlockId b = 0; b < 8; ++b)
        blocks.push_back(100 + b);

    StreamStats s = analyzeStreams(traceOf(blocks));
    ASSERT_FALSE(s.reuseWeighted.empty());
    // Find the dominant (largest-weight) reuse sample.
    auto major = *std::max_element(
        s.reuseWeighted.begin(), s.reuseWeighted.end(),
        [](const auto &a, const auto &b) {
            return a.second < b.second;
        });
    EXPECT_NEAR(static_cast<double>(major.first), 50.0, 10.0);
}

TEST(StreamAnalysis, ReuseDistanceUsesFirstProcessorsMisses)
{
    // Motif on CPU 0, then lots of CPU-1 noise, then the motif on
    // CPU 1. Distance is counted in CPU-0 misses (paper Section 4.5),
    // and CPU 0 issues only 3 misses in between.
    std::vector<std::pair<unsigned, BlockId>> seq;
    for (BlockId b = 0; b < 8; ++b)
        seq.push_back({0, 300 + b});
    for (BlockId b = 0; b < 200; ++b)
        seq.push_back({1, 800000 + b * 7});
    for (BlockId b = 0; b < 3; ++b)
        seq.push_back({0, 900000 + b * 11});
    for (BlockId b = 0; b < 8; ++b)
        seq.push_back({1, 300 + b});

    StreamStats s = analyzeStreams(traceOf(seq, 2));
    ASSERT_FALSE(s.reuseWeighted.empty());
    auto major = *std::max_element(
        s.reuseWeighted.begin(), s.reuseWeighted.end(),
        [](const auto &a, const auto &b) {
            return a.second < b.second;
        });
    EXPECT_LE(major.first, 6u); // ~3, certainly not ~200
}

TEST(StreamAnalysis, StridedAndRepetitiveAreOrthogonal)
{
    // A strided sweep repeated twice: strided AND repetitive.
    std::vector<BlockId> blocks;
    for (int rep = 0; rep < 2; ++rep)
        for (BlockId b = 0; b < 64; ++b)
            blocks.push_back(4096 + b);
    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_GT(s.stridedRepetitive, 80u);

    // A strided sweep over fresh addresses: strided, NOT repetitive.
    std::vector<BlockId> sweep;
    for (BlockId b = 0; b < 200; ++b)
        sweep.push_back(900000 + b);
    StreamStats s2 = analyzeStreams(traceOf(sweep));
    EXPECT_GT(s2.stridedNonRepetitive, 150u);
    EXPECT_EQ(s2.stridedRepetitive + s2.nonStridedRepetitive, 0u);
}

TEST(StreamAnalysis, CountsSumToTotal)
{
    Rng rng(31);
    std::vector<BlockId> blocks;
    for (int i = 0; i < 3000; ++i)
        blocks.push_back(rng.below(400));
    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_EQ(s.nonRepetitive + s.newStream + s.recurringStream,
              s.totalMisses);
    EXPECT_EQ(s.stridedRepetitive + s.stridedNonRepetitive +
                  s.nonStridedRepetitive + s.nonStridedNonRepetitive,
              s.totalMisses);
}

TEST(StreamAnalysis, MergedModeTreatsAllCpusAsOne)
{
    std::vector<std::pair<unsigned, BlockId>> seq;
    for (int rep = 0; rep < 2; ++rep)
        for (BlockId b = 0; b < 6; ++b)
            seq.push_back({b % 3u, 100 + b});
    StreamAnalysisConfig cfg;
    cfg.perCpu = false;
    StreamStats s = analyzeStreams(traceOf(seq, 3), cfg);
    EXPECT_GE(s.newStream + s.recurringStream, 10u);
}

TEST(StreamAnalysis, GrammarScalesToLargeTraces)
{
    Rng rng(8);
    std::vector<BlockId> blocks;
    std::vector<BlockId> motif;
    for (int i = 0; i < 40; ++i)
        motif.push_back(rng.below(1 << 20));
    while (blocks.size() < 200000) {
        if (rng.chance(0.3))
            blocks.insert(blocks.end(), motif.begin(), motif.end());
        else
            blocks.push_back(rng.below(1 << 22));
    }
    StreamStats s = analyzeStreams(traceOf(blocks));
    EXPECT_GT(s.inStreamFraction(), 0.3);
    // The motif compresses into a small rule hierarchy; unique noise
    // adds none. The exact count is grammar-shaped, just non-trivial.
    EXPECT_GE(s.grammarRules, 5u);
}

} // namespace
} // namespace tstream
