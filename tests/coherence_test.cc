/**
 * @file
 * Protocol tests for the multi-chip MSI DSM and the single-chip MOSI
 * CMP: state transitions, invalidations, supplier selection, and the
 * classification of traced misses.
 */

#include <gtest/gtest.h>

#include "mem/multichip.hh"
#include "mem/singlechip.hh"

namespace tstream
{
namespace
{

Access
read(unsigned cpu, Addr a)
{
    return Access{a, 64, AccessType::Read, static_cast<CpuId>(cpu), 0};
}

Access
write(unsigned cpu, Addr a)
{
    return Access{a, 64, AccessType::Write, static_cast<CpuId>(cpu), 0};
}

Access
dma(Addr a)
{
    return Access{a, 64, AccessType::DmaWrite, 0, 0};
}

Access
nonAlloc(unsigned cpu, Addr a)
{
    return Access{a, 64, AccessType::NonAllocWrite,
                  static_cast<CpuId>(cpu), 0};
}

constexpr Addr kA = 0x1000;

// ---------------------------------------------------------------------
// Multi-chip MSI.
// ---------------------------------------------------------------------

TEST(MultiChip, FirstReadIsCompulsoryTracedMiss)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    ASSERT_EQ(sys.offChipTrace().misses.size(), 1u);
    EXPECT_EQ(static_cast<MissClass>(sys.offChipTrace().misses[0].cls),
              MissClass::Compulsory);
    EXPECT_EQ(sys.offChipTrace().misses[0].cpu, 0);
}

TEST(MultiChip, L1AndL2HitsAreNotTraced)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(0, kA)); // L1 hit
    EXPECT_EQ(sys.offChipTrace().misses.size(), 1u);
}

TEST(MultiChip, ReadSharingAcrossNodes)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(1, kA));
    ASSERT_EQ(sys.offChipTrace().misses.size(), 2u);
    // Second node's first read: globally warm, never read there ->
    // Replacement (cold at that node), not coherence.
    EXPECT_EQ(static_cast<MissClass>(sys.offChipTrace().misses[1].cls),
              MissClass::Replacement);
    const auto *de = sys.dirEntry(blockOf(kA));
    ASSERT_NE(de, nullptr);
    EXPECT_EQ(de->sharers & 0b11u, 0b11u);
}

TEST(MultiChip, WriteInvalidatesSharers)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(1, kA));
    sys.access(write(2, kA));
    EXPECT_FALSE(sys.probeL2(0, blockOf(kA)));
    EXPECT_FALSE(sys.probeL2(1, blockOf(kA)));
    EXPECT_EQ(*sys.probeL2(2, blockOf(kA)), CohState::Modified);

    // Node 0 re-reads: coherence miss (written by another node since
    // node 0's last read).
    sys.access(read(0, kA));
    const auto &m = sys.offChipTrace().misses.back();
    EXPECT_EQ(static_cast<MissClass>(m.cls), MissClass::Coherence);
}

TEST(MultiChip, OwnerDowngradesToSharedOnRemoteRead)
{
    MultiChipSystem sys;
    sys.access(write(3, kA));
    sys.access(read(4, kA));
    EXPECT_EQ(*sys.probeL2(3, blockOf(kA)), CohState::Shared);
    EXPECT_EQ(*sys.probeL2(4, blockOf(kA)), CohState::Shared);
    const auto *de = sys.dirEntry(blockOf(kA));
    ASSERT_NE(de, nullptr);
    EXPECT_EQ(de->owner, -1);
}

TEST(MultiChip, RereadAfterOwnWriteAndEvictionIsReplacement)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(write(0, kA));
    // Force eviction of kA from node 0's L2 by filling its set.
    const std::uint64_t sets = cachecfg::kL2.numSets();
    for (unsigned w = 0; w <= cachecfg::kL2.ways; ++w)
        sys.access(read(0, kA + (w + 1) * sets * kBlockSize));
    ASSERT_FALSE(sys.probeL2(0, blockOf(kA)));
    sys.access(read(0, kA));
    const auto &m = sys.offChipTrace().misses.back();
    EXPECT_EQ(static_cast<MissClass>(m.cls), MissClass::Replacement);
}

TEST(MultiChip, DmaWriteInvalidatesAllAndCausesIoCoherence)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(5, kA));
    sys.access(dma(kA));
    EXPECT_FALSE(sys.probeL1(0, blockOf(kA)));
    EXPECT_FALSE(sys.probeL2(5, blockOf(kA)));
    sys.access(read(5, kA));
    const auto &m = sys.offChipTrace().misses.back();
    EXPECT_EQ(static_cast<MissClass>(m.cls), MissClass::IoCoherence);
}

TEST(MultiChip, NonAllocWriteBehavesLikeIo)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(read(1, kA));
    sys.access(nonAlloc(0, kA));
    EXPECT_FALSE(sys.probeL2(0, blockOf(kA))); // no allocation
    sys.access(read(1, kA));
    const auto &m = sys.offChipTrace().misses.back();
    EXPECT_EQ(static_cast<MissClass>(m.cls), MissClass::IoCoherence);
}

TEST(MultiChip, FirstReadOfDmaBlockIsCompulsory)
{
    // Paper semantics: DSS scans show huge compulsory despite all
    // data arriving by DMA — a block never read by any processor
    // classifies Compulsory on its first read.
    MultiChipSystem sys;
    sys.setTracing(true);
    sys.access(dma(kA));
    sys.access(read(2, kA));
    EXPECT_EQ(static_cast<MissClass>(sys.offChipTrace().misses[0].cls),
              MissClass::Compulsory);
}

TEST(MultiChip, WarmupTracingOffSuppressesRecords)
{
    MultiChipSystem sys;
    sys.access(read(0, kA));
    EXPECT_TRUE(sys.offChipTrace().misses.empty());
    sys.setTracing(true);
    sys.access(read(1, kA));
    EXPECT_EQ(sys.offChipTrace().misses.size(), 1u);
}

TEST(MultiChip, MultiBlockAccessTouchesEveryBlock)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    Access a{kA, 4096, AccessType::Read, 0, 0};
    sys.access(a);
    EXPECT_EQ(sys.offChipTrace().misses.size(), kBlocksPerPage);
}

TEST(MultiChip, SequenceNumbersAreMonotonic)
{
    MultiChipSystem sys;
    sys.setTracing(true);
    for (unsigned i = 0; i < 100; ++i)
        sys.access(read(i % 16, kA + i * kBlockSize));
    const auto &ms = sys.offChipTrace().misses;
    for (std::size_t i = 1; i < ms.size(); ++i)
        EXPECT_GT(ms[i].seq, ms[i - 1].seq);
}

// ---------------------------------------------------------------------
// Single-chip MOSI.
// ---------------------------------------------------------------------

TEST(SingleChip, FirstReadGoesOffChipAndOnChipTraces)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    ASSERT_EQ(sys.offChipTrace().misses.size(), 1u);
    ASSERT_EQ(sys.intraChipTrace().misses.size(), 1u);
    EXPECT_EQ(static_cast<IntraClass>(sys.intraChipTrace().misses[0].cls),
              IntraClass::OffChip);
}

TEST(SingleChip, SecondCoreHitsSharedL2)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(1, kA));
    EXPECT_EQ(sys.offChipTrace().misses.size(), 1u); // L2 hit, no 2nd
    ASSERT_EQ(sys.intraChipTrace().misses.size(), 2u);
    EXPECT_EQ(static_cast<IntraClass>(sys.intraChipTrace().misses[1].cls),
              IntraClass::ReplacementL2);
}

TEST(SingleChip, DirtyPeerSuppliesAndKeepsOwnership)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(write(0, kA)); // core 0 holds M in L1; L2 dropped
    sys.access(read(1, kA));
    // Peer supply: core 0 downgrades M -> O.
    EXPECT_EQ(*sys.probeL1(0, blockOf(kA)), CohState::Owned);
    EXPECT_EQ(*sys.probeL1(1, blockOf(kA)), CohState::Shared);
    const auto &m = sys.intraChipTrace().misses.back();
    EXPECT_EQ(static_cast<IntraClass>(m.cls),
              IntraClass::CoherencePeerL1);
    // No off-chip traffic for the peer transfer.
    EXPECT_TRUE(sys.offChipTrace().misses.empty());
}

TEST(SingleChip, InvalidationThenL2SupplyIsCoherenceL2)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(read(1, kA)); // both in caches
    sys.access(write(0, kA)); // invalidates core 1's L1
    // Writeback M into L2 by evicting core 0's line.
    const std::uint64_t l1sets = cachecfg::kL1.numSets();
    for (unsigned w = 0; w <= cachecfg::kL1.ways; ++w)
        sys.access(write(0, kA + (w + 1) * l1sets * kBlockSize));
    ASSERT_FALSE(sys.probeL1(0, blockOf(kA)));
    ASSERT_TRUE(sys.probeL2(blockOf(kA)));
    sys.access(read(1, kA));
    const auto &m = sys.intraChipTrace().misses.back();
    EXPECT_EQ(static_cast<IntraClass>(m.cls), IntraClass::CoherenceL2);
}

TEST(SingleChip, NoProcessorCoherenceOffChip)
{
    // Processor-to-processor communication must never appear as
    // off-chip coherence: the chip is one reader entity.
    SingleChipSystem sys;
    sys.setTracing(true);
    for (unsigned round = 0; round < 50; ++round) {
        sys.access(write(round % 4, kA + (round % 8) * kBlockSize));
        sys.access(read((round + 1) % 4, kA + (round % 8) * kBlockSize));
    }
    for (const auto &m : sys.offChipTrace().misses)
        EXPECT_NE(static_cast<MissClass>(m.cls), MissClass::Coherence);
}

TEST(SingleChip, DmaInvalidatesWholeChip)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(read(0, kA));
    sys.access(read(2, kA));
    sys.access(dma(kA));
    EXPECT_FALSE(sys.probeL1(0, blockOf(kA)));
    EXPECT_FALSE(sys.probeL1(2, blockOf(kA)));
    EXPECT_FALSE(sys.probeL2(blockOf(kA)));
    sys.access(read(0, kA));
    const auto &m = sys.offChipTrace().misses.back();
    EXPECT_EQ(static_cast<MissClass>(m.cls), MissClass::IoCoherence);
}

TEST(SingleChip, L1EvictionWritesBackDirtyIntoL2)
{
    SingleChipSystem sys;
    sys.access(write(0, kA));
    EXPECT_FALSE(sys.probeL2(blockOf(kA))); // ownership in L1
    const std::uint64_t l1sets = cachecfg::kL1.numSets();
    for (unsigned w = 0; w <= cachecfg::kL1.ways; ++w)
        sys.access(write(0, kA + (w + 1) * l1sets * kBlockSize));
    EXPECT_FALSE(sys.probeL1(0, blockOf(kA)));
    EXPECT_TRUE(sys.probeL2(blockOf(kA))); // written back
}

TEST(SingleChip, IntraTraceCpuAndSeqFields)
{
    SingleChipSystem sys;
    sys.setTracing(true);
    sys.access(read(3, kA));
    const auto &m = sys.intraChipTrace().misses.back();
    EXPECT_EQ(m.cpu, 3);
    for (std::size_t i = 1; i < sys.intraChipTrace().misses.size(); ++i)
        EXPECT_GT(sys.intraChipTrace().misses[i].seq,
                  sys.intraChipTrace().misses[i - 1].seq);
}

} // namespace
} // namespace tstream
