/**
 * @file
 * Tests for leveled logging (util/logging.hh): name -> level parsing,
 * threshold gating, the exact formatted line shape (timestamp, level
 * letter, thread tag), and thread-id stability. The formatter is pure
 * (explicit tid + wall-clock params), so the expected strings are
 * byte-exact without environment or timezone games.
 */

#include <gtest/gtest.h>

#include <thread>

#include "util/logging.hh"

namespace tstream
{
namespace
{

TEST(LogLevelNames, ParseKnownAndUnknown)
{
    EXPECT_EQ(logLevelFromName("debug"), LogLevel::Debug);
    EXPECT_EQ(logLevelFromName("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromName("warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("warning"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("error"), LogLevel::Error);
    EXPECT_EQ(logLevelFromName("off"), LogLevel::Off);
    EXPECT_EQ(logLevelFromName("none"), LogLevel::Off);
    // Unknown names fall back to the default, never to silence.
    EXPECT_EQ(logLevelFromName("bogus"), LogLevel::Info);
    EXPECT_EQ(logLevelFromName(""), LogLevel::Info);
}

TEST(LogThreshold, GatesBySeverity)
{
    const LogLevel saved = logThreshold();
    setLogThreshold(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    setLogThreshold(LogLevel::Off);
    EXPECT_FALSE(logEnabled(LogLevel::Error));
    setLogThreshold(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogThreshold(saved);
}

TEST(LogFormat, LineShapeIsExact)
{
    // 12:34:56.123 UTC == 45,296,123 ms into the day.
    const std::int64_t wallMs = 45'296'123;
    EXPECT_EQ(formatLogLine(LogLevel::Warn, "claim stolen", 7, wallMs),
              "12:34:56.123 W t07 claim stolen");
    EXPECT_EQ(formatLogLine(LogLevel::Debug, "x", 0, 0),
              "00:00:00.000 D t00 x");
    EXPECT_EQ(formatLogLine(LogLevel::Error, "boom", 123,
                            86'399'999),
              "23:59:59.999 E t123 boom");
}

TEST(LogFormat, DayWrapAndNegativeClockStayInRange)
{
    // Multi-day epochs reduce to time-of-day...
    EXPECT_EQ(formatLogLine(LogLevel::Info, "m", 1,
                            3 * 86'400'000LL + 1'000),
              "00:00:01.000 I t01 m");
    // ...and a (clock-skewed) negative stamp must not produce
    // negative fields.
    EXPECT_EQ(formatLogLine(LogLevel::Info, "m", 1, -1'000),
              "23:59:59.000 I t01 m");
}

TEST(LogThreadId, StablePerThreadAndDistinctAcrossThreads)
{
    const int mine = logThreadId();
    EXPECT_EQ(logThreadId(), mine); // stable within a thread
    int other = -1;
    std::thread t([&other] { other = logThreadId(); });
    t.join();
    EXPECT_NE(other, mine);
    EXPECT_GE(other, 0);
}

} // namespace
} // namespace tstream
