/**
 * @file
 * Tests for the code-module attribution tables (paper Tables 3-5) and
 * the category taxonomy (Table 2).
 */

#include <gtest/gtest.h>

#include "core/module_profile.hh"

namespace tstream
{
namespace
{

TEST(Categories, NamesMatchPaperRows)
{
    EXPECT_EQ(categoryName(Category::BulkMemoryCopies),
              "Bulk memory copies");
    EXPECT_EQ(categoryName(Category::KernelStreams),
              "Kernel STREAMS subsystem");
    EXPECT_EQ(categoryName(Category::DbIndexPageTuple),
              "DB2 index, page & tuple accesses");
    EXPECT_EQ(categoryName(Category::CgiPerlInput),
              "CGI - perl input processing");
}

TEST(Categories, WebAndDbPartitions)
{
    EXPECT_TRUE(categoryIsWeb(Category::KernelIpAssembly));
    EXPECT_FALSE(categoryIsWeb(Category::DbIpc));
    EXPECT_TRUE(categoryIsDb(Category::KernelBlockDev));
    EXPECT_FALSE(categoryIsDb(Category::CgiPerlEngine));
    // Cross-application categories belong to neither partition.
    EXPECT_FALSE(categoryIsWeb(Category::BulkMemoryCopies));
    EXPECT_FALSE(categoryIsDb(Category::BulkMemoryCopies));
}

TEST(FunctionRegistry, InternIsIdempotent)
{
    FunctionRegistry reg;
    const FnId a = reg.intern("disp_getwork", Category::KernelScheduler);
    const FnId b = reg.intern("disp_getwork", Category::KernelScheduler);
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.name(a), "disp_getwork");
    EXPECT_EQ(reg.category(a), Category::KernelScheduler);
}

TEST(FunctionRegistry, ReservedUnknown)
{
    FunctionRegistry reg;
    EXPECT_EQ(reg.category(0), Category::Uncategorized);
    EXPECT_EQ(reg.name(0), "<unknown>");
    EXPECT_EQ(reg.size(), 1u);
}

TEST(FunctionRegistry, DistinctIdsForDistinctNames)
{
    FunctionRegistry reg;
    const FnId a = reg.intern("putq", Category::KernelStreams);
    const FnId b = reg.intern("getq", Category::KernelStreams);
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.size(), 3u);
}

MissTrace
tinyTrace(const std::vector<FnId> &fns)
{
    MissTrace t;
    t.numCpus = 1;
    for (std::size_t i = 0; i < fns.size(); ++i)
        t.misses.push_back(
            MissRecord{i, 1000 + i, 0, 0, fns[i]});
    return t;
}

TEST(ModuleProfile, PercentagesAndOverall)
{
    FunctionRegistry reg;
    const FnId copy = reg.intern("bcopy", Category::BulkMemoryCopies);
    const FnId sched =
        reg.intern("disp_getwork", Category::KernelScheduler);

    MissTrace trace = tinyTrace({copy, copy, copy, sched});
    StreamStats stats;
    stats.totalMisses = 4;
    stats.labels = {RepLabel::NewStream, RepLabel::RecurringStream,
                    RepLabel::NonRepetitive, RepLabel::RecurringStream};
    stats.strided.assign(4, false);

    ModuleProfile p = profileModules(trace, stats, reg);
    EXPECT_DOUBLE_EQ(p.pctMisses(Category::BulkMemoryCopies), 75.0);
    EXPECT_DOUBLE_EQ(p.pctInStreams(Category::BulkMemoryCopies), 50.0);
    EXPECT_DOUBLE_EQ(p.pctMisses(Category::KernelScheduler), 25.0);
    EXPECT_DOUBLE_EQ(p.pctInStreams(Category::KernelScheduler), 25.0);
    EXPECT_DOUBLE_EQ(p.overallPctInStreams(), 75.0);
}

TEST(ModuleProfile, RenderContainsRequestedSections)
{
    ModuleProfile p;
    p.total = 1;
    p.misses[static_cast<std::size_t>(Category::KernelStreams)] = 1;

    const std::string web = renderModuleTable(p, true, false);
    EXPECT_NE(web.find("Kernel STREAMS subsystem"), std::string::npos);
    EXPECT_EQ(web.find("DB2 index"), std::string::npos);

    const std::string db = renderModuleTable(p, false, true);
    EXPECT_NE(db.find("DB2 index"), std::string::npos);
    EXPECT_EQ(db.find("CGI - perl"), std::string::npos);

    EXPECT_NE(db.find("Overall % in streams"), std::string::npos);
}

TEST(ModuleProfile, EmptyTraceIsAllZero)
{
    FunctionRegistry reg;
    MissTrace trace;
    StreamStats stats;
    ModuleProfile p = profileModules(trace, stats, reg);
    EXPECT_EQ(p.total, 0u);
    EXPECT_DOUBLE_EQ(p.overallPctInStreams(), 0.0);
}

} // namespace
} // namespace tstream
