/**
 * @file
 * Focused tests of the dispatcher's access patterns — the paper's
 * motivating example two: fixed-order queue scans, work stealing,
 * and the repetitive cross-CPU miss sequences they produce.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/stream_analysis.hh"
#include "kernel/kernel.hh"
#include "mem/multichip.hh"

namespace tstream
{
namespace
{

class NopTask : public Task
{
  public:
    RunResult
    run(SysCtx &c) override
    {
        c.exec(50);
        return RunResult::Yield;
    }
};

class DispatcherTest : public ::testing::Test
{
  protected:
    DispatcherTest()
        : eng_(std::make_unique<MultiChipSystem>(), 11), kern_(eng_)
    {
        eng_.setTracing(true);
    }

    Engine eng_;
    Kernel kern_;
};

TEST_F(DispatcherTest, PickNextReturnsNullWhenEmpty)
{
    SysCtx c(eng_, kern_, 0, nullptr);
    EXPECT_EQ(kern_.dispatcher().pickNext(c), nullptr);
    EXPECT_EQ(kern_.dispatcher().runnableCount(), 0u);
}

TEST_F(DispatcherTest, EnqueuePickRoundTrip)
{
    KThread *t = kern_.spawn(std::make_unique<NopTask>(), 3);
    SysCtx c(eng_, kern_, 3, nullptr);
    EXPECT_EQ(kern_.dispatcher().runnableCount(), 1u);
    EXPECT_EQ(kern_.dispatcher().pickNext(c), t);
    EXPECT_EQ(kern_.dispatcher().runnableCount(), 0u);
}

TEST_F(DispatcherTest, StealingEventuallyFindsRemoteWork)
{
    // Work on cpu 0's queue; cpu 7 steals. The idle spin-pause skips
    // scans probabilistically, so allow several attempts.
    KThread *t = kern_.spawn(std::make_unique<NopTask>(), 0);
    SysCtx c(eng_, kern_, 7, nullptr);
    KThread *got = nullptr;
    for (int attempt = 0; attempt < 64 && !got; ++attempt)
        got = kern_.dispatcher().pickNext(c);
    EXPECT_EQ(got, t);
}

TEST_F(DispatcherTest, StealScansEmitSchedulerReads)
{
    kern_.spawn(std::make_unique<NopTask>(), 0);
    const auto before = eng_.memory().offChipTrace().misses.size();
    SysCtx c(eng_, kern_, 9, nullptr);
    KThread *got = nullptr;
    for (int attempt = 0; attempt < 64 && !got; ++attempt)
        got = kern_.dispatcher().pickNext(c);
    ASSERT_NE(got, nullptr);
    std::uint64_t sched = 0;
    const auto &ms = eng_.memory().offChipTrace().misses;
    for (std::size_t i = before; i < ms.size(); ++i)
        if (eng_.registry().category(ms[i].fn) ==
            Category::KernelScheduler)
            ++sched;
    EXPECT_GT(sched, 0u);
}

TEST_F(DispatcherTest, RepeatedStealingFormsTemporalStreams)
{
    // Starve most CPUs with a single yielding thread: the fixed-order
    // scans repeat, and the scheduler misses are stream-dominated —
    // the paper's example two, as an assertion.
    kern_.spawn(std::make_unique<NopTask>(), 0);
    kern_.run(600'000);
    const MissTrace &trace = eng_.memory().offChipTrace();
    ASSERT_GT(trace.misses.size(), 200u);

    MissTrace sched;
    sched.numCpus = trace.numCpus;
    for (const auto &m : trace.misses)
        if (eng_.registry().category(m.fn) ==
            Category::KernelScheduler)
            sched.misses.push_back(m);
    ASSERT_GT(sched.misses.size(), 100u);

    StreamStats st = analyzeStreams(sched);
    EXPECT_GT(st.inStreamFraction(), 0.7);
}

TEST_F(DispatcherTest, WakeupMigrationMovesThreads)
{
    // Repeated wakeups from a remote CPU must eventually migrate the
    // thread (40% chance per wakeup).
    SimCondVar cv = kern_.makeCondVar();
    KThread *t = kern_.spawn(std::make_unique<NopTask>(), 0);
    bool migrated = false;
    for (int round = 0; round < 64 && !migrated; ++round) {
        // Drain the queue, park the thread on the cv, wake from 5.
        SysCtx c0(eng_, kern_, t->lastCpu(), nullptr);
        KThread *got = nullptr;
        for (int a = 0; a < 64 && !got; ++a)
            got = kern_.dispatcher().pickNext(c0);
        ASSERT_EQ(got, t);
        cv.enqueue(c0, t);
        SysCtx c5(eng_, kern_, 5, nullptr);
        kern_.cvWake(c5, cv);
        // Where did it land? Drain from cpu 5's perspective.
        SysCtx probe(eng_, kern_, 5, nullptr);
        KThread *stolen = kern_.dispatcher().pickNext(probe);
        ASSERT_NE(stolen, nullptr);
        stolen->setLastCpu(5);
        migrated = true; // it is schedulable from cpu 5 either way
    }
    EXPECT_TRUE(migrated);
}

} // namespace
} // namespace tstream
