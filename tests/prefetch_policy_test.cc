/**
 * @file
 * Tests for the pluggable prefetch-policy API (core/prefetch_policy.hh).
 *
 * The differential suite embeds a frozen copy of the pre-API
 * TsPrefetcher::evaluate() / evaluateHybrid() algorithms and demands
 * *exact* stat equality against FixedDepthPolicy / HybridPolicy driven
 * through evaluatePolicy() — the bit-identity contract of the
 * redesign. On top of that: adaptive depth throttling, storage
 * accounting, the registry, and the prefetcher-in-the-loop engine
 * (covered misses vanish from the recorded trace; the remainder is the
 * uncovered subsequence of the baseline run).
 */

#include <gtest/gtest.h>

#include "core/prefetch_policy.hh"
#include "core/stride.hh"
#include "sim/experiment.hh"
#include "util/rng.hh"

namespace tstream
{
namespace
{

// ---------------------------------------------------------------------------
// Frozen reference: the pre-API TsPrefetcher algorithms, verbatim.
// ---------------------------------------------------------------------------

struct RefPrefetcher
{
    struct HistoryPos
    {
        std::uint32_t cpu;
        std::uint64_t pos;
    };
    struct History
    {
        std::vector<BlockId> ring;
        std::uint64_t head = 0;
    };
    struct Buffer
    {
        std::vector<BlockId> fifo;
        std::unordered_map<BlockId, std::uint32_t> present;
    };

    explicit RefPrefetcher(const TsPrefetcherConfig &cfg) : cfg_(cfg) {}

    void
    append(unsigned cpu, BlockId blk)
    {
        History &h = history_[cpu];
        h.ring[static_cast<std::size_t>(h.head % cfg_.historyEntries)] =
            blk;
        index_[blk] =
            HistoryPos{static_cast<std::uint32_t>(cpu), h.head};
        h.head++;
    }

    void
    insertPrefetch(Buffer &buf, BlockId blk, TsPrefetcherStats &stats)
    {
        stats.issued++;
        buf.fifo.push_back(blk);
        buf.present[blk]++;
        if (buf.fifo.size() > cfg_.bufferBlocks) {
            const BlockId victim = buf.fifo.front();
            buf.fifo.erase(buf.fifo.begin());
            auto it = buf.present.find(victim);
            if (it != buf.present.end() && --it->second == 0)
                buf.present.erase(it);
        }
    }

    void
    replay(const HistoryPos &pos, TsPrefetcherStats &stats, Buffer &buf)
    {
        const History &h = history_[pos.cpu];
        if (h.head - pos.pos > cfg_.historyEntries)
            return;
        stats.streamLookups++;
        for (std::uint32_t k = 1; k <= cfg_.replayDepth; ++k) {
            const std::uint64_t next = pos.pos + k;
            if (next >= h.head)
                break;
            const BlockId blk = h.ring[static_cast<std::size_t>(
                next % cfg_.historyEntries)];
            insertPrefetch(buf, blk, stats);
        }
    }

    void
    demandCheck(Buffer &buf, BlockId blk, TsPrefetcherStats &stats)
    {
        auto hit = buf.present.find(blk);
        if (hit != buf.present.end()) {
            stats.covered++;
            stats.useful += hit->second;
            for (auto it = buf.fifo.begin(); it != buf.fifo.end();) {
                if (*it == blk)
                    it = buf.fifo.erase(it);
                else
                    ++it;
            }
            buf.present.erase(hit);
        }
    }

    TsPrefetcherStats
    evaluate(const MissTrace &trace)
    {
        TsPrefetcherStats stats;
        const unsigned ncpu = std::max(1u, trace.numCpus);
        history_.assign(ncpu, History{});
        for (auto &h : history_)
            h.ring.assign(cfg_.historyEntries, 0);
        index_.clear();
        std::vector<Buffer> buffers(ncpu);
        for (const MissRecord &m : trace.misses) {
            const unsigned cpu = m.cpu < ncpu ? m.cpu : 0;
            Buffer &buf = buffers[cpu];
            stats.misses++;
            demandCheck(buf, m.block, stats);
            auto found = index_.find(m.block);
            if (found != index_.end() &&
                (cfg_.crossCpu || found->second.cpu == cpu))
                replay(found->second, stats, buf);
            append(cpu, m.block);
        }
        return stats;
    }

    TsPrefetcherStats
    evaluateHybrid(const MissTrace &trace, unsigned stride_degree)
    {
        TsPrefetcherStats stats;
        const unsigned ncpu = std::max(1u, trace.numCpus);
        history_.assign(ncpu, History{});
        for (auto &h : history_)
            h.ring.assign(cfg_.historyEntries, 0);
        index_.clear();
        std::vector<Buffer> buffers(ncpu);
        StrideDetector stride;
        std::vector<std::int64_t> last(ncpu, -1);
        for (const MissRecord &m : trace.misses) {
            const unsigned cpu = m.cpu < ncpu ? m.cpu : 0;
            Buffer &buf = buffers[cpu];
            stats.misses++;
            demandCheck(buf, m.block, stats);
            auto found = index_.find(m.block);
            if (found != index_.end() &&
                (cfg_.crossCpu || found->second.cpu == cpu))
                replay(found->second, stats, buf);
            const bool strided = stride.observe(m.cpu, m.block);
            if (strided && last[cpu] >= 0) {
                const std::int64_t delta =
                    static_cast<std::int64_t>(m.block) - last[cpu];
                if (delta != 0) {
                    for (unsigned k = 1; k <= stride_degree; ++k)
                        insertPrefetch(
                            buf,
                            static_cast<BlockId>(
                                static_cast<std::int64_t>(m.block) +
                                delta * static_cast<std::int64_t>(k)),
                            stats);
                }
            }
            last[cpu] = static_cast<std::int64_t>(m.block);
            append(cpu, m.block);
        }
        return stats;
    }

    TsPrefetcherConfig cfg_;
    std::vector<History> history_;
    std::unordered_map<BlockId, HistoryPos> index_;
};

// ---------------------------------------------------------------------------
// Trace generators
// ---------------------------------------------------------------------------

MissTrace
traceOf(const std::vector<BlockId> &blocks, unsigned ncpu = 1)
{
    MissTrace t;
    t.numCpus = ncpu;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        t.misses.push_back(MissRecord{
            i, blocks[i], static_cast<CpuId>(i % ncpu), 0, 0});
    return t;
}

/** A fixed-seed mix of repeated motifs, strided runs and fresh noise —
 *  rich enough to exercise replay, wrap, cross-CPU and stride paths. */
MissTrace
synthTrace(std::uint64_t seed, unsigned ncpu, std::size_t n = 20000)
{
    Rng rng(seed);
    std::vector<std::vector<BlockId>> motifs;
    for (int i = 0; i < 6; ++i) {
        std::vector<BlockId> m;
        const std::size_t len = 8 + rng.below(48);
        for (std::size_t j = 0; j < len; ++j)
            m.push_back(rng.below(1 << 20));
        motifs.push_back(std::move(m));
    }
    std::vector<BlockId> blocks;
    BlockId fresh = 1 << 24;
    while (blocks.size() < n) {
        const std::uint64_t pick = rng.below(10);
        if (pick < 4) {
            const auto &m = motifs[rng.below(motifs.size())];
            blocks.insert(blocks.end(), m.begin(), m.end());
        } else if (pick < 6) {
            const BlockId base = rng.below(1 << 22);
            const BlockId step = 1 + rng.below(4);
            for (BlockId k = 0; k < 24; ++k)
                blocks.push_back(base + k * step);
        } else {
            for (int k = 0; k < 12; ++k)
                blocks.push_back(fresh++);
        }
    }
    return traceOf(blocks, ncpu);
}

void
expectStatsEq(const TsPrefetcherStats &a, const TsPrefetcherStats &b)
{
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.covered, b.covered);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.useful, b.useful);
    EXPECT_EQ(a.streamLookups, b.streamLookups);
}

// ---------------------------------------------------------------------------
// Differential suite: new API vs frozen reference, exact equality.
// ---------------------------------------------------------------------------

TEST(PrefetchPolicyDiff, FixedDepthMatchesReferenceAcrossDepths)
{
    for (const std::uint64_t seed : {3u, 17u}) {
        for (const unsigned ncpu : {1u, 4u}) {
            const MissTrace t = synthTrace(seed, ncpu);
            for (const std::uint32_t depth : {1u, 4u, 8u, 16u, 32u}) {
                TsPrefetcherConfig cfg;
                cfg.replayDepth = depth;
                RefPrefetcher ref(cfg);
                FixedDepthPolicy policy(cfg);
                SCOPED_TRACE("seed " + std::to_string(seed) + " ncpu " +
                             std::to_string(ncpu) + " depth " +
                             std::to_string(depth));
                expectStatsEq(
                    evaluatePolicy(t, policy, cfg.bufferBlocks),
                    ref.evaluate(t));
            }
        }
    }
}

TEST(PrefetchPolicyDiff, FixedDepthMatchesReferenceOnTinyRing)
{
    // History wrap: the ring-validity check must behave identically.
    TsPrefetcherConfig cfg;
    cfg.historyEntries = 128;
    const MissTrace t = synthTrace(7, 2, 5000);
    RefPrefetcher ref(cfg);
    FixedDepthPolicy policy(cfg);
    expectStatsEq(evaluatePolicy(t, policy, cfg.bufferBlocks),
                  ref.evaluate(t));
}

TEST(PrefetchPolicyDiff, FixedDepthMatchesReferenceWithoutCrossCpu)
{
    TsPrefetcherConfig cfg;
    cfg.crossCpu = false;
    const MissTrace t = synthTrace(11, 4);
    RefPrefetcher ref(cfg);
    FixedDepthPolicy policy(cfg);
    expectStatsEq(evaluatePolicy(t, policy, cfg.bufferBlocks),
                  ref.evaluate(t));
}

TEST(PrefetchPolicyDiff, HybridMatchesReferenceEvaluateHybrid)
{
    for (const std::uint64_t seed : {5u, 29u}) {
        for (const unsigned ncpu : {1u, 4u}) {
            const MissTrace t = synthTrace(seed, ncpu);
            TsPrefetcherConfig cfg;
            RefPrefetcher ref(cfg);
            auto hybrid = HybridPolicy::temporalPlusStride(cfg, 2);
            SCOPED_TRACE("seed " + std::to_string(seed) + " ncpu " +
                         std::to_string(ncpu));
            expectStatsEq(
                evaluatePolicy(t, *hybrid, cfg.bufferBlocks),
                ref.evaluateHybrid(t, 2));
        }
    }
}

TEST(PrefetchPolicyDiff, DeprecatedWrappersStillMatch)
{
    // The kept TsPrefetcher entry points route through the policy API;
    // they must agree with the frozen reference too.
    const MissTrace t = synthTrace(13, 2);
    TsPrefetcherConfig cfg;
    cfg.replayDepth = 16;
    expectStatsEq(TsPrefetcher(cfg).evaluate(t),
                  RefPrefetcher(cfg).evaluate(t));
    expectStatsEq(TsPrefetcher(cfg).evaluateHybrid(t, 3),
                  RefPrefetcher(cfg).evaluateHybrid(t, 3));
}

// ---------------------------------------------------------------------------
// Adaptive depth
// ---------------------------------------------------------------------------

TEST(AdaptiveDepth, AccurateStreamRaisesDepth)
{
    // One long motif repeated back-to-back: replays are near-perfectly
    // accurate, so the per-stream depth must climb off the floor.
    std::vector<BlockId> blocks;
    for (int rep = 0; rep < 60; ++rep)
        for (BlockId b = 0; b < 64; ++b)
            blocks.push_back(1000 + b);
    AdaptiveDepthConfig acfg;
    acfg.minDepth = 1;
    AdaptiveDepthPolicy policy(TsPrefetcherConfig{}, acfg);
    evaluatePolicy(traceOf(blocks), policy);
    EXPECT_GT(policy.depthOf(0), acfg.minDepth);
}

TEST(AdaptiveDepth, UselessPrefetchesThrottleDepth)
{
    // Every block appears exactly twice, far apart, with the successor
    // context never repeating: replays issue but nothing is useful, so
    // the depth must fall to (or stay at) the floor.
    Rng rng(41);
    std::vector<BlockId> first;
    for (int i = 0; i < 4000; ++i)
        first.push_back(rng.below(1 << 30));
    std::vector<BlockId> blocks = first;
    std::vector<BlockId> second = first;
    // Recur each block in a shuffled order: lookups hit, replays are
    // garbage.
    for (std::size_t i = second.size(); i > 1; --i)
        std::swap(second[i - 1], second[rng.below(i)]);
    blocks.insert(blocks.end(), second.begin(), second.end());
    AdaptiveDepthConfig acfg;
    acfg.minDepth = 1;
    AdaptiveDepthPolicy policy(TsPrefetcherConfig{}, acfg);
    const TsPrefetcherStats st = evaluatePolicy(traceOf(blocks), policy);
    EXPECT_GT(st.issued, 0u);
    EXPECT_EQ(policy.depthOf(0), acfg.minDepth);
}

TEST(AdaptiveDepth, DepthStaysWithinBounds)
{
    AdaptiveDepthConfig acfg;
    acfg.minDepth = 2;
    acfg.maxDepth = 8;
    AdaptiveDepthPolicy policy(TsPrefetcherConfig{}, acfg);
    const MissTrace t = synthTrace(19, 2);
    evaluatePolicy(t, policy);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_GE(policy.depthOf(c), acfg.minDepth);
        EXPECT_LE(policy.depthOf(c), acfg.maxDepth);
    }
}

// ---------------------------------------------------------------------------
// Storage accounting
// ---------------------------------------------------------------------------

TEST(PrefetchStorage, FixedChargesHistoryRings)
{
    TsPrefetcherConfig cfg;
    cfg.historyEntries = 1 << 14;
    FixedDepthPolicy policy(cfg);
    policy.reset(4);
    EXPECT_EQ(policy.storageBytes(),
              4ull * (1ull << 14) * sizeof(BlockId));
}

TEST(PrefetchStorage, StrideChargesTrackers)
{
    StridePolicyConfig cfg;
    StridePolicy policy(cfg);
    policy.reset(4);
    EXPECT_EQ(policy.storageBytes(),
              4ull * cfg.stride.trackers * 24ull);
}

TEST(PrefetchStorage, HybridSumsItsParts)
{
    TsPrefetcherConfig cfg;
    auto hybrid = HybridPolicy::temporalPlusStride(cfg, 2);
    hybrid->reset(2);
    FixedDepthPolicy fixed(cfg);
    fixed.reset(2);
    StridePolicy stride;
    stride.reset(2);
    EXPECT_EQ(hybrid->storageBytes(),
              fixed.storageBytes() + stride.storageBytes());
}

TEST(PrefetchStorage, BudgetAxisMovesFixedStorage)
{
    PrefetchPolicyParams small, large;
    small.ts.historyEntries = 1 << 12;
    large.ts.historyEntries = 1 << 18;
    auto a = makePrefetchPolicy("fixed", small);
    auto b = makePrefetchPolicy("fixed", large);
    a->reset(1);
    b->reset(1);
    EXPECT_EQ(b->storageBytes(), a->storageBytes() * (1ull << 6));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(PrefetchRegistry, NamesAndConstruction)
{
    const auto &names = prefetchPolicyNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "fixed");
    EXPECT_EQ(names[1], "adaptive");
    EXPECT_EQ(names[2], "stride");
    EXPECT_EQ(names[3], "hybrid");
    for (const std::string &n : names) {
        auto p = makePrefetchPolicy(n);
        ASSERT_NE(p, nullptr) << n;
        EXPECT_EQ(p->name(), n);
    }
    EXPECT_EQ(makePrefetchPolicy("nosuch"), nullptr);
    EXPECT_EQ(makePrefetchPolicy(""), nullptr);
}

TEST(PrefetchRegistry, ParamsReachThePolicy)
{
    PrefetchPolicyParams params;
    params.ts.historyEntries = 1 << 12;
    auto p = makePrefetchPolicy("adaptive", params);
    p->reset(2);
    EXPECT_EQ(p->storageBytes(), 2ull * (1ull << 12) * sizeof(BlockId));
}

// ---------------------------------------------------------------------------
// Prefetcher-in-the-loop
// ---------------------------------------------------------------------------

TEST(PrefetchLoop, CoveredMissesVanishFromTheTrace)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::KvStore,
                                       SystemContext::SingleChip);
    const ExperimentResult base = runExperiment(cfg);
    EXPECT_FALSE(base.prefetchEnabled);

    cfg.prefetchLoop.enabled = true;
    cfg.prefetchLoop.policy = "fixed";
    const ExperimentResult loop = runExperiment(cfg);
    ASSERT_TRUE(loop.prefetchEnabled);
    EXPECT_GT(loop.prefetch.issued, 0u);
    EXPECT_GT(loop.prefetchCoveredTraced, 0u);

    // Covering never alters cache state, so the underlying miss
    // sequence is the baseline's; the recorded trace is exactly the
    // uncovered subsequence.
    ASSERT_EQ(base.offChip.misses.size(),
              loop.offChip.misses.size() + loop.prefetchCoveredTraced);
    std::size_t j = 0;
    for (const MissRecord &m : base.offChip.misses) {
        if (j == loop.offChip.misses.size())
            break;
        const MissRecord &l = loop.offChip.misses[j];
        if (m.block == l.block && m.cpu == l.cpu && m.cls == l.cls &&
            m.fn == l.fn)
            ++j;
    }
    EXPECT_EQ(j, loop.offChip.misses.size())
        << "loop trace is not a subsequence of the baseline";

    // Kept records renumber contiguously from zero.
    for (std::size_t i = 0; i < loop.offChip.misses.size(); ++i)
        EXPECT_EQ(loop.offChip.misses[i].seq, i);
}

TEST(PrefetchLoop, ConfigHashGatesOnEnabled)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::KvStore,
                                       SystemContext::SingleChip);
    const std::uint64_t baseHash = configHash(cfg);

    // Loop knobs are inert while disabled: default caches stay valid.
    auto inert = cfg;
    inert.prefetchLoop.policy = "adaptive";
    inert.prefetchLoop.ts.replayDepth = 32;
    EXPECT_EQ(configHash(inert), baseHash);

    auto on = cfg;
    on.prefetchLoop.enabled = true;
    EXPECT_NE(configHash(on), baseHash);

    auto onAdaptive = on;
    onAdaptive.prefetchLoop.policy = "adaptive";
    EXPECT_NE(configHash(onAdaptive), configHash(on));

    auto onDeep = on;
    onDeep.prefetchLoop.ts.replayDepth = 32;
    EXPECT_NE(configHash(onDeep), configHash(on));
}

TEST(PrefetchLoop, EngineStatsMatchOfflineShape)
{
    // The loop engine's stats carry the same invariants the offline
    // harness guarantees: useful <= issued, covered <= misses.
    auto cfg = ExperimentConfig::quick(WorkloadKind::Oltp,
                                       SystemContext::MultiChip);
    cfg.prefetchLoop.enabled = true;
    cfg.prefetchLoop.policy = "hybrid";
    const ExperimentResult res = runExperiment(cfg);
    ASSERT_TRUE(res.prefetchEnabled);
    EXPECT_LE(res.prefetch.useful, res.prefetch.issued);
    EXPECT_LE(res.prefetch.covered, res.prefetch.misses);
    EXPECT_LE(res.prefetchCoveredTraced, res.prefetch.covered);
    EXPECT_GT(res.prefetch.misses, 0u);
}

} // namespace
} // namespace tstream
