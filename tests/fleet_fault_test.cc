/**
 * @file
 * Fault-injection tests for the dynamic-claiming driver path
 * (sim/driver.hh + util/claim_file.hh): a worker process SIGKILLed
 * mid-cell (after winning its first claim, via
 * TSTREAM_CLAIM_DIE_AFTER) leaves a stale claim that a surviving
 * worker reclaims after the TTL so the sweep still completes and
 * matches an unsharded run; a throwing cell hook exercises
 * retry-then-success; exhausted retries become a structured failure
 * row that survives makeBenchCell().
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>

#include "sim/bench_report.hh"
#include "sim/driver.hh"

namespace tstream
{
namespace
{

BenchBudgets
tinyBudgets()
{
    BenchBudgets b;
    b.warmup = 100'000;
    b.measure = 300'000;
    b.scale = 0.05;
    return b;
}

std::string
freshClaimDir(const std::string &tag)
{
    const std::string dir = testing::TempDir() + "/tstream_fleet_" +
                            tag + "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
}

class FleetFaultTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Hermetic from user-level caches and any leaked fault knobs.
        ::unsetenv("TSTREAM_TRACE_CACHE");
        ::unsetenv("TSTREAM_CLAIM_DIE_AFTER");
        ::unsetenv("TSTREAM_SHARD");
        ::unsetenv("TSTREAM_QUICK");
        ::unsetenv("TSTREAM_JOBS");
    }
};

DriverOptions
claimingOptions(const std::string &dir, std::int64_t ttlMs,
                const std::string &owner)
{
    DriverOptions opts;
    opts.jobs = 1;
    opts.analyzeStreams = false; // keep the fault tests fast
    opts.claim.session = "fault-test";
    opts.claim.dir = dir;
    opts.claim.ttlMs = ttlMs;
    opts.claim.owner = owner;
    return opts;
}

TEST_F(FleetFaultTest, SingleClaimingWorkerEqualsPlainRun)
{
    const auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    ASSERT_EQ(grid.size(), 2u);

    DriverOptions plain;
    plain.jobs = 1;
    plain.analyzeStreams = false;
    const auto expect = runCells(grid, plain);

    const auto got = runCells(
        grid, claimingOptions(freshClaimDir("solo"), 30'000, "solo"));
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].cell.index, expect[i].cell.index);
        EXPECT_EQ(got[i].cell.id, expect[i].cell.id);
        EXPECT_FALSE(got[i].failed);
        EXPECT_EQ(got[i].instructions, expect[i].instructions);
        ASSERT_EQ(got[i].runs.size(), expect[i].runs.size());
        for (std::size_t r = 0; r < got[i].runs.size(); ++r)
            EXPECT_EQ(got[i].runs[r].trace.misses.size(),
                      expect[i].runs[r].trace.misses.size());
    }
}

TEST_F(FleetFaultTest, KilledWorkerCellIsReclaimedAndSweepCompletes)
{
    const auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    const std::string dir = freshClaimDir("kill");

    // Worker A: dies by SIGKILL right after winning its first claim,
    // before running the cell — the deterministic "power cord" fault.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::setenv("TSTREAM_CLAIM_DIE_AFTER", "1", 1);
        (void)runCells(grid, claimingOptions(dir, 30'000, "worker-a"));
        ::_exit(0); // unreachable when the fault fires
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Worker B: a short TTL lets it steal the orphaned claim quickly.
    const auto got =
        runCells(grid, claimingOptions(dir, 300, "worker-b"));

    // The survivor drained the whole grid, including the dead
    // worker's cell, and the results match an unsharded run.
    ASSERT_EQ(got.size(), grid.size());
    DriverOptions plain;
    plain.jobs = 1;
    plain.analyzeStreams = false;
    const auto expect = runCells(grid, plain);
    std::set<std::size_t> covered;
    for (std::size_t i = 0; i < got.size(); ++i) {
        covered.insert(got[i].cell.index);
        EXPECT_FALSE(got[i].failed) << got[i].failureCause;
        EXPECT_EQ(got[i].cell.id, expect[i].cell.id);
        EXPECT_EQ(got[i].instructions, expect[i].instructions);
    }
    EXPECT_EQ(covered.size(), grid.size());
}

TEST_F(FleetFaultTest, ThrowingHookRetriesThenSucceeds)
{
    auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    grid.resize(1); // multi-chip cell only

    DriverOptions opts;
    opts.jobs = 1;
    opts.analyzeStreams = false;
    opts.retry.maxAttempts = 3;
    opts.retry.backoffBaseMs = 1; // keep the retry sleep negligible
    opts.testCellHook = [](const Cell &, unsigned attempt) {
        if (attempt == 1)
            throw std::runtime_error("injected transient fault");
    };

    const auto results = runCells(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_FALSE(results[0].runs.empty());
}

TEST_F(FleetFaultTest, ExhaustedRetriesBecomeFailureRow)
{
    auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    grid.resize(1);

    DriverOptions opts;
    opts.jobs = 1;
    opts.analyzeStreams = false;
    opts.retry.maxAttempts = 2;
    opts.retry.backoffBaseMs = 1;
    opts.testCellHook = [](const Cell &, unsigned) {
        throw std::runtime_error("persistent fault");
    };

    const auto results = runCells(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    const CellResult &res = results[0];
    EXPECT_TRUE(res.failed);
    EXPECT_EQ(res.attempts, 2u);
    EXPECT_EQ(res.failureCause, "exception: persistent fault");
    EXPECT_TRUE(res.runs.empty());
    EXPECT_GE(res.wallSeconds, 0.0);

    // The failure travels into the report cell unchanged, with no
    // table rows attached.
    const BenchCell cell = makeBenchCell(res, {});
    EXPECT_TRUE(cell.failed);
    EXPECT_EQ(cell.failureCause, "exception: persistent fault");
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_TRUE(cell.rows.empty());
    EXPECT_EQ(cell.id, res.cell.id);
}

TEST_F(FleetFaultTest, FailureUnderClaimingIsMarkedDoneNotRetriedForever)
{
    auto grid = standardGrid({WorkloadKind::Oltp}, tinyBudgets());
    grid.resize(1);
    const std::string dir = freshClaimDir("claimfail");

    DriverOptions opts = claimingOptions(dir, 30'000, "worker-a");
    opts.retry.maxAttempts = 1;
    opts.testCellHook = [](const Cell &, unsigned) {
        throw std::runtime_error("doomed cell");
    };
    const auto first = runCells(grid, opts);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_TRUE(first[0].failed);

    // A second worker joining the same session sees the done marker
    // and does not re-run (or hang on) the failed cell.
    DriverOptions again = claimingOptions(dir, 30'000, "worker-b");
    const auto second = runCells(grid, again);
    EXPECT_TRUE(second.empty());
}

} // namespace
} // namespace tstream
