/**
 * @file
 * Tests for the Engine facade: instruction accounting, access
 * splitting, tracing control, and trace finalization.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mem/multichip.hh"
#include "sim/engine.hh"

namespace tstream
{
namespace
{

Engine
makeEngine()
{
    return Engine(std::make_unique<MultiChipSystem>(), 42);
}

TEST(Engine, ExecAccumulatesPerCpu)
{
    auto eng = makeEngine();
    eng.exec(0, 100);
    eng.exec(1, 50);
    eng.exec(0, 25);
    EXPECT_EQ(eng.totalInstructions(), 175u);
}

TEST(Engine, AccessesChargeInstructions)
{
    auto eng = makeEngine();
    eng.read(0, 0x1000, 64, 0);
    const auto one = eng.totalInstructions();
    EXPECT_GT(one, 0u);
    // A 4-block access costs about four times a 1-block access.
    eng.read(0, 0x2000, 256, 0);
    EXPECT_EQ(eng.totalInstructions(), one + 4 * one);
}

TEST(Engine, MultiBlockReadTracesEveryBlock)
{
    auto eng = makeEngine();
    eng.setTracing(true);
    eng.read(2, 0x10000, 300, 0); // spans 5 blocks
    EXPECT_EQ(eng.memory().offChipTrace().misses.size(), 5u);
    for (const auto &m : eng.memory().offChipTrace().misses)
        EXPECT_EQ(m.cpu, 2);
}

TEST(Engine, UnalignedAccessSpansCorrectBlocks)
{
    auto eng = makeEngine();
    eng.setTracing(true);
    eng.read(0, 0x1000 + 60, 8, 0); // straddles a block boundary
    EXPECT_EQ(eng.memory().offChipTrace().misses.size(), 2u);
}

TEST(Engine, NonAllocWriteDoesNotFillCaches)
{
    auto eng = makeEngine();
    eng.nonAllocWrite(0, 0x3000, 64, 0);
    auto *sys = static_cast<MultiChipSystem *>(&eng.memory());
    EXPECT_FALSE(sys->probeL1(0, blockOf(0x3000)));
    EXPECT_FALSE(sys->probeL2(0, blockOf(0x3000)));
}

TEST(Engine, DmaWriteChargesNoInstructions)
{
    auto eng = makeEngine();
    eng.dmaWrite(0x4000, 4096);
    EXPECT_EQ(eng.totalInstructions(), 0u);
}

TEST(Engine, FinalizeAttachesInstructionCounts)
{
    auto eng = makeEngine();
    eng.setTracing(true);
    eng.read(0, 0x5000, 64, 0);
    eng.exec(0, 999);
    eng.finalizeTraces();
    EXPECT_EQ(eng.memory().offChipTrace().instructions,
              eng.totalInstructions());
    EXPECT_GT(eng.memory().offChipTrace().mpki(), 0.0);
}

TEST(Engine, RegistryIsPerEngine)
{
    auto e1 = makeEngine();
    auto e2 = makeEngine();
    const FnId a = e1.registry().intern("foo", Category::KernelOther);
    const FnId b = e2.registry().intern("bar", Category::KernelOther);
    EXPECT_EQ(a, b); // same slot in independent registries
    EXPECT_EQ(e1.registry().name(a), "foo");
    EXPECT_EQ(e2.registry().name(b), "bar");
}

TEST(Engine, SeededRngIsDeterministic)
{
    Engine e1(std::make_unique<MultiChipSystem>(), 7);
    Engine e2(std::make_unique<MultiChipSystem>(), 7);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(e1.rng().next(), e2.rng().next());
}

TEST(MissTrace, MpkiArithmetic)
{
    MissTrace t;
    EXPECT_EQ(t.mpki(), 0.0);
    t.instructions = 10'000;
    t.misses.resize(25);
    EXPECT_DOUBLE_EQ(t.mpki(), 2.5);
}

TEST(MissClassNames, AllDistinct)
{
    EXPECT_EQ(missClassName(MissClass::Compulsory), "Compulsory");
    EXPECT_EQ(missClassName(MissClass::IoCoherence), "I/O Coherence");
    EXPECT_EQ(intraClassName(IntraClass::CoherencePeerL1),
              "Coherence:Peer-L1");
    EXPECT_EQ(intraClassName(IntraClass::OffChip), "Off-chip");
}

} // namespace
} // namespace tstream
