/** @file Tests for the minimal JSON model (util/json.hh). */

#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hh"

namespace tstream::json
{
namespace
{

Value
parseOk(const std::string &text)
{
    Value v;
    std::string err;
    EXPECT_TRUE(Value::parse(text, v, err)) << err;
    return v;
}

TEST(JsonTest, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_TRUE(parseOk("42").isInt());
    EXPECT_TRUE(parseOk("42.5").isDouble());
    EXPECT_DOUBLE_EQ(parseOk("42.5").asDouble(), 42.5);
    EXPECT_DOUBLE_EQ(parseOk("1e3").asDouble(), 1000.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonTest, ParsesNested)
{
    const Value v = parseOk(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[0].asInt(), 1);
    EXPECT_EQ(a->items()[2].find("b")->asString(), "c");
    EXPECT_TRUE(v.find("d")->find("e")->isNull());
}

TEST(JsonTest, StringEscapes)
{
    EXPECT_EQ(parseOk(R"("a\"b\\c\nd\te")").asString(),
              "a\"b\\c\nd\te");
    // \u escape incl. a surrogate pair (U+1F600).
    EXPECT_EQ(parseOk(R"("A")").asString(), "A");
    EXPECT_EQ(parseOk(R"("😀")").asString(),
              "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformed)
{
    Value v;
    std::string err;
    EXPECT_FALSE(Value::parse("", v, err));
    EXPECT_FALSE(Value::parse("{", v, err));
    EXPECT_FALSE(Value::parse("[1,]", v, err));
    EXPECT_FALSE(Value::parse("{\"a\" 1}", v, err));
    EXPECT_FALSE(Value::parse("tru", v, err));
    EXPECT_FALSE(Value::parse("1 2", v, err)); // trailing garbage
    EXPECT_FALSE(Value::parse("\"abc", v, err));
}

TEST(JsonTest, ObjectPreservesInsertionOrder)
{
    Value v = Value::object();
    v["zeta"] = Value(1);
    v["alpha"] = Value(2);
    v["mid"] = Value(3);
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "zeta");
    EXPECT_EQ(v.members()[1].first, "alpha");
    EXPECT_EQ(v.members()[2].first, "mid");
    // operator[] on an existing key updates in place.
    v["alpha"] = Value(9);
    EXPECT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.find("alpha")->asInt(), 9);
}

TEST(JsonTest, DumpParseRoundTripIsExact)
{
    Value v = Value::object();
    v["int"] = Value(std::int64_t{1234567890123456789LL});
    v["neg"] = Value(-42);
    v["pi"] = Value(3.141592653589793);
    v["tiny"] = Value(1e-17);
    v["pct"] = Value(88.44581859765782);
    v["whole"] = Value(75.0); // Double that prints like an Int
    v["s"] = Value("line1\nline2 \"quoted\"");
    Value arr = Value::array();
    arr.push(Value(true));
    arr.push(Value());
    v["arr"] = std::move(arr);

    for (int indent : {0, 2}) {
        Value back;
        std::string err;
        ASSERT_TRUE(Value::parse(v.dump(indent), back, err)) << err;
        EXPECT_EQ(back.find("int")->asInt(), 1234567890123456789LL);
        EXPECT_EQ(back.find("pi")->asDouble(), 3.141592653589793);
        EXPECT_EQ(back.find("tiny")->asDouble(), 1e-17);
        EXPECT_EQ(back.find("pct")->asDouble(), 88.44581859765782);
        EXPECT_EQ(back.find("whole")->asDouble(), 75.0);
        EXPECT_TRUE(back.find("whole")->isDouble());
        EXPECT_EQ(back.find("s")->asString(),
                  "line1\nline2 \"quoted\"");
        EXPECT_EQ(back, v);
    }
}

TEST(JsonTest, NumericEqualityAcrossKinds)
{
    EXPECT_EQ(Value(3), Value(3.0));
    EXPECT_NE(Value(3), Value(3.5));
}

TEST(JsonTest, FileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "/json_roundtrip.json";
    Value v = Value::object();
    v["k"] = Value("v");
    std::string err;
    ASSERT_TRUE(writeFile(v, path, err)) << err;
    Value back;
    ASSERT_TRUE(parseFile(path, back, err)) << err;
    EXPECT_EQ(back, v);

    EXPECT_FALSE(parseFile(path + ".missing", back, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace tstream::json
