/**
 * @file
 * Integration tests: every workload runs end-to-end in both system
 * contexts and exhibits the paper's qualitative invariants.
 */

#include <gtest/gtest.h>

#include <array>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "sim/experiment.hh"

namespace tstream
{
namespace
{

std::array<double, kNumMissClasses>
classShares(const MissTrace &t)
{
    std::array<double, kNumMissClasses> shares{};
    if (t.misses.empty())
        return shares;
    for (const MissRecord &m : t.misses)
        shares[m.cls] += 1.0;
    for (auto &s : shares)
        s /= static_cast<double>(t.misses.size());
    return shares;
}

constexpr auto kComp = static_cast<std::size_t>(MissClass::Compulsory);
constexpr auto kCoh = static_cast<std::size_t>(MissClass::Coherence);
constexpr auto kIo = static_cast<std::size_t>(MissClass::IoCoherence);

/** Every (workload, context) pair runs and produces a sane trace. */
class WorkloadRunTest
    : public ::testing::TestWithParam<
          std::tuple<WorkloadKind, SystemContext>>
{
};

TEST_P(WorkloadRunTest, ProducesConsistentTrace)
{
    const auto [w, c] = GetParam();
    auto cfg = ExperimentConfig::quick(w, c);
    ExperimentResult res = runExperiment(cfg);

    EXPECT_GT(res.instructions, cfg.measureInstructions / 2);
    ASSERT_GT(res.offChip.misses.size(), 1000u);
    EXPECT_GT(res.offChip.mpki(), 0.1);
    EXPECT_LT(res.offChip.mpki(), 200.0);

    // Sequence numbers strictly increase; cpu ids are in range.
    const unsigned ncpu = res.offChip.numCpus;
    for (std::size_t i = 0; i < res.offChip.misses.size(); ++i) {
        const auto &m = res.offChip.misses[i];
        EXPECT_LT(m.cpu, ncpu);
        EXPECT_LT(m.cls, kNumMissClasses);
        if (i > 0) {
            EXPECT_GT(m.seq, res.offChip.misses[i - 1].seq);
        }
    }

    if (c == SystemContext::SingleChip) {
        ASSERT_FALSE(res.intraChip.misses.empty());
        // No processor coherence leaves a single chip.
        const auto shares = classShares(res.offChip);
        EXPECT_EQ(shares[kCoh], 0.0);
        // The filtered view drops exactly the off-chip records.
        const MissTrace onchip = res.intraChipOnChip();
        std::size_t offchip = 0;
        for (const auto &m : res.intraChip.misses)
            if (static_cast<IntraClass>(m.cls) == IntraClass::OffChip)
                ++offchip;
        EXPECT_EQ(onchip.misses.size() + offchip,
                  res.intraChip.misses.size());
    } else {
        EXPECT_TRUE(res.intraChip.misses.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, WorkloadRunTest,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::Apache, WorkloadKind::Zeus,
                          WorkloadKind::Oltp, WorkloadKind::DssQ1,
                          WorkloadKind::DssQ2, WorkloadKind::DssQ17,
                          WorkloadKind::KvStore, WorkloadKind::Broker,
                          WorkloadKind::PhasedMix),
        ::testing::Values(SystemContext::MultiChip,
                          SystemContext::SingleChip)));

TEST(WorkloadShape, WebMultiChipIsCoherenceHeavy)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Apache,
                                       SystemContext::MultiChip);
    auto res = runExperiment(cfg);
    const auto shares = classShares(res.offChip);
    EXPECT_GT(shares[kCoh], 0.2);
    EXPECT_GT(shares[kCoh], shares[kComp]);
}

TEST(WorkloadShape, DssIsCompulsoryHeavy)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::DssQ1,
                                       SystemContext::MultiChip);
    auto res = runExperiment(cfg);
    const auto shares = classShares(res.offChip);
    EXPECT_GT(shares[kComp], 0.4);
}

TEST(WorkloadShape, WebSingleChipIsIoHeavy)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Zeus,
                                       SystemContext::SingleChip);
    auto res = runExperiment(cfg);
    const auto shares = classShares(res.offChip);
    EXPECT_GT(shares[kIo], 0.3);
}

TEST(WorkloadShape, WebMoreRepetitiveThanDss)
{
    auto web = runExperiment(ExperimentConfig::quick(
        WorkloadKind::Apache, SystemContext::MultiChip));
    auto dss = runExperiment(ExperimentConfig::quick(
        WorkloadKind::DssQ17, SystemContext::MultiChip));
    const double webFrac =
        analyzeStreams(web.offChip).inStreamFraction();
    const double dssFrac =
        analyzeStreams(dss.offChip).inStreamFraction();
    EXPECT_GT(webFrac, dssFrac);
    EXPECT_GT(webFrac, 0.5);
}

TEST(WorkloadShape, ModuleAttributionCoversTrace)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Oltp,
                                       SystemContext::MultiChip);
    auto res = runExperiment(cfg);
    auto streams = analyzeStreams(res.offChip);
    auto prof = profileModules(res.offChip, streams, res.registry);
    EXPECT_EQ(prof.total, res.offChip.misses.size());
    std::uint64_t sum = 0;
    for (auto v : prof.misses)
        sum += v;
    EXPECT_EQ(sum, prof.total);
    // DB activity must show up in a DB workload.
    EXPECT_GT(prof.pctMisses(Category::DbIndexPageTuple), 1.0);
    // And the uncategorized share stays small: attribution is exact.
    EXPECT_LT(prof.pctMisses(Category::Uncategorized), 5.0);
}

TEST(WorkloadShape, WebTouchesItsCategories)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Apache,
                                       SystemContext::MultiChip);
    auto res = runExperiment(cfg);
    auto streams = analyzeStreams(res.offChip);
    auto prof = profileModules(res.offChip, streams, res.registry);
    EXPECT_GT(prof.pctMisses(Category::BulkMemoryCopies), 0.5);
    EXPECT_GT(prof.pctMisses(Category::KernelScheduler), 0.0);
    // The web server's own code is a small fraction (paper: ~3%).
    EXPECT_LT(prof.pctMisses(Category::WebWorker), 15.0);
}

TEST(Experiment, DeterministicGivenSeed)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Zeus,
                                       SystemContext::MultiChip);
    auto r1 = runExperiment(cfg);
    auto r2 = runExperiment(cfg);
    ASSERT_EQ(r1.offChip.misses.size(), r2.offChip.misses.size());
    for (std::size_t i = 0; i < r1.offChip.misses.size(); ++i) {
        EXPECT_EQ(r1.offChip.misses[i].block,
                  r2.offChip.misses[i].block);
        EXPECT_EQ(r1.offChip.misses[i].cpu, r2.offChip.misses[i].cpu);
        EXPECT_EQ(r1.offChip.misses[i].cls, r2.offChip.misses[i].cls);
    }
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST(Experiment, DifferentSeedsDiverge)
{
    auto cfg = ExperimentConfig::quick(WorkloadKind::Zeus,
                                       SystemContext::MultiChip);
    auto r1 = runExperiment(cfg);
    cfg.seed = 777;
    auto r2 = runExperiment(cfg);
    // Traces should differ somewhere (lengths or contents).
    bool differ = r1.offChip.misses.size() != r2.offChip.misses.size();
    if (!differ) {
        for (std::size_t i = 0; i < r1.offChip.misses.size(); ++i) {
            if (r1.offChip.misses[i].block !=
                r2.offChip.misses[i].block) {
                differ = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differ);
}

TEST(Experiment, WorkloadNamesAndPredicates)
{
    EXPECT_EQ(workloadName(WorkloadKind::Apache), "Apache");
    EXPECT_EQ(workloadName(WorkloadKind::Oltp), "DB2-OLTP");
    EXPECT_EQ(workloadName(WorkloadKind::DssQ17), "DSS-Qry17");
    EXPECT_EQ(workloadName(WorkloadKind::KvStore), "KVstore");
    EXPECT_EQ(workloadName(WorkloadKind::Broker), "Broker");
    EXPECT_EQ(workloadName(WorkloadKind::PhasedMix), "PhasedMix");
    EXPECT_TRUE(workloadIsDb(WorkloadKind::DssQ1));
    EXPECT_FALSE(workloadIsDb(WorkloadKind::Zeus));
    EXPECT_FALSE(workloadIsDb(WorkloadKind::Broker));
    EXPECT_EQ(contextName(SystemContext::MultiChip), "multi-chip");
}

} // namespace
} // namespace tstream
