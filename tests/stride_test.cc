/**
 * @file
 * Unit tests for the stride detector (Figure 3's "strided" axis).
 */

#include <gtest/gtest.h>

#include "core/stride.hh"

namespace tstream
{
namespace
{

TEST(Stride, UnitStrideDetectedFromThirdMiss)
{
    StrideDetector d;
    EXPECT_FALSE(d.observe(0, 100)); // allocate
    EXPECT_FALSE(d.observe(0, 101)); // one delta seen
    EXPECT_TRUE(d.observe(0, 102));  // two consistent deltas
    EXPECT_TRUE(d.observe(0, 103));
}

TEST(Stride, LargerStrideWithinWindow)
{
    StrideDetector d;
    d.observe(0, 100);
    d.observe(0, 108);
    EXPECT_TRUE(d.observe(0, 116));
}

TEST(Stride, NegativeStride)
{
    StrideDetector d;
    d.observe(0, 500);
    d.observe(0, 496);
    EXPECT_TRUE(d.observe(0, 492));
}

TEST(Stride, StrideChangeResetsConfidence)
{
    StrideDetector d;
    d.observe(0, 100);
    d.observe(0, 101);
    EXPECT_TRUE(d.observe(0, 102));
    EXPECT_FALSE(d.observe(0, 110)); // delta changed
    EXPECT_TRUE(d.observe(0, 118));  // two deltas of 8 now
}

TEST(Stride, ZeroStrideIsNotStrided)
{
    StrideDetector d;
    d.observe(0, 100);
    d.observe(0, 100);
    EXPECT_FALSE(d.observe(0, 100));
}

TEST(Stride, RandomJumpsNeverPredict)
{
    StrideDetector d;
    BlockId b = 1;
    for (int i = 0; i < 200; ++i) {
        b = b * 6364136223846793005ull + 1442695040888963407ull;
        EXPECT_FALSE(d.observe(0, b % (1ull << 40)));
    }
}

TEST(Stride, PerCpuTrackersAreIndependent)
{
    StrideDetector d;
    d.observe(0, 100);
    d.observe(0, 101);
    // CPU 1 sees an unrelated address; must not predict.
    EXPECT_FALSE(d.observe(1, 102));
    // CPU 0's stream continues predicted.
    EXPECT_TRUE(d.observe(0, 102));
}

TEST(Stride, MultipleConcurrentStreams)
{
    StrideDetector d;
    // Two interleaved streams far apart; both should be tracked.
    for (int i = 0; i < 10; ++i) {
        const bool p1 = d.observe(0, 1000 + i);
        const bool p2 = d.observe(0, 500000 + 4 * i);
        if (i >= 2) {
            EXPECT_TRUE(p1) << i;
            EXPECT_TRUE(p2) << i;
        }
    }
}

TEST(Stride, OutOfWindowAllocatesNewTracker)
{
    StrideConfig cfg;
    cfg.window = 16;
    StrideDetector d(cfg);
    d.observe(0, 100);
    d.observe(0, 101);
    EXPECT_TRUE(d.observe(0, 102));
    // A jump beyond the window starts fresh, not a giant stride.
    EXPECT_FALSE(d.observe(0, 10000));
    EXPECT_FALSE(d.observe(0, 10001));
    EXPECT_TRUE(d.observe(0, 10002));
}

TEST(Stride, LabelTraceMatchesManualFeed)
{
    MissTrace t;
    t.numCpus = 2;
    std::vector<BlockId> blocks = {10, 11, 12, 13, 900, 905, 910};
    std::uint64_t seq = 0;
    for (auto b : blocks)
        t.misses.push_back(MissRecord{seq++, b, 0, 0, 0});
    auto flags = StrideDetector::labelTrace(t);
    ASSERT_EQ(flags.size(), blocks.size());
    EXPECT_FALSE(flags[0]);
    EXPECT_FALSE(flags[1]);
    EXPECT_TRUE(flags[2]);
    EXPECT_TRUE(flags[3]);
    EXPECT_FALSE(flags[4]); // delta changed
    EXPECT_FALSE(flags[5]);
    EXPECT_TRUE(flags[6]);
}

/** Parameterized sweep: arithmetic sequences of any stride within the
 *  window are eventually predicted. */
class StrideSweepTest : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(StrideSweepTest, ArithmeticSequencePredicted)
{
    const std::int64_t stride = GetParam();
    StrideDetector d;
    std::int64_t addr = 1 << 20;
    int predicted = 0;
    for (int i = 0; i < 20; ++i) {
        if (d.observe(0, static_cast<BlockId>(addr)))
            ++predicted;
        addr += stride;
    }
    EXPECT_GE(predicted, 17);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweepTest,
                         ::testing::Values(1, 2, 3, 4, 8, 12, -1, -2,
                                           -8, -12));

TEST(Stride, StridesBeyondWindowAreNotTracked)
{
    // Deliberate design point: distant addresses must not alias into
    // one tracker (they are different buffers, not a stride).
    StrideDetector d;
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(d.observe(0, 1000 + i * 500));
}

} // namespace
} // namespace tstream
