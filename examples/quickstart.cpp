/**
 * @file
 * Quickstart: run one workload through one system context, identify
 * temporal streams, and print the headline numbers.
 *
 * Build the project, then:   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace tstream;

    // 1. Configure one experiment: the OLTP workload on the 16-node
    //    multi-chip DSM, with small budgets so this runs in seconds.
    ExperimentConfig cfg;
    cfg.workload = WorkloadKind::Oltp;
    cfg.context = SystemContext::MultiChip;
    cfg.warmupInstructions = 6'000'000;
    cfg.measureInstructions = 8'000'000;
    cfg.scale = 0.4; // shrink footprints for the demo

    // 2. Run it: warms up untraced, then collects the off-chip
    //    read-miss trace.
    ExperimentResult res = runExperiment(cfg);
    std::printf("collected %zu off-chip read misses over %llu "
                "instructions (%.2f per 1000)\n",
                res.offChip.misses.size(),
                static_cast<unsigned long long>(res.instructions),
                res.offChip.mpki());

    // 3. Identify temporal streams with the SEQUITUR analysis.
    StreamStats streams = analyzeStreams(res.offChip);
    std::printf("misses in temporal streams: %.1f%%  (median stream "
                "length %.0f, %llu grammar rules)\n",
                100.0 * streams.inStreamFraction(),
                streams.medianStreamLength(),
                static_cast<unsigned long long>(streams.grammarRules));

    // 4. Attribute misses to code modules (paper Tables 3-5 style).
    ModuleProfile prof =
        profileModules(res.offChip, streams, res.registry);
    std::printf("\nper-category breakdown:\n%s",
                renderModuleTable(prof, /*web_rows=*/false,
                                  /*db_rows=*/true)
                    .c_str());
    return 0;
}
