/**
 * @file
 * The paper's motivating example two (Section 2.1): the Solaris
 * per-CPU dispatch queues. When a CPU's own queue is empty it scans
 * every other CPU's queue in a fixed order (disp_getwork /
 * disp_getbest / dispdeq / disp_ratify). Because the queue locks sit
 * at fixed addresses and all CPUs scan in the same order, the misses
 * form highly repetitive cross-CPU temporal streams — the paper
 * measures up to 12% of all off-chip misses in these functions.
 *
 * This example starves most CPUs so work stealing dominates, then
 * shows the scheduler category's share and repetitiveness.
 */

#include <cstdio>
#include <memory>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "kernel/kernel.hh"
#include "mem/multichip.hh"
#include "sim/engine.hh"

namespace
{

using namespace tstream;

/** A task that does a little private work, then yields. */
class ChurnTask : public Task
{
  public:
    explicit ChurnTask(Addr scratch)
        : scratch_(scratch)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        // Touch a small private working set; the interesting traffic
        // is the scheduler's, not ours.
        for (int i = 0; i < 4; ++i)
            ctx.read(scratch_ + i * kBlockSize, 32, 0);
        ctx.write(scratch_, 16, 0);
        ctx.exec(400);
        return RunResult::Yield;
    }

  private:
    Addr scratch_;
};

} // namespace

int
main()
{
    using namespace tstream;

    Engine eng(std::make_unique<MultiChipSystem>(), /*seed=*/21);
    Kernel kern(eng);

    // Fewer runnable threads than CPUs: queues are mostly empty, so
    // idle CPUs continuously steal, scanning all dispatch queues in
    // fixed order.
    for (unsigned t = 0; t < 6; ++t) {
        const Addr scratch =
            kern.kernelHeap().allocBlocks(8);
        kern.spawn(std::make_unique<ChurnTask>(scratch),
                   static_cast<CpuId>(t % eng.numCpus()));
    }

    eng.setTracing(false);
    kern.run(2'000'000);
    eng.setTracing(true);
    kern.run(6'000'000);
    eng.finalizeTraces();

    const MissTrace &trace = eng.memory().offChipTrace();
    StreamStats st = analyzeStreams(trace);
    ModuleProfile prof = profileModules(trace, st, eng.registry());

    std::printf("off-chip misses: %zu\n", trace.misses.size());
    std::printf("kernel scheduler share: %.1f%% of misses, %.1f%% of "
                "misses in-category are in streams\n",
                prof.pctMisses(Category::KernelScheduler),
                prof.pctInStreams(Category::KernelScheduler));
    std::printf("overall in-stream: %.1f%%\n",
                100.0 * st.inStreamFraction());
    std::printf("\nThe dispatch-queue scan addresses are fixed and the "
                "scan order is the same\non every CPU, so the "
                "scheduler's misses are almost entirely repetitive.\n");
    return 0;
}
