/**
 * @file
 * The paper's motivating example one (Section 2.1): overlapping
 * B+-tree range scans produce temporal streams along the sibling-
 * linked leaves that no stride prefetcher can capture.
 *
 * This example drives the database substrate directly — no workload
 * driver — and shows that (a) the leaf-visit miss sequence recurs,
 * and (b) it is non-strided.
 */

#include <cstdio>
#include <memory>

#include "core/stream_analysis.hh"
#include "db/btree.hh"
#include "db/table.hh"
#include "kernel/kernel.hh"
#include "mem/multichip.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace tstream;

    Engine eng(std::make_unique<MultiChipSystem>(), /*seed=*/7);
    Kernel kern(eng);

    // A buffer pool and one index over two hundred thousand keys.
    BufferPoolConfig bpcfg;
    bpcfg.frames = 4096;
    BufferPool pool(kern, bpcfg);
    // A heap table of records plus the index over its keys. Range
    // scans read index entries and chase the record ids into the
    // (scattered) heap pages, as a real engine does.
    HeapTable records(kern, pool, /*first_page=*/0, /*npages=*/3'000,
                      /*tuples_per_page=*/16, /*tuple_bytes=*/240);
    BTree index(kern, pool, /*first_page=*/3'000);
    index.build(200'000);
    std::printf("built a height-%u B+-tree over %llu keys (%llu "
                "pages)\n",
                index.height(),
                static_cast<unsigned long long>(index.keyCount()),
                static_cast<unsigned long long>(index.pagesUsed()));

    // Warm up untraced — and page the leaves in, in *random* order,
    // so they land in scattered buffer-pool frames: leaves are not
    // contiguous in memory (paper Section 2.1).
    eng.setTracing(false);
    {
        SysCtx ctx(eng, kern, /*cpu=*/0, nullptr);
        Rng shuffle(3);
        for (std::uint64_t i = 0; i < 4000; ++i)
            index.lookup(ctx, shuffle.below(200'000));
        index.rangeScan(ctx, 0, 200'000);
    }

    // Overlapping range scans from four different CPUs: each scan
    // walks the same sibling-linked leaves in the same order. The
    // cache-eviction sweeps between scans are not part of the traced
    // workload.
    for (unsigned round = 0; round < 6; ++round) {
        const CpuId cpu = static_cast<CpuId>(round % 4);
        SysCtx ctx(eng, kern, cpu, nullptr);
        // Scans overlap: all cover [40k, 120k); starts differ a bit.
        // Every other entry's record is fetched (a filtered scan), so
        // leaf reads interleave with scattered heap-page reads.
        eng.setTracing(true);
        index.rangeScan(ctx, 40'000 + round * 1'000, 80'000,
                        [&](SysCtx &c, std::uint64_t rid) {
                            if (rid % 2 == 0)
                                records.fetch(c, rid * 7919 % 200'000);
                        });
        // Evict the leaves from this CPU's caches between scans by
        // sweeping an unrelated region through the L2, untraced.
        eng.setTracing(false);
        for (Addr a = 0; a < 16 * 1024 * 1024; a += kBlockSize)
            eng.read(cpu, seg::kKernelText + a, 8, 0);
    }
    eng.finalizeTraces();

    const MissTrace &trace = eng.memory().offChipTrace();
    StreamStats st = analyzeStreams(trace);
    std::printf("off-chip misses: %zu\n", trace.misses.size());
    std::printf("in temporal streams: %.1f%% (median length %.0f)\n",
                100.0 * st.inStreamFraction(),
                st.medianStreamLength());
    const double strided =
        100.0 *
        (st.stridedRepetitive + st.stridedNonRepetitive) /
        std::max<double>(1.0, static_cast<double>(st.totalMisses));
    std::printf("stride-predictable: %.1f%% — the in-page entry reads "
                "are strided, but the\nleaf-to-leaf transitions and "
                "record fetches are pointer chases a stride\n"
                "prefetcher cannot follow; the temporal stream covers "
                "both.\n",
                strided);
    return 0;
}
