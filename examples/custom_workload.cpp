/**
 * @file
 * Writing a custom workload against the public API: a synthetic
 * producer/consumer application, run through the single-chip CMP,
 * with the full analysis pipeline on both the off-chip and intra-chip
 * traces.
 *
 * This is the template to copy when characterizing your own
 * application model.
 */

#include <cstdio>
#include <memory>

#include "core/stream_analysis.hh"
#include "kernel/kernel.hh"
#include "mem/singlechip.hh"
#include "sim/engine.hh"

namespace
{

using namespace tstream;

/** Shared ring of fixed-address slots. */
struct Ring
{
    Addr base = 0;
    static constexpr unsigned kSlots = 64;
    unsigned head = 0, tail = 0;

    bool full() const { return head - tail >= kSlots; }
    bool empty() const { return head == tail; }
};

/** Producer: fills ring slots in order (fixed addresses -> streams). */
class Producer : public Task
{
  public:
    Producer(Ring &ring, FnId fn)
        : ring_(ring), fn_(fn)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        for (int n = 0; n < 8 && !ring_.full(); ++n) {
            const Addr slot =
                ring_.base + (ring_.head % Ring::kSlots) * 4 *
                                 kBlockSize;
            ctx.write(slot, 3 * 64, fn_); // payload
            ctx.write(slot + 3 * 64, 16, fn_); // ready flag
            ring_.head++;
            ctx.exec(120);
        }
        return RunResult::Yield;
    }

  private:
    Ring &ring_;
    FnId fn_;
};

/** Consumer: drains the ring, reading what the producer wrote. */
class Consumer : public Task
{
  public:
    Consumer(Ring &ring, FnId fn)
        : ring_(ring), fn_(fn)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        for (int n = 0; n < 8 && !ring_.empty(); ++n) {
            const Addr slot =
                ring_.base + (ring_.tail % Ring::kSlots) * 4 *
                                 kBlockSize;
            ctx.read(slot + 3 * 64, 16, fn_); // flag
            ctx.read(slot, 3 * 64, fn_);      // payload
            ring_.tail++;
            ctx.exec(150);
        }
        return RunResult::Yield;
    }

  private:
    Ring &ring_;
    FnId fn_;
};

} // namespace

int
main()
{
    using namespace tstream;

    Engine eng(std::make_unique<SingleChipSystem>(), /*seed=*/5);
    Kernel kern(eng);

    const FnId fnProd =
        eng.registry().intern("ring_produce", Category::KernelOther);
    const FnId fnCons =
        eng.registry().intern("ring_consume", Category::KernelOther);

    Ring ring;
    ring.base = kern.kernelHeap().allocBlocks(Ring::kSlots * 4);

    // Two producer/consumer pairs pinned to different cores.
    kern.spawn(std::make_unique<Producer>(ring, fnProd), 0);
    kern.spawn(std::make_unique<Consumer>(ring, fnCons), 2);
    kern.spawn(std::make_unique<Producer>(ring, fnProd), 1);
    kern.spawn(std::make_unique<Consumer>(ring, fnCons), 3);

    eng.setTracing(false);
    kern.run(1'000'000);
    eng.setTracing(true);
    kern.run(4'000'000);
    eng.finalizeTraces();

    // The ring slots bounce core-to-core: expect most intra-chip L1
    // misses to be coherence, supplied by peer L1s, and to recur.
    const MissTrace &intra = eng.memory().intraChipTrace();
    std::uint64_t byClass[kNumIntraClasses] = {};
    for (const MissRecord &m : intra.misses)
        byClass[m.cls]++;
    const double tot = std::max<double>(
        1.0, static_cast<double>(intra.misses.size()));

    std::printf("intra-chip L1 misses: %zu\n", intra.misses.size());
    for (std::size_t c = 0; c < kNumIntraClasses; ++c)
        std::printf("  %-18s %6.1f%%\n",
                    std::string(intraClassName(
                                    static_cast<IntraClass>(c)))
                        .c_str(),
                    100.0 * byClass[c] / tot);

    StreamStats st = analyzeStreams(intra);
    std::printf("in temporal streams: %.1f%% (median length %.0f)\n",
                100.0 * st.inStreamFraction(),
                st.medianStreamLength());
    return 0;
}
