/**
 * @file
 * `tstream-bench` — front-end for the sharded bench driver.
 *
 * Runs a named list of figure/table benches (each a binary built from
 * bench/), collects their --json reports into one combined document,
 * merges shard outputs back into unsharded reports, and checks the
 * invariants the driver promises. Subcommands:
 *
 *   run          run benches (forwarding --quick/--jobs/--shard) and
 *                bundle their reports into one combined JSON document
 *   merge        merge shard reports; fails unless the shards are a
 *                disjoint exact cover of every bench's grid
 *   check-equal  verify two reports are equivalent cell-for-cell
 *                (ignoring wall time and other execution details)
 *   check-stdout verify every row of a report appears verbatim in a
 *                captured stdout file (the bit-identity guarantee)
 *   compare      diff the perf series of two reports (Google
 *                Benchmark JSON or tstream-bench documents), print
 *                per-series ratios, and exit non-zero when any gated
 *                series regresses beyond --max-regress or went
 *                missing — the CI perf-regression gate
 *   print        re-render the tables of a report from its rows
 *   list         show the known bench names
 *
 * See docs/BENCHMARKING.md for recipes (multi-process sharding, CI,
 * baselines).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/bench_report.hh"

using namespace tstream;

namespace
{

struct BenchAlias
{
    const char *alias;
    const char *binary;
};

const BenchAlias kBenches[] = {
    {"fig1", "fig1_miss_classification"},
    {"fig2", "fig2_stream_fraction"},
    {"fig3", "fig3_stride_breakdown"},
    {"fig4", "fig4_length_reuse"},
    {"table3", "table3_web_origins"},
    {"table4", "table4_oltp_origins"},
    {"table5", "table5_dss_origins"},
    {"table6", "table6_scenario_origins"},
    {"ablation_a", "ablation_stream_detector"},
    {"ablation_b", "ablation_l2_sweep"},
    {"ext", "ext_prefetcher"},
};

int
usage(const char *msg)
{
    if (msg)
        std::fprintf(stderr, "tstream-bench: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  tstream-bench run [--quick] [--jobs N] [--shard k/N]\n"
        "                [--resume] [--workload FILE] [--phases SPEC]\n"
        "                [--bench-dir DIR] -o OUT.json BENCH...\n"
        "  tstream-bench merge -o OUT.json IN.json...\n"
        "  tstream-bench check-equal [--subset] A.json B.json\n"
        "  tstream-bench check-stdout REPORT.json STDOUT.txt\n"
        "  tstream-bench compare [--max-regress R] [--series NAME]...\n"
        "                BASELINE.json CURRENT.json\n"
        "  tstream-bench print REPORT.json\n"
        "  tstream-bench list\n"
        "\n"
        "run executes each named bench binary (see `list`; `paper` =\n"
        "fig1-fig4 + tables, `all` adds the ablations and the\n"
        "prefetcher extension), forwards --quick/--jobs/--shard, and\n"
        "bundles the per-bench JSON reports into one combined\n"
        "document. Shard reports from separate processes/machines are\n"
        "reassembled with merge, which fails if any grid cell is\n"
        "missing. check-equal ignores wall time, cache hits and shard\n"
        "geometry, so `merge(shard 0/2, shard 1/2)` must check-equal\n"
        "the unsharded run; with --subset, every cell of A must match\n"
        "its same-id cell in B (B may hold more — e.g. a --workload\n"
        "config run against the full compiled-in sweep). run forwards\n"
        "--workload/--phases to every named bench, restricting each to\n"
        "the configured workload. With --resume, cells already present in\n"
        "the existing OUT.json are reused instead of re-run; the run\n"
        "fails if that report's schema version or any cell's config\n"
        "hash mismatches. compare reads Google Benchmark JSON\n"
        "(cpu_time per benchmark, best repetition) or tstream-bench\n"
        "reports (wall_seconds per cell) and fails when a gated\n"
        "series is slower than baseline*R or absent; ratio == R\n"
        "still passes, and current-only series are reported but\n"
        "never gated. Recipes: docs/BENCHMARKING.md.\n");
    return 2;
}

const char *
resolveBench(const std::string &name)
{
    for (const BenchAlias &b : kBenches)
        if (name == b.alias || name == b.binary)
            return b.binary;
    return nullptr;
}

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

// ---- run --------------------------------------------------------------------

int
cmdRun(int argc, char **argv, const char *argv0)
{
    bool quick = false;
    bool resume = false;
    unsigned jobs = 0;
    std::string shard;
    std::string workloadFile;
    std::string phasesSpec;
    std::string benchDir = dirName(argv0) + "/../bench";
    std::string out;
    std::vector<std::string> names;

    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--jobs") {
            const char *v = value("--jobs");
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0)
                return usage("--jobs wants a positive integer");
            jobs = static_cast<unsigned>(n);
        } else if (arg == "--shard") {
            shard = value("--shard");
            ShardSpec spec;
            if (!parseShardSpec(shard, spec))
                return usage("--shard wants k/N with k < N");
        } else if (arg == "--workload") {
            workloadFile = value("--workload");
        } else if (arg == "--phases") {
            phasesSpec = value("--phases");
        } else if (arg == "--bench-dir") {
            benchDir = value("--bench-dir");
        } else if (arg == "-o" || arg == "--output") {
            out = value("-o");
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown run option: " + std::string(arg)).c_str());
        } else {
            if (arg == "paper") {
                for (const char *n :
                     {"fig1", "fig2", "fig3", "fig4", "table3",
                      "table4", "table5"})
                    names.push_back(n);
            } else if (arg == "all") {
                for (const BenchAlias &b : kBenches)
                    names.push_back(b.alias);
            } else {
                names.push_back(std::string(arg));
            }
        }
    }
    if (out.empty())
        return usage("run needs -o OUT.json");
    if (names.empty())
        return usage("run needs at least one bench name (see list)");
    if (!workloadFile.empty() && !phasesSpec.empty())
        return usage("--workload and --phases are mutually exclusive");

    // --resume: reuse cells recorded in the existing OUT.json. Each
    // bench's prior document is re-written to its part path and the
    // binary revalidates it cell by cell (schema version mismatches
    // fail right here in readBenchDocs; config-hash mismatches fail
    // inside the bench).
    std::vector<BenchDoc> priorDocs;
    if (resume) {
        std::FILE *f = std::fopen(out.c_str(), "rb");
        if (f) {
            std::fclose(f);
            std::string err;
            if (!readBenchDocs(out, priorDocs, err)) {
                std::fprintf(stderr,
                             "tstream-bench: --resume: %s\n",
                             err.c_str());
                return 1;
            }
        }
    }

    std::vector<BenchDoc> docs;
    std::size_t lastWritten = 0;
    for (const std::string &name : names) {
        const char *binary = resolveBench(name);
        if (!binary)
            return usage(("unknown bench: " + name +
                          " (see tstream-bench list)")
                             .c_str());
        const std::string part = out + "." + binary + ".json";
        std::string cmd = shellQuote(benchDir + "/" + binary);
        if (quick)
            cmd += " --quick";
        if (jobs > 0)
            cmd += " --jobs " + std::to_string(jobs);
        if (!shard.empty())
            cmd += " --shard " + shard;
        if (!workloadFile.empty())
            cmd += " --workload " + shellQuote(workloadFile);
        if (!phasesSpec.empty())
            cmd += " --phases " + shellQuote(phasesSpec);
        cmd += " --json " + shellQuote(part);
        if (resume) {
            for (const BenchDoc &doc : priorDocs)
                if (doc.bench == binary) {
                    std::string err;
                    if (!writeBenchDoc(doc, part, err)) {
                        std::fprintf(stderr, "tstream-bench: %s\n",
                                     err.c_str());
                        return 1;
                    }
                    cmd += " --resume";
                    break;
                }
        }

        std::fprintf(stderr, "[tstream-bench] %s\n", cmd.c_str());
        const int rc = std::system(cmd.c_str());
        if (rc != 0) {
            std::fprintf(stderr,
                         "tstream-bench: %s failed (status %d)\n",
                         binary, rc);
            return 1;
        }
        std::string err;
        if (!readBenchDocs(part, docs, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        std::remove(part.c_str());

        // Checkpoint OUT.json after every bench, so a sweep that dies
        // partway leaves the completed benches behind for --resume.
        // Under --resume, prior documents whose bench this write does
        // not yet hold are carried forward, so resuming a subset
        // (e.g. just one failed table) never truncates the report.
        std::vector<BenchDoc> flat = docs;
        if (resume)
            for (const BenchDoc &doc : priorDocs) {
                bool fresh = false;
                for (const BenchDoc &d : docs)
                    fresh = fresh || d.bench == doc.bench;
                if (!fresh)
                    flat.push_back(doc);
            }
        if (flat.size() == 1) {
            if (!writeBenchDoc(flat[0], out, err)) {
                std::fprintf(stderr, "tstream-bench: %s\n",
                             err.c_str());
                return 1;
            }
        } else if (!json::writeFile(combinedReportToJson(flat), out,
                                    err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        lastWritten = flat.size();
    }

    std::fprintf(stderr, "[tstream-bench] wrote %s (%zu benches)\n",
                 out.c_str(), lastWritten);
    return 0;
}

// ---- merge ------------------------------------------------------------------

/** Group by bench name preserving first-seen order. */
std::vector<std::vector<BenchDoc>>
groupByBench(std::vector<BenchDoc> docs)
{
    std::vector<std::vector<BenchDoc>> groups;
    for (BenchDoc &doc : docs) {
        bool placed = false;
        for (auto &g : groups)
            if (g.front().bench == doc.bench) {
                g.push_back(std::move(doc));
                placed = true;
                break;
            }
        if (!placed) {
            groups.emplace_back();
            groups.back().push_back(std::move(doc));
        }
    }
    return groups;
}

int
cmdMerge(int argc, char **argv)
{
    std::string out;
    std::vector<std::string> inputs;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if ((arg == "-o" || arg == "--output") && i + 1 < argc)
            out = argv[++i];
        else if (!arg.empty() && arg[0] == '-')
            return usage(
                ("unknown merge option: " + std::string(arg)).c_str());
        else
            inputs.emplace_back(arg);
    }
    if (out.empty() || inputs.empty())
        return usage("merge needs -o OUT.json and input reports");

    std::vector<BenchDoc> docs;
    std::string err;
    for (const std::string &path : inputs)
        if (!readBenchDocs(path, docs, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }

    std::vector<BenchDoc> merged;
    for (auto &group : groupByBench(std::move(docs))) {
        BenchDoc doc;
        if (!mergeBenchDocs(group, doc, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        merged.push_back(std::move(doc));
    }

    if (merged.size() == 1) {
        if (!writeBenchDoc(merged[0], out, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
    } else if (!json::writeFile(combinedReportToJson(merged), out,
                                err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    std::size_t cells = 0;
    for (const BenchDoc &doc : merged)
        cells += doc.cells.size();
    std::fprintf(stderr,
                 "[tstream-bench] merged %zu input file(s) into %s "
                 "(%zu benches, %zu cells, full cover)\n",
                 inputs.size(), out.c_str(), merged.size(), cells);
    return 0;
}

// ---- compare ----------------------------------------------------------------

std::string
fmtTime(double ns)
{
    char buf[32];
    if (ns <= 0.0)
        return "--";
    if (ns < 1e3)
        std::snprintf(buf, sizeof buf, "%.0f ns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
    return buf;
}

int
cmdCompare(int argc, char **argv)
{
    PerfGateOptions opts;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--max-regress") {
            const char *v = value("--max-regress");
            char *end = nullptr;
            opts.maxRegress = std::strtod(v, &end);
            if (!end || *end != '\0' || opts.maxRegress <= 0.0)
                return usage("--max-regress wants a positive ratio");
        } else if (arg == "--series") {
            opts.series.emplace_back(value("--series"));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown compare option: " + std::string(arg))
                    .c_str());
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage("compare takes exactly two reports "
                     "(BASELINE.json CURRENT.json)");

    std::vector<PerfSample> base, cur;
    std::string err;
    if (!loadPerfSeries(paths[0], base, err) ||
        !loadPerfSeries(paths[1], cur, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 2;
    }

    const PerfComparison cmp = comparePerfSeries(base, cur, opts);

    std::size_t width = 6;
    for (const PerfDelta &d : cmp.rows)
        width = std::max(width, d.name.size());
    std::printf("%-*s  %12s  %12s  %7s\n", static_cast<int>(width),
                "series", "baseline", "current", "ratio");
    for (const PerfDelta &d : cmp.rows) {
        const char *status = "";
        switch (d.status) {
          case PerfDelta::Status::Ok: status = "ok"; break;
          case PerfDelta::Status::Improved: status = "improved"; break;
          case PerfDelta::Status::Regressed:
            status = "REGRESSED";
            break;
          case PerfDelta::Status::Missing: status = "MISSING"; break;
          case PerfDelta::Status::Fresh: status = "new"; break;
        }
        char ratio[16];
        if (d.ratio > 0)
            std::snprintf(ratio, sizeof ratio, "%.3f", d.ratio);
        else
            std::snprintf(ratio, sizeof ratio, "--");
        std::printf("%-*s  %12s  %12s  %7s  %s\n",
                    static_cast<int>(width), d.name.c_str(),
                    fmtTime(d.baseNs).c_str(),
                    fmtTime(d.currentNs).c_str(), ratio, status);
    }
    std::printf("compare: %zu series, %zu regressed, %zu missing, "
                "%zu new (threshold %.2fx): %s\n",
                cmp.rows.size(), cmp.regressed, cmp.missing, cmp.fresh,
                opts.maxRegress, cmp.pass ? "PASS" : "FAIL");
    return cmp.pass ? 0 : 1;
}

// ---- check-equal / check-stdout / print ------------------------------------

int
cmdCheckEqual(const std::string &pathA, const std::string &pathB,
              bool subset)
{
    std::vector<BenchDoc> a, b;
    std::string err;
    if (!readBenchDocs(pathA, a, err) ||
        !readBenchDocs(pathB, b, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    if (!subset && a.size() != b.size()) {
        std::fprintf(stderr,
                     "tstream-bench: bench counts differ (%zu vs "
                     "%zu)\n",
                     a.size(), b.size());
        return 1;
    }
    for (const BenchDoc &da : a) {
        const BenchDoc *db = nullptr;
        for (const BenchDoc &cand : b)
            if (cand.bench == da.bench)
                db = &cand;
        if (!db) {
            std::fprintf(stderr,
                         "tstream-bench: bench %s missing from %s\n",
                         da.bench.c_str(), pathB.c_str());
            return 1;
        }
        std::string why;
        const bool ok = subset ? benchDocIsSubset(da, *db, why)
                               : benchDocsEquivalent(da, *db, why);
        if (!ok) {
            std::fprintf(stderr, "tstream-bench: %s: %s\n",
                         da.bench.c_str(), why.c_str());
            return 1;
        }
    }
    std::printf(subset ? "report subset ok: %s <= %s\n"
                       : "reports equivalent: %s == %s\n",
                pathA.c_str(), pathB.c_str());
    return 0;
}

int
cmdCheckStdout(const std::string &reportPath,
               const std::string &stdoutPath)
{
    std::vector<BenchDoc> docs;
    std::string err;
    if (!readBenchDocs(reportPath, docs, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    std::ifstream in(stdoutPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tstream-bench: cannot open %s\n",
                     stdoutPath.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::size_t rows = 0;
    for (const BenchDoc &doc : docs)
        for (const BenchCell &cell : doc.cells)
            for (const BenchRow &row : cell.rows) {
                ++rows;
                if (text.find(row.text) == std::string::npos) {
                    std::fprintf(
                        stderr,
                        "tstream-bench: row not found verbatim in "
                        "%s:\n  bench %s cell %s\n  text: %s\n",
                        stdoutPath.c_str(), doc.bench.c_str(),
                        cell.id.c_str(), row.text.c_str());
                    return 1;
                }
            }
    std::printf("all %zu report rows appear verbatim in %s\n", rows,
                stdoutPath.c_str());
    return 0;
}

int
cmdPrint(const std::string &path)
{
    std::vector<BenchDoc> docs;
    std::string err;
    if (!readBenchDocs(path, docs, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    for (const BenchDoc &doc : docs) {
        std::printf("== %s%s (%zu/%zu cells", doc.bench.c_str(),
                    doc.quick ? " --quick" : "", doc.cells.size(),
                    doc.gridCells);
        if (doc.shard.count > 1)
            std::printf(", shard %u/%u", doc.shard.index,
                        doc.shard.count);
        std::printf(") ==\n");
        // Rows grouped by table tag, cells in grid order inside each.
        std::vector<std::string> tables;
        for (const BenchCell &cell : doc.cells)
            for (const BenchRow &row : cell.rows) {
                bool seen = false;
                for (const std::string &t : tables)
                    seen = seen || t == row.table;
                if (!seen)
                    tables.push_back(row.table);
            }
        for (const std::string &table : tables) {
            std::printf("-- %s --\n", table.c_str());
            for (const BenchCell &cell : doc.cells)
                for (const BenchRow &row : cell.rows)
                    if (row.table == table)
                        std::printf("%s\n", row.text.c_str());
        }
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage("missing subcommand");
    const std::string_view cmd = argv[1];

    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2, argv[0]);
    if (cmd == "merge")
        return cmdMerge(argc - 2, argv + 2);
    if (cmd == "check-equal") {
        bool subset = false;
        std::vector<const char *> paths;
        for (int i = 2; i < argc; ++i) {
            if (std::string_view(argv[i]) == "--subset")
                subset = true;
            else
                paths.push_back(argv[i]);
        }
        if (paths.size() != 2)
            return usage("check-equal takes exactly two reports");
        return cmdCheckEqual(paths[0], paths[1], subset);
    }
    if (cmd == "check-stdout") {
        if (argc != 4)
            return usage(
                "check-stdout takes a report and a stdout capture");
        return cmdCheckStdout(argv[2], argv[3]);
    }
    if (cmd == "compare")
        return cmdCompare(argc - 2, argv + 2);
    if (cmd == "print") {
        if (argc != 3)
            return usage("print takes exactly one report");
        return cmdPrint(argv[2]);
    }
    if (cmd == "list") {
        std::printf("%-12s %s\n", "alias", "binary");
        for (const BenchAlias &b : kBenches)
            std::printf("%-12s %s\n", b.alias, b.binary);
        std::printf("%-12s fig1-fig4 + table3-table5\n", "paper");
        std::printf("%-12s every bench above\n", "all");
        return 0;
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(nullptr);
    return usage(("unknown subcommand: " + std::string(cmd)).c_str());
}
