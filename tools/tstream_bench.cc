/**
 * @file
 * `tstream-bench` — front-end for the sharded/fleet bench driver.
 *
 * Runs a named list of figure/table benches (each a binary built from
 * bench/), collects their --json reports into one combined document,
 * merges shard/worker outputs back into unsharded reports, and checks
 * the invariants the driver promises. Subcommands:
 *
 *   run          run benches (forwarding --quick/--jobs/--shard and
 *                the claim/timeout knobs) and bundle their reports
 *                into one combined JSON document; with --fleet
 *                HOSTS.txt, fan one dynamic-claiming session out to N
 *                workers (local processes or ssh hosts) sharing one
 *                TSTREAM_TRACE_CACHE, collect the per-worker reports
 *                and logs, and merge them (a worker that dies loses
 *                nothing: its cells are reclaimed by the survivors)
 *   merge        merge shard/worker reports; fails unless the inputs
 *                are an exact cover of every bench's grid — a cell
 *                recorded as *failed* covers its index and is carried
 *                into the merged report, a *missing* cell is an error
 *   check-equal  verify two reports are equivalent cell-for-cell
 *                (ignoring wall time and other execution details);
 *                missing cells, failed cells and metric mismatches
 *                each get their own diagnostic and none passes
 *   check-stdout verify every row of a report appears verbatim in a
 *                captured stdout file (the bit-identity guarantee)
 *   compare      diff the perf series of two reports (Google
 *                Benchmark JSON or tstream-bench documents), print
 *                per-series ratios, and exit non-zero when any gated
 *                series regresses beyond --max-regress or went
 *                missing — the CI perf-regression gate
 *   trend        tabulate the perf series of an ordered sequence of
 *                archived reports (e.g. BENCH_perf.json artifacts
 *                across commits); informational unless --max-regress
 *                gates last-vs-first
 *   status       read a live claim session's claim/heartbeat/done
 *                files and render per-worker progress: cells held /
 *                done / failed, last-heartbeat age (flagging stale
 *                workers past the TTL), and an ETA from the done
 *                markers' completion timestamps — works mid-run on
 *                another machine sharing TSTREAM_TRACE_CACHE
 *   print        re-render the tables of a report from its rows
 *   list         show the known bench names
 *
 * See docs/BENCHMARKING.md for recipes (multi-process sharding, fleet
 * runs, CI, baselines).
 */

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/bench_report.hh"
#include "util/claim_file.hh"
#include "util/logging.hh"

using namespace tstream;

namespace
{

struct BenchAlias
{
    const char *alias;
    const char *binary;
};

const BenchAlias kBenches[] = {
    {"fig1", "fig1_miss_classification"},
    {"fig2", "fig2_stream_fraction"},
    {"fig3", "fig3_stride_breakdown"},
    {"fig4", "fig4_length_reuse"},
    {"table3", "table3_web_origins"},
    {"table4", "table4_oltp_origins"},
    {"table5", "table5_dss_origins"},
    {"table6", "table6_scenario_origins"},
    {"ablation_a", "ablation_stream_detector"},
    {"ablation_b", "ablation_l2_sweep"},
    {"ext", "ext_prefetcher"},
};

int
usage(const char *msg)
{
    if (msg)
        std::fprintf(stderr, "tstream-bench: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  tstream-bench run [--quick] [--jobs N] [--shard k/N]\n"
        "                [--resume] [--workload FILE] [--phases SPEC]\n"
        "                [--claim-session ID] [--claim-ttl MS]\n"
        "                [--heartbeat MS] [--cell-timeout MS]\n"
        "                [--cell-retries N] [--fleet HOSTS.txt]\n"
        "                [--fleet-kill-after N] [--bench-dir DIR]\n"
        "                [--telemetry-out BASE] [--slowest N]\n"
        "                -o OUT.json BENCH...\n"
        "  tstream-bench status [--claim-dir DIR | --session ID\n"
        "                [--bench BINARY]] [--grid N] [--ttl MS]\n"
        "                [--now MS]\n"
        "  tstream-bench merge -o OUT.json IN.json...\n"
        "  tstream-bench check-equal [--subset] A.json B.json\n"
        "  tstream-bench check-stdout REPORT.json STDOUT.txt\n"
        "  tstream-bench compare [--max-regress R] [--series NAME]...\n"
        "                BASELINE.json CURRENT.json\n"
        "  tstream-bench trend [--max-regress R] [--series NAME]...\n"
        "                REPORT1.json REPORT2.json...\n"
        "  tstream-bench print REPORT.json\n"
        "  tstream-bench list\n"
        "\n"
        "run executes each named bench binary (see `list`; `paper` =\n"
        "fig1-fig4 + tables, `all` adds the ablations and the\n"
        "prefetcher extension), forwards --quick/--jobs/--shard and\n"
        "the claim/timeout knobs, and bundles the per-bench JSON\n"
        "reports into one combined document. Shard or fleet-worker\n"
        "reports from separate processes/machines are reassembled\n"
        "with merge, which fails if any grid cell is missing (a cell\n"
        "recorded as failed covers its index and is kept). With\n"
        "--fleet HOSTS.txt (one `local` or ssh host per line), run\n"
        "launches one dynamic-claiming worker per line against a\n"
        "shared TSTREAM_TRACE_CACHE, writes OUT.workerK.json/.log per\n"
        "worker, tolerates dead workers (their cells are reclaimed by\n"
        "the survivors after --claim-ttl), and merges the parts;\n"
        "--fleet-kill-after N makes worker 0 SIGKILL itself after its\n"
        "N-th claim (fault-injection for tests/CI). check-equal\n"
        "ignores wall time, cache hits and shard geometry, so\n"
        "`merge(shard 0/2, shard 1/2)` and a merged fleet run must\n"
        "check-equal the unsharded run; missing cells, failed cells\n"
        "and metric mismatches are reported distinctly and none\n"
        "passes. With --subset, every cell of A must match its\n"
        "same-id cell in B (B may hold more — e.g. a --workload\n"
        "config run against the full compiled-in sweep). run forwards\n"
        "--workload/--phases to every named bench, restricting each to\n"
        "the configured workload. With --resume, cells already present in\n"
        "the existing OUT.json are reused instead of re-run; the run\n"
        "fails if that report's schema version or any cell's config\n"
        "hash mismatches. compare reads Google Benchmark JSON\n"
        "(cpu_time per benchmark, best repetition) or tstream-bench\n"
        "reports (wall_seconds per cell) and fails when a gated\n"
        "series is slower than baseline*R or absent; ratio == R\n"
        "still passes, and current-only series are reported but\n"
        "never gated. trend aligns the same series across an ordered\n"
        "report sequence and prints each one's trajectory; with\n"
        "--max-regress it fails when last/first exceeds R or a\n"
        "--series name is absent from the newest report. With\n"
        "--telemetry-out BASE, run forwards --telemetry-out\n"
        "BASE.<binary>.json to every bench (fleet workers get\n"
        "BASE.workerK.<binary>.json), collecting per-process metrics\n"
        "and Chrome trace files next to the reports; after every\n"
        "sweep run prints the --slowest N cells by wall time (default\n"
        "5, 0 disables). status scans a claim directory — by default\n"
        "$TSTREAM_TRACE_CACHE/claims, or one session via --session ID\n"
        "(plus --bench BINARY), or any directory via --claim-dir —\n"
        "and prints per-worker held/done/failed counts with\n"
        "last-heartbeat ages (stale when older than --ttl MS, default\n"
        "30000) and, given the grid size via --grid N, an ETA from\n"
        "the done markers' completion stamps; --now MS pins the clock\n"
        "(tests). Recipes: docs/BENCHMARKING.md and\n"
        "docs/OBSERVABILITY.md.\n");
    return 2;
}

const char *
resolveBench(const std::string &name)
{
    for (const BenchAlias &b : kBenches)
        if (name == b.alias || name == b.binary)
            return b.binary;
    return nullptr;
}

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

// ---- run --------------------------------------------------------------------

/** Everything `run` parsed; shared with the fleet fan-out. */
struct RunOptions
{
    bool quick = false;
    bool resume = false;
    unsigned jobs = 0;
    std::string shard;
    std::string workloadFile;
    std::string phasesSpec;
    std::string claimSession;
    long claimTtlMs = 0;    ///< 0 = bench default
    long heartbeatMs = -1;  ///< -1 = bench default
    long cellTimeoutMs = -1;
    long cellRetries = 0;
    std::string fleetFile;
    long fleetKillAfter = 0;
    std::string benchDir;
    std::string telemetryOut; ///< per-bench files BASE.<binary>.json
    long slowest = 5;         ///< top-N slowest cells; 0 = off
    std::string out;
    std::vector<std::string> names;
};

/** The flags forwarded verbatim to every bench binary / inner run. */
std::string
forwardedFlags(const RunOptions &o)
{
    std::string cmd;
    if (o.quick)
        cmd += " --quick";
    if (o.jobs > 0)
        cmd += " --jobs " + std::to_string(o.jobs);
    if (!o.shard.empty())
        cmd += " --shard " + o.shard;
    if (!o.workloadFile.empty())
        cmd += " --workload " + shellQuote(o.workloadFile);
    if (!o.phasesSpec.empty())
        cmd += " --phases " + shellQuote(o.phasesSpec);
    if (o.claimTtlMs > 0)
        cmd += " --claim-ttl " + std::to_string(o.claimTtlMs);
    if (o.heartbeatMs >= 0)
        cmd += " --heartbeat " + std::to_string(o.heartbeatMs);
    if (o.cellTimeoutMs >= 0)
        cmd += " --cell-timeout " + std::to_string(o.cellTimeoutMs);
    if (o.cellRetries > 0)
        cmd += " --cell-retries " + std::to_string(o.cellRetries);
    return cmd;
}

int runFleet(const RunOptions &opts, const char *argv0);

/**
 * Print the top-@p n cells by wall time across @p docs (stderr, after
 * every sweep) — the quick answer to "where did that sweep spend its
 * time" without opening the telemetry trace.
 */
void
printSlowestCells(const std::vector<BenchDoc> &docs, long n)
{
    if (n <= 0)
        return;
    struct SlowCell
    {
        double wallSeconds;
        const BenchDoc *doc;
        const BenchCell *cell;
    };
    std::vector<SlowCell> all;
    for (const BenchDoc &doc : docs)
        for (const BenchCell &cell : doc.cells)
            all.push_back({cell.wallSeconds, &doc, &cell});
    if (all.empty())
        return;
    std::stable_sort(all.begin(), all.end(),
                     [](const SlowCell &a, const SlowCell &b) {
                         return a.wallSeconds > b.wallSeconds;
                     });
    const std::size_t top =
        std::min(all.size(), static_cast<std::size_t>(n));
    logf(LogLevel::Info, "[tstream-bench] slowest %zu of %zu cells:",
         top, all.size());
    for (std::size_t i = 0; i < top; ++i) {
        const SlowCell &s = all[i];
        logf(LogLevel::Info, "[tstream-bench]   %6.2fs  %s/%s%s%s",
             s.wallSeconds, s.doc->bench.c_str(), s.cell->id.c_str(),
             s.cell->cacheHit ? "  (cache hit)" : "",
             s.cell->failed ? "  (FAILED)" : "");
    }
}

int
cmdRun(int argc, char **argv, const char *argv0)
{
    RunOptions o;
    o.benchDir = dirName(argv0) + "/../bench";

    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto number = [&](const char *what, long lo) -> long {
            const char *v = value(what);
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n < lo) {
                usage((std::string(what) + " wants an integer >= " +
                       std::to_string(lo))
                          .c_str());
                std::exit(2);
            }
            return n;
        };
        if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--resume") {
            o.resume = true;
        } else if (arg == "--jobs") {
            o.jobs = static_cast<unsigned>(number("--jobs", 1));
        } else if (arg == "--shard") {
            o.shard = value("--shard");
            ShardSpec spec;
            if (!parseShardSpec(o.shard, spec))
                return usage("--shard wants k/N with k < N");
        } else if (arg == "--workload") {
            o.workloadFile = value("--workload");
        } else if (arg == "--phases") {
            o.phasesSpec = value("--phases");
        } else if (arg == "--claim-session") {
            o.claimSession = value("--claim-session");
        } else if (arg == "--claim-ttl") {
            o.claimTtlMs = number("--claim-ttl", 1);
        } else if (arg == "--heartbeat") {
            o.heartbeatMs = number("--heartbeat", 0);
        } else if (arg == "--cell-timeout") {
            o.cellTimeoutMs = number("--cell-timeout", 0);
        } else if (arg == "--cell-retries") {
            o.cellRetries = number("--cell-retries", 1);
        } else if (arg == "--fleet") {
            o.fleetFile = value("--fleet");
        } else if (arg == "--fleet-kill-after") {
            o.fleetKillAfter = number("--fleet-kill-after", 1);
        } else if (arg == "--bench-dir") {
            o.benchDir = value("--bench-dir");
        } else if (arg == "--telemetry-out") {
            o.telemetryOut = value("--telemetry-out");
        } else if (arg == "--slowest") {
            o.slowest = number("--slowest", 0);
        } else if (arg == "-o" || arg == "--output") {
            o.out = value("-o");
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown run option: " + std::string(arg)).c_str());
        } else {
            if (arg == "paper") {
                for (const char *n :
                     {"fig1", "fig2", "fig3", "fig4", "table3",
                      "table4", "table5"})
                    o.names.push_back(n);
            } else if (arg == "all") {
                for (const BenchAlias &b : kBenches)
                    o.names.push_back(b.alias);
            } else {
                o.names.push_back(std::string(arg));
            }
        }
    }
    if (o.out.empty())
        return usage("run needs -o OUT.json");
    if (o.names.empty())
        return usage("run needs at least one bench name (see list)");
    if (!o.workloadFile.empty() && !o.phasesSpec.empty())
        return usage("--workload and --phases are mutually exclusive");
    for (const std::string &name : o.names)
        if (!resolveBench(name))
            return usage(("unknown bench: " + name +
                          " (see tstream-bench list)")
                             .c_str());

    const char *cache = std::getenv("TSTREAM_TRACE_CACHE");
    const bool haveCache = cache && *cache;
    if (!o.claimSession.empty() || !o.fleetFile.empty()) {
        if (!haveCache)
            return usage("--claim-session/--fleet need "
                         "TSTREAM_TRACE_CACHE set (the claim "
                         "directory lives in the shared cache)");
        if (!o.shard.empty())
            return usage("--shard is mutually exclusive with "
                         "--claim-session/--fleet (dynamic claiming "
                         "replaces static sharding)");
        if (o.resume)
            return usage("--resume is mutually exclusive with "
                         "--claim-session/--fleet (claiming workers "
                         "skip done cells via the claim directory)");
    }
    if (!o.fleetFile.empty() && !o.claimSession.empty())
        return usage("--fleet generates its own claim session; drop "
                     "--claim-session");
    if (o.fleetKillAfter > 0 && o.fleetFile.empty())
        return usage("--fleet-kill-after needs --fleet");

    if (!o.fleetFile.empty())
        return runFleet(o, argv0);

    const bool resume = o.resume;
    const std::string &benchDir = o.benchDir;
    const std::string &out = o.out;
    const std::vector<std::string> &names = o.names;

    // --resume: reuse cells recorded in the existing OUT.json. Each
    // bench's prior document is re-written to its part path and the
    // binary revalidates it cell by cell (schema version mismatches
    // fail right here in readBenchDocs; config-hash mismatches fail
    // inside the bench).
    std::vector<BenchDoc> priorDocs;
    if (resume) {
        std::FILE *f = std::fopen(out.c_str(), "rb");
        if (f) {
            std::fclose(f);
            std::string err;
            if (!readBenchDocs(out, priorDocs, err)) {
                std::fprintf(stderr,
                             "tstream-bench: --resume: %s\n",
                             err.c_str());
                return 1;
            }
        }
    }

    std::vector<BenchDoc> docs;
    std::size_t lastWritten = 0;
    for (const std::string &name : names) {
        const char *binary = resolveBench(name);
        if (!binary)
            return usage(("unknown bench: " + name +
                          " (see tstream-bench list)")
                             .c_str());
        const std::string part = out + "." + binary + ".json";
        std::string cmd = shellQuote(benchDir + "/" + binary);
        cmd += forwardedFlags(o);
        if (!o.claimSession.empty())
            cmd += " --claim-session " + shellQuote(o.claimSession);
        if (!o.telemetryOut.empty())
            cmd += " --telemetry-out " +
                   shellQuote(o.telemetryOut + "." + binary + ".json");
        cmd += " --json " + shellQuote(part);
        if (resume) {
            for (const BenchDoc &doc : priorDocs)
                if (doc.bench == binary) {
                    std::string err;
                    if (!writeBenchDoc(doc, part, err)) {
                        std::fprintf(stderr, "tstream-bench: %s\n",
                                     err.c_str());
                        return 1;
                    }
                    cmd += " --resume";
                    break;
                }
        }

        logf(LogLevel::Info, "[tstream-bench] %s", cmd.c_str());
        const int rc = std::system(cmd.c_str());
        if (rc != 0) {
            std::fprintf(stderr,
                         "tstream-bench: %s failed (status %d)\n",
                         binary, rc);
            return 1;
        }
        std::string err;
        if (!readBenchDocs(part, docs, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        std::remove(part.c_str());

        // Checkpoint OUT.json after every bench, so a sweep that dies
        // partway leaves the completed benches behind for --resume.
        // Under --resume, prior documents whose bench this write does
        // not yet hold are carried forward, so resuming a subset
        // (e.g. just one failed table) never truncates the report.
        std::vector<BenchDoc> flat = docs;
        if (resume)
            for (const BenchDoc &doc : priorDocs) {
                bool fresh = false;
                for (const BenchDoc &d : docs)
                    fresh = fresh || d.bench == doc.bench;
                if (!fresh)
                    flat.push_back(doc);
            }
        if (flat.size() == 1) {
            if (!writeBenchDoc(flat[0], out, err)) {
                std::fprintf(stderr, "tstream-bench: %s\n",
                             err.c_str());
                return 1;
            }
        } else if (!json::writeFile(combinedReportToJson(flat), out,
                                    err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        lastWritten = flat.size();
    }

    printSlowestCells(docs, o.slowest);
    logf(LogLevel::Info, "[tstream-bench] wrote %s (%zu benches)",
         out.c_str(), lastWritten);
    return 0;
}

// ---- fleet ------------------------------------------------------------------

std::vector<std::vector<BenchDoc>> groupByBench(std::vector<BenchDoc>);

/** Absolute path of this binary (for ssh workers on a shared
 *  filesystem); falls back to argv0 unresolved. */
std::string
selfPath(const char *argv0)
{
    char buf[4096];
    if (::realpath(argv0, buf))
        return buf;
    return argv0;
}

/**
 * Fan one dynamic-claiming session out to the hosts of
 * opts.fleetFile: one worker per line (`local` / `localhost` = a
 * local process, anything else = `ssh HOST` assuming this binary, the
 * bench binaries and TSTREAM_TRACE_CACHE resolve identically there),
 * each a recursive `tstream-bench run --claim-session` writing
 * OUT.workerK.json with stdout+stderr in OUT.workerK.log. Dead
 * workers are tolerated — their claims go stale and the survivors
 * reclaim the cells — and merge's exact-cover gate is what verifies
 * nothing was lost.
 */
int
runFleet(const RunOptions &opts, const char *argv0)
{
    std::ifstream in(opts.fleetFile);
    if (!in) {
        std::fprintf(stderr, "tstream-bench: cannot open fleet hosts "
                             "file %s\n",
                     opts.fleetFile.c_str());
        return 2;
    }
    std::vector<std::string> hosts;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t a = line.find_first_not_of(" \t\r");
        if (a == std::string::npos || line[a] == '#')
            continue;
        const std::size_t b = line.find_last_not_of(" \t\r");
        hosts.push_back(line.substr(a, b - a + 1));
    }
    if (hosts.empty()) {
        std::fprintf(stderr, "tstream-bench: %s names no hosts\n",
                     opts.fleetFile.c_str());
        return 2;
    }

    const std::string cache = std::getenv("TSTREAM_TRACE_CACHE");
    const std::string session = "fleet-" +
                                std::to_string(::getpid()) + "-" +
                                std::to_string(wallClockMs());
    const std::string self = shellQuote(selfPath(argv0));

    std::string inner = "run --claim-session " + shellQuote(session) +
                        forwardedFlags(opts) + " --bench-dir " +
                        shellQuote(opts.benchDir);
    for (const std::string &name : opts.names)
        inner += " " + shellQuote(name);

    logf(LogLevel::Info,
         "[tstream-bench] fleet: %zu worker(s), session %s",
         hosts.size(), session.c_str());

    std::vector<int> rcs(hosts.size(), -1);
    std::vector<std::string> parts(hosts.size()), logs(hosts.size());
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        parts[i] = opts.out + ".worker" + std::to_string(i) + ".json";
        logs[i] = opts.out + ".worker" + std::to_string(i) + ".log";
        std::remove(parts[i].c_str());

        std::string envs;
        if (i == 0 && opts.fleetKillAfter > 0)
            envs += " TSTREAM_CLAIM_DIE_AFTER=" +
                    std::to_string(opts.fleetKillAfter);

        // Each worker gets its own telemetry base so the per-process
        // metric/trace files never collide on the shared filesystem.
        std::string workerFlags;
        if (!opts.telemetryOut.empty())
            workerFlags = " --telemetry-out " +
                          shellQuote(opts.telemetryOut + ".worker" +
                                     std::to_string(i));
        const std::string worker = self + " " + inner + workerFlags +
                                   " -o " + shellQuote(parts[i]);
        std::string full;
        if (hosts[i] == "local" || hosts[i] == "localhost") {
            full = envs.empty() ? worker : "env" + envs + " " + worker;
        } else {
            // The remote shell does not inherit our environment;
            // forward the shared cache (and fault injection) there.
            full = "ssh " + shellQuote(hosts[i]) + " " +
                   shellQuote("env TSTREAM_TRACE_CACHE=" +
                              shellQuote(cache) + envs + " " + worker);
        }
        full += " > " + shellQuote(logs[i]) + " 2>&1";

        logf(LogLevel::Info, "[tstream-bench] worker %zu (%s): %s", i,
             hosts[i].c_str(), full.c_str());
        threads.emplace_back(
            [i, full, &rcs] { rcs[i] = std::system(full.c_str()); });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<BenchDoc> docs;
    std::size_t dead = 0;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (rcs[i] != 0) {
            ++dead;
            logf(LogLevel::Warn,
                 "[tstream-bench] worker %zu (%s) exited with status "
                 "%d (log: %s) — its cells were reclaimed if the "
                 "merge below covers the grid",
                 i, hosts[i].c_str(), rcs[i], logs[i].c_str());
        }
        std::FILE *f = std::fopen(parts[i].c_str(), "rb");
        if (!f) {
            logf(LogLevel::Warn,
                 "[tstream-bench] worker %zu left no report (%s)", i,
                 parts[i].c_str());
            continue;
        }
        std::fclose(f);
        std::string err;
        if (!readBenchDocs(parts[i], docs, err))
            logf(LogLevel::Warn,
                 "[tstream-bench] worker %zu report unreadable: %s", i,
                 err.c_str());
    }
    if (docs.empty()) {
        std::fprintf(stderr,
                     "tstream-bench: no fleet worker produced a "
                     "report; see the worker logs\n");
        return 1;
    }

    std::vector<BenchDoc> merged;
    std::string err;
    for (auto &group : groupByBench(std::move(docs))) {
        BenchDoc doc;
        if (!mergeBenchDocs(group, doc, err)) {
            std::fprintf(stderr, "tstream-bench: fleet merge: %s\n",
                         err.c_str());
            return 1;
        }
        merged.push_back(std::move(doc));
    }
    if (merged.size() == 1) {
        if (!writeBenchDoc(merged[0], opts.out, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
    } else if (!json::writeFile(combinedReportToJson(merged), opts.out,
                                err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }

    std::size_t cells = 0, failedCells = 0;
    for (const BenchDoc &doc : merged)
        for (const BenchCell &c : doc.cells) {
            ++cells;
            failedCells += c.failed ? 1 : 0;
        }
    printSlowestCells(merged, opts.slowest);
    logf(LogLevel::Info,
         "[tstream-bench] fleet wrote %s: %zu benches, %zu cells "
         "(%zu failed), %zu/%zu workers survived, full cover",
         opts.out.c_str(), merged.size(), cells, failedCells,
         hosts.size() - dead, hosts.size());
    return 0;
}

// ---- merge ------------------------------------------------------------------

/** Group by bench name preserving first-seen order. */
std::vector<std::vector<BenchDoc>>
groupByBench(std::vector<BenchDoc> docs)
{
    std::vector<std::vector<BenchDoc>> groups;
    for (BenchDoc &doc : docs) {
        bool placed = false;
        for (auto &g : groups)
            if (g.front().bench == doc.bench) {
                g.push_back(std::move(doc));
                placed = true;
                break;
            }
        if (!placed) {
            groups.emplace_back();
            groups.back().push_back(std::move(doc));
        }
    }
    return groups;
}

int
cmdMerge(int argc, char **argv)
{
    std::string out;
    std::vector<std::string> inputs;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if ((arg == "-o" || arg == "--output") && i + 1 < argc)
            out = argv[++i];
        else if (!arg.empty() && arg[0] == '-')
            return usage(
                ("unknown merge option: " + std::string(arg)).c_str());
        else
            inputs.emplace_back(arg);
    }
    if (out.empty() || inputs.empty())
        return usage("merge needs -o OUT.json and input reports");

    std::vector<BenchDoc> docs;
    std::string err;
    for (const std::string &path : inputs)
        if (!readBenchDocs(path, docs, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }

    std::vector<BenchDoc> merged;
    for (auto &group : groupByBench(std::move(docs))) {
        BenchDoc doc;
        if (!mergeBenchDocs(group, doc, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
        merged.push_back(std::move(doc));
    }

    if (merged.size() == 1) {
        if (!writeBenchDoc(merged[0], out, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 1;
        }
    } else if (!json::writeFile(combinedReportToJson(merged), out,
                                err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    std::size_t cells = 0, failedCells = 0;
    for (const BenchDoc &doc : merged)
        for (const BenchCell &c : doc.cells) {
            ++cells;
            failedCells += c.failed ? 1 : 0;
        }
    std::fprintf(stderr,
                 "[tstream-bench] merged %zu input file(s) into %s "
                 "(%zu benches, %zu cells, %zu failed, full cover)\n",
                 inputs.size(), out.c_str(), merged.size(), cells,
                 failedCells);
    if (failedCells > 0)
        for (const BenchDoc &doc : merged)
            for (const BenchCell &c : doc.cells)
                if (c.failed)
                    std::fprintf(stderr,
                                 "[tstream-bench]   failed: %s/%s "
                                 "(cause=%s, attempts=%u)\n",
                                 doc.bench.c_str(), c.id.c_str(),
                                 c.failureCause.c_str(), c.attempts);
    return 0;
}

// ---- compare ----------------------------------------------------------------

std::string
fmtTime(double ns)
{
    char buf[32];
    if (ns <= 0.0)
        return "--";
    if (ns < 1e3)
        std::snprintf(buf, sizeof buf, "%.0f ns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
    return buf;
}

int
cmdCompare(int argc, char **argv)
{
    PerfGateOptions opts;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--max-regress") {
            const char *v = value("--max-regress");
            char *end = nullptr;
            opts.maxRegress = std::strtod(v, &end);
            if (!end || *end != '\0' || opts.maxRegress <= 0.0)
                return usage("--max-regress wants a positive ratio");
        } else if (arg == "--series") {
            opts.series.emplace_back(value("--series"));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown compare option: " + std::string(arg))
                    .c_str());
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage("compare takes exactly two reports "
                     "(BASELINE.json CURRENT.json)");

    std::vector<PerfSample> base, cur;
    std::string err;
    if (!loadPerfSeries(paths[0], base, err) ||
        !loadPerfSeries(paths[1], cur, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 2;
    }

    const PerfComparison cmp = comparePerfSeries(base, cur, opts);

    std::size_t width = 6;
    for (const PerfDelta &d : cmp.rows)
        width = std::max(width, d.name.size());
    std::printf("%-*s  %12s  %12s  %7s\n", static_cast<int>(width),
                "series", "baseline", "current", "ratio");
    for (const PerfDelta &d : cmp.rows) {
        const char *status = "";
        switch (d.status) {
          case PerfDelta::Status::Ok: status = "ok"; break;
          case PerfDelta::Status::Improved: status = "improved"; break;
          case PerfDelta::Status::Regressed:
            status = "REGRESSED";
            break;
          case PerfDelta::Status::Missing: status = "MISSING"; break;
          case PerfDelta::Status::Fresh: status = "new"; break;
        }
        char ratio[16];
        if (d.ratio > 0)
            std::snprintf(ratio, sizeof ratio, "%.3f", d.ratio);
        else
            std::snprintf(ratio, sizeof ratio, "--");
        std::printf("%-*s  %12s  %12s  %7s  %s\n",
                    static_cast<int>(width), d.name.c_str(),
                    fmtTime(d.baseNs).c_str(),
                    fmtTime(d.currentNs).c_str(), ratio, status);
    }
    std::printf("compare: %zu series, %zu regressed, %zu missing, "
                "%zu new (threshold %.2fx): %s\n",
                cmp.rows.size(), cmp.regressed, cmp.missing, cmp.fresh,
                opts.maxRegress, cmp.pass ? "PASS" : "FAIL");
    return cmp.pass ? 0 : 1;
}

// ---- trend ------------------------------------------------------------------

int
cmdTrend(int argc, char **argv)
{
    double maxRegress = 0.0; // 0 = informational, no gate
    std::vector<std::string> filter;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--max-regress") {
            const char *v = value("--max-regress");
            char *end = nullptr;
            maxRegress = std::strtod(v, &end);
            if (!end || *end != '\0' || maxRegress <= 0.0)
                return usage("--max-regress wants a positive ratio");
        } else if (arg == "--series") {
            filter.emplace_back(value("--series"));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown trend option: " + std::string(arg)).c_str());
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() < 2)
        return usage("trend takes two or more reports, oldest first");

    std::vector<std::vector<PerfSample>> series;
    for (const std::string &path : paths) {
        std::vector<PerfSample> samples;
        std::string err;
        if (!loadPerfSeries(path, samples, err)) {
            std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
            return 2;
        }
        series.push_back(std::move(samples));
    }

    const TrendTable table = computeTrend(paths, series, filter);

    // A filtered name matching no report at all is a typo, not a
    // quiet empty row.
    bool pass = true;
    for (const std::string &name : filter) {
        bool found = false;
        for (const TrendSeries &r : table.rows)
            found = found || r.name == name;
        if (!found) {
            std::fprintf(stderr,
                         "tstream-bench: series %s absent from every "
                         "report\n",
                         name.c_str());
            pass = false;
        }
    }

    std::size_t width = 6;
    for (const TrendSeries &r : table.rows)
        width = std::max(width, r.name.size());
    std::printf("%-*s", static_cast<int>(width), "series");
    for (std::size_t i = 0; i < table.labels.size(); ++i)
        std::printf("  %12s", ("[" + std::to_string(i) + "]").c_str());
    std::printf("  %10s\n", "last/first");
    for (std::size_t i = 0; i < table.labels.size(); ++i)
        std::printf("  [%zu] %s\n", i, table.labels[i].c_str());
    for (const TrendSeries &r : table.rows) {
        std::printf("%-*s", static_cast<int>(width), r.name.c_str());
        for (double t : r.timesNs)
            std::printf("  %12s", fmtTime(t).c_str());
        char ratio[16];
        if (r.lastVsFirst > 0)
            std::snprintf(ratio, sizeof ratio, "%.3f", r.lastVsFirst);
        else
            std::snprintf(ratio, sizeof ratio, "--");
        bool gatedFail = false;
        if (maxRegress > 0) {
            if (r.lastVsFirst > maxRegress)
                gatedFail = true;
            // A named series that vanished from the newest report is
            // a gate failure too — missing must never pass silently.
            for (const std::string &name : filter)
                if (name == r.name && r.timesNs.back() <= 0)
                    gatedFail = true;
        }
        std::printf("  %10s%s\n", ratio,
                    gatedFail ? "  REGRESSED" : "");
        pass = pass && !gatedFail;
    }
    std::printf("trend: %zu series over %zu reports%s\n",
                table.rows.size(), table.labels.size(),
                maxRegress > 0
                    ? (pass ? ": PASS" : ": FAIL")
                    : "");
    return pass ? 0 : 1;
}

// ---- status -----------------------------------------------------------------

/** Aggregated per-worker progress inside one claim directory. */
struct WorkerProgress
{
    std::size_t held = 0;
    std::size_t doneOk = 0;
    std::size_t doneFailed = 0;
    std::int64_t lastBeatMs = -1; ///< newest heartbeat; -1 = none
    std::int64_t lastDoneMs = -1; ///< newest done at=; -1 = none
};

/**
 * Render the live progress of claim sessions: scan @p root for claim
 * and done files (one leaf directory per bench binary), aggregate
 * them per worker, and print held/done/failed counts, heartbeat ages
 * (STALE past the TTL — a candidate for stealing), and an ETA from
 * the done markers' `at=` completion stamps. Read-only: status never
 * writes into the claim directory, so it is safe to point at a
 * session other workers are racing over.
 */
int
cmdStatus(int argc, char **argv)
{
    namespace fs = std::filesystem;
    std::string claimDir, session, bench;
    long grid = 0;
    long long ttlMs = 30'000;
    long long nowOverride = -1;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                usage((std::string("missing value for ") + what)
                          .c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto number = [&](const char *what, long long lo) -> long long {
            const char *v = value(what);
            char *end = nullptr;
            const long long n = std::strtoll(v, &end, 10);
            if (!end || *end != '\0' || n < lo) {
                usage((std::string(what) + " wants an integer >= " +
                       std::to_string(lo))
                          .c_str());
                std::exit(2);
            }
            return n;
        };
        if (arg == "--claim-dir") {
            claimDir = value("--claim-dir");
        } else if (arg == "--session") {
            session = value("--session");
        } else if (arg == "--bench") {
            bench = value("--bench");
        } else if (arg == "--grid") {
            grid = static_cast<long>(number("--grid", 1));
        } else if (arg == "--ttl") {
            ttlMs = number("--ttl", 1);
        } else if (arg == "--now") {
            nowOverride = number("--now", 0);
        } else {
            return usage(
                ("unknown status option: " + std::string(arg))
                    .c_str());
        }
    }
    if (!claimDir.empty() && !session.empty())
        return usage("--claim-dir and --session are mutually "
                     "exclusive");
    if (!bench.empty() && session.empty())
        return usage("--bench needs --session");

    std::string root = claimDir;
    if (root.empty()) {
        const char *cache = std::getenv("TSTREAM_TRACE_CACHE");
        if (!cache || !*cache)
            return usage("status needs --claim-dir or "
                         "TSTREAM_TRACE_CACHE set (claim sessions "
                         "live in the shared cache)");
        root = std::string(cache) + "/claims";
        if (!session.empty()) {
            root += "/" + session;
            if (!bench.empty())
                root += "/" + bench;
        }
    }

    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr,
                     "tstream-bench: no claim directory at %s\n",
                     root.c_str());
        return 1;
    }

    const std::int64_t now = nowOverride >= 0
                                 ? static_cast<std::int64_t>(
                                       nowOverride)
                                 : wallClockMs();

    // Group claim/done files by containing directory — in a fleet
    // session that is one leaf per bench binary. Paths are printed
    // relative to the scan root so output is location-independent.
    std::map<std::string, std::vector<fs::path>> leaves;
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
        std::error_code fec;
        if (!it->is_regular_file(fec))
            continue;
        const fs::path p = it->path();
        const std::string ext = p.extension().string();
        if (ext != ".claim" && ext != ".done")
            continue;
        std::string rel =
            fs::relative(p.parent_path(), root, fec).generic_string();
        if (fec || rel.empty())
            rel = ".";
        leaves[rel].push_back(p);
    }
    if (leaves.empty()) {
        std::fprintf(stderr,
                     "tstream-bench: no claim or done files under "
                     "%s\n",
                     root.c_str());
        return 1;
    }

    for (auto &[rel, files] : leaves) {
        std::sort(files.begin(), files.end());
        std::map<std::string, WorkerProgress> workers;
        std::size_t held = 0, doneOk = 0, doneFailed = 0;
        std::vector<std::int64_t> doneAts;
        for (const fs::path &p : files) {
            if (p.extension() == ".claim") {
                ClaimInfo info;
                // A claim released or marked done between the scan
                // and this read simply drops out of the snapshot.
                if (!ClaimDir::readClaim(p.string(), info))
                    continue;
                WorkerProgress &w = workers[info.owner];
                ++w.held;
                ++held;
                w.lastBeatMs = std::max(w.lastBeatMs, info.beatMs);
            } else {
                DoneInfo info;
                if (!ClaimDir::readDone(p.string(), info))
                    continue;
                WorkerProgress &w = workers[info.owner];
                if (info.status.rfind("failed", 0) == 0) {
                    ++w.doneFailed;
                    ++doneFailed;
                } else {
                    ++w.doneOk;
                    ++doneOk;
                }
                if (info.atMs > 0) {
                    w.lastDoneMs = std::max(w.lastDoneMs, info.atMs);
                    doneAts.push_back(info.atMs);
                }
            }
        }

        std::printf("== %s ==\n", rel.c_str());
        const std::size_t done = doneOk + doneFailed;
        std::printf("  cells: %zu done", done);
        if (doneFailed > 0)
            std::printf(" (%zu failed)", doneFailed);
        std::printf(", %zu held", held);
        std::size_t remaining = 0;
        if (grid > 0) {
            remaining = static_cast<std::size_t>(grid) > done
                            ? static_cast<std::size_t>(grid) - done
                            : 0;
            std::printf(", grid %ld -> %zu remaining", grid,
                        remaining);
        }
        std::printf("\n");

        for (const auto &[owner, w] : workers) {
            std::printf("  worker %s: held %zu, done %zu",
                        owner.c_str(), w.held, w.doneOk + w.doneFailed);
            if (w.doneFailed > 0)
                std::printf(" (%zu failed)", w.doneFailed);
            if (w.lastBeatMs >= 0) {
                std::printf(", last beat %.1fs ago",
                            static_cast<double>(now - w.lastBeatMs) /
                                1000.0);
                if (w.held > 0 && now - w.lastBeatMs > ttlMs)
                    std::printf(" [STALE]");
            } else if (w.lastDoneMs > 0) {
                std::printf(", last done %.1fs ago",
                            static_cast<double>(now - w.lastDoneMs) /
                                1000.0);
            } else {
                std::printf(", no heartbeat");
            }
            std::printf("\n");
        }

        if (grid > 0) {
            if (remaining == 0) {
                std::printf("  eta: complete\n");
            } else if (doneAts.size() >= 2) {
                const auto [mn, mx] = std::minmax_element(
                    doneAts.begin(), doneAts.end());
                const double spanMs =
                    static_cast<double>(*mx - *mn);
                if (spanMs > 0) {
                    const double perCellMs =
                        spanMs /
                        static_cast<double>(doneAts.size() - 1);
                    std::printf(
                        "  eta: ~%.1fs (%.2f cells/s over %zu "
                        "timestamped completions, %zu remaining)\n",
                        static_cast<double>(remaining) * perCellMs /
                            1000.0,
                        1000.0 / perCellMs, doneAts.size(),
                        remaining);
                } else {
                    std::printf("  eta: unknown (completions share "
                                "one timestamp)\n");
                }
            } else {
                std::printf("  eta: unknown (need >= 2 timestamped "
                            "completions)\n");
            }
        }
    }
    return 0;
}

// ---- check-equal / check-stdout / print ------------------------------------

int
cmdCheckEqual(const std::string &pathA, const std::string &pathB,
              bool subset)
{
    std::vector<BenchDoc> a, b;
    std::string err;
    if (!readBenchDocs(pathA, a, err) ||
        !readBenchDocs(pathB, b, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    if (!subset && a.size() != b.size()) {
        std::fprintf(stderr,
                     "tstream-bench: bench counts differ (%zu vs "
                     "%zu)\n",
                     a.size(), b.size());
        return 1;
    }
    for (const BenchDoc &da : a) {
        const BenchDoc *db = nullptr;
        for (const BenchDoc &cand : b)
            if (cand.bench == da.bench)
                db = &cand;
        if (!db) {
            std::fprintf(stderr,
                         "tstream-bench: bench %s missing from %s\n",
                         da.bench.c_str(), pathB.c_str());
            return 1;
        }
        std::string why;
        const bool ok = subset ? benchDocIsSubset(da, *db, why)
                               : benchDocsEquivalent(da, *db, why);
        if (!ok) {
            std::fprintf(stderr, "tstream-bench: %s: %s\n",
                         da.bench.c_str(), why.c_str());
            return 1;
        }
    }
    std::printf(subset ? "report subset ok: %s <= %s\n"
                       : "reports equivalent: %s == %s\n",
                pathA.c_str(), pathB.c_str());
    return 0;
}

int
cmdCheckStdout(const std::string &reportPath,
               const std::string &stdoutPath)
{
    std::vector<BenchDoc> docs;
    std::string err;
    if (!readBenchDocs(reportPath, docs, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    std::ifstream in(stdoutPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tstream-bench: cannot open %s\n",
                     stdoutPath.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::size_t rows = 0;
    for (const BenchDoc &doc : docs)
        for (const BenchCell &cell : doc.cells)
            for (const BenchRow &row : cell.rows) {
                ++rows;
                if (text.find(row.text) == std::string::npos) {
                    std::fprintf(
                        stderr,
                        "tstream-bench: row not found verbatim in "
                        "%s:\n  bench %s cell %s\n  text: %s\n",
                        stdoutPath.c_str(), doc.bench.c_str(),
                        cell.id.c_str(), row.text.c_str());
                    return 1;
                }
            }
    std::printf("all %zu report rows appear verbatim in %s\n", rows,
                stdoutPath.c_str());
    return 0;
}

int
cmdPrint(const std::string &path)
{
    std::vector<BenchDoc> docs;
    std::string err;
    if (!readBenchDocs(path, docs, err)) {
        std::fprintf(stderr, "tstream-bench: %s\n", err.c_str());
        return 1;
    }
    for (const BenchDoc &doc : docs) {
        std::printf("== %s%s (%zu/%zu cells", doc.bench.c_str(),
                    doc.quick ? " --quick" : "", doc.cells.size(),
                    doc.gridCells);
        if (doc.shard.count > 1)
            std::printf(", shard %u/%u", doc.shard.index,
                        doc.shard.count);
        std::printf(") ==\n");
        for (const BenchCell &cell : doc.cells)
            if (cell.failed)
                std::printf("!! FAILED cell %s: %s (attempts=%u)\n",
                            cell.id.c_str(),
                            cell.failureCause.c_str(), cell.attempts);
        // Rows grouped by table tag, cells in grid order inside each.
        std::vector<std::string> tables;
        for (const BenchCell &cell : doc.cells)
            for (const BenchRow &row : cell.rows) {
                bool seen = false;
                for (const std::string &t : tables)
                    seen = seen || t == row.table;
                if (!seen)
                    tables.push_back(row.table);
            }
        for (const std::string &table : tables) {
            std::printf("-- %s --\n", table.c_str());
            for (const BenchCell &cell : doc.cells)
                for (const BenchRow &row : cell.rows)
                    if (row.table == table)
                        std::printf("%s\n", row.text.c_str());
        }
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage("missing subcommand");
    const std::string_view cmd = argv[1];

    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2, argv[0]);
    if (cmd == "merge")
        return cmdMerge(argc - 2, argv + 2);
    if (cmd == "check-equal") {
        bool subset = false;
        std::vector<const char *> paths;
        for (int i = 2; i < argc; ++i) {
            if (std::string_view(argv[i]) == "--subset")
                subset = true;
            else
                paths.push_back(argv[i]);
        }
        if (paths.size() != 2)
            return usage("check-equal takes exactly two reports");
        return cmdCheckEqual(paths[0], paths[1], subset);
    }
    if (cmd == "check-stdout") {
        if (argc != 4)
            return usage(
                "check-stdout takes a report and a stdout capture");
        return cmdCheckStdout(argv[2], argv[3]);
    }
    if (cmd == "compare")
        return cmdCompare(argc - 2, argv + 2);
    if (cmd == "trend")
        return cmdTrend(argc - 2, argv + 2);
    if (cmd == "status")
        return cmdStatus(argc - 2, argv + 2);
    if (cmd == "print") {
        if (argc != 3)
            return usage("print takes exactly one report");
        return cmdPrint(argv[2]);
    }
    if (cmd == "list") {
        std::printf("%-12s %s\n", "alias", "binary");
        for (const BenchAlias &b : kBenches)
            std::printf("%-12s %s\n", b.alias, b.binary);
        std::printf("%-12s fig1-fig4 + table3-table5\n", "paper");
        std::printf("%-12s every bench above\n", "all");
        return 0;
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(nullptr);
    return usage(("unknown subcommand: " + std::string(cmd)).c_str());
}
