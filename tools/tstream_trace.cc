/**
 * @file
 * `tstream-trace` — record, inspect and analyze saved miss traces.
 *
 * The collect-once / analyze-many entry point: `record` captures one
 * (workload, context, budget) cell to a trace file, and the read-side
 * subcommands re-run the paper's figure analyses offline, so a trace
 * collected at paper scale can be projected into Figures 1-4 and the
 * Table 3-5 module attribution without re-simulating.
 *
 * Subcommands:
 *   record         run one experiment and save the trace (v2 default)
 *   info           print header, tables and chunk index — or, for a
 *                  merged archive, the member catalog
 *   dump           print records as text, streamed chunk-at-a-time
 *   analyze        fig1-fig4 stream analyses (+ module table) offline
 *   query          filtered/windowed temporal queries (trace/query.hh):
 *                  cpu/class/module/category/block/seq-window filters
 *                  with summary/select/counts/streams/lengths
 *                  aggregates, human-readable and --json output
 *   merge-archive  pack several cell traces into one archive behind a
 *                  top-level catalog; `query --member` opens a member
 *
 * `record --quick` uses exactly the bench harness's --quick budgets
 * (2 M warm-up, 4 M measured, 0.15x footprints, seed 42), so the
 * offline numbers from `analyze` reproduce a `--quick` figure bench
 * row bit-for-bit; the defaults match the benches' paper-scale
 * budgets the same way.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/module_profile.hh"
#include "core/prefetch_policy.hh"
#include "core/stream_analysis.hh"
#include "gen/workload_config.hh"
#include "sim/bench_report.hh"
#include "sim/experiment.hh"
#include "stats/histogram.hh"
#include "trace/query.hh"
#include "trace/trace_io.hh"

using namespace tstream;

namespace
{

int
usage(const char *msg)
{
    if (msg)
        std::fprintf(stderr, "tstream-trace: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  tstream-trace record --workload W --context C -o FILE [opts]\n"
        "  tstream-trace info FILE\n"
        "  tstream-trace dump FILE [--limit N] [--chunk I]\n"
        "  tstream-trace analyze FILE [--section S]...\n"
        "  tstream-trace query FILE [filters] [--agg LIST] [opts]\n"
        "  tstream-trace merge-archive -o OUT [NAME=]FILE...\n"
        "\n"
        "record options:\n"
        "  --workload W       apache|zeus|oltp|dss-q1|dss-q2|dss-q17|\n"
        "                     kv|broker|phased-mix, or the path of a\n"
        "                     workload config file (grammar in\n"
        "                     docs/BENCHMARKING.md)\n"
        "  --phases S         inline phase records for phased-mix,\n"
        "                     e.g. \"kv mix=0.9 dist=zipfian theta=0.99\n"
        "                     duration=1500000; broker ...\"\n"
        "  --context C        multi-chip|single-chip\n"
        "  --trace T          off-chip (default) | intra-chip (on-chip-\n"
        "                     satisfied L1 misses) | intra-all\n"
        "  --quick            bench --quick budgets (2M/4M, 0.15x)\n"
        "  --warmup N         warm-up instructions (default 25000000)\n"
        "  --measure N        measured instructions (default 30000000)\n"
        "  --scale F          footprint scale (default 1.0)\n"
        "  --seed N           RNG seed (default 42)\n"
        "  --codec NAME       lz4 (default) | none\n"
        "  --chunk-records N  records per chunk (default 65536)\n"
        "  --prefetch-policy NAME\n"
        "                     run with an in-the-loop prefetcher\n"
        "                     (fixed|adaptive|stride|hybrid); covered\n"
        "                     misses vanish from the recorded trace\n"
        "  --prefetch-depth N replay depth for --prefetch-policy\n"
        "                     (default 8)\n"
        "  --v1               write the legacy v1 format\n"
        "  -o FILE            output path (required)\n"
        "\n"
        "analyze sections (default: all that apply):\n"
        "  classes   miss-class mix (fig1-style)\n"
        "  streams   stream fractions (fig2-style)\n"
        "  strides   strided x repetitive joint breakdown (fig3-style)\n"
        "  lengths   length CDF and reuse-distance PDF (fig4-style)\n"
        "  modules   per-module origin table (tables 3-5 style;\n"
        "            needs an embedded function table)\n"
        "\n"
        "query filters (AND-ed; all optional):\n"
        "  --member NAME      archive member to query (archives only)\n"
        "  --cpu N            requesting cpu / node\n"
        "  --class NAME       miss class (\"Compulsory\", ...; intra\n"
        "                     traces take \"Coherence:L2\", ...)\n"
        "  --module NAME      exact function name (needs fn table)\n"
        "  --category NAME    Table 2 category (\"System calls\", ...)\n"
        "  --block LO:HI      half-open block range (0x.. accepted)\n"
        "  --window T0:T1     half-open seq window; only overlapping\n"
        "                     chunks are decoded (binary search)\n"
        "\n"
        "query options:\n"
        "  --agg LIST         comma list of summary|select|counts|\n"
        "                     streams|lengths (default summary,select)\n"
        "  --intervals N      intervals for counts/lengths (default 8)\n"
        "  --limit N          max select rows, 0 = all (default 32)\n"
        "  --json PATH        also write a tstream-query/v1 document\n"
        "  --no-mmap          force the streaming (stdio) read path\n");
    return 2;
}

bool
parseWorkload(std::string_view s, WorkloadKind &out)
{
    struct Alias { std::string_view name; WorkloadKind kind; };
    static const Alias kAliases[] = {
        {"apache", WorkloadKind::Apache},
        {"zeus", WorkloadKind::Zeus},
        {"oltp", WorkloadKind::Oltp},
        {"dss-q1", WorkloadKind::DssQ1},
        {"dss-q2", WorkloadKind::DssQ2},
        {"dss-q17", WorkloadKind::DssQ17},
        {"kv", WorkloadKind::KvStore},
        {"kvstore", WorkloadKind::KvStore},
        {"broker", WorkloadKind::Broker},
        {"mq", WorkloadKind::Broker},
        {"phased-mix", WorkloadKind::PhasedMix},
        {"phased", WorkloadKind::PhasedMix},
    };
    for (const Alias &a : kAliases)
        if (s == a.name || s == workloadName(a.kind)) {
            out = a.kind;
            return true;
        }
    return false;
}

bool
parseContext(std::string_view s, SystemContext &out)
{
    if (s == "multi-chip" || s == "multi") {
        out = SystemContext::MultiChip;
        return true;
    }
    if (s == "single-chip" || s == "single") {
        out = SystemContext::SingleChip;
        return true;
    }
    return false;
}

/** cls names for printing, per the header's content kind. */
std::string_view
clsName(TraceContentKind kind, std::uint8_t cls)
{
    const bool intra = kind == TraceContentKind::IntraChip ||
                       kind == TraceContentKind::IntraChipOnChip;
    if (intra && cls < kNumIntraClasses)
        return intraClassName(static_cast<IntraClass>(cls));
    if (!intra && cls < kNumMissClasses)
        return missClassName(static_cast<MissClass>(cls));
    return "<invalid>";
}

// ---- record -----------------------------------------------------------------

int
cmdRecord(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.warmupInstructions = kPaperBudgets.warmupInstructions;
    cfg.measureInstructions = kPaperBudgets.measureInstructions;
    cfg.scale = kPaperBudgets.scale;
    bool haveWorkload = false, haveContext = false;
    bool workloadFromFile = false;
    std::string out;
    std::string traceSel = "off-chip";
    std::string phasesSpec;
    bool prefetchDepthSet = false;
    TraceWriteOptions opts;

    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (arg == "--workload") {
            if (!(v = value()))
                return usage("missing --workload value");
            if (parseWorkload(v, cfg.workload)) {
                haveWorkload = true;
            } else {
                // Not a workload name: treat it as a workload config
                // file (gen/workload_config.hh).
                WorkloadConfig config;
                std::string err;
                if (!config.loadFromFile(v, err))
                    return usage(("--workload: '" + std::string(v) +
                                  "' is neither a workload name nor "
                                  "a valid config file (" +
                                  err + ")")
                                     .c_str());
                cfg.workload = config.kind;
                cfg.phases = config.schedule;
                haveWorkload = true;
                workloadFromFile = true;
            }
        } else if (arg == "--phases") {
            if (!(v = value()))
                return usage("missing --phases value");
            phasesSpec = v;
        } else if (arg == "--context") {
            if (!(v = value()) || !parseContext(v, cfg.context))
                return usage("bad or missing --context");
            haveContext = true;
        } else if (arg == "--trace") {
            if (!(v = value()))
                return usage("missing --trace value");
            traceSel = v;
            if (traceSel != "off-chip" && traceSel != "intra-chip" &&
                traceSel != "intra-all")
                return usage("bad --trace value");
        } else if (arg == "--quick") {
            // Same preset as bench --quick, so offline analysis
            // reproduces the --quick bench rows bit-for-bit.
            cfg.warmupInstructions = kQuickBudgets.warmupInstructions;
            cfg.measureInstructions = kQuickBudgets.measureInstructions;
            cfg.scale = kQuickBudgets.scale;
        } else if (arg == "--warmup") {
            if (!(v = value()))
                return usage("missing --warmup value");
            cfg.warmupInstructions = std::strtoull(v, nullptr, 10);
        } else if (arg == "--measure") {
            if (!(v = value()))
                return usage("missing --measure value");
            cfg.measureInstructions = std::strtoull(v, nullptr, 10);
        } else if (arg == "--scale") {
            if (!(v = value()))
                return usage("missing --scale value");
            cfg.scale = std::strtod(v, nullptr);
        } else if (arg == "--seed") {
            if (!(v = value()))
                return usage("missing --seed value");
            cfg.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--codec") {
            if (!(v = value()) || !codecByName(v))
                return usage("unknown --codec (try lz4 or none)");
            opts.codec = codecByName(v)->id();
        } else if (arg == "--chunk-records") {
            if (!(v = value()))
                return usage("missing --chunk-records value");
            opts.chunkRecords =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--prefetch-policy") {
            if (!(v = value()))
                return usage("missing --prefetch-policy value");
            bool known = false;
            for (const std::string &k : prefetchPolicyNames())
                known = known || k == v;
            if (!known) {
                std::string diag = "--prefetch-policy: unknown policy '" +
                                   std::string(v) + "' (known:";
                for (const std::string &k : prefetchPolicyNames())
                    diag += " " + k;
                return usage((diag + ")").c_str());
            }
            cfg.prefetchLoop.enabled = true;
            cfg.prefetchLoop.policy = v;
        } else if (arg == "--prefetch-depth") {
            if (!(v = value()))
                return usage("missing --prefetch-depth value");
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0 || n > 1024)
                return usage("--prefetch-depth wants a positive "
                             "integer (<= 1024)");
            cfg.prefetchLoop.ts.replayDepth =
                static_cast<unsigned>(n);
            prefetchDepthSet = true;
        } else if (arg == "--v1") {
            opts.version = 1;
        } else if (arg == "-o" || arg == "--output") {
            if (!(v = value()))
                return usage("missing -o value");
            out = v;
        } else {
            return usage(("unknown record option: " + std::string(arg))
                             .c_str());
        }
    }
    if (!haveWorkload || !haveContext || out.empty())
        return usage("record needs --workload, --context and -o");
    if (prefetchDepthSet && !cfg.prefetchLoop.enabled)
        return usage("--prefetch-depth needs --prefetch-policy");
    if (traceSel != "off-chip" &&
        cfg.context != SystemContext::SingleChip)
        return usage("intra-chip traces exist only in the single-chip "
                     "context");
    if (!phasesSpec.empty()) {
        // Reject silently-ineffective combinations: a schedule only
        // means something for phased-mix, and a config file already
        // carries its own.
        if (workloadFromFile)
            return usage("--phases cannot be combined with a workload "
                         "config file (the file already carries its "
                         "schedule)");
        if (cfg.workload != WorkloadKind::PhasedMix)
            return usage("--phases applies only to --workload "
                         "phased-mix");
        std::string err;
        if (!parsePhasesSpec(phasesSpec, cfg.phases, err))
            return usage(("--phases: " + err).c_str());
    }

    std::fprintf(stderr,
                 "recording %s / %s (%" PRIu64 " warm-up + %" PRIu64
                 " measured instructions, scale %.2f)...\n",
                 std::string(workloadName(cfg.workload)).c_str(),
                 std::string(contextName(cfg.context)).c_str(),
                 cfg.warmupInstructions, cfg.measureInstructions,
                 cfg.scale);
    ExperimentResult res = runExperiment(cfg);
    if (res.prefetchEnabled)
        std::fprintf(stderr,
                     "prefetch loop (%s): %" PRIu64 " issued, %.1f%% "
                     "coverage, %.1f%% accuracy; %" PRIu64
                     " covered misses removed from the trace\n",
                     cfg.prefetchLoop.policy.c_str(),
                     res.prefetch.issued, 100.0 * res.prefetch.coverage(),
                     100.0 * res.prefetch.accuracy(),
                     res.prefetchCoveredTraced);

    MissTrace trace;
    if (traceSel == "off-chip") {
        trace = std::move(res.offChip);
        opts.kind = TraceContentKind::OffChip;
    } else if (traceSel == "intra-chip") {
        trace = res.intraChipOnChip();
        opts.kind = TraceContentKind::IntraChipOnChip;
    } else {
        trace = std::move(res.intraChip);
        opts.kind = TraceContentKind::IntraChip;
    }
    opts.configHash = configHash(cfg);
    opts.registry = &res.registry;

    if (!saveTrace(trace, out, opts)) {
        std::fprintf(stderr, "tstream-trace: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::printf("wrote %s: %zu misses over %" PRIu64
                " instructions (%.2f MPKI), %s trace, config %016" PRIx64
                "\n",
                out.c_str(), trace.misses.size(), trace.instructions,
                trace.mpki(),
                std::string(traceContentKindName(opts.kind)).c_str(),
                opts.configHash);
    return 0;
}

// ---- info -------------------------------------------------------------------

int
cmdInfo(const std::string &path)
{
    auto reader = TraceReader::open(path);
    if (!reader) {
        std::fprintf(stderr, "tstream-trace: %s\n",
                     reader.error().c_str());
        return 1;
    }
    const TraceMeta &m = reader->meta();
    const Codec *codec = codecById(m.codec);

    std::printf("%s:\n", path.c_str());
    std::printf("  version       %u\n", m.version);
    std::printf("  content       %s\n",
                std::string(traceContentKindName(m.kind)).c_str());
    std::printf("  cpus          %u\n", m.numCpus);
    std::printf("  instructions  %" PRIu64 "\n", m.instructions);
    std::printf("  records       %" PRIu64 " (%.2f MPKI)\n",
                m.recordCount,
                m.instructions == 0
                    ? 0.0
                    : 1000.0 * static_cast<double>(m.recordCount) /
                          static_cast<double>(m.instructions));
    std::printf("  config hash   %016" PRIx64 "%s\n", m.configHash,
                m.configHash == 0 ? " (not recorded)" : "");
    std::printf("  codec         %s (id %u)\n",
                codec ? std::string(codec->name()).c_str() : "?",
                m.codec);
    std::printf("  functions     %zu%s\n", m.functions.size(),
                m.functions.empty() ? " (no module attribution)" : "");

    std::printf("  fields        ");
    for (const TraceField &fld : m.fields)
        std::printf("id%u/enc%u/%ub ", fld.id, fld.encoding,
                    fld.widthBits);
    std::printf("\n");

    std::uint64_t stored = 0;
    for (const TraceChunk &c : m.chunks)
        stored += c.storedBytes;
    std::printf("  chunks        %zu (<= %u records each, %" PRIu64
                " payload bytes",
                m.chunks.size(), m.chunkRecords, stored);
    if (m.recordCount > 0)
        std::printf(", %.2f B/miss", static_cast<double>(stored) /
                                         static_cast<double>(
                                             m.recordCount));
    std::printf(")\n");

    const std::size_t show = std::min<std::size_t>(m.chunks.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
        const TraceChunk &c = m.chunks[i];
        std::printf("    chunk %-4zu offset %-10" PRIu64
                    " firstSeq %-10" PRIu64 " records %-8u bytes %u\n",
                    i, c.offset, c.firstSeq, c.records, c.storedBytes);
    }
    if (show < m.chunks.size())
        std::printf("    ... %zu more chunks\n", m.chunks.size() - show);
    return 0;
}

// ---- dump -------------------------------------------------------------------

int
cmdDump(const std::string &path, std::uint64_t limit, long onlyChunk)
{
    auto reader = TraceReader::open(path);
    if (!reader) {
        std::fprintf(stderr, "tstream-trace: %s\n",
                     reader.error().c_str());
        return 1;
    }
    const TraceMeta &m = reader->meta();
    auto registry = reader->hasFunctions()
                        ? reader->functions()
                        : TraceResult<FunctionRegistry>::failure("");

    std::printf("%-12s %-16s %4s %-28s %s\n", "seq", "block", "cpu",
                "class", "function");
    std::uint64_t printed = 0;
    for (std::size_t i = 0; i < m.chunks.size(); ++i) {
        if (onlyChunk >= 0 && i != static_cast<std::size_t>(onlyChunk))
            continue;
        auto records = reader->readChunk(i);
        if (!records) {
            std::fprintf(stderr, "tstream-trace: %s\n",
                         records.error().c_str());
            return 1;
        }
        for (const MissRecord &r : *records) {
            if (limit > 0 && printed >= limit) {
                std::printf("... (limit %" PRIu64
                            " reached; --limit 0 for all)\n",
                            limit);
                return 0;
            }
            const std::string fn =
                registry && r.fn < registry->size()
                    ? registry->name(r.fn)
                    : std::to_string(r.fn);
            std::printf("%-12" PRIu64 " %016" PRIx64 " %4u %-28s %s\n",
                        r.seq, static_cast<std::uint64_t>(r.block),
                        r.cpu,
                        std::string(clsName(m.kind, r.cls)).c_str(),
                        fn.c_str());
            ++printed;
        }
    }
    return 0;
}

// ---- query ------------------------------------------------------------------

bool
parseU64(const char *s, std::uint64_t &v)
{
    char *end = nullptr;
    v = std::strtoull(s, &end, 0);
    return end != nullptr && end != s && *end == '\0';
}

/** Parse "LO:HI" (base-0 integers, 0x.. accepted) into a pair. */
bool
parseRange(const char *s, std::uint64_t &lo, std::uint64_t &hi)
{
    const char *colon = std::strchr(s, ':');
    if (!colon || colon == s || colon[1] == '\0')
        return false;
    const std::string a(s, colon), b(colon + 1);
    return parseU64(a.c_str(), lo) && parseU64(b.c_str(), hi);
}

int
cmdQuery(int argc, char **argv)
{
    std::string path, member, jsonPath;
    QuerySpec spec;
    TraceOpenOptions oopts;

    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        std::uint64_t n, m;
        if (arg == "--member") {
            if (!(v = value()))
                return usage("missing --member value");
            member = v;
        } else if (arg == "--cpu") {
            if (!(v = value()) || !parseU64(v, n) || n > 0xFFFFFFFFu)
                return usage("bad or missing --cpu value");
            spec.cpu = static_cast<std::uint32_t>(n);
        } else if (arg == "--class") {
            if (!(v = value()))
                return usage("missing --class value");
            spec.cls = v;
        } else if (arg == "--module") {
            if (!(v = value()))
                return usage("missing --module value");
            spec.module = v;
        } else if (arg == "--category") {
            if (!(v = value()))
                return usage("missing --category value");
            spec.category = v;
        } else if (arg == "--block") {
            if (!(v = value()) || !parseRange(v, n, m))
                return usage("--block needs LO:HI");
            if (m <= n)
                return usage("--block: empty or inverted range");
            spec.blockLo = n;
            spec.blockHi = m;
        } else if (arg == "--window") {
            if (!(v = value()) || !parseRange(v, n, m))
                return usage("--window needs T0:T1");
            if (m <= n)
                return usage("--window: empty or inverted range");
            spec.seqLo = n;
            spec.seqHi = m;
        } else if (arg == "--agg") {
            if (!(v = value()))
                return usage("missing --agg value");
            std::string_view rest = v;
            while (!rest.empty()) {
                const std::size_t comma = rest.find(',');
                const std::string_view one = rest.substr(0, comma);
                if (!one.empty())
                    spec.aggregates.emplace_back(one);
                if (comma == std::string_view::npos)
                    break;
                rest.remove_prefix(comma + 1);
            }
        } else if (arg == "--intervals") {
            if (!(v = value()) || !parseU64(v, n) || n == 0 ||
                n > 4096)
                return usage("--intervals needs 1..4096");
            spec.intervals = static_cast<std::uint32_t>(n);
        } else if (arg == "--limit") {
            if (!(v = value()) || !parseU64(v, n))
                return usage("bad or missing --limit value");
            spec.limit = n;
        } else if (arg == "--json") {
            if (!(v = value()))
                return usage("missing --json value");
            jsonPath = v;
        } else if (arg == "--no-mmap") {
            oopts.allowMmap = false;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(
                ("unknown query option: " + std::string(arg)).c_str());
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage("query takes exactly one trace file");
        }
    }
    if (path.empty())
        return usage("query needs a trace or archive file");

    // Open: a merged archive needs --member; a plain trace takes none.
    std::optional<TraceReader> reader;
    if (TraceArchive::isArchive(path)) {
        auto ar = TraceArchive::open(path);
        if (!ar) {
            std::fprintf(stderr, "tstream-trace: %s\n",
                         ar.error().c_str());
            return 1;
        }
        if (member.empty()) {
            std::fprintf(stderr,
                         "tstream-trace: %s is a merged archive; "
                         "pick a member with --member NAME (`info` "
                         "lists the catalog)\n",
                         path.c_str());
            return 1;
        }
        const ArchiveMember *m = ar->find(member);
        if (!m) {
            std::fprintf(stderr,
                         "tstream-trace: %s: no member '%s'\n",
                         path.c_str(), member.c_str());
            return 1;
        }
        auto r = ar->openMember(*m, oopts);
        if (!r) {
            std::fprintf(stderr, "tstream-trace: %s\n",
                         r.error().c_str());
            return 1;
        }
        reader.emplace(std::move(*r));
    } else {
        if (!member.empty()) {
            std::fprintf(stderr,
                         "tstream-trace: --member: %s is not a "
                         "merged archive\n",
                         path.c_str());
            return 1;
        }
        auto r = TraceReader::open(path, oopts);
        if (!r) {
            std::fprintf(stderr, "tstream-trace: %s\n",
                         r.error().c_str());
            return 1;
        }
        reader.emplace(std::move(*r));
    }

    auto result = runQuery(*reader, spec);
    if (!result) {
        std::fprintf(stderr, "tstream-trace: %s: %s\n", path.c_str(),
                     result.error().c_str());
        return 1;
    }

    const TraceMeta &meta = reader->meta();
    std::printf("%s%s%s: %s trace, %" PRIu64 " records, %zu chunks\n",
                path.c_str(), member.empty() ? "" : "#",
                member.c_str(),
                std::string(traceContentKindName(meta.kind)).c_str(),
                meta.recordCount, meta.chunks.size());
    std::string table;
    for (const QueryRow &row : result->rows) {
        if (row.table != table) {
            table = row.table;
            std::printf("%s:\n", table.c_str());
        }
        std::printf("  %s\n", row.text.c_str());
    }

    if (!jsonPath.empty()) {
        QueryDoc doc;
        doc.source = path;
        doc.member = member;
        doc.kind = meta.kind;
        doc.configHash = meta.configHash;
        doc.spec = spec;
        doc.output = std::move(*result);
        std::string err;
        if (!writeQueryDoc(doc, jsonPath, err)) {
            std::fprintf(stderr, "tstream-trace: %s\n", err.c_str());
            return 1;
        }
    }
    return 0;
}

// ---- merge-archive ----------------------------------------------------------

/** Member name for a bare FILE spec: basename minus extension. */
std::string
defaultMemberName(std::string_view file)
{
    const std::size_t slash = file.find_last_of('/');
    if (slash != std::string_view::npos)
        file.remove_prefix(slash + 1);
    const std::size_t dot = file.find_last_of('.');
    if (dot != std::string_view::npos && dot > 0)
        file = file.substr(0, dot);
    return std::string(file);
}

int
cmdMergeArchive(int argc, char **argv)
{
    std::string out;
    std::vector<ArchiveInput> inputs;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "-o" || arg == "--output") {
            if (i + 1 >= argc)
                return usage("missing -o value");
            out = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(("unknown merge-archive option: " +
                          std::string(arg))
                             .c_str());
        } else {
            // [NAME=]FILE
            ArchiveInput in;
            const std::size_t eq = arg.find('=');
            if (eq != std::string_view::npos && eq > 0) {
                in.name = std::string(arg.substr(0, eq));
                in.path = std::string(arg.substr(eq + 1));
            } else {
                in.path = std::string(arg);
                in.name = defaultMemberName(arg);
            }
            if (in.path.empty())
                return usage("empty member file in [NAME=]FILE");
            inputs.push_back(std::move(in));
        }
    }
    if (out.empty())
        return usage("merge-archive needs -o OUT");
    if (inputs.empty())
        return usage("merge-archive needs at least one member trace");

    auto res = mergeArchive(inputs, out);
    if (!res) {
        std::fprintf(stderr, "tstream-trace: %s\n",
                     res.error().c_str());
        return 1;
    }
    std::printf("wrote %s: %" PRIu64 " members\n", out.c_str(), *res);
    return 0;
}

// ---- info (archive) ---------------------------------------------------------

int
cmdInfoArchive(const std::string &path)
{
    auto ar = TraceArchive::open(path);
    if (!ar) {
        std::fprintf(stderr, "tstream-trace: %s\n",
                     ar.error().c_str());
        return 1;
    }
    std::printf("%s: merged archive, %zu members\n", path.c_str(),
                ar->members().size());
    std::printf("  %-20s %-12s %4s %10s %12s %-24s %s\n", "member",
                "kind", "cpus", "records", "instructions",
                "seq [first,last]", "config");
    for (const ArchiveMember &m : ar->members()) {
        char span[64];
        std::snprintf(span, sizeof(span),
                      "[%" PRIu64 ",%" PRIu64 "]", m.seqFirst,
                      m.seqLast);
        std::printf("  %-20s %-12s %4u %10" PRIu64 " %12" PRIu64
                    " %-24s %016" PRIx64 "\n",
                    m.name.c_str(),
                    std::string(traceContentKindName(m.kind)).c_str(),
                    m.numCpus, m.records, m.instructions, span,
                    m.configHash);
    }
    return 0;
}

// ---- analyze ----------------------------------------------------------------

bool
wantSection(const std::vector<std::string> &sections, const char *name)
{
    if (sections.empty())
        return true;
    return std::find(sections.begin(), sections.end(), name) !=
           sections.end();
}

int
cmdAnalyze(const std::string &path,
           const std::vector<std::string> &sections)
{
    auto reader = TraceReader::open(path);
    if (!reader) {
        std::fprintf(stderr, "tstream-trace: %s\n",
                     reader.error().c_str());
        return 1;
    }
    auto loaded = reader->readAll();
    if (!loaded) {
        std::fprintf(stderr, "tstream-trace: %s: %s\n", path.c_str(),
                     loaded.error().c_str());
        return 1;
    }
    const MissTrace &trace = *loaded;
    const TraceMeta &m = reader->meta();

    std::printf("%s: %zu misses, %u cpus, %" PRIu64
                " instructions (%.2f MPKI), %s trace\n\n",
                path.c_str(), trace.misses.size(), trace.numCpus,
                trace.instructions, trace.mpki(),
                std::string(traceContentKindName(m.kind)).c_str());

    if (wantSection(sections, "classes")) {
        const bool intra = m.kind == TraceContentKind::IntraChip ||
                           m.kind == TraceContentKind::IntraChipOnChip;
        const std::size_t n =
            intra ? kNumIntraClasses : kNumMissClasses;
        std::vector<std::uint64_t> cls(n, 0);
        for (const MissRecord &r : trace.misses)
            if (r.cls < n)
                ++cls[r.cls];
        const double tot = std::max<double>(
            1.0, static_cast<double>(trace.misses.size()));
        std::printf("miss classes (fig1):\n");
        for (std::size_t c = 0; c < n; ++c)
            std::printf("  %-28s %9.1f%%  (%" PRIu64 ")\n",
                        std::string(clsName(m.kind,
                                            static_cast<std::uint8_t>(c)))
                            .c_str(),
                        100.0 * static_cast<double>(cls[c]) / tot,
                        cls[c]);
        std::printf("\n");
    }

    // The SEQUITUR pass dominates analyze time; skip it when only
    // sections that never read StreamStats were requested.
    const bool needStreams = wantSection(sections, "streams") ||
                             wantSection(sections, "strides") ||
                             wantSection(sections, "lengths") ||
                             wantSection(sections, "modules");
    if (!needStreams)
        return 0;
    const StreamStats s = analyzeStreams(trace);
    const double tot =
        std::max<double>(1.0, static_cast<double>(s.totalMisses));

    if (wantSection(sections, "streams")) {
        std::printf("stream fractions (fig2):\n");
        std::printf("  %10s %10s %12s %10s\n", "non-rep", "new",
                    "recurring", "in-streams");
        std::printf("  %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n",
                    100.0 * static_cast<double>(s.nonRepetitive) / tot,
                    100.0 * static_cast<double>(s.newStream) / tot,
                    100.0 * static_cast<double>(s.recurringStream) / tot,
                    100.0 * s.inStreamFraction());
        std::printf("\n");
    }

    if (wantSection(sections, "strides")) {
        std::printf("strides x streams (fig3):\n");
        std::printf("  %10s %10s %10s %10s %8s\n", "rep+str",
                    "rep+nonstr", "nonrep+str", "nonrep+ns", "strided");
        std::printf(
            "  %9.1f%% %9.1f%% %9.1f%% %9.1f%% %7.1f%%\n",
            100.0 * static_cast<double>(s.stridedRepetitive) / tot,
            100.0 * static_cast<double>(s.nonStridedRepetitive) / tot,
            100.0 * static_cast<double>(s.stridedNonRepetitive) / tot,
            100.0 * static_cast<double>(s.nonStridedNonRepetitive) / tot,
            100.0 *
                static_cast<double>(s.stridedRepetitive +
                                    s.stridedNonRepetitive) /
                tot);
        std::printf("\n");
    }

    if (wantSection(sections, "lengths")) {
        const std::vector<std::uint64_t> lenPoints = {
            1, 2, 4, 8, 16, 32, 64, 128, 512, 1024, 4096};
        WeightedCdf cdf;
        for (const auto &[len, w] : s.lengthWeighted)
            cdf.add(len, w);
        std::printf("stream length CDF (fig4 left):\n ");
        for (auto p : lenPoints)
            std::printf(" <=%-4llu %5.1f%%",
                        static_cast<unsigned long long>(p),
                        100.0 * cdf.cumulativeAt(p));
        std::printf("\n  median stream length: %.0f\n",
                    s.medianStreamLength());

        LogHistogram h(7, 1);
        for (const auto &[dist, w] : s.reuseWeighted)
            h.add(dist == 0 ? 1 : dist, w);
        std::printf("reuse distance per decade (fig4 right):\n ");
        for (int d = 0; d < 7; ++d)
            std::printf(" 1e%d-1e%d %5.1f%%", d, d + 1,
                        100.0 * h.fraction(static_cast<std::size_t>(d)));
        std::printf("\n\n");
    }

    if (wantSection(sections, "modules")) {
        if (!reader->hasFunctions()) {
            std::printf("modules: trace has no function table; record "
                        "with the default v2 writer to enable\n");
        } else {
            auto registry = reader->functions();
            if (!registry) {
                std::fprintf(stderr, "tstream-trace: %s\n",
                             registry.error().c_str());
                return 1;
            }
            const ModuleProfile prof =
                profileModules(trace, s, *registry);
            std::printf("module origins (tables 3-5 + scenarios):\n%s",
                        renderModuleTable(prof, /*web_rows=*/true,
                                          /*db_rows=*/true,
                                          /*scenario_rows=*/true)
                            .c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage("missing subcommand");
    const std::string_view cmd = argv[1];

    if (cmd == "record")
        return cmdRecord(argc - 2, argv + 2);

    if (cmd == "info") {
        // Strict parsing, as in the benches: an unknown flag exits
        // with usage instead of being silently ignored.
        std::string path;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (!arg.empty() && arg[0] == '-')
                return usage(
                    ("unknown info option: " + std::string(arg))
                        .c_str());
            if (!path.empty())
                return usage("info takes exactly one trace file");
            path = arg;
        }
        if (path.empty())
            return usage("info needs a trace file");
        return TraceArchive::isArchive(path) ? cmdInfoArchive(path)
                                             : cmdInfo(path);
    }

    if (cmd == "query")
        return cmdQuery(argc - 2, argv + 2);

    if (cmd == "merge-archive")
        return cmdMergeArchive(argc - 2, argv + 2);

    if (cmd == "dump") {
        std::string path;
        std::uint64_t limit = 32;
        long chunk = -1;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--limit") {
                if (i + 1 >= argc)
                    return usage("missing value for --limit");
                limit = std::strtoull(argv[++i], nullptr, 10);
            } else if (arg == "--chunk") {
                if (i + 1 >= argc)
                    return usage("missing value for --chunk");
                chunk = std::strtol(argv[++i], nullptr, 10);
            } else if (!arg.empty() && arg[0] == '-') {
                // Reject anything unrecognized (same contract as the
                // bench binaries since the strict-args change).
                return usage(
                    ("unknown dump option: " + std::string(arg))
                        .c_str());
            } else if (path.empty()) {
                path = arg;
            } else {
                return usage("dump takes exactly one trace file");
            }
        }
        if (path.empty())
            return usage("dump needs a trace file");
        return cmdDump(path, limit, chunk);
    }

    if (cmd == "analyze") {
        std::string path;
        std::vector<std::string> sections;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--section") {
                if (i + 1 >= argc)
                    return usage("missing value for --section");
                sections.emplace_back(argv[++i]);
            } else if (!arg.empty() && arg[0] == '-') {
                return usage(
                    ("unknown analyze option: " + std::string(arg))
                        .c_str());
            } else if (path.empty()) {
                path = arg;
            } else {
                return usage("analyze takes exactly one trace file");
            }
        }
        if (path.empty())
            return usage("analyze needs a trace file");
        return cmdAnalyze(path, sections);
    }

    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(nullptr);
    return usage(("unknown subcommand: " + std::string(cmd)).c_str());
}
