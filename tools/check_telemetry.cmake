# Validate a telemetry artifact pair written by --telemetry-out: the
# metrics file must carry the tstream-telemetry/v1 schema marker and
# the driver's cell counter, and the Chrome trace twin must hold at
# least one *complete* span event ("ph": "X") so a truncated or
# never-flushed trace fails here instead of passing silently.
#
# Usage:
#   cmake -DMETRICS=<metrics.json> -DTRACE=<metrics.trace.json>
#         -P check_telemetry.cmake
if(NOT DEFINED METRICS OR NOT DEFINED TRACE)
  message(FATAL_ERROR "check_telemetry.cmake needs -DMETRICS and -DTRACE")
endif()
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "telemetry metrics file missing: ${METRICS}")
endif()
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "telemetry trace file missing: ${TRACE}")
endif()
file(READ ${METRICS} metrics_text)
if(NOT metrics_text MATCHES "tstream-telemetry/v1")
  message(FATAL_ERROR
    "${METRICS} lacks the tstream-telemetry/v1 schema marker")
endif()
if(NOT metrics_text MATCHES "driver\\.cells")
  message(FATAL_ERROR "${METRICS} holds no driver.cells counter")
endif()
file(READ ${TRACE} trace_text)
if(NOT trace_text MATCHES "\"ph\": \"X\"")
  message(FATAL_ERROR "${TRACE} holds no complete span event")
endif()
if(NOT trace_text MATCHES "\"name\": \"cell\"")
  message(FATAL_ERROR "${TRACE} holds no driver cell span")
endif()
