# Compare a `tstream-trace query --agg streams --json` document
# against one cell's "streams" row in a bench --json report, metric by
# metric. Both sides serialize doubles shortest-round-trip through the
# same writer, so exact string equality of the JSON numbers proves the
# offline query path reproduces the live bench row bit-for-bit.
#
# Usage:
#   cmake -DQUERY_JSON=<query doc> -DBENCH_JSON=<bench doc>
#         -DCELL=<cell id, e.g. oltp/multi-chip>
#         -P check_query_vs_bench.cmake
if(NOT DEFINED QUERY_JSON OR NOT DEFINED BENCH_JSON OR NOT DEFINED CELL)
  message(FATAL_ERROR
      "check_query_vs_bench.cmake needs -DQUERY_JSON, -DBENCH_JSON "
      "and -DCELL")
endif()

file(READ ${QUERY_JSON} qdoc)
file(READ ${BENCH_JSON} bdoc)

# The query doc's single "streams" row.
set(qrow -1)
string(JSON nq LENGTH ${qdoc} rows)
math(EXPR last "${nq} - 1")
foreach(i RANGE ${last})
  string(JSON table GET ${qdoc} rows ${i} table)
  if(table STREQUAL "streams")
    set(qrow ${i})
  endif()
endforeach()
if(qrow EQUAL -1)
  message(FATAL_ERROR "${QUERY_JSON}: no streams row")
endif()

# The bench cell's "streams" row.
set(bcell -1)
set(brow -1)
string(JSON nc LENGTH ${bdoc} cells)
math(EXPR last "${nc} - 1")
foreach(i RANGE ${last})
  string(JSON id GET ${bdoc} cells ${i} id)
  if(id STREQUAL "${CELL}")
    set(bcell ${i})
    string(JSON nr LENGTH ${bdoc} cells ${i} rows)
    math(EXPR rlast "${nr} - 1")
    foreach(j RANGE ${rlast})
      string(JSON table GET ${bdoc} cells ${i} rows ${j} table)
      if(table STREQUAL "streams")
        set(brow ${j})
      endif()
    endforeach()
  endif()
endforeach()
if(bcell EQUAL -1)
  message(FATAL_ERROR "${BENCH_JSON}: no cell '${CELL}'")
endif()
if(brow EQUAL -1)
  message(FATAL_ERROR "${BENCH_JSON}: cell '${CELL}' has no streams row")
endif()

foreach(metric non_repetitive_pct new_stream_pct recurring_stream_pct
        in_streams_pct)
  string(JSON qv GET ${qdoc} rows ${qrow} metrics ${metric})
  string(JSON bv GET ${bdoc} cells ${bcell} rows ${brow} metrics
         ${metric})
  if(NOT qv STREQUAL bv)
    message(FATAL_ERROR
        "${metric} differs: query=${qv} bench=${bv} (cell '${CELL}')")
  endif()
  message(STATUS "${metric}: ${qv} == ${bv}")
endforeach()
