# Run a command and capture its stdout to a file, failing the test if
# the command fails. Used by the bench e2e tests so that a bench's
# printed table can be compared against its --json report
# (`tstream-bench check-stdout`).
#
# Usage:
#   cmake -DCMD=<binary> "-DARGS=a|b|c" -DOUT=<file>
#         [-DCACHE_DIR=<trace cache dir>] -P run_capture.cmake
#
# ARGS is |-separated (not a CMake ;-list: semicolons do not survive
# the add_test -> CTestTestfile -> cmake -D round trip unmangled).
if(NOT DEFINED CMD OR NOT DEFINED OUT)
  message(FATAL_ERROR "run_capture.cmake needs -DCMD and -DOUT")
endif()
string(REPLACE "|" ";" ARGS "${ARGS}")
if(DEFINED CACHE_DIR)
  set(ENV{TSTREAM_TRACE_CACHE} "${CACHE_DIR}")
endif()
execute_process(
  COMMAND ${CMD} ${ARGS}
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "${CMD} failed with status ${rv}")
endif()
