# Run a command and capture its stdout to a file, failing the test if
# the command fails. Used by the bench e2e tests so that a bench's
# printed table can be compared against its --json report
# (`tstream-bench check-stdout`).
#
# Usage:
#   cmake -DCMD=<binary> "-DARGS=a|b|c" -DOUT=<file>
#         [-DCACHE_DIR=<trace cache dir>] [-DWORKDIR=<dir>]
#         -P run_capture.cmake
#
# ARGS is |-separated (not a CMake ;-list: semicolons do not survive
# the add_test -> CTestTestfile -> cmake -D round trip unmangled).
# WORKDIR runs the command from another directory, so a captured
# output that prints file paths (e.g. `tstream-trace query`) can use
# relative paths and compare against a checked-in golden.
if(NOT DEFINED CMD OR NOT DEFINED OUT)
  message(FATAL_ERROR "run_capture.cmake needs -DCMD and -DOUT")
endif()
string(REPLACE "|" ";" ARGS "${ARGS}")
if(DEFINED CACHE_DIR)
  set(ENV{TSTREAM_TRACE_CACHE} "${CACHE_DIR}")
endif()
if(DEFINED WORKDIR)
  set(workdir_opt WORKING_DIRECTORY ${WORKDIR})
else()
  set(workdir_opt)
endif()
execute_process(
  COMMAND ${CMD} ${ARGS}
  OUTPUT_FILE ${OUT}
  ${workdir_opt}
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "${CMD} failed with status ${rv}")
endif()
