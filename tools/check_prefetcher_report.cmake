# Gates over an `ext_prefetcher --policy ... --budget-sweep --json`
# report (ISSUE acceptance, paper Sections 4.4/4.5):
#
#  1. Budget monotonicity: within every (cell, policy) series of the
#     "prefetcher_budget" table, coverage_pct must be non-decreasing
#     as cmob_entries grows — more CMOB never loses coverage. The
#     adaptive policy gets a 0.25pp tolerance: its per-window depth
#     feedback reacts to the replays the larger ring enables, so its
#     series is only approximately monotone; fixed/hybrid replay is
#     deterministic along the storage axis and is held to strict
#     non-decrease.
#  2. Adaptive pays off: in the "prefetcher_policy" table, the
#     adaptive policy's coverage x accuracy product must beat the
#     fixed policy's (same replay depth) on at least MIN_WINS rows.
#
# Products are compared in fixed-point (pct scaled by 10^4) because
# math(EXPR) is integer-only; the scale comfortably separates any two
# distinct printed percentages.
#
# Usage:
#   cmake -DREPORT=<bench json> [-DMIN_WINS=1]
#         -P check_prefetcher_report.cmake
if(NOT DEFINED REPORT)
  message(FATAL_ERROR "check_prefetcher_report.cmake needs -DREPORT")
endif()
if(NOT DEFINED MIN_WINS)
  set(MIN_WINS 1)
endif()

file(READ ${REPORT} doc)

# Parse a non-negative shortest-round-trip double ("67.925", "100")
# into pct * 10^4 as an integer. Exponent forms never appear for
# percentages in [0, 100]; reject them instead of misparsing.
function(to_fixed out val)
  if(val MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int ${CMAKE_MATCH_1})
    set(frac "${CMAKE_MATCH_2}0000")
    string(SUBSTRING ${frac} 0 4 frac)
  elseif(val MATCHES "^([0-9]+)$")
    set(int ${CMAKE_MATCH_1})
    set(frac 0)
  else()
    message(FATAL_ERROR "${REPORT}: cannot parse metric '${val}'")
  endif()
  math(EXPR fixed "${int} * 10000 + ${frac}")
  set(${out} ${fixed} PARENT_SCOPE)
endfunction()

set(budget_series 0)
set(policy_rows 0)
set(adaptive_wins 0)

string(JSON nc LENGTH ${doc} cells)
math(EXPR clast "${nc} - 1")
foreach(ci RANGE ${clast})
  string(JSON cid GET ${doc} cells ${ci} id)
  string(JSON nr LENGTH ${doc} cells ${ci} rows)
  if(nr EQUAL 0)
    continue()
  endif()
  math(EXPR rlast "${nr} - 1")

  # -- gate 1: per-(trace, policy) budget series are monotone --------
  set(prev_key "")
  set(prev_cov -1)
  foreach(ri RANGE ${rlast})
    string(JSON table GET ${doc} cells ${ci} rows ${ri} table)
    if(NOT table STREQUAL "prefetcher_budget")
      continue()
    endif()
    string(JSON policy GET ${doc} cells ${ci} rows ${ri} policy)
    string(JSON trace GET ${doc} cells ${ci} rows ${ri} trace)
    string(JSON cov GET ${doc} cells ${ci} rows ${ri} metrics
           coverage_pct)
    if(NOT "${trace}/${policy}" STREQUAL "${prev_key}")
      set(prev_key "${trace}/${policy}")
      set(prev_cov -1)
      math(EXPR budget_series "${budget_series} + 1")
    endif()
    if(policy STREQUAL "adaptive")
      set(tolerance 0.25)
    else()
      set(tolerance 0)
    endif()
    to_fixed(fcov ${cov})
    to_fixed(ftol ${tolerance})
    math(EXPR floor "${fcov} + ${ftol}")
    if(NOT prev_cov EQUAL -1 AND floor LESS prev_cov)
      message(FATAL_ERROR
          "${REPORT}: cell '${cid}' ${trace}/${policy}: coverage "
          "${cov}% dropped more than ${tolerance}pp below the "
          "smaller-CMOB point at a larger budget (non-monotone)")
    endif()
    if(fcov GREATER prev_cov)
      set(prev_cov ${fcov})
    endif()
  endforeach()

  # -- gate 2: adaptive cov x acc beats fixed on >= MIN_WINS rows ----
  # Policy rows come grouped per trace (fixed, adaptive, ... in
  # --policy order), so pair them up by trace kind.
  foreach(ri RANGE ${rlast})
    string(JSON table GET ${doc} cells ${ci} rows ${ri} table)
    if(NOT table STREQUAL "prefetcher_policy")
      continue()
    endif()
    string(JSON policy GET ${doc} cells ${ci} rows ${ri} policy)
    string(JSON trace GET ${doc} cells ${ci} rows ${ri} trace)
    string(JSON cov GET ${doc} cells ${ci} rows ${ri} metrics
           coverage_pct)
    string(JSON acc GET ${doc} cells ${ci} rows ${ri} metrics
           accuracy_pct)
    to_fixed(fcov ${cov})
    to_fixed(facc ${acc})
    math(EXPR product "(${fcov} / 100) * (${facc} / 100)")
    if(policy STREQUAL "fixed")
      set(fixed_product_${trace} ${product})
      math(EXPR policy_rows "${policy_rows} + 1")
    elseif(policy STREQUAL "adaptive")
      if(NOT DEFINED fixed_product_${trace})
        message(FATAL_ERROR
            "${REPORT}: cell '${cid}': adaptive row without a "
            "preceding fixed row for trace '${trace}'")
      endif()
      if(product GREATER fixed_product_${trace})
        math(EXPR adaptive_wins "${adaptive_wins} + 1")
      endif()
      unset(fixed_product_${trace})
    endif()
  endforeach()
endforeach()

if(budget_series EQUAL 0)
  message(FATAL_ERROR
      "${REPORT}: no prefetcher_budget rows — was the report made "
      "with --budget-sweep?")
endif()
if(policy_rows EQUAL 0)
  message(FATAL_ERROR
      "${REPORT}: no fixed/adaptive prefetcher_policy pairs — was "
      "the report made with --policy fixed,adaptive,...?")
endif()
if(adaptive_wins LESS MIN_WINS)
  message(FATAL_ERROR
      "${REPORT}: adaptive beat fixed's coverage x accuracy on only "
      "${adaptive_wins} of ${policy_rows} rows (need ${MIN_WINS})")
endif()
message(STATUS
    "prefetcher gates pass: ${budget_series} monotone budget series, "
    "adaptive beats fixed on ${adaptive_wins}/${policy_rows} rows")
