#include "core/ts_prefetcher.hh"

#include "core/prefetch_policy.hh"
#include "util/logging.hh"

namespace tstream
{

TsPrefetcher::TsPrefetcher(const TsPrefetcherConfig &cfg)
    : cfg_(cfg)
{
    panicIf(cfg.historyEntries == 0, "TsPrefetcher: empty history");
    panicIf(cfg.bufferBlocks == 0, "TsPrefetcher: empty buffer");
}

TsPrefetcherStats
TsPrefetcher::evaluate(const MissTrace &trace)
{
    FixedDepthPolicy policy(cfg_);
    return evaluatePolicy(trace, policy, cfg_.bufferBlocks);
}

TsPrefetcherStats
TsPrefetcher::evaluateHybrid(const MissTrace &trace,
                             unsigned stride_degree)
{
    auto policy = HybridPolicy::temporalPlusStride(cfg_, stride_degree);
    return evaluatePolicy(trace, *policy, cfg_.bufferBlocks);
}

} // namespace tstream
