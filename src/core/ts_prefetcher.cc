#include "core/ts_prefetcher.hh"

#include "core/stride.hh"
#include "util/logging.hh"

namespace tstream
{

TsPrefetcher::TsPrefetcher(const TsPrefetcherConfig &cfg)
    : cfg_(cfg)
{
    panicIf(cfg.historyEntries == 0, "TsPrefetcher: empty history");
    panicIf(cfg.bufferBlocks == 0, "TsPrefetcher: empty buffer");
}

void
TsPrefetcher::append(unsigned cpu, BlockId blk)
{
    History &h = history_[cpu];
    h.ring[static_cast<std::size_t>(h.head % cfg_.historyEntries)] = blk;
    index_[blk] = HistoryPos{static_cast<std::uint32_t>(cpu), h.head};
    h.head++;
}

void
TsPrefetcher::insertPrefetch(Buffer &buf, BlockId blk,
                             TsPrefetcherStats &stats)
{
    stats.issued++;
    buf.fifo.push_back(blk);
    buf.present[blk]++;
    // FIFO displacement.
    if (buf.fifo.size() > cfg_.bufferBlocks) {
        const BlockId victim = buf.fifo.front();
        buf.fifo.erase(buf.fifo.begin());
        auto it = buf.present.find(victim);
        if (it != buf.present.end() && --it->second == 0)
            buf.present.erase(it);
    }
}

void
TsPrefetcher::replay(unsigned cpu, const HistoryPos &pos,
                     TsPrefetcherStats &stats, Buffer &buf)
{
    (void)cpu;
    const History &h = history_[pos.cpu];
    // The located occurrence must still be inside the ring.
    if (h.head - pos.pos > cfg_.historyEntries)
        return;
    stats.streamLookups++;
    // Replay the addresses that followed it, up to the depth, staying
    // within what has actually been recorded.
    for (std::uint32_t k = 1; k <= cfg_.replayDepth; ++k) {
        const std::uint64_t next = pos.pos + k;
        if (next >= h.head)
            break;
        const BlockId blk =
            h.ring[static_cast<std::size_t>(next % cfg_.historyEntries)];
        insertPrefetch(buf, blk, stats);
    }
}

TsPrefetcherStats
TsPrefetcher::evaluateHybrid(const MissTrace &trace,
                             unsigned stride_degree)
{
    TsPrefetcherStats stats;
    const unsigned ncpu = std::max(1u, trace.numCpus);
    history_.assign(ncpu, History{});
    for (auto &h : history_)
        h.ring.assign(cfg_.historyEntries, 0);
    index_.clear();
    std::vector<Buffer> buffers(ncpu);
    StrideDetector stride;
    // Per-CPU last block, to compute the confirmed stride's delta.
    std::vector<std::int64_t> last(ncpu, -1);

    for (const MissRecord &m : trace.misses) {
        const unsigned cpu = m.cpu < ncpu ? m.cpu : 0;
        Buffer &buf = buffers[cpu];
        stats.misses++;

        auto hit = buf.present.find(m.block);
        if (hit != buf.present.end()) {
            stats.covered++;
            stats.useful += hit->second;
            for (auto it = buf.fifo.begin(); it != buf.fifo.end();) {
                if (*it == m.block)
                    it = buf.fifo.erase(it);
                else
                    ++it;
            }
            buf.present.erase(hit);
        }

        // Temporal engine.
        auto found = index_.find(m.block);
        if (found != index_.end() &&
            (cfg_.crossCpu || found->second.cpu == cpu)) {
            replay(cpu, found->second, stats, buf);
        }

        // Stride engine: on a confirmed run, fetch ahead.
        const bool strided = stride.observe(m.cpu, m.block);
        if (strided && last[cpu] >= 0) {
            const std::int64_t delta =
                static_cast<std::int64_t>(m.block) - last[cpu];
            if (delta != 0) {
                for (unsigned k = 1; k <= stride_degree; ++k)
                    insertPrefetch(
                        buf,
                        static_cast<BlockId>(
                            static_cast<std::int64_t>(m.block) +
                            delta * static_cast<std::int64_t>(k)),
                        stats);
            }
        }
        last[cpu] = static_cast<std::int64_t>(m.block);

        append(cpu, m.block);
    }
    return stats;
}

TsPrefetcherStats
TsPrefetcher::evaluate(const MissTrace &trace)
{
    TsPrefetcherStats stats;
    const unsigned ncpu = std::max(1u, trace.numCpus);
    history_.assign(ncpu, History{});
    for (auto &h : history_)
        h.ring.assign(cfg_.historyEntries, 0);
    index_.clear();
    std::vector<Buffer> buffers(ncpu);

    for (const MissRecord &m : trace.misses) {
        const unsigned cpu = m.cpu < ncpu ? m.cpu : 0;
        Buffer &buf = buffers[cpu];
        stats.misses++;

        // Demand check against the prefetch buffer.
        auto hit = buf.present.find(m.block);
        if (hit != buf.present.end()) {
            stats.covered++;
            stats.useful += hit->second;
            // Consume the entry.
            for (auto it = buf.fifo.begin(); it != buf.fifo.end();) {
                if (*it == m.block)
                    it = buf.fifo.erase(it);
                else
                    ++it;
            }
            buf.present.erase(hit);
        }

        // Stream lookup: where did this block last appear?
        auto found = index_.find(m.block);
        if (found != index_.end() &&
            (cfg_.crossCpu || found->second.cpu == cpu)) {
            replay(cpu, found->second, stats, buf);
        }

        // Record the miss in this CPU's history.
        append(cpu, m.block);
    }
    return stats;
}

} // namespace tstream
