/**
 * @file
 * Pluggable prefetch-policy API.
 *
 * The temporal-streaming prefetcher model (ts_prefetcher.hh) used to
 * be a closed class with two special-cased entry points. This header
 * turns the mechanism into a policy interface: a policy consumes the
 * demand-miss stream one record at a time (observeMiss), hands back
 * the blocks it wants prefetched (drainPrefetches), learns from
 * feedback when a prefetched block absorbs a later miss (noteUseful),
 * and accounts for its predictor storage (storageBytes) so the paper's
 * Section 4.5 storage-budget sweeps fall out of the API.
 *
 * The surrounding machinery is shared by every policy and lives in the
 * harness, not the policies:
 *
 *  - evaluatePolicy() replays a collected trace through a policy and
 *    scores coverage/accuracy offline (the classic trace-driven mode);
 *  - PrefetchLoopEngine adapts a policy to the MemorySystem's
 *    PrefetchLoopHook so issued prefetches absorb misses *during* the
 *    simulation and covered misses vanish from the recorded trace
 *    (prefetcher-in-the-loop mode).
 *
 * Both drive the same per-CPU FIFO prefetch buffer with the same
 * demand-check-then-train step, so offline scores and in-the-loop
 * trace thinning agree by construction.
 *
 * Concrete policies:
 *
 *  - FixedDepthPolicy:    the paper's fixed replay depth (bit-identical
 *                         to the pre-API TsPrefetcher::evaluate);
 *  - AdaptiveDepthPolicy: per-stream accuracy feedback throttles or
 *                         extends the replay depth (Section 4.4's
 *                         argument against fixed depth);
 *  - StridePolicy:        a conventional stride engine (Section 4.3);
 *  - HybridPolicy:        an ordered composite — replaces the old
 *                         hard-coded evaluateHybrid special case.
 *
 * makePrefetchPolicy() is the registry every future prefetcher idea
 * plugs into; bench/ext_prefetcher's --policy flag resolves through it.
 */

#ifndef TSTREAM_CORE_PREFETCH_POLICY_HH
#define TSTREAM_CORE_PREFETCH_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/stride.hh"
#include "core/ts_prefetcher.hh"
#include "mem/memory_system.hh"
#include "trace/record.hh"

namespace tstream
{

/**
 * One block a policy wants prefetched. The tag is policy-private: it
 * travels with the block through the prefetch buffer and comes back
 * via noteUseful() when the block absorbs a demand miss, so a policy
 * can attribute usefulness to the stream (or engine) that issued it.
 */
struct PrefetchCandidate
{
    BlockId block = 0;
    std::uint32_t tag = 0;
};

/**
 * Abstract prefetch policy: consumes the demand-miss stream, produces
 * prefetch candidates, learns from usefulness feedback, and accounts
 * for its predictor storage. Policies hold predictor state only — the
 * prefetch buffer, the coverage/accuracy bookkeeping, and the
 * miss-vs-buffer demand check belong to the harness (evaluatePolicy /
 * PrefetchLoopEngine), so every policy is scored identically.
 */
class PrefetchPolicy
{
  public:
    virtual ~PrefetchPolicy() = default;

    /** Registry name ("fixed", "adaptive", ...). */
    virtual std::string_view name() const = 0;

    /** Clear predictor state and size it for @p numCpus CPUs. Called
     *  once before the first observeMiss(). */
    virtual void reset(unsigned numCpus) = 0;

    /**
     * Observe the next demand miss (in global trace order). Called
     * after the harness's demand check against the prefetch buffer,
     * i.e. for *every* miss, covered or not — exactly the stream the
     * pre-API model trained on.
     */
    virtual void observeMiss(const MissRecord &m) = 0;

    /** Append the candidates produced by the last observeMiss() to
     *  @p out (in issue order) and clear the pending set. */
    virtual void drainPrefetches(std::vector<PrefetchCandidate> &out) = 0;

    /** Feedback: one buffered candidate carrying @p tag absorbed a
     *  demand miss. Called once per consumed buffer entry. */
    virtual void
    noteUseful(std::uint32_t tag)
    {
        (void)tag;
    }

    /** Predictor storage in bytes (the paper's CMOB budget axis —
     *  history rings, stride trackers; derived lookup metadata is not
     *  charged). Deterministic from config + reset(numCpus). */
    virtual std::uint64_t storageBytes() const = 0;

    /** Stream lookups that replayed (temporal policies; 0 otherwise).
     *  Kept so TsPrefetcherStats::streamLookups survives the API. */
    virtual std::uint64_t
    streamLookups() const
    {
        return 0;
    }
};

// ---------------------------------------------------------------------------
// Concrete policies
// ---------------------------------------------------------------------------

/**
 * The classic temporal-streaming policy at a fixed replay depth:
 * per-CPU circular history, global block -> last-position index,
 * replay of the @c replayDepth successors. Bit-identical to the
 * pre-API TsPrefetcher::evaluate() when driven by evaluatePolicy()
 * with the same TsPrefetcherConfig.
 */
class FixedDepthPolicy : public PrefetchPolicy
{
  public:
    explicit FixedDepthPolicy(const TsPrefetcherConfig &cfg = {});

    std::string_view name() const override { return "fixed"; }
    void reset(unsigned numCpus) override;
    void observeMiss(const MissRecord &m) override;
    void drainPrefetches(std::vector<PrefetchCandidate> &out) override;
    std::uint64_t storageBytes() const override;
    std::uint64_t streamLookups() const override { return lookups_; }

  protected:
    struct HistoryPos
    {
        std::uint32_t cpu;
        std::uint64_t pos; ///< absolute append index into the history
    };

    /** Per-CPU circular history of miss blocks. */
    struct History
    {
        std::vector<BlockId> ring;
        std::uint64_t head = 0; ///< total appended
    };

    /** Replay depth for a stream located in @p home's history. The
     *  adaptive subclass modulates this per home CPU. */
    virtual std::uint32_t depthFor(std::uint32_t home) const;

    void append(unsigned cpu, BlockId blk);

    TsPrefetcherConfig cfg_;
    unsigned ncpu_ = 0;
    std::vector<History> history_;
    std::unordered_map<BlockId, HistoryPos> index_;
    std::vector<PrefetchCandidate> pending_;
    std::uint64_t lookups_ = 0;
};

/** Accuracy window/threshold knobs of AdaptiveDepthPolicy. */
struct AdaptiveDepthConfig
{
    std::uint32_t minDepth = 1;
    std::uint32_t maxDepth = 32;
    /** Issued prefetches per (home CPU) accuracy window. */
    std::uint32_t window = 64;
    /** Window accuracy >= this: double the depth (up to maxDepth). */
    double raiseAt = 0.8;
    /** Window accuracy <= this: halve the depth (down to minDepth). */
    double throttleAt = 0.4;
};

/**
 * Temporal streaming with per-stream accuracy feedback (Section 4.4):
 * each home CPU's streams carry their own replay depth, raised while
 * replays prove accurate and throttled when issued prefetches go
 * unused. The candidate tag is the stream's home CPU, so noteUseful()
 * credits the right window.
 */
class AdaptiveDepthPolicy : public FixedDepthPolicy
{
  public:
    explicit AdaptiveDepthPolicy(const TsPrefetcherConfig &cfg = {},
                                 const AdaptiveDepthConfig &adaptive = {});

    std::string_view name() const override { return "adaptive"; }
    void reset(unsigned numCpus) override;
    void noteUseful(std::uint32_t tag) override;
    void drainPrefetches(std::vector<PrefetchCandidate> &out) override;

    /** Current replay depth of @p home's streams (tests). */
    std::uint32_t depthOf(unsigned home) const { return depth_[home]; }

  protected:
    std::uint32_t depthFor(std::uint32_t home) const override;

  private:
    struct WindowCounters
    {
        std::uint32_t issued = 0;
        std::uint32_t useful = 0;
    };

    AdaptiveDepthConfig acfg_;
    std::vector<std::uint32_t> depth_; ///< per home CPU
    std::vector<WindowCounters> win_;  ///< per home CPU
};

/** Stride-degree knob of StridePolicy. */
struct StridePolicyConfig
{
    /** Blocks fetched ahead on a confirmed arithmetic run. */
    unsigned degree = 2;
    StrideConfig stride;
};

/**
 * Conventional stride engine (Section 4.3): on a miss the per-CPU
 * stride detector confirms, fetch the next @c degree blocks of the
 * run. Identical to the stride half of the old evaluateHybrid().
 */
class StridePolicy : public PrefetchPolicy
{
  public:
    explicit StridePolicy(const StridePolicyConfig &cfg = {});

    std::string_view name() const override { return "stride"; }
    void reset(unsigned numCpus) override;
    void observeMiss(const MissRecord &m) override;
    void drainPrefetches(std::vector<PrefetchCandidate> &out) override;
    std::uint64_t storageBytes() const override;

  private:
    StridePolicyConfig cfg_;
    unsigned ncpu_ = 0;
    std::unique_ptr<StrideDetector> stride_;
    std::vector<std::int64_t> last_; ///< per-CPU last miss block
    std::vector<PrefetchCandidate> pending_;
};

/**
 * Ordered composite: every sub-policy observes every miss, and the
 * drained candidates concatenate in sub-policy order, sharing one
 * prefetch buffer — the Section 4.3 synergy. Tags are namespaced
 * (sub-policy index in the high byte) so usefulness feedback routes to
 * the engine that issued the prefetch. temporalPlusStride() rebuilds
 * the old evaluateHybrid() pairing bit-identically.
 */
class HybridPolicy : public PrefetchPolicy
{
  public:
    explicit HybridPolicy(
        std::vector<std::unique_ptr<PrefetchPolicy>> parts);

    /** The old evaluateHybrid() pairing: temporal replay at @p cfg
     *  plus a stride engine of @p strideDegree. */
    static std::unique_ptr<HybridPolicy>
    temporalPlusStride(const TsPrefetcherConfig &cfg = {},
                       unsigned strideDegree = 2);

    std::string_view name() const override { return "hybrid"; }
    void reset(unsigned numCpus) override;
    void observeMiss(const MissRecord &m) override;
    void drainPrefetches(std::vector<PrefetchCandidate> &out) override;
    void noteUseful(std::uint32_t tag) override;
    std::uint64_t storageBytes() const override;
    std::uint64_t streamLookups() const override;

  private:
    /** Sub-policy index lives in the tag's top byte. */
    static constexpr unsigned kTagShift = 24;

    std::vector<std::unique_ptr<PrefetchPolicy>> parts_;
    std::vector<PrefetchCandidate> scratch_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/** Construction parameters understood by the policy registry. */
struct PrefetchPolicyParams
{
    /** History/depth/buffer geometry (bufferBlocks sizes the harness's
     *  prefetch buffer, not the policy). */
    TsPrefetcherConfig ts;
    AdaptiveDepthConfig adaptive;
    /** Stride engine degree ("stride" and the "hybrid" composite). */
    unsigned strideDegree = 2;
};

/** Registered policy names, in presentation order. */
const std::vector<std::string> &prefetchPolicyNames();

/**
 * Build the policy registered under @p name ("fixed", "adaptive",
 * "stride", "hybrid") with @p params; nullptr for an unknown name.
 */
std::unique_ptr<PrefetchPolicy>
makePrefetchPolicy(std::string_view name,
                   const PrefetchPolicyParams &params = {});

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/**
 * Score @p policy over a collected trace: per-CPU FIFO prefetch
 * buffers of @p bufferBlocks entries, the demand check / usefulness
 * feedback / train / drain step per miss. This is the offline mode —
 * coverage is scored against the recorded stream without altering it.
 * Emits the prefetch.* telemetry counters and a per-policy evaluation
 * span (docs/OBSERVABILITY.md); recording never perturbs the stats.
 * The policy is reset() for the trace's CPU count first.
 */
TsPrefetcherStats evaluatePolicy(const MissTrace &trace,
                                 PrefetchPolicy &policy,
                                 std::uint32_t bufferBlocks = 64);

/**
 * Prefetcher-in-the-loop adapter: attach() installs the engine as the
 * MemorySystem's PrefetchLoopHook, so every off-chip demand miss runs
 * the same buffer/train/drain step *during* the simulation and a
 * buffer hit suppresses the miss record — covered misses vanish from
 * the collected trace (the remaining records are the uncovered
 * subsequence). Cache fills proceed normally either way: the model is
 * a prefetch buffer at the chip edge absorbing the off-chip access,
 * not a cache-contents change, which keeps the run's cache behaviour
 * — and therefore the underlying miss sequence — identical to the
 * un-hooked run.
 */
class PrefetchLoopEngine : public PrefetchLoopHook
{
  public:
    PrefetchLoopEngine(std::unique_ptr<PrefetchPolicy> policy,
                       std::uint32_t bufferBlocks = 64);
    ~PrefetchLoopEngine() override;

    /** Size the policy for @p sys and install the hook. */
    void attach(MemorySystem &sys);

    bool coverOffChipMiss(const MissRecord &m, bool traced) override;

    /** Stats over every observed miss (warm-up included), with
     *  streamLookups folded in. */
    TsPrefetcherStats stats() const;

    /** Covered misses that were dropped from the trace (i.e. covered
     *  while tracing was on). */
    std::uint64_t coveredTraced() const { return coveredTraced_; }

    const PrefetchPolicy &policy() const { return *policy_; }

  private:
    struct Impl;
    std::unique_ptr<PrefetchPolicy> policy_;
    std::uint32_t bufferBlocks_;
    std::unique_ptr<Impl> impl_;
    std::uint64_t coveredTraced_ = 0;
};

} // namespace tstream

#endif // TSTREAM_CORE_PREFETCH_POLICY_HH
