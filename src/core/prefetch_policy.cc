#include "core/prefetch_policy.hh"

#include <algorithm>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace tstream
{

// ---- FixedDepthPolicy -------------------------------------------------------

FixedDepthPolicy::FixedDepthPolicy(const TsPrefetcherConfig &cfg)
    : cfg_(cfg)
{
    panicIf(cfg.historyEntries == 0, "FixedDepthPolicy: empty history");
}

void
FixedDepthPolicy::reset(unsigned numCpus)
{
    ncpu_ = std::max(1u, numCpus);
    history_.assign(ncpu_, History{});
    for (History &h : history_)
        h.ring.assign(cfg_.historyEntries, 0);
    index_.clear();
    pending_.clear();
    lookups_ = 0;
}

std::uint32_t
FixedDepthPolicy::depthFor(std::uint32_t home) const
{
    (void)home;
    return cfg_.replayDepth;
}

void
FixedDepthPolicy::append(unsigned cpu, BlockId blk)
{
    History &h = history_[cpu];
    h.ring[static_cast<std::size_t>(h.head % cfg_.historyEntries)] = blk;
    index_[blk] = HistoryPos{static_cast<std::uint32_t>(cpu), h.head};
    h.head++;
}

void
FixedDepthPolicy::observeMiss(const MissRecord &m)
{
    const unsigned cpu = m.cpu < ncpu_ ? m.cpu : 0;

    // Stream lookup: where did this block last appear?
    auto found = index_.find(m.block);
    if (found != index_.end() &&
        (cfg_.crossCpu || found->second.cpu == cpu)) {
        const HistoryPos &pos = found->second;
        const History &h = history_[pos.cpu];
        // The located occurrence must still be inside the ring.
        if (h.head - pos.pos <= cfg_.historyEntries) {
            lookups_++;
            // Replay the addresses that followed it, up to the depth,
            // staying within what has actually been recorded. The tag
            // is the stream's home CPU, so usefulness feedback reaches
            // the right per-stream accuracy window in the adaptive
            // subclass.
            const std::uint32_t depth = depthFor(pos.cpu);
            for (std::uint32_t k = 1; k <= depth; ++k) {
                const std::uint64_t next = pos.pos + k;
                if (next >= h.head)
                    break;
                pending_.push_back(PrefetchCandidate{
                    h.ring[static_cast<std::size_t>(
                        next % cfg_.historyEntries)],
                    pos.cpu});
            }
        }
    }

    // Record the miss in this CPU's history (after the replay read the
    // pre-miss state, as in the pre-API model).
    append(cpu, m.block);
}

void
FixedDepthPolicy::drainPrefetches(std::vector<PrefetchCandidate> &out)
{
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
}

std::uint64_t
FixedDepthPolicy::storageBytes() const
{
    // The CMOB budget axis: one block id per history entry per CPU.
    return static_cast<std::uint64_t>(std::max(1u, ncpu_)) *
           cfg_.historyEntries * sizeof(BlockId);
}

// ---- AdaptiveDepthPolicy ----------------------------------------------------

AdaptiveDepthPolicy::AdaptiveDepthPolicy(
    const TsPrefetcherConfig &cfg, const AdaptiveDepthConfig &adaptive)
    : FixedDepthPolicy(cfg), acfg_(adaptive)
{
    panicIf(acfg_.minDepth == 0 || acfg_.minDepth > acfg_.maxDepth,
            "AdaptiveDepthPolicy: bad depth bounds");
    panicIf(acfg_.window == 0, "AdaptiveDepthPolicy: empty window");
}

void
AdaptiveDepthPolicy::reset(unsigned numCpus)
{
    FixedDepthPolicy::reset(numCpus);
    const std::uint32_t start = std::clamp(
        cfg_.replayDepth, acfg_.minDepth, acfg_.maxDepth);
    depth_.assign(ncpu_, start);
    win_.assign(ncpu_, WindowCounters{});
}

std::uint32_t
AdaptiveDepthPolicy::depthFor(std::uint32_t home) const
{
    return depth_[home];
}

void
AdaptiveDepthPolicy::noteUseful(std::uint32_t tag)
{
    win_[tag].useful++;
}

void
AdaptiveDepthPolicy::drainPrefetches(std::vector<PrefetchCandidate> &out)
{
    // Charge this drain's candidates to their streams' windows; a full
    // window decides whether the stream's replays are paying off.
    for (const PrefetchCandidate &c : pending_) {
        WindowCounters &w = win_[c.tag];
        if (++w.issued >= acfg_.window) {
            const double acc = static_cast<double>(w.useful) /
                               static_cast<double>(w.issued);
            std::uint32_t &d = depth_[c.tag];
            if (acc >= acfg_.raiseAt)
                d = std::min(d * 2, acfg_.maxDepth);
            else if (acc <= acfg_.throttleAt)
                d = std::max(d / 2, acfg_.minDepth);
            w = WindowCounters{};
        }
    }
    FixedDepthPolicy::drainPrefetches(out);
}

// ---- StridePolicy -----------------------------------------------------------

StridePolicy::StridePolicy(const StridePolicyConfig &cfg)
    : cfg_(cfg)
{
    panicIf(cfg.degree == 0, "StridePolicy: zero degree");
}

void
StridePolicy::reset(unsigned numCpus)
{
    ncpu_ = std::max(1u, numCpus);
    stride_ = std::make_unique<StrideDetector>(cfg_.stride);
    last_.assign(ncpu_, -1);
    pending_.clear();
}

void
StridePolicy::observeMiss(const MissRecord &m)
{
    const unsigned cpu = m.cpu < ncpu_ ? m.cpu : 0;
    // On a confirmed run, fetch ahead (the detector sees the raw CPU
    // id, as the pre-API hybrid did).
    const bool strided = stride_->observe(m.cpu, m.block);
    if (strided && last_[cpu] >= 0) {
        const std::int64_t delta =
            static_cast<std::int64_t>(m.block) - last_[cpu];
        if (delta != 0) {
            for (unsigned k = 1; k <= cfg_.degree; ++k)
                pending_.push_back(PrefetchCandidate{
                    static_cast<BlockId>(
                        static_cast<std::int64_t>(m.block) +
                        delta * static_cast<std::int64_t>(k)),
                    0});
        }
    }
    last_[cpu] = static_cast<std::int64_t>(m.block);
}

void
StridePolicy::drainPrefetches(std::vector<PrefetchCandidate> &out)
{
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
}

std::uint64_t
StridePolicy::storageBytes() const
{
    // (last block, stride, confidence) per tracker.
    return static_cast<std::uint64_t>(std::max(1u, ncpu_)) *
           cfg_.stride.trackers * 24;
}

// ---- HybridPolicy -----------------------------------------------------------

HybridPolicy::HybridPolicy(
    std::vector<std::unique_ptr<PrefetchPolicy>> parts)
    : parts_(std::move(parts))
{
    panicIf(parts_.empty(), "HybridPolicy: no sub-policies");
    panicIf(parts_.size() > 255, "HybridPolicy: too many sub-policies");
    for (const auto &p : parts_)
        panicIf(!p, "HybridPolicy: null sub-policy");
}

std::unique_ptr<HybridPolicy>
HybridPolicy::temporalPlusStride(const TsPrefetcherConfig &cfg,
                                 unsigned strideDegree)
{
    std::vector<std::unique_ptr<PrefetchPolicy>> parts;
    parts.push_back(std::make_unique<FixedDepthPolicy>(cfg));
    StridePolicyConfig sc;
    sc.degree = strideDegree;
    parts.push_back(std::make_unique<StridePolicy>(sc));
    return std::make_unique<HybridPolicy>(std::move(parts));
}

void
HybridPolicy::reset(unsigned numCpus)
{
    for (auto &p : parts_)
        p->reset(numCpus);
}

void
HybridPolicy::observeMiss(const MissRecord &m)
{
    for (auto &p : parts_)
        p->observeMiss(m);
}

void
HybridPolicy::drainPrefetches(std::vector<PrefetchCandidate> &out)
{
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        scratch_.clear();
        parts_[i]->drainPrefetches(scratch_);
        for (const PrefetchCandidate &c : scratch_)
            out.push_back(PrefetchCandidate{
                c.block,
                (static_cast<std::uint32_t>(i) << kTagShift) |
                    (c.tag & ((1u << kTagShift) - 1))});
    }
}

void
HybridPolicy::noteUseful(std::uint32_t tag)
{
    const std::size_t idx = tag >> kTagShift;
    parts_[idx]->noteUseful(tag & ((1u << kTagShift) - 1));
}

std::uint64_t
HybridPolicy::storageBytes() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts_)
        total += p->storageBytes();
    return total;
}

std::uint64_t
HybridPolicy::streamLookups() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts_)
        total += p->streamLookups();
    return total;
}

// ---- registry ---------------------------------------------------------------

const std::vector<std::string> &
prefetchPolicyNames()
{
    static const std::vector<std::string> names = {
        "fixed", "adaptive", "stride", "hybrid"};
    return names;
}

std::unique_ptr<PrefetchPolicy>
makePrefetchPolicy(std::string_view name,
                   const PrefetchPolicyParams &params)
{
    if (name == "fixed")
        return std::make_unique<FixedDepthPolicy>(params.ts);
    if (name == "adaptive")
        return std::make_unique<AdaptiveDepthPolicy>(params.ts,
                                                     params.adaptive);
    if (name == "stride") {
        StridePolicyConfig sc;
        sc.degree = params.strideDegree;
        return std::make_unique<StridePolicy>(sc);
    }
    if (name == "hybrid")
        return HybridPolicy::temporalPlusStride(params.ts,
                                                params.strideDegree);
    return nullptr;
}

// ---- harness ----------------------------------------------------------------

namespace
{

/** One buffered prefetch: the block plus its policy tag. */
struct BufferedPrefetch
{
    BlockId block;
    std::uint32_t tag;
};

/** Per-CPU prefetch buffer: FIFO set of predicted blocks. */
struct Buffer
{
    std::vector<BufferedPrefetch> fifo;
    std::unordered_map<BlockId, std::uint32_t> present; // -> count
};

/**
 * The shared per-miss step: demand check with usefulness feedback,
 * train, drain, insert with FIFO displacement. Bit-identical to the
 * pre-API TsPrefetcher loops — candidates are inserted after the
 * policy observed the miss, but insertion only touches the buffer, so
 * the order change is unobservable.
 */
class Harness
{
  public:
    Harness(PrefetchPolicy &policy, std::uint32_t bufferBlocks,
            unsigned numCpus)
        : policy_(policy), bufferBlocks_(bufferBlocks),
          ncpu_(std::max(1u, numCpus)), buffers_(ncpu_)
    {
        panicIf(bufferBlocks_ == 0, "prefetch harness: empty buffer");
        policy_.reset(ncpu_);
    }

    /** Process one demand miss; true when the buffer covered it. */
    bool
    step(const MissRecord &m)
    {
        const unsigned cpu = m.cpu < ncpu_ ? m.cpu : 0;
        Buffer &buf = buffers_[cpu];
        stats_.misses++;

        // Demand check against the prefetch buffer.
        bool covered = false;
        auto hit = buf.present.find(m.block);
        if (hit != buf.present.end()) {
            covered = true;
            stats_.covered++;
            stats_.useful += hit->second;
            // Consume every buffered copy, crediting its issuer.
            for (auto it = buf.fifo.begin(); it != buf.fifo.end();) {
                if (it->block == m.block) {
                    policy_.noteUseful(it->tag);
                    it = buf.fifo.erase(it);
                } else {
                    ++it;
                }
            }
            buf.present.erase(hit);
        }

        // Train on every miss (covered or not), then issue.
        policy_.observeMiss(m);
        scratch_.clear();
        policy_.drainPrefetches(scratch_);
        for (const PrefetchCandidate &c : scratch_)
            insert(buf, c);
        return covered;
    }

    /** Aggregate stats with the policy's lookup count folded in. */
    TsPrefetcherStats
    stats() const
    {
        TsPrefetcherStats s = stats_;
        s.streamLookups = policy_.streamLookups();
        return s;
    }

  private:
    void
    insert(Buffer &buf, const PrefetchCandidate &c)
    {
        stats_.issued++;
        buf.fifo.push_back(BufferedPrefetch{c.block, c.tag});
        buf.present[c.block]++;
        // FIFO displacement.
        if (buf.fifo.size() > bufferBlocks_) {
            const BlockId victim = buf.fifo.front().block;
            buf.fifo.erase(buf.fifo.begin());
            stats_.evictions++;
            auto it = buf.present.find(victim);
            if (it != buf.present.end() && --it->second == 0)
                buf.present.erase(it);
        }
    }

    PrefetchPolicy &policy_;
    std::uint32_t bufferBlocks_;
    unsigned ncpu_;
    std::vector<Buffer> buffers_;
    std::vector<PrefetchCandidate> scratch_;
    TsPrefetcherStats stats_;
};

/** Bump the prefetch.* run counters (docs/OBSERVABILITY.md). */
void
countPrefetchStats(const TsPrefetcherStats &s)
{
    telemetry::count("prefetch.issued", s.issued);
    telemetry::count("prefetch.useful", s.useful);
    telemetry::count("prefetch.covered", s.covered);
    telemetry::count("prefetch.evictions", s.evictions);
}

} // namespace

TsPrefetcherStats
evaluatePolicy(const MissTrace &trace, PrefetchPolicy &policy,
               std::uint32_t bufferBlocks)
{
    telemetry::Span span("prefetch.evaluate", "prefetch");
    if (span.active())
        span.arg("policy", policy.name());

    Harness harness(policy, bufferBlocks, trace.numCpus);
    for (const MissRecord &m : trace.misses)
        harness.step(m);

    const TsPrefetcherStats stats = harness.stats();
    if (span.active()) {
        span.arg("misses",
                 static_cast<std::int64_t>(stats.misses));
        span.arg("coverage_pct", 100.0 * stats.coverage());
    }
    countPrefetchStats(stats);
    return stats;
}

// ---- in-the-loop engine -----------------------------------------------------

struct PrefetchLoopEngine::Impl
{
    explicit Impl(PrefetchPolicy &policy, std::uint32_t bufferBlocks,
                  unsigned numCpus)
        : harness(policy, bufferBlocks, numCpus)
    {
    }

    Harness harness;
};

PrefetchLoopEngine::PrefetchLoopEngine(
    std::unique_ptr<PrefetchPolicy> policy, std::uint32_t bufferBlocks)
    : policy_(std::move(policy)), bufferBlocks_(bufferBlocks)
{
    panicIf(!policy_, "PrefetchLoopEngine: null policy");
}

PrefetchLoopEngine::~PrefetchLoopEngine()
{
    if (impl_)
        countPrefetchStats(stats());
}

void
PrefetchLoopEngine::attach(MemorySystem &sys)
{
    panicIf(impl_ != nullptr, "PrefetchLoopEngine: already attached");
    impl_ = std::make_unique<Impl>(*policy_, bufferBlocks_,
                                   sys.numCpus());
    sys.setPrefetchHook(this);
}

bool
PrefetchLoopEngine::coverOffChipMiss(const MissRecord &m, bool traced)
{
    const bool covered = impl_->harness.step(m);
    if (covered && traced)
        coveredTraced_++;
    return covered;
}

TsPrefetcherStats
PrefetchLoopEngine::stats() const
{
    return impl_ ? impl_->harness.stats() : TsPrefetcherStats{};
}

} // namespace tstream
