/**
 * @file
 * Temporal-streaming prefetcher: shared config/stats types plus the
 * deprecated pre-policy-API entry points.
 *
 * The paper is the characterization behind the temporal-streaming
 * prefetcher line (TSE [25], STEMS, and successors): record the miss
 * sequence in a history buffer, locate the previous occurrence of a
 * missing address, and replay the addresses that followed it. The
 * model reports the standard figures of merit:
 *
 *  - coverage: fraction of misses eliminated by an earlier prefetch;
 *  - accuracy: fraction of issued prefetches that were useful;
 *  - timeliness is not modeled (the traces are timing-free), matching
 *    the paper's hardware-independent stance.
 *
 * The mechanism itself now lives behind the pluggable policy API in
 * core/prefetch_policy.hh (FixedDepthPolicy + evaluatePolicy() is the
 * bit-identical successor of TsPrefetcher::evaluate). This header
 * keeps the shared TsPrefetcherConfig / TsPrefetcherStats types and
 * the old TsPrefetcher class as a thin compatibility wrapper.
 */

#ifndef TSTREAM_CORE_TS_PREFETCHER_HH
#define TSTREAM_CORE_TS_PREFETCHER_HH

#include <cstdint>

#include "trace/record.hh"

namespace tstream
{

/** Configuration of the temporal-streaming prefetcher. */
struct TsPrefetcherConfig
{
    /** History buffer entries per CPU. */
    std::uint32_t historyEntries = 1 << 18;
    /** Addresses replayed per stream lookup. */
    std::uint32_t replayDepth = 8;
    /** Prefetch buffer capacity (blocks) per CPU. */
    std::uint32_t bufferBlocks = 64;
    /**
     * Cross-CPU lookups: a miss may locate its stream in another
     * CPU's history (the paper's streams recur across processors).
     */
    bool crossCpu = true;
};

/** Result of evaluating a prefetch policy over one trace. */
struct TsPrefetcherStats
{
    std::uint64_t misses = 0;        ///< demand misses observed
    std::uint64_t covered = 0;       ///< eliminated by a prefetch
    std::uint64_t issued = 0;        ///< prefetches issued
    std::uint64_t useful = 0;        ///< prefetches that were hit
    std::uint64_t evictions = 0;     ///< buffer entries displaced unused
    std::uint64_t streamLookups = 0; ///< index hits that replayed

    double
    coverage() const
    {
        return misses == 0
                   ? 0.0
                   : static_cast<double>(covered) /
                         static_cast<double>(misses);
    }

    double
    accuracy() const
    {
        return issued == 0
                   ? 0.0
                   : static_cast<double>(useful) /
                         static_cast<double>(issued);
    }
};

/**
 * Trace-driven temporal-streaming prefetcher — compatibility wrapper.
 *
 * @deprecated Superseded by the policy API (core/prefetch_policy.hh):
 * use makePrefetchPolicy() + evaluatePolicy() instead. Kept as a thin
 * forwarder for one release; both methods reproduce the pre-API
 * results bit-identically.
 */
class TsPrefetcher
{
  public:
    explicit TsPrefetcher(const TsPrefetcherConfig &cfg = {});

    /**
     * Evaluate the fixed-depth policy over @p trace.
     * @deprecated Equivalent to evaluatePolicy() on FixedDepthPolicy.
     */
    TsPrefetcherStats evaluate(const MissTrace &trace);

    /**
     * Evaluate a hybrid of temporal streaming and a stride engine
     * (paper Section 4.3: coherence misses are repetitive but not
     * strided, DSS copies are strided but not repetitive — the two
     * mechanisms are complementary).
     * @deprecated Equivalent to evaluatePolicy() on
     * HybridPolicy::temporalPlusStride().
     */
    TsPrefetcherStats evaluateHybrid(const MissTrace &trace,
                                     unsigned stride_degree = 2);

  private:
    TsPrefetcherConfig cfg_;
};

} // namespace tstream

#endif // TSTREAM_CORE_TS_PREFETCHER_HH
