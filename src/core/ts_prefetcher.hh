/**
 * @file
 * A temporal-streaming prefetcher model (extension).
 *
 * The paper is the characterization behind the temporal-streaming
 * prefetcher line (TSE [25], STEMS, and successors): record the miss
 * sequence in a history buffer, locate the previous occurrence of a
 * missing address, and replay the addresses that followed it. This
 * model evaluates exactly that policy over a collected miss trace and
 * reports the standard figures of merit:
 *
 *  - coverage: fraction of misses eliminated by an earlier prefetch;
 *  - accuracy: fraction of issued prefetches that were useful;
 *  - timeliness is not modeled (the traces are timing-free), matching
 *    the paper's hardware-independent stance.
 *
 * The predictor state follows the classic design: a circular history
 * buffer of miss addresses per CPU, a global index from block to its
 * most recent history position, a fixed replay depth, and a per-CPU
 * prefetch buffer of limited capacity.
 */

#ifndef TSTREAM_CORE_TS_PREFETCHER_HH
#define TSTREAM_CORE_TS_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace tstream
{

/** Configuration of the temporal-streaming prefetcher. */
struct TsPrefetcherConfig
{
    /** History buffer entries per CPU. */
    std::uint32_t historyEntries = 1 << 18;
    /** Addresses replayed per stream lookup. */
    std::uint32_t replayDepth = 8;
    /** Prefetch buffer capacity (blocks) per CPU. */
    std::uint32_t bufferBlocks = 64;
    /**
     * Cross-CPU lookups: a miss may locate its stream in another
     * CPU's history (the paper's streams recur across processors).
     */
    bool crossCpu = true;
};

/** Result of evaluating the prefetcher over one trace. */
struct TsPrefetcherStats
{
    std::uint64_t misses = 0;        ///< demand misses observed
    std::uint64_t covered = 0;       ///< eliminated by a prefetch
    std::uint64_t issued = 0;        ///< prefetches issued
    std::uint64_t useful = 0;        ///< prefetches that were hit
    std::uint64_t streamLookups = 0; ///< index hits that replayed

    double
    coverage() const
    {
        return misses == 0
                   ? 0.0
                   : static_cast<double>(covered) /
                         static_cast<double>(misses);
    }

    double
    accuracy() const
    {
        return issued == 0
                   ? 0.0
                   : static_cast<double>(useful) /
                         static_cast<double>(issued);
    }
};

/** Trace-driven temporal-streaming prefetcher. */
class TsPrefetcher
{
  public:
    explicit TsPrefetcher(const TsPrefetcherConfig &cfg = {});

    /**
     * Evaluate the prefetcher over @p trace (in global order; per-CPU
     * histories and buffers are maintained internally).
     */
    TsPrefetcherStats evaluate(const MissTrace &trace);

    /**
     * Evaluate a hybrid of temporal streaming and a stride engine
     * (paper Section 4.3: coherence misses are repetitive but not
     * strided, DSS copies are strided but not repetitive — the two
     * mechanisms are complementary). On each miss, a per-CPU stride
     * detector additionally prefetches the next @p stride_degree
     * blocks of a confirmed arithmetic run into the same buffer.
     */
    TsPrefetcherStats evaluateHybrid(const MissTrace &trace,
                                     unsigned stride_degree = 2);

  private:
    struct HistoryPos
    {
        std::uint32_t cpu;
        std::uint64_t pos; ///< absolute append index into the history
    };

    /** Per-CPU circular history of miss blocks. */
    struct History
    {
        std::vector<BlockId> ring;
        std::uint64_t head = 0; ///< total appended
    };

    /** Per-CPU prefetch buffer: FIFO set of predicted blocks. */
    struct Buffer
    {
        std::vector<BlockId> fifo;
        std::unordered_map<BlockId, std::uint32_t> present; // -> count
        std::uint64_t inserted = 0;
    };

    void append(unsigned cpu, BlockId blk);
    void replay(unsigned cpu, const HistoryPos &pos,
                TsPrefetcherStats &stats, Buffer &buf);
    void insertPrefetch(Buffer &buf, BlockId blk,
                        TsPrefetcherStats &stats);

    TsPrefetcherConfig cfg_;
    std::vector<History> history_;
    std::unordered_map<BlockId, HistoryPos> index_;
};

} // namespace tstream

#endif // TSTREAM_CORE_TS_PREFETCHER_HH
