/**
 * @file
 * Code-module attribution of misses and temporal streams — the
 * machinery behind the paper's Tables 3, 4 and 5.
 *
 * Each miss record carries the FnId of the function that issued it;
 * the category registry (trace/categories.hh) maps functions to the
 * paper's Table 2 code modules (bulk copies, scheduler, STREAMS, DB2
 * index/page/tuple, perl, ...). This profile folds the per-miss
 * stream labels from stream_analysis.hh per category, yielding the
 * tables' two columns: the category's share of all misses and its
 * in-stream misses as a share of all misses (so the in-stream column
 * sums to the "Overall % in streams" row).
 */

#ifndef TSTREAM_CORE_MODULE_PROFILE_HH
#define TSTREAM_CORE_MODULE_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/stream_analysis.hh"
#include "trace/categories.hh"
#include "trace/record.hh"

namespace tstream
{

/** Per-category miss and in-stream shares for one (workload, context). */
struct ModuleProfile
{
    /** Misses attributed to each category. */
    std::array<std::uint64_t, kNumCategories> misses{};
    /** Of those, misses that are part of a temporal stream. */
    std::array<std::uint64_t, kNumCategories> inStream{};
    std::uint64_t total = 0;

    /** Category share of all misses (percent), as in the tables. */
    double
    pctMisses(Category c) const
    {
        return total == 0 ? 0.0
                          : 100.0 *
                                misses[static_cast<std::size_t>(c)] /
                                static_cast<double>(total);
    }

    /**
     * Category's in-stream misses as a percentage of *all* misses
     * (the tables' "% in streams" column; the columns sum to the
     * "Overall % in streams" row).
     */
    double
    pctInStreams(Category c) const
    {
        return total == 0 ? 0.0
                          : 100.0 *
                                inStream[static_cast<std::size_t>(c)] /
                                static_cast<double>(total);
    }

    /** The tables' bottom row. */
    double
    overallPctInStreams() const
    {
        std::uint64_t s = 0;
        for (auto v : inStream)
            s += v;
        return total == 0 ? 0.0 : 100.0 * s / static_cast<double>(total);
    }
};

/**
 * Attribute each miss of @p trace to its category via @p reg and fold
 * in the per-miss stream labels from @p stats.
 */
ModuleProfile profileModules(const MissTrace &trace,
                             const StreamStats &stats,
                             const FunctionRegistry &reg);

/**
 * The categories of a Table 3/4/5-style block, in printed order:
 * Uncategorized, the cross-application rows, then the web, DB and/or
 * scenario (KV / MQ) rows.
 */
std::vector<Category> moduleTableCategories(bool web_rows, bool db_rows,
                                            bool scenario_rows = false);

/** One printed category line ("  <name>  x.x%  y.y%"), no newline. */
std::string renderModuleRow(const ModuleProfile &p, Category c);

/** The tables' bottom "Overall % in streams" line, no newline. */
std::string renderModuleOverallRow(const ModuleProfile &p);

/**
 * Render a Table 3/4/5-style block for one context: one line per
 * category (restricted to cross-application plus web, DB and/or
 * scenario rows) with "% misses" and "% in streams" columns. Composed
 * from renderModuleRow()/renderModuleOverallRow(), so per-row
 * consumers (the bench --json reports) stay bit-identical to this
 * block.
 */
std::string renderModuleTable(const ModuleProfile &p, bool web_rows,
                              bool db_rows, bool scenario_rows = false);

} // namespace tstream

#endif // TSTREAM_CORE_MODULE_PROFILE_HH
