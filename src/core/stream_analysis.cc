#include "core/stream_analysis.hh"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "core/sequitur.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/work_pool.hh"

namespace tstream
{

double
StreamStats::lengthPercentile(double p) const
{
    if (lengthWeighted.empty())
        return 0.0;
    auto sorted = lengthWeighted;
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t total = 0;
    for (const auto &[len, w] : sorted)
        total += w;
    const double target = total * p / 100.0;
    std::uint64_t run = 0;
    for (const auto &[len, w] : sorted) {
        run += w;
        if (static_cast<double>(run) >= target)
            return static_cast<double>(len);
    }
    return static_cast<double>(sorted.back().first);
}

namespace
{

/** Root-level stream occurrence discovered during the derivation walk. */
struct RootOcc
{
    std::uint32_t rule;
    std::uint64_t start; ///< position in the concatenated input
    std::uint64_t len;
};

} // namespace

StreamStats
analyzeStreams(const MissTrace &trace, const StreamAnalysisConfig &cfg)
{
    StreamStats out;
    out.totalMisses = trace.misses.size();
    out.labels.assign(trace.misses.size(), RepLabel::NonRepetitive);
    out.strided.assign(trace.misses.size(), false);
    if (trace.misses.empty())
        return out;

    // Phase spans nest under the driver's per-cell "analyze" span, so
    // the trace timeline shows where analysis time actually goes.
    telemetry::Span whole("analysis", "analysis");
    if (whole.active())
        whole.arg("misses",
                  static_cast<std::int64_t>(trace.misses.size()));

    // ------------------------------------------------------------------
    // 1. Project the trace per CPU: group miss indices by CPU. Stride
    //    detection is per-CPU in every mode; the grammar projection
    //    uses the same grouping in per-CPU mode and the global order
    //    otherwise.
    // ------------------------------------------------------------------
    const unsigned ncpu = cfg.perCpu ? std::max(1u, trace.numCpus) : 1;

    unsigned maxCpu = 0;
    for (const MissRecord &m : trace.misses)
        maxCpu = std::max(maxCpu, static_cast<unsigned>(m.cpu));
    panicIf(cfg.perCpu && maxCpu >= ncpu,
            "analyzeStreams: cpu out of range");

    const unsigned ngroups =
        std::max(cfg.perCpu ? ncpu : 1u, maxCpu + 1);
    std::vector<std::vector<std::uint32_t>> byCpu(ngroups);
    for (std::uint32_t i = 0; i < trace.misses.size(); ++i)
        byCpu[trace.misses[i].cpu].push_back(i);

    // The projection sections the grammar input concatenates: per-CPU
    // groups, or the whole trace in global order.
    std::vector<std::uint32_t> globalIdx;
    if (!cfg.perCpu) {
        globalIdx.resize(trace.misses.size());
        for (std::uint32_t i = 0; i < trace.misses.size(); ++i)
            globalIdx[i] = i;
    }
    auto section = [&](unsigned c) -> const std::vector<std::uint32_t> & {
        return cfg.perCpu ? byCpu[c] : globalIdx;
    };

    // ------------------------------------------------------------------
    // 2. Per-CPU phases, fanned out over the work pool: stride
    //    labeling (each CPU's tracker table is independent — only the
    //    relative observation order within a CPU matters, which the
    //    grouping preserves) and per-section global-sequence
    //    extraction for the reuse-distance bookkeeping. Every task
    //    writes a disjoint slot, so the result does not depend on
    //    scheduling.
    // ------------------------------------------------------------------
    std::vector<std::vector<bool>> strideFlags(ngroups);
    std::vector<std::vector<std::uint64_t>> cpuSeqs(ncpu);

    std::vector<std::function<void()>> tasks;
    for (unsigned c = 0; c < ngroups; ++c) {
        if (byCpu[c].empty())
            continue;
        tasks.push_back([&, c] {
            StrideDetector det(cfg.stride);
            const auto &idx = byCpu[c];
            auto &flags = strideFlags[c];
            flags.resize(idx.size());
            for (std::size_t k = 0; k < idx.size(); ++k)
                flags[k] = det.observe(trace.misses[idx[k]].cpu,
                                       trace.misses[idx[k]].block);
        });
    }
    for (unsigned c = 0; c < ncpu; ++c) {
        tasks.push_back([&, c] {
            const auto &idx = section(c);
            cpuSeqs[c].reserve(idx.size());
            for (std::uint32_t mi : idx)
                cpuSeqs[c].push_back(trace.misses[mi].seq);
        });
    }

    {
        telemetry::Span span("analysis.stride_seq", "analysis");
        const unsigned jobs = std::min<std::size_t>(
            cfg.jobs > 0 ? cfg.jobs : WorkPool::defaultJobs(),
            tasks.size());
        if (jobs > 1) {
            WorkPool pool(jobs);
            for (auto &t : tasks)
                pool.submit(std::move(t));
            pool.wait();
        } else {
            for (auto &t : tasks)
                t();
        }
    }

    for (unsigned c = 0; c < ngroups; ++c)
        for (std::size_t k = 0; k < byCpu[c].size(); ++k)
            out.strided[byCpu[c][k]] = strideFlags[c][k];

    // ------------------------------------------------------------------
    // 3. Build the concatenated per-CPU input with sentinels, interning
    //    block ids densely, and remember per-position miss indices.
    // ------------------------------------------------------------------
    std::unordered_map<BlockId, std::uint64_t> intern;
    std::vector<std::uint64_t> input;
    std::vector<std::uint32_t> posToMiss; // UINT32_MAX for sentinels
    input.reserve(trace.misses.size() + ncpu);
    posToMiss.reserve(input.capacity());

    std::uint64_t nextId = 0;
    for (unsigned c = 0; c < ncpu; ++c) {
        for (std::uint32_t mi : section(c)) {
            auto [it, fresh] =
                intern.try_emplace(trace.misses[mi].block, nextId);
            if (fresh)
                ++nextId;
            input.push_back(it->second);
            posToMiss.push_back(mi);
        }
        // Unique sentinel ends each CPU section (also the last, so the
        // position bookkeeping stays uniform).
        input.push_back(std::uint64_t{1} << 40 | nextId++);
        posToMiss.push_back(UINT32_MAX);
    }
    // Keep sentinel ids disjoint from block ids by offsetting blocks
    // into a separate tag space instead: simpler, re-tag sentinels.
    // (Handled above: sentinels carry bit 40; block ids stay below the
    // miss count, far under 2^40.)

    // ------------------------------------------------------------------
    // 4. Grammar construction.
    // ------------------------------------------------------------------
    Sequitur g;
    {
        telemetry::Span span("analysis.sequitur", "analysis");
        if (span.active())
            span.arg("symbols",
                     static_cast<std::int64_t>(input.size()));
        for (std::uint64_t v : input)
            g.append(v);
    }
    const std::vector<std::uint64_t> ruleLen = g.ruleLengths();
    out.grammarRules = g.ruleCount();
    telemetry::observe("analysis.grammar_rules",
                       static_cast<double>(out.grammarRules));

    // ------------------------------------------------------------------
    // 5. Derivation walk: enumerate root-level occurrences and each
    //    rule's first-expansion position (for New/Recurring).
    // ------------------------------------------------------------------
    const auto liveIds = g.liveRuleIds();
    std::uint32_t maxRule = 0;
    for (auto id : liveIds)
        maxRule = std::max(maxRule, id);

    std::vector<std::uint64_t> firstExpansion(maxRule + 1, UINT64_MAX);
    std::vector<RootOcc> rootOccs;

    {
        telemetry::Span span("analysis.derivation_walk", "analysis");

        // Cache rule bodies up front; the walk then never touches
        // grammar internals.
        std::vector<std::vector<Sequitur::GrammarSymbol>> bodies(
            maxRule + 1);
        for (auto id : liveIds)
            bodies[id] = g.ruleBody(id);

        struct Frame
        {
            std::uint32_t rule;
            std::size_t idx;
        };
        std::vector<Frame> stack;
        stack.push_back({Sequitur::kRootRule, 0});
        std::uint64_t pos = 0;

        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto &body = bodies[f.rule];
            if (f.idx >= body.size()) {
                stack.pop_back();
                continue;
            }
            const Sequitur::GrammarSymbol sym = body[f.idx++];
            if (!sym.isRule) {
                ++pos;
                continue;
            }
            const std::uint32_t r =
                static_cast<std::uint32_t>(sym.value);
            if (firstExpansion[r] == UINT64_MAX)
                firstExpansion[r] = pos;
            if (stack.size() == 1)
                rootOccs.push_back({r, pos, ruleLen[r]});
            stack.push_back({r, 0});
        }
        panicIf(pos != input.size(),
                "analyzeStreams: derivation length mismatch");
    }

    // ------------------------------------------------------------------
    // 6. Label misses: inside a root-level occurrence -> New if this is
    //    the rule's first expansion, else Recurring.
    // ------------------------------------------------------------------
    for (const RootOcc &occ : rootOccs) {
        const bool isNew = occ.start == firstExpansion[occ.rule];
        const RepLabel lbl =
            isNew ? RepLabel::NewStream : RepLabel::RecurringStream;
        for (std::uint64_t p = occ.start; p < occ.start + occ.len; ++p) {
            const std::uint32_t mi = posToMiss[p];
            panicIf(mi == UINT32_MAX,
                    "analyzeStreams: rule covers a sentinel");
            out.labels[mi] = lbl;
        }
    }

    for (std::size_t i = 0; i < out.labels.size(); ++i) {
        switch (out.labels[i]) {
          case RepLabel::NonRepetitive: ++out.nonRepetitive; break;
          case RepLabel::NewStream: ++out.newStream; break;
          case RepLabel::RecurringStream: ++out.recurringStream; break;
        }
        const bool rep = out.labels[i] != RepLabel::NonRepetitive;
        const bool str = out.strided[i];
        if (rep && str)
            ++out.stridedRepetitive;
        else if (rep)
            ++out.nonStridedRepetitive;
        else if (str)
            ++out.stridedNonRepetitive;
        else
            ++out.nonStridedNonRepetitive;
    }

    // ------------------------------------------------------------------
    // 7. Stream-length distribution, weighted by contribution: each
    //    root occurrence of a rule of length L contributes L misses.
    // ------------------------------------------------------------------
    {
        telemetry::Span span("analysis.length_dist", "analysis");
        std::unordered_map<std::uint32_t, std::uint64_t> occCount;
        for (const RootOcc &occ : rootOccs)
            occCount[occ.rule]++;
        for (const auto &[rule, n] : occCount)
            out.lengthWeighted.emplace_back(ruleLen[rule],
                                            n * ruleLen[rule]);
    }

    // ------------------------------------------------------------------
    // 8. Reuse distance: consecutive root occurrences of the same rule,
    //    measured in intervening misses on the first occurrence's CPU.
    // ------------------------------------------------------------------
    {
        telemetry::Span span("analysis.reuse_dist", "analysis");
        // Per-CPU prefix bookkeeping: for each position, which CPU and
        // which per-CPU ordinal. Positions are already grouped by CPU,
        // so a position's CPU and ordinal derive from section offsets.
        std::vector<std::uint64_t> sectionStart(ncpu + 1, 0);
        for (unsigned c = 0; c < ncpu; ++c)
            sectionStart[c + 1] =
                sectionStart[c] + section(c).size() + 1;

        auto cpuOfPos = [&](std::uint64_t p) {
            unsigned lo = 0, hi = ncpu;
            while (lo + 1 < hi) {
                const unsigned mid = (lo + hi) / 2;
                if (sectionStart[mid] <= p)
                    lo = mid;
                else
                    hi = mid;
            }
            return lo;
        };

        // cpuSeqs (computed in the parallel phase) translate a global
        // time into "how many misses had CPU A seen by then".
        std::unordered_map<std::uint32_t, RootOcc> lastOcc;
        // Process occurrences in global-time order of their first miss.
        auto occs = rootOccs;
        std::sort(occs.begin(), occs.end(),
                  [&](const RootOcc &a, const RootOcc &b) {
                      return trace.misses[posToMiss[a.start]].seq <
                             trace.misses[posToMiss[b.start]].seq;
                  });
        for (const RootOcc &occ : occs) {
            auto it = lastOcc.find(occ.rule);
            if (it != lastOcc.end()) {
                const RootOcc &prev = it->second;
                const unsigned cpuA = cpuOfPos(prev.start);
                // Ordinal of the previous occurrence's last miss on A.
                const std::uint64_t endOrdinal =
                    prev.start + prev.len - 1 - sectionStart[cpuA];
                // Misses A has issued before this occurrence begins.
                const std::uint64_t startSeq =
                    trace.misses[posToMiss[occ.start]].seq;
                const auto &seqs = cpuSeqs[cpuA];
                const std::uint64_t seenOnA = static_cast<std::uint64_t>(
                    std::lower_bound(seqs.begin(), seqs.end(), startSeq) -
                    seqs.begin());
                const std::uint64_t dist =
                    seenOnA > endOrdinal + 1 ? seenOnA - endOrdinal - 1
                                             : 0;
                out.reuseWeighted.emplace_back(dist, occ.len);
            }
            lastOcc[occ.rule] = occ;
        }
    }

    return out;
}

} // namespace tstream
