#include "core/stride.hh"

#include <cstdlib>

namespace tstream
{

bool
StrideDetector::observe(CpuId cpu, BlockId blk)
{
    if (tables_.size() <= cpu)
        tables_.resize(cpu + 1);
    auto &table = tables_[cpu];
    if (table.empty())
        table.resize(cfg_.trackers);

    const std::int64_t b = static_cast<std::int64_t>(blk);
    ++tick_;

    // Find the closest tracker within the window.
    int best = -1;
    std::int64_t bestDist = cfg_.window + 1;
    for (std::size_t i = 0; i < table.size(); ++i) {
        Tracker &t = table[i];
        if (t.conf < 0)
            continue;
        const std::int64_t d = std::llabs(b - t.last);
        if (d <= cfg_.window && d < bestDist) {
            bestDist = d;
            best = static_cast<int>(i);
        }
    }

    if (best >= 0) {
        Tracker &t = table[best];
        const std::int64_t delta = b - t.last;
        bool predicted = false;
        if (delta == t.stride && delta != 0 && t.conf >= 0) {
            t.conf++;
            predicted = t.conf >= 1;
        } else {
            t.stride = delta;
            t.conf = 0;
        }
        t.last = b;
        t.lru = tick_;
        return predicted;
    }

    // Allocate the LRU (or first empty) tracker.
    std::size_t victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].conf < 0) {
            victim = i;
            break;
        }
        if (table[i].lru < oldest) {
            oldest = table[i].lru;
            victim = i;
        }
    }
    table[victim] = Tracker{b, 0, 0, tick_};
    return false;
}

std::vector<bool>
StrideDetector::labelTrace(const MissTrace &trace, const StrideConfig &cfg)
{
    StrideDetector det(cfg);
    std::vector<bool> flags(trace.misses.size());
    for (std::size_t i = 0; i < trace.misses.size(); ++i)
        flags[i] = det.observe(trace.misses[i].cpu, trace.misses[i].block);
    return flags;
}

} // namespace tstream
