/**
 * @file
 * SEQUITUR hierarchical grammar inference (Nevill-Manning & Witten,
 * JAIR 1997), the information-theoretic engine the paper uses to find
 * temporal streams (Section 3).
 *
 * SEQUITUR incrementally builds a context-free grammar from a symbol
 * sequence while maintaining two invariants:
 *
 *  1. digram uniqueness — no pair of adjacent symbols appears more
 *     than once in the grammar;
 *  2. rule utility — every rule (except the root) is referenced more
 *     than once.
 *
 * Every non-root production rule therefore corresponds to a subsequence
 * that occurs at least twice in the input: a temporal stream.
 *
 * The implementation follows the canonical algorithm: doubly-linked
 * symbol lists with per-rule guard nodes, a digram hash index, rule
 * substitution on duplicate digrams, and inline expansion of
 * under-used rules.
 */

#ifndef TSTREAM_CORE_SEQUITUR_HH
#define TSTREAM_CORE_SEQUITUR_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"

namespace tstream
{

/**
 * A SEQUITUR grammar under incremental construction.
 *
 * Terminals are arbitrary 64-bit values below 2^62 (callers intern
 * wider domains, e.g. block addresses, into dense ids).
 */
class Sequitur
{
  public:
    Sequitur();
    ~Sequitur();

    Sequitur(const Sequitur &) = delete;
    Sequitur &operator=(const Sequitur &) = delete;

    /** Append one terminal to the input sequence. */
    void append(std::uint64_t terminal);

    /** Append a whole sequence. */
    void
    appendAll(const std::vector<std::uint64_t> &seq)
    {
        for (auto t : seq)
            append(t);
    }

    /** Number of terminals appended so far. */
    std::uint64_t inputLength() const { return inputLen_; }

    /** Number of live rules, excluding the root. */
    std::size_t ruleCount() const { return liveRules_; }

    // ------------------------------------------------------------------
    // Post-construction inspection. Symbols inside rule bodies are
    // reported as GrammarSymbol{isRule, value}: terminals carry the
    // original terminal value, non-terminals the rule id.
    // ------------------------------------------------------------------

    /** One symbol of a flattened rule body. */
    struct GrammarSymbol
    {
        bool isRule = false;
        std::uint64_t value = 0; ///< terminal value or rule id

        bool
        operator==(const GrammarSymbol &o) const
        {
            return isRule == o.isRule && value == o.value;
        }
    };

    /** Root rule id (always 0). */
    static constexpr std::uint32_t kRootRule = 0;

    /** Ids of all live rules including the root. */
    std::vector<std::uint32_t> liveRuleIds() const;

    /** Right-hand side of rule @p id. */
    std::vector<GrammarSymbol> ruleBody(std::uint32_t id) const;

    /** Number of symbol references to rule @p id (root: 0). */
    std::uint32_t ruleRefs(std::uint32_t id) const;

    /**
     * Fully expand rule @p id to terminals.
     * Expanding the root reproduces the input exactly.
     */
    std::vector<std::uint64_t> expandRule(std::uint32_t id) const;

    /**
     * Expanded length of each live rule, indexed by rule id (dead rule
     * ids hold 0). Computed in one pass; O(total grammar size).
     */
    std::vector<std::uint64_t> ruleLengths() const;

    /**
     * Verify both SEQUITUR invariants plus list integrity; panics on
     * violation. Rule-utility slack (a rule referenced once) is
     * tolerated when @p allowUtilitySlack, since the canonical
     * algorithm admits rare transient under-use.
     * @return number of live rules checked.
     */
    std::size_t checkInvariants(bool allow_utility_slack = false) const;

  private:
    struct Rule;

    struct Symbol
    {
        Symbol *prev = nullptr;
        Symbol *next = nullptr;
        Rule *rule = nullptr;  ///< non-null for non-terminals and guards
        std::uint64_t term = 0;
        bool guard = false;
    };

    struct Rule
    {
        std::uint32_t id = 0;
        std::uint32_t refs = 0;
        Symbol *guard = nullptr;
        bool live = true;
    };

    /** Digram key: tagged values of two adjacent symbols. */
    struct DigramKey
    {
        std::uint64_t a, b;
        bool
        operator==(const DigramKey &o) const
        {
            return a == o.a && b == o.b;
        }
    };

    struct DigramHash
    {
        std::size_t
        operator()(const DigramKey &k) const
        {
            std::uint64_t h = k.a * 0x9e3779b97f4a7c15ull;
            h ^= (k.b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
            return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ull);
        }
    };

    static constexpr std::uint64_t kNtTag = 1ull << 63;
    static constexpr std::uint64_t kGuardTag = 1ull << 62;

    /**
     * Tagged value of a symbol for digram keys and run comparisons.
     * Terminals, non-terminals, and guards occupy disjoint tag spaces.
     */
    static std::uint64_t
    valueOf(const Symbol *s)
    {
        if (s->guard)
            return kGuardTag | s->rule->id;
        return s->rule ? (kNtTag | s->rule->id) : s->term;
    }

    DigramKey
    keyAt(const Symbol *s) const
    {
        return DigramKey{valueOf(s), valueOf(s->next)};
    }

    Symbol *newSymbol();
    void freeSymbol(Symbol *s);
    Symbol *newTerminal(std::uint64_t t);
    Symbol *newNonTerminal(Rule *r);
    Rule *newRule();

    static void link(Symbol *a, Symbol *b);

    /**
     * Link @p left -> @p right, maintaining the digram index: the
     * broken digram at @p left is dropped, and overlapped occurrences
     * in same-value runs are re-registered (the canonical algorithm's
     * "triples" handling).
     */
    void join(Symbol *left, Symbol *right);

    /** Remove the index entry for the digram starting at @p a, if it
     *  points at @p a. */
    void removeDigram(Symbol *a);

    /** Unlink and free @p s, maintaining digram index and rule refs. */
    void deleteSymbol(Symbol *s);

    /**
     * Enforce digram uniqueness for the digram starting at @p a.
     * @return true if the grammar was restructured.
     */
    bool check(Symbol *a);

    /** Handle a duplicate digram: @p a matches earlier occurrence
     *  @p m. */
    void processMatch(Symbol *a, Symbol *m);

    /** Replace the digram at @p a with a reference to @p r. */
    void substitute(Symbol *a, Rule *r);

    /** Inline the sole use @p nt of its rule (rule utility). */
    void expand(Symbol *nt);

    std::deque<Symbol> arena_;
    std::vector<Symbol *> freeList_;
    std::vector<Rule *> rules_; ///< by id; dead rules stay (live=false)
    std::unordered_map<DigramKey, Symbol *, DigramHash> index_;
    std::uint64_t inputLen_ = 0;
    std::size_t liveRules_ = 0;
};

} // namespace tstream

#endif // TSTREAM_CORE_SEQUITUR_HH
