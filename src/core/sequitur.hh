/**
 * @file
 * SEQUITUR hierarchical grammar inference (Nevill-Manning & Witten,
 * JAIR 1997), the information-theoretic engine the paper uses to find
 * temporal streams (Section 3).
 *
 * SEQUITUR incrementally builds a context-free grammar from a symbol
 * sequence while maintaining two invariants:
 *
 *  1. digram uniqueness — no pair of adjacent symbols appears more
 *     than once in the grammar;
 *  2. rule utility — every rule (except the root) is referenced more
 *     than once.
 *
 * Every non-root production rule therefore corresponds to a subsequence
 * that occurs at least twice in the input: a temporal stream.
 *
 * The implementation follows the canonical algorithm — doubly-linked
 * symbol lists with per-rule guard nodes, a digram index, rule
 * substitution on duplicate digrams, and inline expansion of
 * under-used rules — but on cache-friendly storage: symbols live in
 * one pooled arena addressed by 32-bit indexes (24 B/symbol, LIFO
 * slot recycling, no per-node allocation), rules are plain values in
 * a by-id vector, and the digram index is an open-addressing table
 * keyed on the packed 64-bit symbol tags with linear probing and
 * tombstone deletion. The grammar produced is bit-identical to the
 * pointer-based implementation's; only the constant factors changed.
 */

#ifndef TSTREAM_CORE_SEQUITUR_HH
#define TSTREAM_CORE_SEQUITUR_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace tstream
{

/**
 * A SEQUITUR grammar under incremental construction.
 *
 * Terminals are arbitrary 64-bit values below 2^62 (callers intern
 * wider domains, e.g. block addresses, into dense ids).
 */
class Sequitur
{
  public:
    Sequitur();

    Sequitur(const Sequitur &) = delete;
    Sequitur &operator=(const Sequitur &) = delete;

    /** Append one terminal to the input sequence. */
    void append(std::uint64_t terminal);

    /** Append a whole sequence. */
    void
    appendAll(const std::vector<std::uint64_t> &seq)
    {
        for (auto t : seq)
            append(t);
    }

    /** Number of terminals appended so far. */
    std::uint64_t inputLength() const { return inputLen_; }

    /** Number of live rules, excluding the root. */
    std::size_t ruleCount() const { return liveRules_; }

    // ------------------------------------------------------------------
    // Post-construction inspection. Symbols inside rule bodies are
    // reported as GrammarSymbol{isRule, value}: terminals carry the
    // original terminal value, non-terminals the rule id.
    // ------------------------------------------------------------------

    /** One symbol of a flattened rule body. */
    struct GrammarSymbol
    {
        bool isRule = false;
        std::uint64_t value = 0; ///< terminal value or rule id

        bool
        operator==(const GrammarSymbol &o) const
        {
            return isRule == o.isRule && value == o.value;
        }
    };

    /** Root rule id (always 0). */
    static constexpr std::uint32_t kRootRule = 0;

    /** Ids of all live rules including the root. */
    std::vector<std::uint32_t> liveRuleIds() const;

    /** Right-hand side of rule @p id. */
    std::vector<GrammarSymbol> ruleBody(std::uint32_t id) const;

    /** Number of symbol references to rule @p id (root: 0). */
    std::uint32_t ruleRefs(std::uint32_t id) const;

    /**
     * Fully expand rule @p id to terminals.
     * Expanding the root reproduces the input exactly.
     */
    std::vector<std::uint64_t> expandRule(std::uint32_t id) const;

    /**
     * Expanded length of each live rule, indexed by rule id (dead rule
     * ids hold 0). Computed in one pass; O(total grammar size).
     */
    std::vector<std::uint64_t> ruleLengths() const;

    /**
     * Verify both SEQUITUR invariants plus list integrity; panics on
     * violation. Rule-utility slack (a rule referenced once) is
     * tolerated when @p allowUtilitySlack, since the canonical
     * algorithm admits rare transient under-use.
     * @return number of live rules checked.
     */
    std::size_t checkInvariants(bool allow_utility_slack = false) const;

  private:
    /** Arena index of a symbol. */
    using SymIdx = std::uint32_t;

    static constexpr SymIdx kNoSym = 0xFFFFFFFFu;
    /** Symbol::tag of a terminal. */
    static constexpr std::uint32_t kTermMark = 0xFFFFFFFFu;
    /** Symbol::tag bit marking a rule's guard node. */
    static constexpr std::uint32_t kGuardBit = 0x80000000u;

    /**
     * One arena slot: list links plus the symbol identity packed into
     * `tag` — kTermMark for terminals (value in `term`), the rule id
     * for non-terminals, and kGuardBit|rule-id for guard nodes.
     */
    struct Symbol
    {
        SymIdx prev = kNoSym;
        SymIdx next = kNoSym;
        std::uint32_t tag = kTermMark;
        std::uint64_t term = 0;
    };

    struct Rule
    {
        std::uint32_t refs = 0;
        SymIdx guard = kNoSym;
        bool live = true;
    };

    /**
     * Open-addressing digram index: (tagged value a, tagged value b)
     * -> arena index of the digram's registered first symbol. Linear
     * probing, tombstone deletion, grown (and tombstone-purged) at
     * 3/4 load. Same mapping semantics as the std::unordered_map it
     * replaces, minus the per-node allocations and pointer chasing.
     */
    class DigramTable
    {
      public:
        DigramTable();

        /** The digram key mix (shared with checkInvariants()). */
        static std::size_t hashKey(std::uint64_t a, std::uint64_t b);

        /** @return the mapped symbol, or kNoSym if absent. */
        SymIdx find(std::uint64_t a, std::uint64_t b) const;

        /** Insert or overwrite the mapping for (a, b). */
        void put(std::uint64_t a, std::uint64_t b, SymIdx sym);

        /** Remove (a, b) only if it currently maps to @p ifSym. */
        void erase(std::uint64_t a, std::uint64_t b, SymIdx ifSym);

      private:
        struct Slot
        {
            std::uint64_t a = 0;
            std::uint64_t b = 0;
            SymIdx sym = kEmpty;
        };

        static constexpr SymIdx kEmpty = 0xFFFFFFFFu;
        static constexpr SymIdx kTomb = 0xFFFFFFFEu;

        void grow();

        std::vector<Slot> slots_; ///< size is a power of two
        std::size_t occupied_ = 0; ///< live entries
        std::size_t used_ = 0;     ///< live entries + tombstones
    };

    static constexpr std::uint64_t kNtTag = 1ull << 63;
    static constexpr std::uint64_t kGuardTag = 1ull << 62;

    bool
    isGuard(SymIdx s) const
    {
        const std::uint32_t t = symbols_[s].tag;
        return t != kTermMark && (t & kGuardBit) != 0;
    }

    bool
    isNonTerminal(SymIdx s) const
    {
        const std::uint32_t t = symbols_[s].tag;
        return t != kTermMark && (t & kGuardBit) == 0;
    }

    /** Rule id of a non-terminal or guard symbol. */
    std::uint32_t
    ruleIdOf(SymIdx s) const
    {
        return symbols_[s].tag & ~kGuardBit;
    }

    /**
     * Tagged value of a symbol for digram keys and run comparisons.
     * Terminals, non-terminals, and guards occupy disjoint tag spaces.
     */
    std::uint64_t
    valueAt(SymIdx s) const
    {
        const Symbol &sym = symbols_[s];
        if (sym.tag == kTermMark)
            return sym.term;
        if (sym.tag & kGuardBit)
            return kGuardTag | (sym.tag & ~kGuardBit);
        return kNtTag | sym.tag;
    }

    SymIdx newSymbol();
    void freeSymbol(SymIdx s);
    SymIdx newTerminal(std::uint64_t t);
    SymIdx newNonTerminal(std::uint32_t rule);
    std::uint32_t newRule();

    void link(SymIdx a, SymIdx b);

    /**
     * Link @p left -> @p right, maintaining the digram index: the
     * broken digram at @p left is dropped, and overlapped occurrences
     * in same-value runs are re-registered (the canonical algorithm's
     * "triples" handling).
     */
    void join(SymIdx left, SymIdx right);

    /** Remove the index entry for the digram starting at @p a, if it
     *  points at @p a. */
    void removeDigram(SymIdx a);

    /** Unlink and free @p s, maintaining digram index and rule refs. */
    void deleteSymbol(SymIdx s);

    /**
     * Enforce digram uniqueness for the digram starting at @p a.
     * @return true if the grammar was restructured.
     */
    bool check(SymIdx a);

    /** Handle a duplicate digram: @p a matches earlier occurrence
     *  @p m. */
    void processMatch(SymIdx a, SymIdx m);

    /** Replace the digram at @p a with a reference to rule @p r. */
    void substitute(SymIdx a, std::uint32_t r);

    /** Inline the sole use @p nt of its rule (rule utility). */
    void expand(SymIdx nt);

    std::vector<Symbol> symbols_; ///< pooled arena, index-linked
    std::vector<SymIdx> freeList_;
    std::vector<Rule> rules_; ///< by id; dead rules stay (live=false)
    DigramTable index_;
    std::uint64_t inputLen_ = 0;
    std::size_t liveRules_ = 0;
};

} // namespace tstream

#endif // TSTREAM_CORE_SEQUITUR_HH
