/**
 * @file
 * Temporal-stream identification and statistics (paper Sections 4.2,
 * 4.4, 4.5 and the stream half of 4.3).
 *
 * The analysis follows the paper's methodology exactly:
 *
 *  - Miss traces are projected per CPU (streams live in per-processor
 *    miss order; recurrences may be on any processor) and the per-CPU
 *    sequences are concatenated with unique sentinel symbols so a
 *    single SEQUITUR grammar finds both same-CPU and cross-CPU repeats
 *    without ever forming a rule across a CPU boundary.
 *  - A temporal stream is a (non-root) grammar rule; each root-level
 *    non-terminal instance is one stream occurrence. The rule-utility
 *    invariant guarantees every rule repeats, so a miss is "in a
 *    stream" iff its root-level covering symbol is a non-terminal.
 *  - The earliest expansion (anywhere in the derivation, in global
 *    time) of a rule is the stream's first occurrence: misses there are
 *    "New stream", later occurrences are "Recurring stream"
 *    (Figure 2).
 *  - Stream length = expanded terminal count of the rule (Figure 4
 *    left, weighted by contribution).
 *  - Reuse distance between consecutive occurrences = number of
 *    intervening misses *on the first occurrence's CPU*, the storage-
 *    motivated definition of Section 4.5 (Figure 4 right, weighted by
 *    stream length).
 */

#ifndef TSTREAM_CORE_STREAM_ANALYSIS_HH
#define TSTREAM_CORE_STREAM_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "core/stride.hh"
#include "trace/record.hh"

namespace tstream
{

/** Per-miss repetition label (Figure 2 legend). */
enum class RepLabel : std::uint8_t
{
    NonRepetitive,
    NewStream,
    RecurringStream,
};

/** Result of the temporal-stream analysis over one miss trace. */
struct StreamStats
{
    std::uint64_t totalMisses = 0;

    /// Miss counts by repetition label (Figure 2).
    std::uint64_t nonRepetitive = 0;
    std::uint64_t newStream = 0;
    std::uint64_t recurringStream = 0;

    /// Joint strided x repetitive miss counts (Figure 3).
    std::uint64_t stridedRepetitive = 0;
    std::uint64_t stridedNonRepetitive = 0;
    std::uint64_t nonStridedRepetitive = 0;
    std::uint64_t nonStridedNonRepetitive = 0;

    /// Per-miss labels aligned with the input trace (for Tables 3-5).
    std::vector<RepLabel> labels;
    std::vector<bool> strided;

    /// (stream length, total misses contributed at that length),
    /// aggregated per rule (Figure 4 left).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lengthWeighted;

    /// (reuse distance in first-CPU misses, weight = stream length),
    /// one entry per consecutive occurrence pair (Figure 4 right).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> reuseWeighted;

    /// Grammar size diagnostics.
    std::uint64_t grammarRules = 0;

    /** Fraction of misses inside temporal streams (0..1). */
    double
    inStreamFraction() const
    {
        return totalMisses == 0
                   ? 0.0
                   : static_cast<double>(newStream + recurringStream) /
                         static_cast<double>(totalMisses);
    }

    /** Weighted p-th percentile of stream length (p in 0..100). */
    double lengthPercentile(double p) const;

    /** Median stream length (the paper's headline "eight misses"). */
    double medianStreamLength() const { return lengthPercentile(50.0); }
};

/** Options for analyzeStreams(). */
struct StreamAnalysisConfig
{
    /**
     * Project the trace per CPU before grammar construction (default,
     * the paper's model). When false the global interleaved order is
     * used as a single sequence.
     */
    bool perCpu = true;

    /** Stride detector settings for the joint breakdown. */
    StrideConfig stride;

    /**
     * Worker threads for the per-CPU projection phases (stride
     * labeling and per-CPU sequence extraction — each CPU's state is
     * independent, so they fan out over a util/work_pool). 0 = auto
     * (WorkPool::defaultJobs(), i.e. TSTREAM_JOBS or the hardware
     * concurrency), 1 = run inline. The result is bit-identical for
     * any value; this only affects wall time.
     */
    unsigned jobs = 0;
};

/** Run the full temporal-stream analysis over @p trace. */
StreamStats analyzeStreams(const MissTrace &trace,
                           const StreamAnalysisConfig &cfg = {});

} // namespace tstream

#endif // TSTREAM_CORE_STREAM_ANALYSIS_HH
