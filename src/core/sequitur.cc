#include "core/sequitur.hh"

#include <unordered_map>

namespace tstream
{

// ---------------------------------------------------------------------------
// DigramTable
// ---------------------------------------------------------------------------

Sequitur::DigramTable::DigramTable()
    : slots_(1024)
{
}

std::size_t
Sequitur::DigramTable::hashKey(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
    h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    // The table is masked to a power of two; fold the high-entropy
    // bits of the multiply back into the low bits.
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
}

Sequitur::SymIdx
Sequitur::DigramTable::find(std::uint64_t a, std::uint64_t b) const
{
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hashKey(a, b) & mask;; i = (i + 1) & mask) {
        const Slot &s = slots_[i];
        if (s.sym == kEmpty)
            return kNoSym;
        if (s.sym != kTomb && s.a == a && s.b == b)
            return s.sym;
    }
}

void
Sequitur::DigramTable::put(std::uint64_t a, std::uint64_t b, SymIdx sym)
{
    if ((used_ + 1) * 4 >= slots_.size() * 3)
        grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t tomb = SIZE_MAX;
    for (std::size_t i = hashKey(a, b) & mask;; i = (i + 1) & mask) {
        Slot &s = slots_[i];
        if (s.sym == kEmpty) {
            // Reuse the first tombstone on the probe path, if any, so
            // heavily-churned keys do not stretch probe sequences.
            if (tomb != SIZE_MAX) {
                slots_[tomb] = Slot{a, b, sym};
            } else {
                s = Slot{a, b, sym};
                ++used_;
            }
            ++occupied_;
            return;
        }
        if (s.sym == kTomb) {
            if (tomb == SIZE_MAX)
                tomb = i;
            continue;
        }
        if (s.a == a && s.b == b) {
            s.sym = sym;
            return;
        }
    }
}

void
Sequitur::DigramTable::erase(std::uint64_t a, std::uint64_t b,
                             SymIdx ifSym)
{
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hashKey(a, b) & mask;; i = (i + 1) & mask) {
        Slot &s = slots_[i];
        if (s.sym == kEmpty)
            return;
        if (s.sym != kTomb && s.a == a && s.b == b) {
            if (s.sym == ifSym) {
                s.sym = kTomb;
                --occupied_;
            }
            return;
        }
    }
}

void
Sequitur::DigramTable::grow()
{
    // Double while the live load would stay >= 1/2; a grow() call with
    // mostly tombstones keeps the size and just purges them.
    std::size_t n = slots_.size();
    while (occupied_ * 2 >= n)
        n *= 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(n, Slot{});
    const std::size_t mask = n - 1;
    std::size_t live = 0;
    for (const Slot &s : old) {
        if (s.sym >= kTomb)
            continue;
        std::size_t i = hashKey(s.a, s.b) & mask;
        while (slots_[i].sym != kEmpty)
            i = (i + 1) & mask;
        slots_[i] = s;
        ++live;
    }
    occupied_ = used_ = live;
}

// ---------------------------------------------------------------------------
// Construction primitives
// ---------------------------------------------------------------------------

Sequitur::Sequitur()
{
    // Rule 0 is the root; it is never referenced by a symbol.
    newRule();
}

Sequitur::SymIdx
Sequitur::newSymbol()
{
    if (!freeList_.empty()) {
        const SymIdx s = freeList_.back();
        freeList_.pop_back();
        symbols_[s] = Symbol{};
        return s;
    }
    panicIf(symbols_.size() >= kNoSym - 1,
            "Sequitur: symbol arena exhausted");
    symbols_.emplace_back();
    return static_cast<SymIdx>(symbols_.size() - 1);
}

void
Sequitur::freeSymbol(SymIdx s)
{
    freeList_.push_back(s);
}

Sequitur::SymIdx
Sequitur::newTerminal(std::uint64_t t)
{
    panicIf(t >= kNtTag >> 2, "Sequitur: terminal value too large");
    const SymIdx s = newSymbol();
    symbols_[s].term = t;
    return s;
}

Sequitur::SymIdx
Sequitur::newNonTerminal(std::uint32_t rule)
{
    const SymIdx s = newSymbol();
    symbols_[s].tag = rule;
    rules_[rule].refs++;
    return s;
}

std::uint32_t
Sequitur::newRule()
{
    const auto id = static_cast<std::uint32_t>(rules_.size());
    // kGuardBit - 1 is unusable: its guard tag would collide with
    // kTermMark and read back as a terminal.
    panicIf(id >= kGuardBit - 1, "Sequitur: rule ids exhausted");
    const SymIdx g = newSymbol();
    symbols_[g].tag = kGuardBit | id;
    rules_.push_back(Rule{0, g, true});
    link(g, g); // empty circular body
    ++liveRules_;
    return id;
}

void
Sequitur::link(SymIdx a, SymIdx b)
{
    symbols_[a].next = b;
    symbols_[b].prev = a;
}

void
Sequitur::removeDigram(SymIdx a)
{
    const SymIdx n = symbols_[a].next;
    if (isGuard(a) || isGuard(n))
        return;
    index_.erase(valueAt(a), valueAt(n), a);
}

void
Sequitur::join(SymIdx left, SymIdx right)
{
    if (symbols_[left].next != kNoSym) {
        // Re-linking an existing neighbourhood: drop the digram that is
        // being broken, and handle the canonical algorithm's "triples"
        // subtlety — when same-value runs lose their registered
        // occurrence, re-register the surviving overlapped occurrence.
        removeDigram(left);

        const SymIdx rp = symbols_[right].prev;
        const SymIdx rn = symbols_[right].next;
        if (rp != kNoSym && rn != kNoSym && !isGuard(right) &&
            !isGuard(rp) && !isGuard(rn) &&
            valueAt(right) == valueAt(rp) &&
            valueAt(right) == valueAt(rn)) {
            index_.put(valueAt(right), valueAt(rn), right);
        }
        const SymIdx lp = symbols_[left].prev;
        const SymIdx ln = symbols_[left].next;
        if (lp != kNoSym && ln != kNoSym && !isGuard(left) &&
            !isGuard(lp) && !isGuard(ln) &&
            valueAt(left) == valueAt(ln) &&
            valueAt(left) == valueAt(lp)) {
            index_.put(valueAt(lp), valueAt(left), lp);
        }
    }
    link(left, right);
}

void
Sequitur::deleteSymbol(SymIdx s)
{
    join(symbols_[s].prev, symbols_[s].next);
    if (!isGuard(s)) {
        removeDigram(s); // (s, old next); s's next field is intact
        if (isNonTerminal(s))
            rules_[ruleIdOf(s)].refs--;
    }
    freeSymbol(s);
}

// ---------------------------------------------------------------------------
// The algorithm
// ---------------------------------------------------------------------------

void
Sequitur::append(std::uint64_t terminal)
{
    const SymIdx s = newTerminal(terminal);
    const SymIdx guard = rules_[kRootRule].guard;
    const SymIdx last = symbols_[guard].prev;
    join(s, guard);
    join(last, s);
    ++inputLen_;
    check(last);
}

bool
Sequitur::check(SymIdx a)
{
    const SymIdx an = symbols_[a].next;
    if (isGuard(a) || isGuard(an))
        return false;

    const std::uint64_t ka = valueAt(a);
    const std::uint64_t kb = valueAt(an);
    const SymIdx m = index_.find(ka, kb);
    if (m == kNoSym) {
        index_.put(ka, kb, a);
        return false;
    }

    if (m == a)
        return false;
    // Overlapping occurrences (e.g. "aaa"): leave the grammar alone.
    if (symbols_[m].next == a || symbols_[a].next == m)
        return false;

    processMatch(a, m);
    return true;
}

void
Sequitur::processMatch(SymIdx a, SymIdx m)
{
    std::uint32_t r;
    const SymIdx mp = symbols_[m].prev;
    if (isGuard(mp) && isGuard(symbols_[symbols_[m].next].next)) {
        // The earlier occurrence is exactly an existing rule's body:
        // reuse that rule.
        r = ruleIdOf(mp);
        substitute(a, r);
    } else {
        // Create a new rule from the digram's values.
        r = newRule();
        const SymIdx x = newSymbol();
        const SymIdx y = newSymbol();
        {
            Symbol &sx = symbols_[x];
            const Symbol &sa = symbols_[a];
            sx.tag = sa.tag;
            sx.term = sa.term;
            if (sa.tag != kTermMark)
                rules_[sa.tag].refs++;
        }
        {
            Symbol &sy = symbols_[y];
            const Symbol &sn = symbols_[symbols_[a].next];
            sy.tag = sn.tag;
            sy.term = sn.term;
            if (sn.tag != kTermMark)
                rules_[sn.tag].refs++;
        }
        const SymIdx g = rules_[r].guard;
        link(g, x);
        link(x, y);
        link(y, g);
        substitute(m, r);
        substitute(a, r);
        // Register the rule body digram *after* the substitutions
        // (canonical order): the joins inside the substitutions may
        // transiently re-register run-overlap occurrences of this key,
        // and the body must win.
        index_.put(valueAt(x), valueAt(y), x);
    }

    // Rule utility: if a symbol of the (new or reused) rule's body is a
    // rule now referenced only once, inline it. Check the first
    // position, then the last if the first was fine.
    const SymIdx g = rules_[r].guard;
    const SymIdx f = symbols_[g].next;
    if (isNonTerminal(f) && rules_[ruleIdOf(f)].refs == 1) {
        expand(f);
    } else {
        const SymIdx l = symbols_[g].prev;
        if (l != f && isNonTerminal(l) && rules_[ruleIdOf(l)].refs == 1)
            expand(l);
    }
}

void
Sequitur::substitute(SymIdx a, std::uint32_t r)
{
    const SymIdx prev = symbols_[a].prev;
    deleteSymbol(a);
    deleteSymbol(symbols_[prev].next);
    const SymIdx nt = newNonTerminal(r);
    join(nt, symbols_[prev].next);
    join(prev, nt);
    // Enforce uniqueness on the new adjacencies. If the left check
    // restructures the grammar, it re-establishes the invariant for
    // the affected neighbourhood, so the right check is skipped
    // (canonical behaviour).
    if (!check(prev))
        check(nt);
}

void
Sequitur::expand(SymIdx nt)
{
    const std::uint32_t r = ruleIdOf(nt);
    panicIf(rules_[r].refs != 1, "Sequitur::expand of rule with refs != 1");

    const SymIdx left = symbols_[nt].prev;
    const SymIdx right = symbols_[nt].next;
    const SymIdx g = rules_[r].guard;
    const SymIdx first = symbols_[g].next;
    const SymIdx last = symbols_[g].prev;
    panicIf(isGuard(first), "Sequitur::expand of empty rule");

    // Remove digrams that involve the non-terminal being inlined.
    removeDigram(left); // (left, nt)
    removeDigram(nt);   // (nt, right)

    // Splice the body into the host rule.
    join(left, first);
    join(last, right);

    // Retire the rule and the non-terminal symbol.
    freeSymbol(g);
    rules_[r].guard = kNoSym;
    rules_[r].refs = 0;
    rules_[r].live = false;
    --liveRules_;
    freeSymbol(nt);

    // Exactly one of the two boundary digrams is real: expand() is
    // called for a body symbol of a freshly created rule, whose other
    // side is the guard. Enforce uniqueness on the real one last, so
    // any cascading restructuring cannot invalidate indexes we still
    // use.
    if (isGuard(left))
        check(last);
    else
        check(left);
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

std::vector<std::uint32_t>
Sequitur::liveRuleIds() const
{
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; id < rules_.size(); ++id)
        if (rules_[id].live)
            ids.push_back(id);
    return ids;
}

std::vector<Sequitur::GrammarSymbol>
Sequitur::ruleBody(std::uint32_t id) const
{
    const Rule &r = rules_.at(id);
    panicIf(!r.live, "Sequitur::ruleBody of dead rule");
    std::vector<GrammarSymbol> body;
    for (SymIdx s = symbols_[r.guard].next; !isGuard(s);
         s = symbols_[s].next) {
        if (isNonTerminal(s))
            body.push_back({true, ruleIdOf(s)});
        else
            body.push_back({false, symbols_[s].term});
    }
    return body;
}

std::uint32_t
Sequitur::ruleRefs(std::uint32_t id) const
{
    return rules_.at(id).refs;
}

std::vector<std::uint64_t>
Sequitur::expandRule(std::uint32_t id) const
{
    std::vector<std::uint64_t> out;
    // Iterative expansion with an explicit stack of symbol cursors.
    std::vector<SymIdx> stack;
    stack.push_back(symbols_[rules_.at(id).guard].next);
    while (!stack.empty()) {
        const SymIdx s = stack.back();
        if (isGuard(s)) {
            stack.pop_back();
            continue;
        }
        stack.back() = symbols_[s].next;
        if (isNonTerminal(s))
            stack.push_back(symbols_[rules_[ruleIdOf(s)].guard].next);
        else
            out.push_back(symbols_[s].term);
    }
    return out;
}

std::vector<std::uint64_t>
Sequitur::ruleLengths() const
{
    std::vector<std::uint64_t> len(rules_.size(), 0);
    // Dependency-ordered evaluation via iterative post-order DFS.
    std::vector<std::uint8_t> state(rules_.size(), 0); // 0 new 1 open 2 done
    std::vector<std::uint32_t> stack;
    for (std::uint32_t root = 0; root < rules_.size(); ++root) {
        if (!rules_[root].live || state[root] == 2)
            continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const std::uint32_t id = stack.back();
            if (state[id] == 0) {
                state[id] = 1;
                for (SymIdx s = symbols_[rules_[id].guard].next;
                     !isGuard(s); s = symbols_[s].next) {
                    if (isNonTerminal(s) && state[ruleIdOf(s)] == 0)
                        stack.push_back(ruleIdOf(s));
                }
            } else {
                stack.pop_back();
                if (state[id] == 1) {
                    state[id] = 2;
                    std::uint64_t n = 0;
                    for (SymIdx s = symbols_[rules_[id].guard].next;
                         !isGuard(s); s = symbols_[s].next)
                        n += isNonTerminal(s) ? len[ruleIdOf(s)] : 1;
                    len[id] = n;
                }
            }
        }
    }
    return len;
}

std::size_t
Sequitur::checkInvariants(bool allow_utility_slack) const
{
    // Digram key -> (rule id, body index) of the last occurrence seen.
    // Duplicate digrams are allowed only when the occurrences overlap
    // (adjacent positions of a same-symbol run, e.g. "aaa"), the known
    // exception the canonical algorithm leaves in place.
    struct Key
    {
        std::uint64_t a, b;
        bool
        operator==(const Key &o) const
        {
            return a == o.a && b == o.b;
        }
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return DigramTable::hashKey(k.a, k.b);
        }
    };
    struct Occ
    {
        std::uint32_t rule;
        std::size_t idx;
    };
    std::unordered_map<Key, Occ, KeyHash> seen;
    std::vector<std::uint32_t> refCount(rules_.size(), 0);
    std::size_t live = 0;

    for (std::uint32_t id = 0; id < rules_.size(); ++id) {
        const Rule &r = rules_[id];
        if (!r.live)
            continue;
        ++live;
        std::size_t body_len = 0;
        std::size_t idx = 0;
        for (SymIdx s = symbols_[r.guard].next; !isGuard(s);
             s = symbols_[s].next, ++idx) {
            ++body_len;
            if (isNonTerminal(s)) {
                panicIf(!rules_[ruleIdOf(s)].live,
                        "invariant: ref to dead rule");
                refCount[ruleIdOf(s)]++;
            }
            const SymIdx n = symbols_[s].next;
            if (!isGuard(n)) {
                const Key k{valueAt(s), valueAt(n)};
                auto [it, fresh] = seen.try_emplace(k, Occ{id, idx});
                if (!fresh) {
                    const bool overlap = it->second.rule == id &&
                                         it->second.idx + 1 == idx &&
                                         k.a == k.b;
                    panicIf(!overlap, "invariant: duplicate digram");
                    it->second = Occ{id, idx};
                }
            }
            panicIf(symbols_[n].prev != s, "invariant: broken list");
        }
        panicIf(id != kRootRule && body_len < 2,
                "invariant: rule body shorter than 2");
    }

    for (std::uint32_t id = 0; id < rules_.size(); ++id) {
        const Rule &r = rules_[id];
        if (!r.live || id == kRootRule)
            continue;
        panicIf(refCount[id] != r.refs,
                "invariant: refcount bookkeeping mismatch");
        if (!allow_utility_slack)
            panicIf(r.refs < 2, "invariant: under-used rule");
        else
            panicIf(r.refs < 1, "invariant: orphan rule");
    }
    return live;
}

} // namespace tstream
