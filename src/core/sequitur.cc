#include "core/sequitur.hh"

#include <unordered_set>

namespace tstream
{

Sequitur::Sequitur()
{
    // Rule 0 is the root; it is never referenced by a symbol.
    newRule();
}

Sequitur::~Sequitur()
{
    for (Rule *r : rules_)
        delete r;
}

Sequitur::Symbol *
Sequitur::newSymbol()
{
    if (!freeList_.empty()) {
        Symbol *s = freeList_.back();
        freeList_.pop_back();
        *s = Symbol{};
        return s;
    }
    arena_.emplace_back();
    return &arena_.back();
}

void
Sequitur::freeSymbol(Symbol *s)
{
    freeList_.push_back(s);
}

Sequitur::Symbol *
Sequitur::newTerminal(std::uint64_t t)
{
    panicIf(t >= kNtTag >> 2, "Sequitur: terminal value too large");
    Symbol *s = newSymbol();
    s->term = t;
    return s;
}

Sequitur::Symbol *
Sequitur::newNonTerminal(Rule *r)
{
    Symbol *s = newSymbol();
    s->rule = r;
    r->refs++;
    return s;
}

Sequitur::Rule *
Sequitur::newRule()
{
    Rule *r = new Rule;
    r->id = static_cast<std::uint32_t>(rules_.size());
    r->guard = newSymbol();
    r->guard->guard = true;
    r->guard->rule = r;
    link(r->guard, r->guard); // empty circular body
    rules_.push_back(r);
    ++liveRules_;
    return r;
}

void
Sequitur::link(Symbol *a, Symbol *b)
{
    a->next = b;
    b->prev = a;
}

void
Sequitur::removeDigram(Symbol *a)
{
    if (a->guard || a->next->guard)
        return;
    auto it = index_.find(keyAt(a));
    if (it != index_.end() && it->second == a)
        index_.erase(it);
}

void
Sequitur::join(Symbol *left, Symbol *right)
{
    if (left->next) {
        // Re-linking an existing neighbourhood: drop the digram that is
        // being broken, and handle the canonical algorithm's "triples"
        // subtlety — when same-value runs lose their registered
        // occurrence, re-register the surviving overlapped occurrence.
        removeDigram(left);

        if (right->prev && right->next && !right->guard &&
            !right->prev->guard && !right->next->guard &&
            valueOf(right) == valueOf(right->prev) &&
            valueOf(right) == valueOf(right->next)) {
            index_[DigramKey{valueOf(right), valueOf(right->next)}] =
                right;
        }
        if (left->prev && left->next && !left->guard &&
            !left->prev->guard && !left->next->guard &&
            valueOf(left) == valueOf(left->next) &&
            valueOf(left) == valueOf(left->prev)) {
            index_[DigramKey{valueOf(left->prev), valueOf(left)}] =
                left->prev;
        }
    }
    link(left, right);
}

void
Sequitur::deleteSymbol(Symbol *s)
{
    join(s->prev, s->next);
    if (!s->guard) {
        removeDigram(s); // (s, old next); s->next is still intact
        if (s->rule)
            s->rule->refs--;
    }
    freeSymbol(s);
}

void
Sequitur::append(std::uint64_t terminal)
{
    Rule *root = rules_[kRootRule];
    Symbol *s = newTerminal(terminal);
    Symbol *last = root->guard->prev;
    join(s, root->guard);
    join(last, s);
    ++inputLen_;
    check(last);
}

bool
Sequitur::check(Symbol *a)
{
    if (a->guard || a->next->guard)
        return false;

    const DigramKey k = keyAt(a);
    auto it = index_.find(k);
    if (it == index_.end()) {
        index_.emplace(k, a);
        return false;
    }

    Symbol *m = it->second;
    if (m == a)
        return false;
    // Overlapping occurrences (e.g. "aaa"): leave the grammar alone.
    if (m->next == a || a->next == m)
        return false;

    processMatch(a, m);
    return true;
}

void
Sequitur::processMatch(Symbol *a, Symbol *m)
{
    Rule *r;
    if (m->prev->guard && m->next->next->guard) {
        // The earlier occurrence is exactly an existing rule's body:
        // reuse that rule.
        r = m->prev->rule;
        substitute(a, r);
    } else {
        // Create a new rule from the digram's values.
        r = newRule();
        Symbol *x = newSymbol();
        x->rule = a->rule;
        x->term = a->term;
        if (x->rule)
            x->rule->refs++;
        Symbol *y = newSymbol();
        y->rule = a->next->rule;
        y->term = a->next->term;
        if (y->rule)
            y->rule->refs++;
        link(r->guard, x);
        link(x, y);
        link(y, r->guard);
        substitute(m, r);
        substitute(a, r);
        // Register the rule body digram *after* the substitutions
        // (canonical order): the joins inside the substitutions may
        // transiently re-register run-overlap occurrences of this key,
        // and the body must win.
        index_[keyAt(x)] = x;
    }

    // Rule utility: if a symbol of the (new or reused) rule's body is a
    // rule now referenced only once, inline it. Check the first
    // position, then the last if the first was fine.
    Symbol *f = r->guard->next;
    if (f->rule && !f->guard && f->rule->refs == 1) {
        expand(f);
    } else {
        Symbol *l = r->guard->prev;
        if (l != f && l->rule && !l->guard && l->rule->refs == 1)
            expand(l);
    }
}

void
Sequitur::substitute(Symbol *a, Rule *r)
{
    Symbol *prev = a->prev;
    deleteSymbol(a);
    deleteSymbol(prev->next);
    Symbol *nt = newNonTerminal(r);
    join(nt, prev->next);
    join(prev, nt);
    // Enforce uniqueness on the new adjacencies. If the left check
    // restructures the grammar, it re-establishes the invariant for
    // the affected neighbourhood, so the right check is skipped
    // (canonical behaviour).
    if (!check(prev))
        check(nt);
}

void
Sequitur::expand(Symbol *nt)
{
    Rule *r = nt->rule;
    panicIf(r->refs != 1, "Sequitur::expand of rule with refs != 1");

    Symbol *left = nt->prev;
    Symbol *right = nt->next;
    Symbol *first = r->guard->next;
    Symbol *last = r->guard->prev;
    panicIf(first->guard, "Sequitur::expand of empty rule");

    // Remove digrams that involve the non-terminal being inlined.
    removeDigram(left); // (left, nt)
    removeDigram(nt);   // (nt, right)

    // Splice the body into the host rule.
    join(left, first);
    join(last, right);

    // Retire the rule and the non-terminal symbol.
    freeSymbol(r->guard);
    r->guard = nullptr;
    r->refs = 0;
    r->live = false;
    --liveRules_;
    freeSymbol(nt);

    // Exactly one of the two boundary digrams is real: expand() is
    // called for a body symbol of a freshly created rule, whose other
    // side is the guard. Enforce uniqueness on the real one last, so
    // any cascading restructuring cannot invalidate pointers we still
    // use.
    if (left->guard)
        check(last);
    else
        check(left);
}

std::vector<std::uint32_t>
Sequitur::liveRuleIds() const
{
    std::vector<std::uint32_t> ids;
    for (const Rule *r : rules_)
        if (r->live)
            ids.push_back(r->id);
    return ids;
}

std::vector<Sequitur::GrammarSymbol>
Sequitur::ruleBody(std::uint32_t id) const
{
    const Rule *r = rules_.at(id);
    panicIf(!r->live, "Sequitur::ruleBody of dead rule");
    std::vector<GrammarSymbol> body;
    for (Symbol *s = r->guard->next; !s->guard; s = s->next) {
        if (s->rule)
            body.push_back({true, s->rule->id});
        else
            body.push_back({false, s->term});
    }
    return body;
}

std::uint32_t
Sequitur::ruleRefs(std::uint32_t id) const
{
    return rules_.at(id)->refs;
}

std::vector<std::uint64_t>
Sequitur::expandRule(std::uint32_t id) const
{
    std::vector<std::uint64_t> out;
    // Iterative expansion with an explicit stack of symbol cursors.
    std::vector<const Symbol *> stack;
    stack.push_back(rules_.at(id)->guard->next);
    while (!stack.empty()) {
        const Symbol *s = stack.back();
        if (s->guard) {
            stack.pop_back();
            continue;
        }
        stack.back() = s->next;
        if (s->rule)
            stack.push_back(s->rule->guard->next);
        else
            out.push_back(s->term);
    }
    return out;
}

std::vector<std::uint64_t>
Sequitur::ruleLengths() const
{
    std::vector<std::uint64_t> len(rules_.size(), 0);
    // Dependency-ordered evaluation via iterative post-order DFS.
    std::vector<std::uint8_t> state(rules_.size(), 0); // 0 new 1 open 2 done
    std::vector<std::uint32_t> stack;
    for (const Rule *r : rules_) {
        if (!r->live || state[r->id] == 2)
            continue;
        stack.push_back(r->id);
        while (!stack.empty()) {
            const std::uint32_t id = stack.back();
            if (state[id] == 0) {
                state[id] = 1;
                for (Symbol *s = rules_[id]->guard->next; !s->guard;
                     s = s->next) {
                    if (s->rule && state[s->rule->id] == 0)
                        stack.push_back(s->rule->id);
                }
            } else {
                stack.pop_back();
                if (state[id] == 1) {
                    state[id] = 2;
                    std::uint64_t n = 0;
                    for (Symbol *s = rules_[id]->guard->next; !s->guard;
                         s = s->next)
                        n += s->rule ? len[s->rule->id] : 1;
                    len[id] = n;
                }
            }
        }
    }
    return len;
}

std::size_t
Sequitur::checkInvariants(bool allow_utility_slack) const
{
    // Digram key -> (rule id, body index) of the last occurrence seen.
    // Duplicate digrams are allowed only when the occurrences overlap
    // (adjacent positions of a same-symbol run, e.g. "aaa"), the known
    // exception the canonical algorithm leaves in place.
    struct Occ
    {
        std::uint32_t rule;
        std::size_t idx;
    };
    std::unordered_map<DigramKey, Occ, DigramHash> seen;
    std::vector<std::uint32_t> refCount(rules_.size(), 0);
    std::size_t live = 0;

    for (const Rule *r : rules_) {
        if (!r->live)
            continue;
        ++live;
        std::size_t body_len = 0;
        std::size_t idx = 0;
        for (Symbol *s = r->guard->next; !s->guard; s = s->next, ++idx) {
            ++body_len;
            if (s->rule) {
                panicIf(!s->rule->live, "invariant: ref to dead rule");
                refCount[s->rule->id]++;
            }
            if (!s->next->guard) {
                const DigramKey k = keyAt(s);
                auto [it, fresh] = seen.try_emplace(k, Occ{r->id, idx});
                if (!fresh) {
                    const bool overlap = it->second.rule == r->id &&
                                         it->second.idx + 1 == idx &&
                                         k.a == k.b;
                    panicIf(!overlap, "invariant: duplicate digram");
                    it->second = Occ{r->id, idx};
                }
            }
            panicIf(s->next->prev != s, "invariant: broken list");
        }
        panicIf(r->id != kRootRule && body_len < 2,
                "invariant: rule body shorter than 2");
    }

    for (const Rule *r : rules_) {
        if (!r->live || r->id == kRootRule)
            continue;
        panicIf(refCount[r->id] != r->refs,
                "invariant: refcount bookkeeping mismatch");
        if (!allow_utility_slack)
            panicIf(r->refs < 2, "invariant: under-used rule");
        else
            panicIf(r->refs < 1, "invariant: orphan rule");
    }
    return live;
}

} // namespace tstream
