#include "core/module_profile.hh"

#include <cstdio>

#include "util/logging.hh"

namespace tstream
{

ModuleProfile
profileModules(const MissTrace &trace, const StreamStats &stats,
               const FunctionRegistry &reg)
{
    panicIf(stats.labels.size() != trace.misses.size(),
            "profileModules: stats do not match trace");
    ModuleProfile p;
    p.total = trace.misses.size();
    for (std::size_t i = 0; i < trace.misses.size(); ++i) {
        const auto cat =
            static_cast<std::size_t>(reg.category(trace.misses[i].fn));
        p.misses[cat]++;
        if (stats.labels[i] != RepLabel::NonRepetitive)
            p.inStream[cat]++;
    }
    return p;
}

std::string
renderModuleTable(const ModuleProfile &p, bool web_rows, bool db_rows)
{
    std::string out;
    char line[160];

    auto emit = [&](Category c) {
        std::snprintf(line, sizeof(line), "  %-38s %7.1f%% %10.1f%%\n",
                      std::string(categoryName(c)).c_str(),
                      p.pctMisses(c), p.pctInStreams(c));
        out += line;
    };

    std::snprintf(line, sizeof(line), "  %-38s %8s %11s\n", "Category",
                  "% misses", "% in streams");
    out += line;

    emit(Category::Uncategorized);
    out += "  -- Cross-application categories --\n";
    emit(Category::BulkMemoryCopies);
    emit(Category::SystemCalls);
    emit(Category::KernelScheduler);
    emit(Category::KernelMmuTrap);
    emit(Category::KernelSync);
    emit(Category::KernelOther);
    if (web_rows) {
        out += "  -- Web-specific categories --\n";
        emit(Category::KernelStreams);
        emit(Category::KernelIpAssembly);
        emit(Category::WebWorker);
        emit(Category::CgiPerlInput);
        emit(Category::CgiPerlEngine);
        emit(Category::CgiPerlOther);
    }
    if (db_rows) {
        out += "  -- DB2-specific categories --\n";
        emit(Category::KernelBlockDev);
        emit(Category::DbIndexPageTuple);
        emit(Category::DbRequestControl);
        emit(Category::DbIpc);
        emit(Category::DbRuntimeInterp);
        emit(Category::DbOther);
    }
    std::snprintf(line, sizeof(line), "  %-38s %8s %10.1f%%\n",
                  "Overall % in streams", "", p.overallPctInStreams());
    out += line;
    return out;
}

} // namespace tstream
