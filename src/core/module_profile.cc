#include "core/module_profile.hh"

#include <cstdio>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace tstream
{

ModuleProfile
profileModules(const MissTrace &trace, const StreamStats &stats,
               const FunctionRegistry &reg)
{
    panicIf(stats.labels.size() != trace.misses.size(),
            "profileModules: stats do not match trace");
    telemetry::Span span("analysis.modules", "analysis");
    ModuleProfile p;
    p.total = trace.misses.size();
    for (std::size_t i = 0; i < trace.misses.size(); ++i) {
        const auto cat =
            static_cast<std::size_t>(reg.category(trace.misses[i].fn));
        p.misses[cat]++;
        if (stats.labels[i] != RepLabel::NonRepetitive)
            p.inStream[cat]++;
    }
    return p;
}

std::vector<Category>
moduleTableCategories(bool web_rows, bool db_rows, bool scenario_rows)
{
    std::vector<Category> cats = {
        Category::Uncategorized,    Category::BulkMemoryCopies,
        Category::SystemCalls,      Category::KernelScheduler,
        Category::KernelMmuTrap,    Category::KernelSync,
        Category::KernelOther,
    };
    if (web_rows) {
        for (Category c :
             {Category::KernelStreams, Category::KernelIpAssembly,
              Category::WebWorker, Category::CgiPerlInput,
              Category::CgiPerlEngine, Category::CgiPerlOther})
            cats.push_back(c);
    }
    if (db_rows) {
        for (Category c :
             {Category::KernelBlockDev, Category::DbIndexPageTuple,
              Category::DbRequestControl, Category::DbIpc,
              Category::DbRuntimeInterp, Category::DbOther})
            cats.push_back(c);
    }
    if (scenario_rows) {
        for (Category c :
             {Category::KvHashIndex, Category::KvSlabLru,
              Category::MqTopicLog, Category::MqCursorIndex})
            cats.push_back(c);
    }
    return cats;
}

std::string
renderModuleRow(const ModuleProfile &p, Category c)
{
    char line[160];
    std::snprintf(line, sizeof(line), "  %-38s %7.1f%% %10.1f%%",
                  std::string(categoryName(c)).c_str(), p.pctMisses(c),
                  p.pctInStreams(c));
    return line;
}

std::string
renderModuleOverallRow(const ModuleProfile &p)
{
    char line[160];
    std::snprintf(line, sizeof(line), "  %-38s %8s %10.1f%%",
                  "Overall % in streams", "", p.overallPctInStreams());
    return line;
}

std::string
renderModuleTable(const ModuleProfile &p, bool web_rows, bool db_rows,
                  bool scenario_rows)
{
    std::string out;
    char line[160];

    std::snprintf(line, sizeof(line), "  %-38s %8s %11s\n", "Category",
                  "% misses", "% in streams");
    out += line;

    for (Category c :
         moduleTableCategories(web_rows, db_rows, scenario_rows)) {
        if (c == Category::BulkMemoryCopies)
            out += "  -- Cross-application categories --\n";
        else if (c == Category::KernelStreams)
            out += "  -- Web-specific categories --\n";
        else if (c == Category::KernelBlockDev)
            out += "  -- DB2-specific categories --\n";
        else if (c == Category::KvHashIndex)
            out += "  -- Scenario categories (KV / MQ) --\n";
        out += renderModuleRow(p, c) + "\n";
    }
    out += renderModuleOverallRow(p) + "\n";
    return out;
}

} // namespace tstream
