/**
 * @file
 * Constant-stride predictability detection (paper Section 4.3).
 *
 * A miss is "strided" if a conventional multi-tracker stride predictor
 * observing the same per-CPU miss sequence would have predicted its
 * address: some tracker has seen at least two consecutive equal deltas
 * ending at this miss. This is the standard stream-buffer criterion and
 * is orthogonal to SEQUITUR repetitiveness, as in Figure 3.
 */

#ifndef TSTREAM_CORE_STRIDE_HH
#define TSTREAM_CORE_STRIDE_HH

#include <cstdint>
#include <vector>

#include "mem/address.hh"
#include "trace/record.hh"

namespace tstream
{

/** Configuration of the stride detector. */
struct StrideConfig
{
    /** Trackers per CPU. */
    unsigned trackers = 16;
    /**
     * A new miss matches a tracker if within this many blocks. Kept
     * tight so unrelated buffers a few hundred bytes apart do not
     * alias into one tracker and fabricate strides.
     */
    std::int64_t window = 12;
};

/**
 * Per-CPU table of (last block, stride, confidence) trackers.
 *
 * Feed misses in per-CPU sequence order; observe() returns whether the
 * miss was stride-predicted.
 */
class StrideDetector
{
  public:
    explicit StrideDetector(const StrideConfig &cfg = {})
        : cfg_(cfg)
    {
    }

    /**
     * Observe the next miss of @p cpu to @p blk.
     * @return true if a tracker predicted this block.
     */
    bool observe(CpuId cpu, BlockId blk);

    /**
     * Convenience: label every miss of @p trace (processed in per-CPU
     * program order).
     * @return flags aligned with trace.misses.
     */
    static std::vector<bool> labelTrace(const MissTrace &trace,
                                        const StrideConfig &cfg = {});

  private:
    struct Tracker
    {
        std::int64_t last = 0;
        std::int64_t stride = 0;
        int conf = -1; ///< -1 empty, 0 one delta seen, >=1 predicting
        std::uint64_t lru = 0;
    };

    StrideConfig cfg_;
    std::vector<std::vector<Tracker>> tables_; ///< per cpu
    std::uint64_t tick_ = 0;
};

} // namespace tstream

#endif // TSTREAM_CORE_STRIDE_HH
