#include "util/retry.hh"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.hh"

namespace tstream
{

unsigned
RetryState::beginAttempt(std::int64_t nowMs)
{
    // Tolerate a begin while Running only in the degenerate "caller
    // restarts without reporting" sense: treat it as a fresh attempt.
    if (phase_ == Phase::Done || phase_ == Phase::Failed)
        return attempts_;
    phase_ = Phase::Running;
    attemptStartMs_ = nowMs;
    telemetry::count("retry.attempts");
    if (attempts_ > 0)
        telemetry::count("retry.retries");
    return ++attempts_;
}

bool
RetryState::attemptTimedOut(std::int64_t nowMs) const
{
    return phase_ == Phase::Running && policy_.timeoutMs > 0 &&
           nowMs - attemptStartMs_ > policy_.timeoutMs;
}

RetryState::Decision
RetryState::onSuccess(std::int64_t)
{
    if (phase_ != Phase::Running)
        return Decision{}; // late completion of an abandoned attempt
    phase_ = Phase::Done;
    telemetry::count("retry.successes");
    return Decision{Decision::Kind::Done, 0};
}

RetryState::Decision
RetryState::fail(std::string cause, std::int64_t nowMs)
{
    cause_ = std::move(cause);
    telemetry::count("retry.failures");
    if (attempts_ >= policy_.maxAttempts) {
        phase_ = Phase::Failed;
        telemetry::count("retry.exhausted");
        return Decision{Decision::Kind::Failed, 0};
    }
    phase_ = Phase::Backoff;
    return Decision{Decision::Kind::RetryAt,
                    nowMs + backoffDelayMs(attempts_)};
}

RetryState::Decision
RetryState::onFailure(std::string cause, std::int64_t nowMs)
{
    if (phase_ != Phase::Running)
        return Decision{};
    return fail(std::move(cause), nowMs);
}

RetryState::Decision
RetryState::onTimeout(std::int64_t nowMs)
{
    if (!attemptTimedOut(nowMs))
        return Decision{};
    telemetry::count("retry.timeouts");
    return fail("timeout after " + std::to_string(policy_.timeoutMs) +
                    "ms",
                nowMs);
}

std::int64_t
RetryState::backoffDelayMs(unsigned attempt) const
{
    if (attempt == 0 || policy_.backoffBaseMs <= 0)
        return 0;
    double delay = static_cast<double>(policy_.backoffBaseMs);
    for (unsigned i = 1; i < attempt; ++i)
        delay *= policy_.backoffFactor;
    const double cap = static_cast<double>(policy_.backoffMaxMs);
    return static_cast<std::int64_t>(std::min(delay, cap));
}

} // namespace tstream
