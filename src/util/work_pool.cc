#include "util/work_pool.hh"

#include <cstdlib>

#include "obs/telemetry.hh"

namespace tstream
{

unsigned
WorkPool::defaultJobs()
{
    if (const char *env = std::getenv("TSTREAM_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

WorkPool::WorkPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    queues_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkPool::submit(std::function<void()> task)
{
    const std::size_t idx =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lk(queues_[idx]->m);
        queues_[idx]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        ++queued_;
        ++pending_;
        telemetry::count("pool.submitted");
        telemetry::gaugeSet("pool.queue_depth",
                            static_cast<std::int64_t>(queued_));
    }
    cvWork_.notify_one();
}

void
WorkPool::wait()
{
    std::unique_lock<std::mutex> lk(m_);
    cvDone_.wait(lk, [this] { return pending_ == 0; });
}

bool
WorkPool::pop(Queue &q, bool back, std::function<void()> &out)
{
    {
        std::lock_guard<std::mutex> lk(q.m);
        if (q.tasks.empty())
            return false;
        if (back) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
        } else {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
        }
    }
    std::lock_guard<std::mutex> lk(m_);
    --queued_;
    telemetry::gaugeSet("pool.queue_depth",
                        static_cast<std::int64_t>(queued_));
    return true;
}

bool
WorkPool::take(unsigned self, std::function<void()> &out)
{
    // Own queue first (LIFO for locality) ...
    if (pop(*queues_[self], /*back=*/true, out))
        return true;
    // ... then steal the oldest task from a neighbour.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        const std::size_t victim = (self + i) % queues_.size();
        if (pop(*queues_[victim], /*back=*/false, out)) {
            telemetry::count("pool.steals");
            return true;
        }
    }
    return false;
}

void
WorkPool::workerLoop(unsigned self)
{
    for (;;) {
        std::function<void()> task;
        if (take(self, task)) {
            task();
            std::lock_guard<std::mutex> lk(m_);
            if (--pending_ == 0)
                cvDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(m_);
        cvWork_.wait(lk, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

} // namespace tstream
