/**
 * @file
 * Bounded work-stealing thread pool for the experiment driver.
 *
 * A fixed set of workers (never more than the configured job count
 * run concurrently) each own a deque: submissions are distributed
 * round-robin, a worker pops its own deque LIFO for locality, and an
 * idle worker steals FIFO from its neighbours so one long queue
 * cannot strand work while other threads sleep. This replaces the
 * old bench harness's unbounded one-std::async-per-workload model.
 */

#ifndef TSTREAM_UTIL_WORK_POOL_HH
#define TSTREAM_UTIL_WORK_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tstream
{

class WorkPool
{
  public:
    /** @param jobs Worker count; 0 means defaultJobs(). */
    explicit WorkPool(unsigned jobs = 0);

    /** Drains remaining tasks, then joins all workers. */
    ~WorkPool();

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /** Enqueue a task. Thread-safe. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned
    jobs() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Job count when the caller does not choose one: TSTREAM_JOBS if
     * set to a positive integer, else the hardware concurrency, and
     * always at least 1.
     */
    static unsigned defaultJobs();

  private:
    struct Queue
    {
        std::mutex m;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    bool take(unsigned self, std::function<void()> &out);
    bool pop(Queue &q, bool back, std::function<void()> &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::size_t queued_ = 0;  ///< submitted, not yet started
    std::size_t pending_ = 0; ///< submitted, not yet finished
    bool stop_ = false;
    std::atomic<std::size_t> nextQueue_{0};
};

} // namespace tstream

#endif // TSTREAM_UTIL_WORK_POOL_HH
