#include "util/claim_file.hh"

#include <errno.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace tstream
{

std::int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

ClaimDir::ClaimDir(Options opts)
    : dir_(std::move(opts.dir)), owner_(std::move(opts.owner)),
      ttlMs_(opts.ttlMs), now_(std::move(opts.now))
{
    if (owner_.empty())
        owner_ = defaultOwner();
    if (!now_)
        now_ = wallClockMs;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
}

std::string
ClaimDir::defaultOwner()
{
    char host[256] = "unknown-host";
    ::gethostname(host, sizeof host - 1);
    host[sizeof host - 1] = '\0';
    char buf[384];
    std::snprintf(buf, sizeof buf, "%s-%ld-%lld", host,
                  static_cast<long>(::getpid()),
                  static_cast<long long>(wallClockMs()));
    return buf;
}

std::string
ClaimDir::sanitizeKey(std::string_view key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_' || c == '.';
        out += safe ? c : '-';
    }
    return out;
}

std::string
ClaimDir::claimPath(const std::string &key) const
{
    return dir_ + "/" + key + ".claim";
}

std::string
ClaimDir::donePath(const std::string &key) const
{
    return dir_ + "/" + key + ".done";
}

std::string
ClaimDir::tempPath(const std::string &key)
{
    // Unique per (owner, thread, call): concurrent threads share one
    // ClaimDir, so the owner id alone is not enough.
    const std::uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) &
        0xffffff;
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".tmp.%llx.%llx",
                  static_cast<unsigned long long>(tid),
                  static_cast<unsigned long long>(seq));
    return dir_ + "/" + key + suffix;
}

bool
ClaimDir::writeClaimFile(const std::string &tmp, std::int64_t bornMs,
                         std::int64_t beatMs) const
{
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "owner=%s\nborn=%lld\nbeat=%lld\npid=%ld\n",
                 owner_.c_str(), static_cast<long long>(bornMs),
                 static_cast<long long>(beatMs),
                 static_cast<long>(::getpid()));
    const bool ok = std::fflush(f) == 0;
    std::fclose(f);
    return ok;
}

bool
ClaimDir::readClaim(const std::string &path, ClaimInfo &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out = ClaimInfo{};
    char line[512];
    bool sawOwner = false, sawBeat = false;
    while (std::fgets(line, sizeof line, f)) {
        char *nl = std::strchr(line, '\n');
        if (nl)
            *nl = '\0';
        if (std::strncmp(line, "owner=", 6) == 0) {
            out.owner = line + 6;
            sawOwner = true;
        } else if (std::strncmp(line, "born=", 5) == 0) {
            out.bornMs = std::strtoll(line + 5, nullptr, 10);
        } else if (std::strncmp(line, "beat=", 5) == 0) {
            out.beatMs = std::strtoll(line + 5, nullptr, 10);
            sawBeat = true;
        } else if (std::strncmp(line, "pid=", 4) == 0) {
            out.pid = std::strtol(line + 4, nullptr, 10);
        }
    }
    std::fclose(f);
    return sawOwner && sawBeat;
}

ClaimDir::Outcome
ClaimDir::tryClaim(const std::string &key, std::string *why)
{
    const Outcome out = tryClaimImpl(key, why);
    switch (out) {
    case Outcome::Claimed:
        telemetry::count("claim.wins");
        break;
    case Outcome::Held:
        telemetry::count("claim.held");
        break;
    case Outcome::Done:
        telemetry::count("claim.done_seen");
        break;
    case Outcome::Error:
        telemetry::count("claim.errors");
        break;
    }
    return out;
}

ClaimDir::Outcome
ClaimDir::tryClaimImpl(const std::string &key, std::string *why)
{
    const std::string claim = claimPath(key);
    if (done(key))
        return Outcome::Done;

    // One claim attempt: write a fully formed temp file, then link it
    // onto the claim name — link(2) refuses an existing target, so of
    // N racers exactly one succeeds.
    auto attempt = [&]() -> Outcome {
        const std::int64_t now = now_();
        const std::string tmp = tempPath(key);
        if (!writeClaimFile(tmp, now, now)) {
            if (why)
                *why = "cannot write " + tmp + ": " +
                       std::strerror(errno);
            return Outcome::Error;
        }
        const int rc = ::link(tmp.c_str(), claim.c_str());
        const int linkErrno = errno;
        ::unlink(tmp.c_str());
        if (rc == 0) {
            // Re-check the done marker AFTER winning: markDone()
            // publishes the marker before unlinking the claim, so a
            // win against a name another worker just released-as-done
            // always sees the marker here — without this, a racer
            // whose pre-check ran before the marker appeared would
            // re-execute a finished cell.
            if (done(key)) {
                ::unlink(claim.c_str());
                telemetry::count("claim.done_recheck_races");
                return Outcome::Done;
            }
            return Outcome::Claimed;
        }
        if (linkErrno == EEXIST)
            return Outcome::Held;
        if (why)
            *why = "cannot link " + claim + ": " +
                   std::strerror(linkErrno);
        return Outcome::Error;
    };

    Outcome out = attempt();
    if (out != Outcome::Held)
        return out;

    // Someone holds it. Stale (no heartbeat within the TTL)? Steal it
    // exactly-once: rename the stale file to a worker-unique tomb —
    // only one of N simultaneous stealers finds the source present —
    // then re-run the normal claim. A fresh claim racing in between
    // is fine: our link attempt just loses again.
    ClaimInfo info;
    if (!readClaim(claim, info))
        return Outcome::Held; // vanished (owner finished/released)
    if (info.owner == owner_)
        return Outcome::Held; // our own live claim (double tryClaim)
    const std::int64_t beatAge = now_() - info.beatMs;
    if (beatAge <= ttlMs_)
        return Outcome::Held;

    const std::string tomb = tempPath(key) + ".tomb";
    if (::rename(claim.c_str(), tomb.c_str()) != 0)
        return Outcome::Held; // another stealer won
    ::unlink(tomb.c_str());
    telemetry::count("claim.steals");
    logf(LogLevel::Info,
         "claim %s: stole stale claim from %s (beat age %lldms > "
         "ttl %lldms)",
         key.c_str(), info.owner.c_str(),
         static_cast<long long>(beatAge),
         static_cast<long long>(ttlMs_));
    out = attempt();
    return out;
}

bool
ClaimDir::heartbeat(const std::string &key)
{
    const std::string claim = claimPath(key);
    ClaimInfo info;
    if (!readClaim(claim, info)) {
        telemetry::count("claim.heartbeats_lost");
        return false; // released, or done and unlinked
    }
    if (info.owner != owner_) {
        // The documented resurrection hole, caught in the act: this
        // worker held the claim, stalled past the TTL, and someone
        // stole it — or our own earlier heartbeat resurrected a claim
        // the new owner had stolen and they have since re-beaten it.
        // Either way the cell is now (or was) running twice; merging
        // stays correct because duplicate cells must be bit-identical.
        telemetry::count("claim.resurrections");
        logf(LogLevel::Warn,
             "claim %s: owner changed to %s under us (our beat was "
             "%lldms ago) — stale-owner resurrection race; this cell "
             "may execute twice",
             key.c_str(), info.owner.c_str(),
             static_cast<long long>(now_() - info.beatMs));
        return false;
    }
    const std::string tmp = tempPath(key);
    if (!writeClaimFile(tmp, info.bornMs, now_()))
        return false;
    if (::rename(tmp.c_str(), claim.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    telemetry::count("claim.heartbeats");
    return true;
}

bool
ClaimDir::markDone(const std::string &key, const std::string &status)
{
    const std::string dest = donePath(key);
    DoneInfo prev;
    if (readDone(dest, prev) && prev.owner != owner_) {
        // Downstream symptom of the resurrection hole: two owners
        // finished the same cell. Harmless for results (merge accepts
        // only bit-identical duplicates) but worth counting — it is
        // pure wasted work.
        telemetry::count("claim.double_done");
        logf(LogLevel::Warn,
             "claim %s: done marker by %s already present when %s "
             "finished — cell executed twice",
             key.c_str(), prev.owner.c_str(), owner_.c_str());
    }
    const std::string tmp = tempPath(key);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "owner=%s\nstatus=%s\nat=%lld\n", owner_.c_str(),
                 status.c_str(),
                 static_cast<long long>(now_()));
    std::fclose(f);
    if (::rename(tmp.c_str(), dest.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    ::unlink(claimPath(key).c_str());
    telemetry::count("claim.done_marks");
    return true;
}

bool
ClaimDir::readDone(const std::string &path, DoneInfo &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out = DoneInfo{};
    char line[512];
    bool sawStatus = false;
    while (std::fgets(line, sizeof line, f)) {
        char *nl = std::strchr(line, '\n');
        if (nl)
            *nl = '\0';
        if (std::strncmp(line, "owner=", 6) == 0) {
            out.owner = line + 6;
        } else if (std::strncmp(line, "status=", 7) == 0) {
            out.status = line + 7;
            sawStatus = true;
        } else if (std::strncmp(line, "at=", 3) == 0) {
            out.atMs = std::strtoll(line + 3, nullptr, 10);
        }
    }
    std::fclose(f);
    return sawStatus;
}

bool
ClaimDir::done(const std::string &key, std::string *status) const
{
    std::FILE *f = std::fopen(donePath(key).c_str(), "rb");
    if (!f)
        return false;
    if (status) {
        status->clear();
        char line[512];
        while (std::fgets(line, sizeof line, f)) {
            char *nl = std::strchr(line, '\n');
            if (nl)
                *nl = '\0';
            if (std::strncmp(line, "status=", 7) == 0)
                *status = line + 7;
        }
    }
    std::fclose(f);
    return true;
}

bool
ClaimDir::release(const std::string &key)
{
    const std::string claim = claimPath(key);
    ClaimInfo info;
    if (!readClaim(claim, info) || info.owner != owner_)
        return false;
    return ::unlink(claim.c_str()) == 0;
}

} // namespace tstream
