/**
 * @file
 * Minimal dependency-free JSON document model: an ordered-object
 * Value type with a writer and a recursive-descent parser.
 *
 * Built for the machine-readable bench reports (sim/bench_report.hh):
 * object members preserve insertion order so emitted documents are
 * deterministic and diffable, integers survive as 64-bit exactly, and
 * doubles are written with the shortest representation that parses
 * back to the identical bit pattern — a report that round-trips
 * through dump()/parse() compares equal value-for-value.
 */

#ifndef TSTREAM_UTIL_JSON_HH
#define TSTREAM_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tstream::json
{

class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Int), int_(v) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v))
    {
    }
    Value(double v) : kind_(Kind::Double), dbl_(v) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(std::string_view s) : kind_(Kind::String), str_(s) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value
    array()
    {
        Value v;
        v.kind_ = Kind::Array;
        return v;
    }

    static Value
    object()
    {
        Value v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return kind_ == Kind::Bool && bool_; }

    std::int64_t
    asInt() const
    {
        if (kind_ == Kind::Int)
            return int_;
        if (kind_ == Kind::Double)
            return static_cast<std::int64_t>(dbl_);
        return 0;
    }

    std::uint64_t
    asUint() const
    {
        return static_cast<std::uint64_t>(asInt());
    }

    double
    asDouble() const
    {
        if (kind_ == Kind::Double)
            return dbl_;
        if (kind_ == Kind::Int)
            return static_cast<double>(int_);
        return 0.0;
    }

    const std::string &asString() const { return str_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Value> &items() const { return items_; }

    /** Append to an array (converts a Null value to an array). */
    void
    push(Value v)
    {
        kind_ = Kind::Array;
        items_.push_back(std::move(v));
    }

    std::size_t
    size() const
    {
        return kind_ == Kind::Object ? members_.size() : items_.size();
    }

    /** Ordered object members (empty unless isObject()). */
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return members_;
    }

    /**
     * Insert-or-fetch an object member (converts a Null value to an
     * object); insertion order is preserved on output.
     */
    Value &operator[](std::string_view key);

    /** Member lookup; nullptr when absent or not an object. */
    const Value *find(std::string_view key) const;

    /** Serialize; indent 0 = compact, otherwise pretty with @p indent
     *  spaces per level. */
    std::string dump(int indent = 2) const;

    /**
     * Parse @p text into @p out. On failure returns false and sets
     * @p err to a message with the byte offset. Trailing
     * non-whitespace after the document is an error.
     */
    static bool parse(std::string_view text, Value &out,
                      std::string &err);

    bool operator==(const Value &rhs) const;
    bool operator!=(const Value &rhs) const { return !(*this == rhs); }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/** Read a whole file and parse it. */
bool parseFile(const std::string &path, Value &out, std::string &err);

/** Write @p v to @p path (pretty, trailing newline). */
bool writeFile(const Value &v, const std::string &path,
               std::string &err);

} // namespace tstream::json

#endif // TSTREAM_UTIL_JSON_HH
