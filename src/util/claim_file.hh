/**
 * @file
 * Atomic claim files — the work-distribution primitive behind the
 * fleet experiment fabric (sim/driver.hh, `tstream-bench run
 * --fleet`).
 *
 * A *claim directory* holds one small file per unit of work (a grid
 * cell). Heterogeneous workers — threads inside one process, and
 * processes on any machine sharing the directory — race to claim
 * units; the protocol guarantees every unit is claimed by exactly one
 * live owner:
 *
 *  - **Claim** = `link(2)` of a fully written temp file onto
 *    `<key>.claim`. POSIX `link` fails with EEXIST when the target
 *    exists, so of N racers exactly one wins; the losers see Held.
 *    (This is the classic lock-file protocol; `rename(2)` is NOT used
 *    to create claims because rename silently replaces an existing
 *    target.)
 *  - **Heartbeat** = the owner periodically rewrites its claim file
 *    (temp + rename, atomic replace) with a fresh `beat` timestamp.
 *  - **Steal** = when a claim's `beat` is older than the TTL, any
 *    worker may reclaim it. The steal is made exactly-once by first
 *    renaming the stale claim file to a worker-unique tomb name —
 *    `rename` with a vanished source fails with ENOENT, so of N
 *    simultaneous stealers exactly one wins — and only the winner
 *    then re-runs the normal link-claim.
 *  - **Done** = the owner publishes completion by writing
 *    `<key>.done` (temp + rename) carrying an `ok` or
 *    `failed:<cause>` status; other workers drop the unit instead of
 *    waiting on the claim. The marker is published strictly BEFORE
 *    the claim file is unlinked, and a claim win re-checks the marker
 *    after linking — a racer that wins the name of a
 *    just-released-as-done unit therefore always observes Done
 *    instead of re-executing the cell.
 *
 * Two assumptions are load-bearing and covered by tests
 * (tests/claim_file_test.cc): `link` refuses an existing target
 * atomically, and `rename` of one source by many racers succeeds for
 * exactly one. Both hold on local POSIX filesystems (ext4, tmpfs,
 * xfs, apfs) — the CI filesystem is exercised by the same tests. On
 * NFS, `link` is atomic but close-to-open caching can delay another
 * client's view of `done` markers; the protocol stays correct (a
 * stale view only causes a redundant claim attempt, which `link`
 * rejects).
 *
 * The one unavoidable hole: an owner that stalls longer than the TTL
 * and then heartbeats can resurrect a claim another worker already
 * stole, so one cell may execute twice. The experiment fabric is safe
 * against that by construction — cells are deterministic and report
 * merging (sim/bench_report.hh) accepts duplicate cells only when
 * they are bit-identical — so the TTL bounds wasted work, not
 * correctness. The hole is no longer silent, though: heartbeat()
 * detecting a foreign owner bumps the `claim.resurrections` telemetry
 * counter and WARN-logs the collision, and markDone() over an
 * existing marker (the downstream symptom — the cell really did run
 * twice) bumps `claim.double_done` (docs/OBSERVABILITY.md).
 *
 * The clock is injectable so staleness/steal logic is unit-testable
 * without real sleeps.
 */

#ifndef TSTREAM_UTIL_CLAIM_FILE_HH
#define TSTREAM_UTIL_CLAIM_FILE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace tstream
{

/** Parsed contents of a claim file. */
struct ClaimInfo
{
    std::string owner;
    std::int64_t bornMs = 0; ///< claim creation (owner's clock)
    std::int64_t beatMs = 0; ///< last heartbeat (owner's clock)
    long pid = 0;
};

/** Parsed contents of a done marker. */
struct DoneInfo
{
    std::string owner;
    std::string status;     ///< "ok" or "failed:<cause>"
    std::int64_t atMs = 0;  ///< completion time (owner's clock);
                            ///< 0 in markers from older writers
};

/** Milliseconds on the system wall clock (the default claim clock). */
std::int64_t wallClockMs();

class ClaimDir
{
  public:
    struct Options
    {
        std::string dir;   ///< claim directory; created if missing
        std::string owner; ///< unique owner id; "" = defaultOwner()
        /** A claim whose last beat is older than this is stale and
         *  may be stolen. */
        std::int64_t ttlMs = 30'000;
        /** Injectable millisecond clock (tests); null = wallClockMs. */
        std::function<std::int64_t()> now;
    };

    /** Outcome of one claim attempt. */
    enum class Outcome
    {
        Claimed, ///< this worker now owns the unit — run it
        Held,    ///< a live owner holds it — skip, maybe revisit
        Done,    ///< already completed (ok or failed) — drop it
        Error,   ///< filesystem error (claim dir unusable)
    };

    explicit ClaimDir(Options opts);

    /**
     * Try to claim @p key. Steals the claim first when it is stale
     * (heartbeat older than ttlMs). On Error @p why (if non-null)
     * describes the failure.
     */
    Outcome tryClaim(const std::string &key, std::string *why = nullptr);

    /**
     * Refresh the beat timestamp of a claim this worker owns.
     * Returns false when the claim no longer exists or is owned by
     * someone else (it was stolen) — the caller keeps running (see
     * the double-execution note above) but can log the loss.
     */
    bool heartbeat(const std::string &key);

    /**
     * Publish completion of @p key with @p status ("ok" or
     * "failed:<cause>") and remove the claim file. Atomic: a reader
     * either sees no done marker or the full one.
     */
    bool markDone(const std::string &key, const std::string &status);

    /** True when a done marker exists; @p status receives its body. */
    bool done(const std::string &key,
              std::string *status = nullptr) const;

    /** Drop this worker's claim without a done marker (the unit
     *  becomes immediately claimable by anyone). */
    bool release(const std::string &key);

    const std::string &
    owner() const
    {
        return owner_;
    }

    const std::string &
    dir() const
    {
        return dir_;
    }

    /** "<hostname>-<pid>-<boot ms>": unique across the fleet for any
     *  realistic pid-reuse window. */
    static std::string defaultOwner();

    /** Replace filesystem-hostile characters ('/', spaces, ...) so a
     *  cell id can serve as a claim key. */
    static std::string sanitizeKey(std::string_view key);

    /** Parse a claim file; false when absent or malformed. */
    static bool readClaim(const std::string &path, ClaimInfo &out);

    /** Parse a done marker; false when absent or malformed. Used by
     *  `tstream-bench status` to render completions with timestamps. */
    static bool readDone(const std::string &path, DoneInfo &out);

  private:
    Outcome tryClaimImpl(const std::string &key, std::string *why);
    std::string claimPath(const std::string &key) const;
    std::string donePath(const std::string &key) const;
    std::string tempPath(const std::string &key);
    bool writeClaimFile(const std::string &tmp, std::int64_t bornMs,
                        std::int64_t beatMs) const;

    std::string dir_;
    std::string owner_;
    std::int64_t ttlMs_;
    std::function<std::int64_t()> now_;
    std::atomic<std::uint64_t> seq_{0}; ///< temp-name uniquifier
};

} // namespace tstream

#endif // TSTREAM_UTIL_CLAIM_FILE_HH
