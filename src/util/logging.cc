#include "util/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdarg>

namespace tstream
{

namespace
{

std::atomic<int> &
thresholdCell()
{
    static std::atomic<int> cell{static_cast<int>([] {
        if (const char *e = std::getenv("TSTREAM_LOG"); e && *e)
            return logLevelFromName(e);
        return LogLevel::Info;
    }())};
    return cell;
}

char
levelChar(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return 'D';
    case LogLevel::Info:
        return 'I';
    case LogLevel::Warn:
        return 'W';
    case LogLevel::Error:
        return 'E';
    case LogLevel::Off:
        break;
    }
    return '?';
}

std::int64_t
nowWallMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

LogLevel
logLevelFromName(std::string_view name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "off" || name == "none")
        return LogLevel::Off;
    return LogLevel::Info;
}

LogLevel
logThreshold()
{
    return static_cast<LogLevel>(
        thresholdCell().load(std::memory_order_relaxed));
}

void
setLogThreshold(LogLevel level)
{
    thresholdCell().store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

void
logRefreshFromEnv()
{
    const char *e = std::getenv("TSTREAM_LOG");
    setLogThreshold(e && *e ? logLevelFromName(e) : LogLevel::Info);
}

int
logThreadId()
{
    static std::atomic<int> next{0};
    thread_local const int id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::string
formatLogLine(LogLevel level, std::string_view msg, int tid,
              std::int64_t wallMs)
{
    // Time-of-day from the raw epoch milliseconds (UTC): pure
    // arithmetic, no locale or TZ dependence.
    std::int64_t ms = wallMs % 86'400'000;
    if (ms < 0)
        ms += 86'400'000;
    const int h = static_cast<int>(ms / 3'600'000);
    const int m = static_cast<int>(ms / 60'000 % 60);
    const int s = static_cast<int>(ms / 1'000 % 60);
    const int frac = static_cast<int>(ms % 1'000);
    char head[48];
    std::snprintf(head, sizeof head, "%02d:%02d:%02d.%03d %c t%02d ",
                  h, m, s, frac, levelChar(level), tid);
    std::string out(head);
    out.append(msg.data(), msg.size());
    return out;
}

void
logMessage(LogLevel level, std::string_view msg)
{
    const std::string line =
        formatLogLine(level, msg, logThreadId(), nowWallMs());
    // One fprintf per line so concurrent threads interleave at line
    // granularity.
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
logf(LogLevel level, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    logMessage(level, buf);
}

} // namespace tstream
