#include "util/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tstream::json
{

Value &
Value::operator[](std::string_view key)
{
    kind_ = Kind::Object;
    for (auto &[k, v] : members_)
        if (k == key)
            return v;
    members_.emplace_back(std::string(key), Value());
    return members_.back().second;
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

bool
Value::operator==(const Value &rhs) const
{
    if (kind_ != rhs.kind_) {
        // Int 3 and Double 3.0 compare equal so that a document that
        // was written compactly still matches its source.
        if (isNumber() && rhs.isNumber())
            return asDouble() == rhs.asDouble();
        return false;
    }
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == rhs.bool_;
      case Kind::Int: return int_ == rhs.int_;
      case Kind::Double: return dbl_ == rhs.dbl_;
      case Kind::String: return str_ == rhs.str_;
      case Kind::Array: return items_ == rhs.items_;
      case Kind::Object: return members_ == rhs.members_;
    }
    return false;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Shortest decimal representation that parses back bit-identically. */
void
formatDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null (parsers treat it as 0).
        out += "null";
        return;
    }
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
    // Keep a numeric marker so the value re-parses as Double, not Int.
    if (!std::strpbrk(buf, ".eE") && std::strcmp(buf, "null") != 0)
        out += ".0";
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };

    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Int: {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::Double: formatDouble(out, dbl_); break;
      case Kind::String: escapeString(out, str_); break;
      case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ",";
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ",";
            newline(depth + 1);
            escapeString(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, " at offset %zu", pos);
        err = msg + buf;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(unsigned &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp < 0xDC00 &&
                    text.substr(pos, 2) == "\\u") {
                    pos += 2;
                    unsigned lo;
                    if (!hex4(lo))
                        return false;
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos;
        bool isDouble = false;
        if (consume('-')) {
        }
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            if (text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E')
                isDouble = true;
            ++pos;
        }
        const std::string tok(text.substr(start, pos - start));
        if (tok.empty() || tok == "-")
            return fail("bad number");
        char *end = nullptr;
        if (isDouble) {
            out = Value(std::strtod(tok.c_str(), &end));
        } else {
            errno = 0;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == ERANGE)
                out = Value(std::strtod(tok.c_str(), &end));
            else
                out = Value(static_cast<std::int64_t>(v));
        }
        if (!end || *end != '\0')
            return fail("bad number");
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Value::object();
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out[key] = std::move(v);
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Value::array();
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.push(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value();
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

bool
Value::parse(std::string_view text, Value &out, std::string &err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out, 0)) {
        err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        err = "trailing characters after document";
        return false;
    }
    return true;
}

bool
parseFile(const std::string &path, Value &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = path + ": cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!Value::parse(ss.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

bool
writeFile(const Value &v, const std::string &path, std::string &err)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        err = path + ": cannot open for writing";
        return false;
    }
    out << v.dump(2) << '\n';
    out.flush();
    if (!out) {
        err = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace tstream::json
