/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All randomness in the simulator flows through Rng so that a run is a
 * pure function of its seed. We use xoshiro256** (public domain,
 * Blackman/Vigna) seeded via splitmix64, plus the samplers the workload
 * emulators need (uniform ranges, Zipf-distributed skew for TPC-C-like
 * access patterns, bounded geometric bursts).
 */

#ifndef TSTREAM_UTIL_RNG_HH
#define TSTREAM_UTIL_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace tstream
{

/** Deterministic xoshiro256** generator with workload-oriented samplers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to spread the seed across the state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipf sampler over [0, n) with parameter theta (theta = 0 is uniform;
 * TPC-C-style skew uses theta around 0.8-1.0).
 *
 * Uses the standard inverse-CDF-over-precomputed-harmonic approach; the
 * construction cost is O(n) and sampling is O(log n), which is fine for
 * the table cardinalities the workloads use.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta)
        : cdf_(n)
    {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_[i] = sum;
        }
        for (auto &v : cdf_)
            v /= sum;
    }

    /** Draw one sample in [0, n). */
    std::size_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace tstream

#endif // TSTREAM_UTIL_RNG_HH
