/**
 * @file
 * Deterministic per-cell timeout/retry state machine for the
 * experiment driver (sim/driver.hh).
 *
 * The machine is pure bookkeeping over caller-supplied millisecond
 * timestamps — it never reads a clock or sleeps — so every path
 * (success after retry, exhaustion into a failure row, and the
 * timeout-vs-completion race in both orders) is unit-testable with a
 * fake clock (tests/retry_test.cc). The driver feeds it the wall
 * clock; the policy's backoff sequence is
 * `backoffBaseMs * backoffFactor^(attempt-1)` capped at
 * `backoffMaxMs`.
 *
 * Race semantics (the part worth stating precisely): while an attempt
 * is Running, whichever event the driver delivers first wins. If
 * onSuccess() arrives first, the cell is Done even when the attempt
 * had already exceeded its deadline — a result in hand beats an
 * abandoned retry. If onTimeout() is delivered first (it is only
 * accepted once attemptTimedOut() is true), the machine moves to
 * Backoff/Failed and a late onSuccess() from the abandoned attempt
 * returns Decision::Kind::None and changes nothing.
 */

#ifndef TSTREAM_UTIL_RETRY_HH
#define TSTREAM_UTIL_RETRY_HH

#include <cstdint>
#include <string>

namespace tstream
{

/** Bounded retry with exponential backoff and a per-attempt timeout. */
struct RetryPolicy
{
    unsigned maxAttempts = 3;
    /** Per-attempt timeout; 0 = attempts never time out. */
    std::int64_t timeoutMs = 0;
    std::int64_t backoffBaseMs = 200; ///< delay before attempt 2
    double backoffFactor = 2.0;
    std::int64_t backoffMaxMs = 10'000;
};

class RetryState
{
  public:
    enum class Phase
    {
        Idle,    ///< before the first attempt
        Running, ///< an attempt is in flight
        Backoff, ///< waiting to start the next attempt
        Done,    ///< an attempt succeeded
        Failed,  ///< attempts exhausted
    };

    struct Decision
    {
        enum class Kind
        {
            None,    ///< event ignored (e.g. late success)
            Done,    ///< cell finished successfully
            RetryAt, ///< retry when the clock reaches retryAtMs
            Failed,  ///< attempts exhausted — emit a failure row
        };
        Kind kind = Kind::None;
        std::int64_t retryAtMs = 0; ///< valid for RetryAt
    };

    explicit RetryState(const RetryPolicy &policy) : policy_(policy) {}

    /**
     * Start the next attempt at @p nowMs (Idle or Backoff phase).
     * Returns the 1-based attempt ordinal.
     */
    unsigned beginAttempt(std::int64_t nowMs);

    /** True while Running with a timeout and past the deadline. */
    bool attemptTimedOut(std::int64_t nowMs) const;

    /** The running attempt produced a result. Ignored (None) unless
     *  Running — a completion that lost the race to onTimeout(). */
    Decision onSuccess(std::int64_t nowMs);

    /** The running attempt failed with @p cause. */
    Decision onFailure(std::string cause, std::int64_t nowMs);

    /**
     * Declare the running attempt timed out. Guarded: returns None
     * unless attemptTimedOut(@p nowMs) — a driver cannot time out an
     * attempt that still has budget.
     */
    Decision onTimeout(std::int64_t nowMs);

    /** Backoff delay after the @p attempt-th attempt failed. */
    std::int64_t backoffDelayMs(unsigned attempt) const;

    unsigned
    attempts() const
    {
        return attempts_;
    }

    Phase
    phase() const
    {
        return phase_;
    }

    /** Cause of the most recent failure (last one wins). */
    const std::string &
    failureCause() const
    {
        return cause_;
    }

  private:
    Decision fail(std::string cause, std::int64_t nowMs);

    RetryPolicy policy_;
    Phase phase_ = Phase::Idle;
    unsigned attempts_ = 0;
    std::int64_t attemptStartMs_ = 0;
    std::string cause_;
};

} // namespace tstream

#endif // TSTREAM_UTIL_RETRY_HH
