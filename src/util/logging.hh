/**
 * @file
 * Error-reporting and leveled logging.
 *
 * Two layers live here. The gem5-style terminators — panic() for
 * internal invariant violations, fatal() for user/configuration
 * errors — are unchanged and unconditional. On top of them sits a
 * leveled logger for everything that used to be an ad-hoc stderr
 * print: `logDebug/logInfo/logWarn/logError` (and the printf-style
 * `logf`) emit one timestamped, thread-tagged line to stderr when the
 * message's level clears the threshold.
 *
 * The threshold comes from `TSTREAM_LOG=debug|info|warn|error|off`
 * (default `info`) and can be overridden programmatically with
 * setLogThreshold(). Line shape (UTC wall clock, level letter, small
 * per-thread ordinal):
 *
 *     12:34:56.789 W t03 claim 17-9f3a: owner changed ...
 *
 * Formatting is split out as formatLogLine(), a pure function of
 * (level, message, thread id, wall-clock ms), so tests pin the exact
 * line shape without capturing stderr.
 */

#ifndef TSTREAM_UTIL_LOGGING_HH
#define TSTREAM_UTIL_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace tstream
{

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a bug in tstream itself.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process because of a user-caused error (bad configuration,
 * invalid arguments). Not a tstream bug.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** panic() when @p cond is false. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4, ///< threshold only — no message carries this level
};

/** Parse a TSTREAM_LOG-style name; unknown strings map to Info. */
LogLevel logLevelFromName(std::string_view name);

/** Current threshold (first use reads TSTREAM_LOG). */
LogLevel logThreshold();

/** Override the threshold (tests, CLI flags). */
void setLogThreshold(LogLevel level);

/** Re-read TSTREAM_LOG (tests that setenv mid-process). */
void logRefreshFromEnv();

/** True when a message at @p level would be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           static_cast<int>(logThreshold());
}

/**
 * Small dense per-thread ordinal (0, 1, 2, ... in first-use order) —
 * stable for the thread's lifetime, shared by log lines and telemetry
 * trace events so both views name threads identically.
 */
int logThreadId();

/** The formatted line, sans trailing newline: pure, for tests. */
std::string formatLogLine(LogLevel level, std::string_view msg,
                          int tid, std::int64_t wallMs);

/** Emit unconditionally (level check is the caller's job). */
void logMessage(LogLevel level, std::string_view msg);

inline void
logDebug(std::string_view msg)
{
    if (logEnabled(LogLevel::Debug))
        logMessage(LogLevel::Debug, msg);
}

inline void
logInfo(std::string_view msg)
{
    if (logEnabled(LogLevel::Info))
        logMessage(LogLevel::Info, msg);
}

inline void
logWarn(std::string_view msg)
{
    if (logEnabled(LogLevel::Warn))
        logMessage(LogLevel::Warn, msg);
}

inline void
logError(std::string_view msg)
{
    if (logEnabled(LogLevel::Error))
        logMessage(LogLevel::Error, msg);
}

/** printf-style convenience for the levels above. */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char *fmt, ...);

} // namespace tstream

#endif // TSTREAM_UTIL_LOGGING_HH
