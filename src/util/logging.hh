/**
 * @file
 * Error-reporting helpers in the gem5 style: panic() for internal
 * invariant violations, fatal() for user/configuration errors.
 */

#ifndef TSTREAM_UTIL_LOGGING_HH
#define TSTREAM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tstream
{

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a bug in tstream itself.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process because of a user-caused error (bad configuration,
 * invalid arguments). Not a tstream bug.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** panic() when @p cond is false. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace tstream

#endif // TSTREAM_UTIL_LOGGING_HH
