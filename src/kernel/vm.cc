#include "kernel/vm.hh"

#include "kernel/thread.hh"

namespace tstream
{

Vm::Vm(const VmConfig &cfg, unsigned ncpu, BumpAllocator &kernel_heap,
       FunctionRegistry &reg)
    : cfg_(cfg),
      tlb_(ncpu, std::vector<std::uint64_t>(cfg.tlbEntries, UINT64_MAX))
{
    // TSB: 16 B per entry; HME hash region: one block per bucket.
    tsbBase_ = kernel_heap.alloc(cfg.tsbEntries * 16, kBlockSize);
    hmeBase_ = kernel_heap.alloc((cfg.tsbEntries / 4) * kBlockSize,
                                 kBlockSize);
    fnTsbMiss_ =
        reg.intern("sfmmu_tsb_miss", Category::KernelMmuTrap);
    fnHmeWalk_ =
        reg.intern("sfmmu_hblk_hash_search", Category::KernelMmuTrap);
    fnWindow_ = reg.intern("winfix_spill_fill", Category::KernelMmuTrap);
}

void
Vm::translate(SysCtx &ctx, Addr a)
{
    const std::uint64_t page = pageOf(a);
    auto &tlb = tlb_[ctx.cpu()];
    const std::size_t idx =
        (page * 0x9e3779b97f4a7c15ull >> 32) % tlb.size();
    if (tlb[idx] == page)
        return;

    // data_access_MMU_miss: probe the TSB entry for this page.
    ++tlbMisses_;
    const Addr tsbEntry =
        tsbBase_ + (page * 2654435761u % cfg_.tsbEntries) * 16;
    ctx.read(tsbEntry, 16, fnTsbMiss_);
    ctx.exec(20);

    // Occasionally the TSB misses too and the handler walks the hash
    // chains of HME blocks (fixed bucket address per page).
    if (ctx.rng().chance(cfg_.tsbMissRate)) {
        const Addr bucket =
            hmeBase_ +
            (page * 0x61c8864680b583ebull % (cfg_.tsbEntries / 4)) *
                kBlockSize;
        ctx.read(bucket, 16, fnHmeWalk_);
        ctx.read(bucket + 16, 16, fnHmeWalk_);
        // Refill the TSB entry.
        ctx.write(tsbEntry, 16, fnTsbMiss_);
        ctx.exec(60);
    }

    tlb[idx] = page;
}

void
Vm::windowTrap(SysCtx &ctx)
{
    const KThread *t = ctx.thread();
    if (t == nullptr)
        return;
    // Spill/fill a window of eight registers to the thread stack.
    const Addr frame =
        t->stack() + (ctx.rng().below(8)) * kBlockSize;
    ctx.write(frame, 64, fnWindow_);
    ctx.exec(12);
}

} // namespace tstream
