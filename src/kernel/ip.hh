/**
 * @file
 * IP packet assembly: dividing socket writes into MTU-sized packets.
 *
 * Models tcp_wput/ip_wput-style processing: per-packet header
 * construction in recycled packet buffers, checksum passes over the
 * payload, and per-connection protocol control block updates. Header
 * and PCB manipulation is attributed to "Kernel IP packet assembly";
 * payload movement to the copy engine.
 */

#ifndef TSTREAM_KERNEL_IP_HH
#define TSTREAM_KERNEL_IP_HH

#include <cstdint>

#include "kernel/copy.hh"
#include "kernel/ctx.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** IP/TCP output path model. */
class IpSubsys
{
  public:
    IpSubsys(BumpAllocator &kernel_heap, CopyEngine &copy,
             FunctionRegistry &reg);

    /**
     * Allocate a per-connection protocol control block (tcp_t); its
     * address is fixed for the connection's lifetime.
     */
    Addr newPcb();

    /**
     * Send @p len bytes from user buffer @p src over the connection
     * with control block @p pcb: packetizes into MSS-sized chunks,
     * each with header writes, a checksum read pass, and a payload
     * copy into a recycled packet buffer.
     */
    void send(SysCtx &ctx, Addr pcb, Addr src, std::uint32_t len);

    std::uint64_t packetsSent() const { return packets_; }

  private:
    static constexpr std::uint32_t kMss = 1460;

    CopyEngine &copy_;
    BumpAllocator pcbArena_;
    RecyclingAllocator pktBufs_;
    Addr ireTable_ = 0;  ///< routing entries (refcounted, shared)
    Addr syncqBase_ = 0; ///< STREAMS perimeter queues of tcp/ip
    FnId fnTcpWput_, fnIpWput_, fnCksum_, fnPutnext_, fnIre_;
    std::uint64_t packets_ = 0;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_IP_HH
