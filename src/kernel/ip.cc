#include "kernel/ip.hh"

namespace tstream
{

namespace
{
constexpr Addr kPcbArena = 8 * 1024 * 1024;
constexpr Addr kPktArena = 32 * 1024 * 1024;
} // namespace

IpSubsys::IpSubsys(BumpAllocator &kernel_heap, CopyEngine &copy,
                   FunctionRegistry &reg)
    : copy_(copy),
      pcbArena_([&] {
          const Addr b = kernel_heap.alloc(kPcbArena, kBlockSize);
          return BumpAllocator(b, b + kPcbArena);
      }()),
      pktBufs_([&] {
          const Addr b = kernel_heap.alloc(kPktArena, kBlockSize);
          return RecyclingAllocator(b, b + kPktArena, 2048);
      }())
{
    ireTable_ = kernel_heap.alloc(256 * kBlockSize, kBlockSize);
    syncqBase_ = kernel_heap.alloc(128 * kBlockSize, kBlockSize);
    fnTcpWput_ = reg.intern("tcp_wput_data", Category::KernelIpAssembly);
    fnIpWput_ = reg.intern("ip_wput_local", Category::KernelIpAssembly);
    fnCksum_ = reg.intern("ip_ocsum", Category::KernelIpAssembly);
    // The Solaris TCP/IP stack is built out of STREAMS modules: every
    // packet traverses module queues via putnext.
    fnPutnext_ = reg.intern("putnext", Category::KernelStreams);
    fnIre_ = reg.intern("ire_cache_lookup", Category::KernelIpAssembly);
}

Addr
IpSubsys::newPcb()
{
    return pcbArena_.allocBlocks(2);
}

void
IpSubsys::send(SysCtx &ctx, Addr pcb, Addr src, std::uint32_t len)
{
    std::uint32_t off = 0;
    while (off < len) {
        const std::uint32_t chunk = std::min(kMss, len - off);
        ++packets_;

        // tcp_wput_data: sequence numbers and window state in the PCB.
        ctx.read(pcb, 32, fnTcpWput_);
        ctx.write(pcb, 16, fnTcpWput_);

        // STREAMS putnext through the tcp -> ip module queues: the
        // per-stream syncq words are written on every traversal.
        const Addr syncq =
            syncqBase_ + (pcb >> kBlockBits) % 128 * kBlockSize;
        ctx.read(syncq, 16, fnPutnext_);
        ctx.write(syncq, 16, fnPutnext_);

        // Routing entry lookup; the refcount update makes the shared
        // IRE block migrate between sending CPUs.
        const Addr ire =
            ireTable_ + (pcb >> (kBlockBits + 2)) % 256 * kBlockSize;
        ctx.read(ire, 32, fnIre_);
        ctx.write(ire, 8, fnIre_);

        // Payload lands in a recycled packet buffer.
        const Addr pkt = pktBufs_.alloc();
        copy_.bcopy(ctx, pkt + kBlockSize, src + off, chunk);

        // ip_wput_local: header construction at the buffer head.
        ctx.write(pkt, 40, fnIpWput_);

        // Software checksum pass over the packet payload.
        ctx.read(pkt + kBlockSize, chunk, fnCksum_);
        ctx.exec(60 + chunk / 8);

        // The NIC "transmits" (DMA read: no memory mutation) and the
        // buffer returns to the pool.
        pktBufs_.free(pkt);
        off += chunk;
    }
}

} // namespace tstream
