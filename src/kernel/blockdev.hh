/**
 * @file
 * Block device driver + DMA engine.
 *
 * A disk read issues driver accesses (request queue, LUN structures —
 * the paper's "Kernel block device driver" category), then DMAs the
 * data into a kernel staging buffer (invalidating all cached copies)
 * and copies it out to the destination with non-allocating stores.
 * Whether staging buffers are recycled is configurable per call site:
 * web workloads reuse network buffers (repetitive I/O coherence);
 * DSS table scans stream through fresh buffers (non-repetitive),
 * matching Section 4.1's observation.
 */

#ifndef TSTREAM_KERNEL_BLOCKDEV_HH
#define TSTREAM_KERNEL_BLOCKDEV_HH

#include <cstdint>

#include "kernel/copy.hh"
#include "kernel/ctx.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** sd-style block device driver model. */
class BlockDev
{
  public:
    BlockDev(BumpAllocator &kernel_heap, CopyEngine &copy,
             FunctionRegistry &reg);

    /**
     * Synchronous page-in: driver work, DMA into a staging buffer,
     * copyout into @p dest (page-aligned, @p len bytes).
     *
     * @param recycle Reuse staging buffers LIFO (true) or stream
     *                through fresh ones (false).
     */
    void read(SysCtx &ctx, Addr dest, std::uint32_t len, bool recycle);

    std::uint64_t ioCount() const { return ios_; }

  private:
    Addr stagingAlloc(std::uint32_t len, bool recycle);

    CopyEngine &copy_;
    Addr sdLun_;      ///< device soft-state structure
    Addr requestRing_; ///< request descriptor ring
    unsigned ringSlot_ = 0;
    static constexpr unsigned kRingSlots = 64;

    RecyclingAllocator recycled_;
    BumpAllocator streaming_;

    FnId fnStrategy_, fnSdStart_, fnBiodone_;
    std::uint64_t ios_ = 0;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_BLOCKDEV_HH
