#include "kernel/ctx.hh"

#include "kernel/kernel.hh"

namespace tstream
{

void
SysCtx::userRead(Addr a, std::uint32_t size, FnId fn)
{
    kern_.vm().translate(*this, a);
    eng_.read(cpu_, a, size, fn);
}

void
SysCtx::userWrite(Addr a, std::uint32_t size, FnId fn)
{
    kern_.vm().translate(*this, a);
    eng_.write(cpu_, a, size, fn);
}

} // namespace tstream
