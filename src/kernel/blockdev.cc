#include "kernel/blockdev.hh"

namespace tstream
{

BlockDev::BlockDev(BumpAllocator &kernel_heap, CopyEngine &copy,
                   FunctionRegistry &reg)
    : copy_(copy),
      recycled_(seg::kDmaRegion, seg::kDmaRegion + (seg::kSegmentSize / 2),
                kPageSize),
      streaming_(seg::kDmaRegion + seg::kSegmentSize / 2,
                 seg::kDmaRegion + seg::kSegmentSize)
{
    sdLun_ = kernel_heap.allocBlocks(2);
    requestRing_ = kernel_heap.allocBlocks(kRingSlots);
    fnStrategy_ = reg.intern("sdstrategy", Category::KernelBlockDev);
    fnSdStart_ = reg.intern("sd_start_cmds", Category::KernelBlockDev);
    fnBiodone_ = reg.intern("biodone", Category::KernelBlockDev);
}

Addr
BlockDev::stagingAlloc(std::uint32_t len, bool recycle)
{
    if (recycle) {
        // One recycled chunk covers a page; larger requests take
        // consecutive chunks from the streaming arena instead.
        if (len <= recycled_.chunkSize())
            return recycled_.alloc();
    }
    return streaming_.alloc(len, kPageSize);
}

void
BlockDev::read(SysCtx &ctx, Addr dest, std::uint32_t len, bool recycle)
{
    ++ios_;

    // sdstrategy/sd_start_cmds: device soft state and a request-ring
    // descriptor at a rotating (but cyclically repeating) slot.
    ctx.read(sdLun_, 16, fnStrategy_);
    const Addr slot = requestRing_ + ringSlot_ * kBlockSize;
    ringSlot_ = (ringSlot_ + 1) % kRingSlots;
    ctx.write(slot, 32, fnSdStart_);
    ctx.read(sdLun_ + kBlockSize, 16, fnSdStart_);
    ctx.exec(120);

    // DMA lands in the staging buffer, invalidating cached copies.
    const Addr staging = stagingAlloc(len, recycle);
    ctx.engine().dmaWrite(staging, len);

    // biodone: completion bookkeeping on the ring slot.
    ctx.read(slot, 32, fnBiodone_);
    ctx.exec(40);

    // Copy out to the destination with non-allocating stores; the
    // reads of the freshly DMA'd staging buffer are the copy engine's
    // misses.
    copy_.copyout(ctx, dest, staging, len);

    if (recycle && len <= recycled_.chunkSize())
        recycled_.free(staging);
}

} // namespace tstream
