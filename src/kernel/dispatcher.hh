/**
 * @file
 * Solaris-style per-CPU dispatch queues with work stealing — the
 * paper's motivating example two (Section 2.1).
 *
 * Each CPU owns a dispatch queue protected by its own lock; a global
 * kernel-preempt (real-time) queue is consulted first. When a CPU's
 * own queue is empty it scans every other CPU's queue in a fixed
 * order (disp_getwork), inspects the best candidate (disp_getbest),
 * dequeues it (dispdeq) and re-validates (disp_ratify). Because the
 * locks sit at fixed addresses and all CPUs scan in the same order,
 * these accesses form highly repetitive cross-CPU miss sequences —
 * the paper measures up to 12% of all off-chip misses here.
 */

#ifndef TSTREAM_KERNEL_DISPATCHER_HH
#define TSTREAM_KERNEL_DISPATCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/ctx.hh"
#include "kernel/thread.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Per-CPU dispatch queues plus the real-time queue. */
class Dispatcher
{
  public:
    Dispatcher(unsigned ncpu, BumpAllocator &kernel_heap,
               FunctionRegistry &reg);

    /**
     * Make @p t runnable (setbackdq). Yield requeues stay on the
     * thread's last CPU; wakeups (@p wakeup = true) sometimes land on
     * the waking CPU's queue, migrating the thread.
     */
    void enqueue(SysCtx &ctx, KThread *t, bool wakeup = false);

    /**
     * Pick the next thread for ctx's CPU, emitting the scheduler's
     * accesses. Scans the real-time queue, then the own queue, then
     * steals (disp_getwork/disp_getbest/dispdeq/disp_ratify).
     * @return nullptr if no runnable thread exists anywhere.
     */
    KThread *pickNext(SysCtx &ctx);

    /** Total runnable threads across queues (diagnostics). */
    std::size_t runnableCount() const;

  private:
    struct DispQ
    {
        Addr lockAddr;  ///< disp_lock
        Addr dispAddr;  ///< disp structure (nrunnable, queue head)
        std::deque<KThread *> q;
    };

    /** Total runnable threads (mirrors disp_maxrunpri semantics). */
    std::size_t totalRunnable_ = 0;
    Addr maxRunPriAddr_ = 0; ///< global stealable-work hint word

    /** Read the queue header under its lock (disp_getwork probe). */
    void probeQueue(SysCtx &ctx, DispQ &dq, FnId fn);

    /** Remove a specific thread from a queue (dispdeq). */
    KThread *dequeueFrom(SysCtx &ctx, DispQ &dq);

    std::vector<DispQ> cpuq_;
    DispQ kpq_; ///< kernel preempt (real-time) queue

    FnId fnSwtch_, fnGetwork_, fnGetbest_, fnDispdeq_, fnRatify_,
        fnSetbackdq_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_DISPATCHER_HH
