#include "kernel/kernel.hh"

namespace tstream
{

Kernel::Kernel(Engine &eng, const KernelConfig &cfg)
    : eng_(eng), cfg_(cfg),
      kernelHeap_(seg::kKernelHeap, seg::kKernelHeap + seg::kSegmentSize),
      threadArena_([&] {
          const Addr b =
              kernelHeap_.alloc(32 * 1024 * 1024, kBlockSize);
          return BumpAllocator(b, b + 32 * 1024 * 1024);
      }())
{
    auto &reg = eng.registry();
    sync_ = std::make_unique<SyncSubsys>(kernelHeap_, reg);
    disp_ = std::make_unique<Dispatcher>(eng.numCpus(), kernelHeap_, reg);
    vm_ = std::make_unique<Vm>(cfg.vm, eng.numCpus(), kernelHeap_, reg);
    copy_ = std::make_unique<CopyEngine>(reg);
    blockdev_ = std::make_unique<BlockDev>(kernelHeap_, *copy_, reg);
    streams_ =
        std::make_unique<StreamsSubsys>(kernelHeap_, *sync_, *copy_, reg);
    ip_ = std::make_unique<IpSubsys>(kernelHeap_, *copy_, reg);
    syscalls_ = std::make_unique<SyscallSubsys>(kernelHeap_, reg);
}

SimMutex
Kernel::makeMutex()
{
    return SimMutex(kernelHeap_.allocBlocks(1), *sync_);
}

SimCondVar
Kernel::makeCondVar()
{
    return SimCondVar(kernelHeap_.allocBlocks(1), *sync_);
}

KThread *
Kernel::spawn(std::unique_ptr<Task> task, CpuId preferred_cpu,
              int priority)
{
    const Addr tstruct = threadArena_.allocBlocks(2);
    const Addr stack = threadArena_.allocBlocks(16);
    threads_.push_back(std::make_unique<KThread>(std::move(task), tstruct,
                                                 stack, priority));
    KThread *t = threads_.back().get();
    t->setLastCpu(preferred_cpu % eng_.numCpus());
    ++liveThreads_;

    // Initial enqueue happens outside any running quantum; charge the
    // accesses to the preferred CPU.
    SysCtx ctx(eng_, *this, t->lastCpu(), nullptr);
    disp_->enqueue(ctx, t);
    return t;
}

void
Kernel::cvBlock(SysCtx &ctx, SimCondVar &cv)
{
    panicIf(ctx.thread() == nullptr, "cvBlock outside a thread quantum");
    cv.enqueue(ctx, ctx.thread());
    currentBlocked_ = true;
}

bool
Kernel::cvWake(SysCtx &ctx, SimCondVar &cv)
{
    KThread *t = cv.dequeue(ctx);
    if (t == nullptr)
        return false;
    disp_->enqueue(ctx, t, /*wakeup=*/true);
    return true;
}

void
Kernel::run(std::uint64_t instr_budget)
{
    const std::uint64_t start = eng_.totalInstructions();
    const unsigned ncpu = eng_.numCpus();

    // Idle-round guard: if no CPU finds work for many consecutive
    // rounds, the workload has deadlocked or finished early.
    unsigned idleRounds = 0;

    while (eng_.totalInstructions() - start < instr_budget) {
        bool anyRan = false;
        for (unsigned c = 0; c < ncpu; ++c) {
            SysCtx dctx(eng_, *this, static_cast<CpuId>(c), nullptr);
            KThread *t = disp_->pickNext(dctx);
            if (t == nullptr)
                continue;
            anyRan = true;
            t->setLastCpu(static_cast<CpuId>(c));

            SysCtx ctx(eng_, *this, static_cast<CpuId>(c), t);
            if (eng_.rng().chance(cfg_.windowTrapRate))
                vm_->windowTrap(ctx);

            currentBlocked_ = false;
            const RunResult res = t->task().run(ctx);
            switch (res) {
              case RunResult::Yield:
                disp_->enqueue(ctx, t);
                break;
              case RunResult::Blocked:
                panicIf(!currentBlocked_,
                        "task returned Blocked without blocking on a "
                        "kernel object");
                break;
              case RunResult::Done:
                --liveThreads_;
                break;
            }
        }
        if (!anyRan) {
            if (++idleRounds > 3)
                break; // nothing runnable anywhere
        } else {
            idleRounds = 0;
        }
        if (liveThreads_ == 0)
            break;
    }
}

} // namespace tstream
