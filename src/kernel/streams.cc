#include "kernel/streams.hh"

namespace tstream
{

namespace
{

/** Carve a dedicated mblk region out of the kernel heap. */
Addr
carveMblkRegion(BumpAllocator &kernel_heap)
{
    constexpr Addr kMblkRegion = 64 * 1024 * 1024;
    return kernel_heap.alloc(kMblkRegion, kBlockSize);
}

} // namespace

StreamsSubsys::StreamsSubsys(BumpAllocator &kernel_heap, SyncSubsys &sync,
                             CopyEngine &copy, FunctionRegistry &reg)
    : mblks_([&] {
          const Addr base = carveMblkRegion(kernel_heap);
          return RecyclingAllocator(base, base + 64 * 1024 * 1024, 2048);
      }()),
      sync_(sync), copy_(copy)
{
    fnPutq_ = reg.intern("putq", Category::KernelStreams);
    fnGetq_ = reg.intern("getq", Category::KernelStreams);
    fnAllocb_ = reg.intern("allocb", Category::KernelStreams);
    fnStrread_ = reg.intern("strread", Category::KernelStreams);
    fnStrwrite_ = reg.intern("strwrite", Category::KernelStreams);
}

StreamsQueue::StreamsQueue(StreamsSubsys &subsys,
                           BumpAllocator &kernel_heap)
    : subsys_(subsys),
      qlock_(kernel_heap.allocBlocks(1), subsys.sync()),
      qhead_(kernel_heap.allocBlocks(1))
{
}

void
StreamsQueue::put(SysCtx &ctx, Addr src, std::uint32_t len)
{
    // allocb: grab an mblk from the (heavily recycled) arena and set
    // up its header.
    const Addr mblk = subsys_.mblkArena().alloc();
    ctx.write(mblk, 32, subsys_.fnAllocb());
    ctx.exec(30);

    // Copy the payload in from the writer's buffer.
    subsys_.copy().copyin(ctx, mblk + kBlockSize, src, len);

    // putq: queue lock, link the message, update q_count, and read
    // the stream head for flow control.
    qlock_.acquire(ctx);
    ctx.read(qhead_, 16, subsys_.fnPutq());
    ctx.write(qhead_, 16, subsys_.fnPutq());
    ctx.write(mblk + 32, 16, subsys_.fnPutq()); // b_next link
    qlock_.release(ctx);
    ctx.exec(25);

    msgs_.push_back({mblk, len});
}

std::uint32_t
StreamsQueue::get(SysCtx &ctx, Addr dst)
{
    // getq: queue lock and head inspection happen regardless of
    // whether data is present.
    qlock_.acquire(ctx);
    ctx.read(qhead_, 16, subsys_.fnGetq());
    if (msgs_.empty()) {
        qlock_.release(ctx);
        ctx.exec(15);
        return 0;
    }
    Msg m = msgs_.front();
    msgs_.pop_front();
    ctx.read(m.mblk, 32, subsys_.fnGetq());
    ctx.write(qhead_, 16, subsys_.fnGetq());
    qlock_.release(ctx);
    ctx.exec(25);

    // strread tail: deliver the payload to the reader's buffer with
    // non-allocating stores (kernel-to-user copyout).
    subsys_.copy().copyout(ctx, dst, m.mblk + kBlockSize, m.len);

    // Free the mblk back to the arena (hence address reuse).
    ctx.write(m.mblk, 16, subsys_.fnAllocb());
    subsys_.mblkArena().free(m.mblk);
    return m.len;
}

} // namespace tstream
