/**
 * @file
 * Virtual-memory model: per-CPU software TLB plus the SPARC-style
 * MMU trap handlers that refill it.
 *
 * On a TLB miss the trap handler performs the *data* accesses the
 * paper's "Kernel MMU & trap handlers" category observes: a TSB
 * (translation storage buffer) probe, and on a TSB miss a walk of the
 * hashed HME (hardware mapping entry) chains. Both structures sit at
 * fixed kernel addresses derived from the page number, so repeated
 * translations of the same pages produce repeating miss sequences —
 * exactly the paper's explanation for the large, repetitive MMU
 * category in OLTP (Section 5.2).
 *
 * Register-window spill/fill traps are modeled as stack accesses
 * charged to the same category.
 */

#ifndef TSTREAM_KERNEL_VM_HH
#define TSTREAM_KERNEL_VM_HH

#include <cstdint>
#include <vector>

#include "kernel/ctx.hh"
#include "mem/address.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Configuration of the VM model. */
struct VmConfig
{
    /** Per-CPU TLB entries (direct-mapped). */
    unsigned tlbEntries = 512;
    /** TSB entries (shared software cache of translations). */
    unsigned tsbEntries = 1 << 15;
    /** Probability that a TSB probe misses and walks the HME chains. */
    double tsbMissRate = 0.25;
};

/** Per-CPU TLB + trap-handler access model. */
class Vm
{
  public:
    Vm(const VmConfig &cfg, unsigned ncpu, BumpAllocator &kernel_heap,
       FunctionRegistry &reg);

    /**
     * Translate a user-space access on ctx's CPU; on a TLB miss, emit
     * the trap handler's TSB/HME accesses.
     */
    void translate(SysCtx &ctx, Addr a);

    /** Model a register-window spill/fill pair on the thread stack. */
    void windowTrap(SysCtx &ctx);

    /** TLB miss count (diagnostics). */
    std::uint64_t tlbMisses() const { return tlbMisses_; }

  private:
    VmConfig cfg_;
    std::vector<std::vector<std::uint64_t>> tlb_; ///< per cpu, page tags
    Addr tsbBase_;
    Addr hmeBase_;
    FnId fnTsbMiss_;
    FnId fnHmeWalk_;
    FnId fnWindow_;
    std::uint64_t tlbMisses_ = 0;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_VM_HH
