#include "kernel/syscall.hh"

namespace tstream
{

namespace
{
constexpr Addr kProcArena = 16 * 1024 * 1024;
constexpr Addr kFileArena = 64 * 1024 * 1024;
constexpr unsigned kDnlcBuckets = 1024;
} // namespace

SyscallSubsys::SyscallSubsys(BumpAllocator &kernel_heap,
                             FunctionRegistry &reg)
    : procArena_([&] {
          const Addr b = kernel_heap.alloc(kProcArena, kBlockSize);
          return BumpAllocator(b, b + kProcArena);
      }()),
      fileArena_([&] {
          const Addr b = kernel_heap.alloc(kFileArena, kBlockSize);
          return BumpAllocator(b, b + kFileArena);
      }())
{
    dnlcBase_ = kernel_heap.alloc(kDnlcBuckets * kBlockSize, kBlockSize);
    fnSyscall_ = reg.intern("syscall_trap", Category::SystemCalls);
    fnPoll_ = reg.intern("poll", Category::SystemCalls);
    fnRead_ = reg.intern("read", Category::SystemCalls);
    fnWrite_ = reg.intern("write", Category::SystemCalls);
    fnOpen_ = reg.intern("open", Category::SystemCalls);
    fnStat_ = reg.intern("stat", Category::SystemCalls);
}

ProcDesc
SyscallSubsys::newProc()
{
    ProcDesc p;
    p.proc = procArena_.allocBlocks(4);
    p.fdTable = procArena_.allocBlocks(16);
    return p;
}

std::uint32_t
SyscallSubsys::newFile()
{
    File f;
    f.vnode = fileArena_.allocBlocks(2);
    f.pollhead = fileArena_.allocBlocks(1);
    files_.push_back(f);
    return static_cast<std::uint32_t>(files_.size() - 1);
}

void
SyscallSubsys::enter(SysCtx &ctx, const ProcDesc &p, std::uint32_t fd)
{
    // Trap entry: credentials, then the uf_entry slot for the fd.
    ctx.read(p.proc, 32, fnSyscall_);
    ctx.read(p.fdTable + (fd % 256) * 16, 16, fnSyscall_);
    ctx.exec(40);
}

void
SyscallSubsys::poll(SysCtx &ctx, const ProcDesc &p,
                    const std::vector<std::uint32_t> &fds)
{
    ctx.read(p.proc, 32, fnPoll_);
    unsigned i = 0;
    for (std::uint32_t fd : fds) {
        ctx.read(p.fdTable + (fd % 256) * 16, 16, fnPoll_);
        if (!files_.empty()) {
            const File &f = files_[fd % files_.size()];
            ctx.read(f.vnode, 16, fnPoll_);
            ctx.read(f.pollhead, 16, fnPoll_);
            // Register interest on a fraction of descriptors: the
            // pollhead waiter list is written, so it migrates between
            // the CPUs that poll it.
            if (++i % 8 == 0)
                ctx.write(f.pollhead, 16, fnPoll_);
        }
        ctx.exec(25);
    }
    // pollstate cache write-back.
    ctx.write(p.proc + kBlockSize, 16, fnPoll_);
    ctx.exec(50);
}

void
SyscallSubsys::readEntry(SysCtx &ctx, const ProcDesc &p, std::uint32_t fd)
{
    enter(ctx, p, fd);
    if (!files_.empty()) {
        const File &f = files_[fd % files_.size()];
        ctx.read(f.vnode, 32, fnRead_);
        ctx.write(f.vnode + kBlockSize, 16, fnRead_); // offset update
    }
    ctx.exec(60);
}

void
SyscallSubsys::writeEntry(SysCtx &ctx, const ProcDesc &p,
                          std::uint32_t fd)
{
    enter(ctx, p, fd);
    if (!files_.empty()) {
        const File &f = files_[fd % files_.size()];
        ctx.read(f.vnode, 32, fnWrite_);
        ctx.write(f.vnode + kBlockSize, 16, fnWrite_);
    }
    ctx.exec(60);
}

void
SyscallSubsys::openStat(SysCtx &ctx, const ProcDesc &p,
                        std::uint32_t pathHash)
{
    ctx.read(p.proc, 32, fnOpen_);
    // DNLC probe chain: two buckets derived from the path hash.
    const Addr b1 =
        dnlcBase_ + (pathHash % kDnlcBuckets) * kBlockSize;
    const Addr b2 =
        dnlcBase_ + ((pathHash * 2654435761u) % kDnlcBuckets) * kBlockSize;
    ctx.read(b1, 32, fnStat_);
    ctx.read(b2, 32, fnStat_);
    if (!files_.empty()) {
        const File &f = files_[pathHash % files_.size()];
        ctx.read(f.vnode, 32, fnStat_);
    }
    ctx.exec(120);
}

} // namespace tstream
