#include "kernel/dispatcher.hh"

namespace tstream
{

Dispatcher::Dispatcher(unsigned ncpu, BumpAllocator &kernel_heap,
                       FunctionRegistry &reg)
{
    auto makeQueue = [&] {
        DispQ dq;
        dq.lockAddr = kernel_heap.allocBlocks(1);
        dq.dispAddr = kernel_heap.allocBlocks(2);
        return dq;
    };
    cpuq_.reserve(ncpu);
    for (unsigned c = 0; c < ncpu; ++c)
        cpuq_.push_back(makeQueue());
    kpq_ = makeQueue();
    maxRunPriAddr_ = kernel_heap.allocBlocks(1);

    fnSwtch_ = reg.intern("swtch", Category::KernelScheduler);
    fnGetwork_ = reg.intern("disp_getwork", Category::KernelScheduler);
    fnGetbest_ = reg.intern("disp_getbest", Category::KernelScheduler);
    fnDispdeq_ = reg.intern("dispdeq", Category::KernelScheduler);
    fnRatify_ = reg.intern("disp_ratify", Category::KernelScheduler);
    fnSetbackdq_ = reg.intern("setbackdq", Category::KernelScheduler);
}

void
Dispatcher::enqueue(SysCtx &ctx, KThread *t, bool wakeup)
{
    // setbackdq picks the thread's last CPU for cache warmth, but a
    // fraction of wakeups land on the waking CPU's queue (Solaris
    // balances affinity against wakeup locality), which is what
    // migrates threads — and their data — between CPUs.
    unsigned target = t->lastCpu() % cpuq_.size();
    if (wakeup && ctx.rng().chance(0.4))
        target = ctx.cpu() % cpuq_.size();
    DispQ &dq = cpuq_[target];
    // Lock the queue, link the thread at the tail, bump nrunnable and
    // publish stealable work.
    ctx.read(dq.lockAddr, 8, fnSetbackdq_);
    ctx.write(dq.lockAddr, 8, fnSetbackdq_);
    ctx.write(t->linkAddr(), 16, fnSetbackdq_);
    ctx.write(dq.dispAddr, 16, fnSetbackdq_);
    ctx.exec(25);
    dq.q.push_back(t);
    ++totalRunnable_;
    if (dq.q.size() == 1)
        ctx.write(maxRunPriAddr_, 8, fnSetbackdq_);
}

void
Dispatcher::probeQueue(SysCtx &ctx, DispQ &dq, FnId fn)
{
    ctx.read(dq.lockAddr, 8, fn);
    ctx.read(dq.dispAddr, 16, fn);
    ctx.exec(10);
}

KThread *
Dispatcher::dequeueFrom(SysCtx &ctx, DispQ &dq)
{
    KThread *t = dq.q.front();
    dq.q.pop_front();
    // dispdeq: unlink under the queue lock, update nrunnable and the
    // queue bitmap.
    ctx.write(dq.lockAddr, 8, fnDispdeq_);
    ctx.read(t->linkAddr(), 16, fnDispdeq_);
    ctx.write(dq.dispAddr, 16, fnDispdeq_);
    ctx.exec(20);
    --totalRunnable_;
    return t;
}

KThread *
Dispatcher::pickNext(SysCtx &ctx)
{
    const unsigned self = ctx.cpu();

    // swtch() entry: the idling CPU inspects the real-time queue
    // first, always.
    probeQueue(ctx, kpq_, fnSwtch_);
    if (!kpq_.q.empty())
        return dequeueFrom(ctx, kpq_);

    // Own dispatch queue.
    probeQueue(ctx, cpuq_[self], fnSwtch_);
    if (!cpuq_[self].q.empty())
        return dequeueFrom(ctx, cpuq_[self]);

    // Idle loop: check the global stealable-work hint before paying
    // for a full scan (disp_maxrunpri semantics). With nothing to
    // steal — or while pausing between idle spins — the CPU stays on
    // its own queue.
    ctx.read(maxRunPriAddr_, 8, fnSwtch_);
    if (totalRunnable_ == 0)
        return nullptr;
    if (ctx.rng().chance(0.5)) {
        ctx.exec(60); // idle spin-pause before rescanning
        return nullptr;
    }

    // disp_getwork: scan the other CPUs' queues in fixed order and
    // steal from the first one with work available.
    int bestCpu = -1;
    for (unsigned i = 1; i < cpuq_.size(); ++i) {
        const unsigned c = (self + i) % cpuq_.size();
        ctx.read(cpuq_[c].dispAddr, 16, fnGetwork_);
        ctx.exec(8);
        if (!cpuq_[c].q.empty()) {
            bestCpu = static_cast<int>(c);
            break;
        }
    }
    if (bestCpu < 0)
        return nullptr;

    // disp_getbest: examine the chosen victim thread's state.
    DispQ &dq = cpuq_[static_cast<unsigned>(bestCpu)];
    KThread *cand = dq.q.front();
    ctx.read(dq.lockAddr, 8, fnGetbest_);
    ctx.read(cand->priAddr(), 16, fnGetbest_);
    ctx.read(cand->linkAddr(), 16, fnGetbest_);
    ctx.exec(15);

    KThread *t = dequeueFrom(ctx, dq);

    // disp_ratify: confirm no higher-priority work appeared.
    ctx.read(kpq_.dispAddr, 16, fnRatify_);
    ctx.read(cpuq_[self].dispAddr, 16, fnRatify_);
    ctx.exec(10);
    return t;
}

std::size_t
Dispatcher::runnableCount() const
{
    std::size_t n = kpq_.q.size();
    for (const DispQ &dq : cpuq_)
        n += dq.q.size();
    return n;
}

} // namespace tstream
