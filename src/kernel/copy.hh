/**
 * @file
 * Bulk memory copy engine: bcopy/memcpy and the Solaris
 * default_copyout family.
 *
 * default_copyout moves I/O results from kernel to user buffers using
 * block-store instructions that bypass cache allocation (paper
 * Section 4.1): the *reads* of the source hit the cache hierarchy and
 * are attributed to "Bulk memory copies", while the destination is
 * written with NonAllocWrite so the consumer's later reads become I/O
 * coherence misses.
 */

#ifndef TSTREAM_KERNEL_COPY_HH
#define TSTREAM_KERNEL_COPY_HH

#include <cstdint>

#include "kernel/ctx.hh"
#include "mem/address.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Emits the access patterns of kernel and user bulk copies. */
class CopyEngine
{
  public:
    explicit CopyEngine(FunctionRegistry &reg)
        : fnBcopy_(reg.intern("bcopy", Category::BulkMemoryCopies)),
          fnMemcpy_(reg.intern("memcpy", Category::BulkMemoryCopies)),
          fnCopyout_(
              reg.intern("default_copyout", Category::BulkMemoryCopies)),
          fnCopyin_(
              reg.intern("default_copyin", Category::BulkMemoryCopies)),
          fnAlignCpy_(
              reg.intern("__align_cpy_1", Category::BulkMemoryCopies))
    {
    }

    /** Ordinary kernel copy: cached reads of src, cached writes of
     *  dst. */
    void
    bcopy(SysCtx &ctx, Addr dst, Addr src, std::uint32_t len)
    {
        ctx.read(src, len, fnBcopy_);
        ctx.write(dst, len, fnBcopy_);
        ctx.exec(len / 8);
    }

    /** User-space memcpy (same pattern, user attribution stays with
     *  the copy category as in the paper's Table 2). */
    void
    memcpyUser(SysCtx &ctx, Addr dst, Addr src, std::uint32_t len)
    {
        ctx.userRead(src, len, fnMemcpy_);
        ctx.userWrite(dst, len, fnMemcpy_);
        ctx.exec(len / 8);
    }

    /**
     * Kernel-to-user copy with non-allocating stores: src is read
     * through the caches; dst is invalidated everywhere and written
     * around them.
     */
    void
    copyout(SysCtx &ctx, Addr dst, Addr src, std::uint32_t len)
    {
        ctx.read(src, len, fnCopyout_);
        ctx.engine().nonAllocWrite(ctx.cpu(), dst, len, fnCopyout_);
        ctx.exec(len / 16);
    }

    /** User-to-kernel copy (cached on both sides). */
    void
    copyin(SysCtx &ctx, Addr dst, Addr src, std::uint32_t len)
    {
        ctx.userRead(src, len, fnCopyin_);
        ctx.write(dst, len, fnCopyin_);
        ctx.exec(len / 8);
    }

    FnId fnCopyout() const { return fnCopyout_; }

  private:
    FnId fnBcopy_;
    FnId fnMemcpy_;
    FnId fnCopyout_;
    FnId fnCopyin_;
    FnId fnAlignCpy_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_COPY_HH
