/**
 * @file
 * Solaris-style synchronization primitives: adaptive mutexes and
 * condition variables with turnstile sleep queues.
 *
 * The simulation is functional, so primitives never deadlock the
 * simulator; what matters is the access pattern: lock words live at
 * fixed addresses and bounce between CPUs (the paper's coherence-miss
 * streams), and the sleep-queue manipulation touches turnstile chains
 * in repeating order.
 */

#ifndef TSTREAM_KERNEL_SYNC_HH
#define TSTREAM_KERNEL_SYNC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/ctx.hh"
#include "mem/address.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

class KThread;

/** Shared state and function ids of the sync subsystem. */
class SyncSubsys
{
  public:
    SyncSubsys(BumpAllocator &kernel_heap, FunctionRegistry &reg);

    Addr turnstileBucket(Addr lock) const;

    FnId fnMutexEnter() const { return fnMutexEnter_; }
    FnId fnMutexExit() const { return fnMutexExit_; }
    FnId fnTurnstile() const { return fnTurnstile_; }
    FnId fnCvWait() const { return fnCvWait_; }
    FnId fnCvSignal() const { return fnCvSignal_; }

  private:
    Addr turnstileBase_;
    static constexpr unsigned kBuckets = 512;
    FnId fnMutexEnter_, fnMutexExit_, fnTurnstile_, fnCvWait_,
        fnCvSignal_;
};

/**
 * An adaptive mutex at a fixed simulated address.
 *
 * acquire() emits the lock-word read + CAS write; when the previous
 * holder was another CPU this is a coherence transfer. Contention
 * (same-quantum holder) adds spin reads and a turnstile touch.
 */
class SimMutex
{
  public:
    SimMutex(Addr addr, SyncSubsys &sync)
        : addr_(addr), sync_(sync)
    {
    }

    /** Acquire: lock word read + owner write; contention modeled. */
    void acquire(SysCtx &ctx);

    /** Release: owner clear. */
    void release(SysCtx &ctx);

    Addr address() const { return addr_; }

  private:
    Addr addr_;
    SyncSubsys &sync_;
    int holderCpu_ = -1;
    bool held_ = false;
};

/**
 * A condition variable with a sleep queue of KThreads. wait() and
 * signal() emit the cv-word and sleep-queue accesses; actual thread
 * wakeup is routed through the Kernel (see Kernel::cvBlock/cvWake).
 */
class SimCondVar
{
  public:
    SimCondVar(Addr addr, SyncSubsys &sync)
        : addr_(addr), sync_(sync)
    {
    }

    /** Enqueue @p t on the sleep queue, emitting cv accesses. */
    void enqueue(SysCtx &ctx, KThread *t);

    /** Dequeue the longest-waiting thread (nullptr if none). */
    KThread *dequeue(SysCtx &ctx);

    bool empty() const { return sleepers_.empty(); }
    std::size_t waiters() const { return sleepers_.size(); }
    Addr address() const { return addr_; }

  private:
    Addr addr_;
    SyncSubsys &sync_;
    std::deque<KThread *> sleepers_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_SYNC_HH
