/**
 * @file
 * System call implementation layer: the kernel-side access patterns of
 * poll/read/write/open/stat, the paper's dominant syscalls ("the most
 * frequent system calls all involve I/O, with poll, open, read, write,
 * and stat dominating", Table 2).
 *
 * Each call touches the invoking process's proc/user structures, the
 * file-descriptor table, and per-file vnode/pollhead structures. All
 * of these live at fixed kernel addresses per process/descriptor, so
 * busy servers replay the same access sequences request after request.
 */

#ifndef TSTREAM_KERNEL_SYSCALL_HH
#define TSTREAM_KERNEL_SYSCALL_HH

#include <cstdint>
#include <vector>

#include "kernel/ctx.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** A simulated process's kernel-side identity. */
struct ProcDesc
{
    Addr proc;    ///< proc_t
    Addr fdTable; ///< uf_entry array
};

/** Syscall access-pattern library. */
class SyscallSubsys
{
  public:
    SyscallSubsys(BumpAllocator &kernel_heap, FunctionRegistry &reg);

    /** Create kernel structures for a new process. */
    ProcDesc newProc();

    /** Create a vnode + pollhead for a descriptor; returns its id. */
    std::uint32_t newFile();

    /** Common syscall entry: proc credentials + fd table slot. */
    void enter(SysCtx &ctx, const ProcDesc &p, std::uint32_t fd);

    /**
     * poll(2) over @p fds: scans each descriptor's uf_entry, vnode and
     * pollhead — the pointer-chasing scan that makes poll the largest
     * OS miss source in web serving (Section 5.1).
     */
    void poll(SysCtx &ctx, const ProcDesc &p,
              const std::vector<std::uint32_t> &fds);

    /** read(2)/write(2) kernel prologue (file offset, vnode locks). */
    void readEntry(SysCtx &ctx, const ProcDesc &p, std::uint32_t fd);
    void writeEntry(SysCtx &ctx, const ProcDesc &p, std::uint32_t fd);

    /** open(2)/stat(2): directory lookup cache probes + vnode init. */
    void openStat(SysCtx &ctx, const ProcDesc &p, std::uint32_t pathHash);

  private:
    struct File
    {
        Addr vnode;
        Addr pollhead;
    };

    BumpAllocator procArena_;
    BumpAllocator fileArena_;
    Addr dnlcBase_; ///< directory name lookup cache
    std::vector<File> files_;

    FnId fnSyscall_, fnPoll_, fnRead_, fnWrite_, fnOpen_, fnStat_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_SYSCALL_HH
