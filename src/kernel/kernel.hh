/**
 * @file
 * The Kernel: the Solaris-like substrate tying together the
 * dispatcher, synchronization, VM, syscalls, STREAMS, IP, block
 * device and copy engine, plus thread lifecycle and the simulation
 * run loop.
 *
 * The run loop mirrors the paper's trace-collection setup: CPUs make
 * progress round-robin with in-order execution and no timing model;
 * each round a CPU dispatches a thread (emitting real scheduler
 * accesses) and runs one task quantum.
 */

#ifndef TSTREAM_KERNEL_KERNEL_HH
#define TSTREAM_KERNEL_KERNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "kernel/blockdev.hh"
#include "kernel/copy.hh"
#include "kernel/ctx.hh"
#include "kernel/dispatcher.hh"
#include "kernel/ip.hh"
#include "kernel/streams.hh"
#include "kernel/sync.hh"
#include "kernel/syscall.hh"
#include "kernel/thread.hh"
#include "kernel/vm.hh"
#include "mem/sim_alloc.hh"
#include "sim/engine.hh"

namespace tstream
{

/** Tunables of the kernel substrate. */
struct KernelConfig
{
    VmConfig vm;
    /** Fraction of quanta that model a register-window trap. */
    double windowTrapRate = 0.15;
};

/** The Solaris-like kernel substrate. */
class Kernel
{
  public:
    Kernel(Engine &eng, const KernelConfig &cfg = {});

    Engine &engine() { return eng_; }
    BumpAllocator &kernelHeap() { return kernelHeap_; }
    Dispatcher &dispatcher() { return *disp_; }
    SyncSubsys &sync() { return *sync_; }
    Vm &vm() { return *vm_; }
    CopyEngine &copy() { return *copy_; }
    BlockDev &blockdev() { return *blockdev_; }
    StreamsSubsys &streams() { return *streams_; }
    IpSubsys &ip() { return *ip_; }
    SyscallSubsys &syscalls() { return *syscalls_; }

    /** Allocate a mutex word in kernel space. */
    SimMutex makeMutex();

    /** Allocate a condition variable in kernel space. */
    SimCondVar makeCondVar();

    /**
     * Create a thread around @p task and make it runnable on
     * @p preferred_cpu's dispatch queue.
     */
    KThread *spawn(std::unique_ptr<Task> task, CpuId preferred_cpu,
                   int priority = 60);

    /**
     * Block the current thread on @p cv (cv_wait): the thread is
     * enqueued and will not be dispatched until cvWake() delivers it.
     * Valid only from inside a task quantum that then returns
     * RunResult::Blocked.
     */
    void cvBlock(SysCtx &ctx, SimCondVar &cv);

    /**
     * Wake one waiter of @p cv (cv_signal): moves it to a dispatch
     * queue.
     * @return true if a thread was woken.
     */
    bool cvWake(SysCtx &ctx, SimCondVar &cv);

    /**
     * Run the simulation until (approximately) @p instr_budget
     * instructions have been committed. Each round every CPU
     * dispatches and runs one quantum.
     */
    void run(std::uint64_t instr_budget);

    /** Number of live (runnable + blocked) threads. */
    std::size_t liveThreads() const { return liveThreads_; }

  private:
    Engine &eng_;
    KernelConfig cfg_;
    BumpAllocator kernelHeap_;
    BumpAllocator threadArena_;

    std::unique_ptr<SyncSubsys> sync_;
    std::unique_ptr<Dispatcher> disp_;
    std::unique_ptr<Vm> vm_;
    std::unique_ptr<CopyEngine> copy_;
    std::unique_ptr<BlockDev> blockdev_;
    std::unique_ptr<StreamsSubsys> streams_;
    std::unique_ptr<IpSubsys> ip_;
    std::unique_ptr<SyscallSubsys> syscalls_;

    std::vector<std::unique_ptr<KThread>> threads_;
    std::size_t liveThreads_ = 0;
    bool currentBlocked_ = false;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_KERNEL_HH
