/**
 * @file
 * The Solaris STREAMS subsystem: message-based I/O pipes.
 *
 * STREAMS implements stdio-style pipes as chains of thread-safe
 * message queues. putq/getq manipulate message-block (mblk) headers
 * and queue locks; both live at heavily reused kernel addresses, which
 * is why the paper finds ~80% of STREAMS misses inside temporal
 * streams (Section 5.1). Payload movement goes through the copy
 * engine (attributed to bulk copies, as in the paper's Table 2).
 */

#ifndef TSTREAM_KERNEL_STREAMS_HH
#define TSTREAM_KERNEL_STREAMS_HH

#include <cstdint>
#include <deque>

#include "kernel/copy.hh"
#include "kernel/ctx.hh"
#include "kernel/sync.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Shared mblk arena and function ids of the STREAMS subsystem. */
class StreamsSubsys
{
  public:
    StreamsSubsys(BumpAllocator &kernel_heap, SyncSubsys &sync,
                  CopyEngine &copy, FunctionRegistry &reg);

    RecyclingAllocator &mblkArena() { return mblks_; }
    SyncSubsys &sync() { return sync_; }
    CopyEngine &copy() { return copy_; }

    FnId fnPutq() const { return fnPutq_; }
    FnId fnGetq() const { return fnGetq_; }
    FnId fnAllocb() const { return fnAllocb_; }
    FnId fnStrread() const { return fnStrread_; }
    FnId fnStrwrite() const { return fnStrwrite_; }

  private:
    RecyclingAllocator mblks_;
    SyncSubsys &sync_;
    CopyEngine &copy_;
    FnId fnPutq_, fnGetq_, fnAllocb_, fnStrread_, fnStrwrite_;
};

/**
 * One unidirectional STREAMS queue (half of a pipe). Messages carry a
 * source user buffer's data into mblks on put, and copy out to a
 * destination user buffer on get.
 */
class StreamsQueue
{
  public:
    StreamsQueue(StreamsSubsys &subsys, BumpAllocator &kernel_heap);

    /**
     * strwrite/putq: allocate an mblk, copy @p len bytes from user
     * @p src into it, link it on the queue.
     */
    void put(SysCtx &ctx, Addr src, std::uint32_t len);

    /**
     * strread/getq: unlink the head message and copy it out to user
     * @p dst with non-allocating stores.
     * @return bytes delivered (0 if the queue was empty).
     */
    std::uint32_t get(SysCtx &ctx, Addr dst);

    bool empty() const { return msgs_.empty(); }
    std::size_t depth() const { return msgs_.size(); }

  private:
    struct Msg
    {
        Addr mblk;
        std::uint32_t len;
    };

    StreamsSubsys &subsys_;
    SimMutex qlock_;
    Addr qhead_; ///< q_first/q_count fields
    std::deque<Msg> msgs_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_STREAMS_HH
