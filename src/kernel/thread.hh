/**
 * @file
 * Kernel threads and the cooperative task model.
 *
 * Application behaviour is expressed as Task state machines; a KThread
 * is the kernel-visible schedulable entity wrapping a task, with a
 * simulated kthread structure whose fields the dispatcher reads and
 * writes (so scheduling itself produces the memory accesses the paper
 * attributes to the Solaris scheduler).
 */

#ifndef TSTREAM_KERNEL_THREAD_HH
#define TSTREAM_KERNEL_THREAD_HH

#include <cstdint>
#include <memory>

#include "mem/address.hh"
#include "trace/record.hh"

namespace tstream
{

class SysCtx;

/** Outcome of one task quantum. */
enum class RunResult : std::uint8_t
{
    Yield,   ///< still runnable; requeue on a dispatch queue
    Blocked, ///< waiting (I/O or condition variable); kernel wakes it
    Done,    ///< task finished; thread exits
};

/**
 * An application-behaviour state machine. run() executes one quantum
 * (one transaction step, one request stage, ...) and reports whether
 * the thread should be requeued, slept, or reaped.
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Execute one quantum on the context's CPU. */
    virtual RunResult run(SysCtx &ctx) = 0;
};

/** Kernel thread: scheduling state plus simulated kthread storage. */
class KThread
{
  public:
    /**
     * @param tstruct Simulated address of the kthread structure
     *                (2 cache blocks: t_pri/t_state in the first,
     *                 dispatch links in the second).
     * @param stack   Simulated stack base (for window spill/fill).
     * @param pri     Dispatch priority (higher runs first).
     */
    KThread(std::unique_ptr<Task> task, Addr tstruct, Addr stack,
            int pri)
        : task_(std::move(task)), tstruct_(tstruct), stack_(stack),
          pri_(pri)
    {
    }

    Task &task() { return *task_; }
    Addr tstruct() const { return tstruct_; }
    Addr stack() const { return stack_; }
    int priority() const { return pri_; }

    /** CPU the thread last ran on (affinity hint). */
    CpuId lastCpu() const { return lastCpu_; }
    void setLastCpu(CpuId c) { lastCpu_ = c; }

    /** Address of the dispatch-link field within the kthread. */
    Addr linkAddr() const { return tstruct_ + kBlockSize; }

    /** Address of the priority/state word. */
    Addr priAddr() const { return tstruct_; }

  private:
    std::unique_ptr<Task> task_;
    Addr tstruct_;
    Addr stack_;
    int pri_;
    CpuId lastCpu_ = 0;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_THREAD_HH
