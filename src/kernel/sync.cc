#include "kernel/sync.hh"

#include "kernel/thread.hh"

namespace tstream
{

SyncSubsys::SyncSubsys(BumpAllocator &kernel_heap, FunctionRegistry &reg)
{
    turnstileBase_ = kernel_heap.alloc(kBuckets * kBlockSize, kBlockSize);
    fnMutexEnter_ = reg.intern("mutex_enter", Category::KernelSync);
    fnMutexExit_ = reg.intern("mutex_exit", Category::KernelSync);
    fnTurnstile_ = reg.intern("turnstile_block", Category::KernelSync);
    fnCvWait_ = reg.intern("cv_wait_sig", Category::KernelSync);
    fnCvSignal_ = reg.intern("cv_signal", Category::KernelSync);
}

Addr
SyncSubsys::turnstileBucket(Addr lock) const
{
    return turnstileBase_ +
           (lock * 0x9e3779b97f4a7c15ull >> 40) % kBuckets * kBlockSize;
}

void
SimMutex::acquire(SysCtx &ctx)
{
    // Lock-word read; a CAS write claims ownership. When the word was
    // last written by another CPU this pair is a coherence transfer.
    ctx.read(addr_, 8, sync_.fnMutexEnter());
    if (held_ && holderCpu_ != static_cast<int>(ctx.cpu())) {
        // Adaptive spin: re-read the owner a couple of times, then
        // touch the turnstile bucket as if preparing to block.
        ctx.read(addr_, 8, sync_.fnMutexEnter());
        ctx.read(sync_.turnstileBucket(addr_), 16, sync_.fnTurnstile());
        ctx.exec(40);
    }
    ctx.write(addr_, 8, sync_.fnMutexEnter());
    ctx.exec(6);
    held_ = true;
    holderCpu_ = static_cast<int>(ctx.cpu());
}

void
SimMutex::release(SysCtx &ctx)
{
    ctx.write(addr_, 8, sync_.fnMutexExit());
    ctx.exec(4);
    held_ = false;
}

void
SimCondVar::enqueue(SysCtx &ctx, KThread *t)
{
    // cv word (waiter count) plus sleep-queue head and the thread's
    // own link field.
    ctx.read(addr_, 8, sync_.fnCvWait());
    ctx.write(addr_, 8, sync_.fnCvWait());
    ctx.write(sync_.turnstileBucket(addr_), 16, sync_.fnCvWait());
    ctx.write(t->linkAddr(), 16, sync_.fnCvWait());
    ctx.exec(30);
    sleepers_.push_back(t);
}

KThread *
SimCondVar::dequeue(SysCtx &ctx)
{
    ctx.read(addr_, 8, sync_.fnCvSignal());
    if (sleepers_.empty()) {
        ctx.exec(8);
        return nullptr;
    }
    KThread *t = sleepers_.front();
    sleepers_.pop_front();
    // Unlink the head of the sleep queue.
    ctx.read(sync_.turnstileBucket(addr_), 16, sync_.fnCvSignal());
    ctx.write(sync_.turnstileBucket(addr_), 16, sync_.fnCvSignal());
    ctx.read(t->linkAddr(), 16, sync_.fnCvSignal());
    ctx.write(addr_, 8, sync_.fnCvSignal());
    ctx.exec(35);
    return t;
}

} // namespace tstream
