/**
 * @file
 * SysCtx: the per-quantum execution context handed to emulators.
 *
 * Bundles the engine, the kernel, the current CPU and thread, and
 * provides the access helpers every emulator uses. User-space data
 * accesses go through userRead/userWrite, which consult the per-CPU
 * TLB model and may invoke the MMU trap handler (emitting the TSB
 * accesses the paper's "Kernel MMU & trap handlers" category counts).
 */

#ifndef TSTREAM_KERNEL_CTX_HH
#define TSTREAM_KERNEL_CTX_HH

#include <cstdint>

#include "mem/address.hh"
#include "sim/engine.hh"
#include "trace/categories.hh"

namespace tstream
{

class Kernel;
class KThread;

/** Execution context for one quantum of one thread on one CPU. */
class SysCtx
{
  public:
    SysCtx(Engine &eng, Kernel &kern, CpuId cpu, KThread *thread)
        : eng_(eng), kern_(kern), cpu_(cpu), thread_(thread)
    {
    }

    Engine &engine() { return eng_; }
    Kernel &kernel() { return kern_; }
    CpuId cpu() const { return cpu_; }
    KThread *thread() const { return thread_; }
    Rng &rng() { return eng_.rng(); }

    /** Kernel-space data read (no TLB model; kernel is locked in). */
    void
    read(Addr a, std::uint32_t size, FnId fn)
    {
        eng_.read(cpu_, a, size, fn);
    }

    /** Kernel-space data write. */
    void
    write(Addr a, std::uint32_t size, FnId fn)
    {
        eng_.write(cpu_, a, size, fn);
    }

    /** Pure compute cost. */
    void
    exec(std::uint32_t instrs)
    {
        eng_.exec(cpu_, instrs);
    }

    /** User-space read: TLB-checked (may emit MMU trap accesses). */
    void userRead(Addr a, std::uint32_t size, FnId fn);

    /** User-space write: TLB-checked. */
    void userWrite(Addr a, std::uint32_t size, FnId fn);

  private:
    Engine &eng_;
    Kernel &kern_;
    CpuId cpu_;
    KThread *thread_;
};

} // namespace tstream

#endif // TSTREAM_KERNEL_CTX_HH
