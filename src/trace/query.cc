#include "trace/query.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "core/stream_analysis.hh"

namespace tstream
{

namespace
{

constexpr char kArchiveMagic[4] = {'T', 'S', 'A', 'R'};
constexpr std::uint32_t kArchiveVersion = 1;
constexpr std::size_t kArchiveHeaderBytes = 24;
/** Fixed part of a catalog entry (before the name bytes). */
constexpr std::size_t kCatalogEntryFixedBytes = 7 * 8 + 2 * 4 + 2;
constexpr std::uint32_t kMaxArchiveMembers = 65535;

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** True for the content kinds whose cls column is an IntraClass. */
bool
kindIsIntra(TraceContentKind kind)
{
    return kind == TraceContentKind::IntraChip ||
           kind == TraceContentKind::IntraChipOnChip;
}

std::string_view
clsDisplayName(TraceContentKind kind, std::uint8_t cls)
{
    if (kindIsIntra(kind))
        return cls < kNumIntraClasses
                   ? intraClassName(static_cast<IntraClass>(cls))
                   : "<invalid>";
    return cls < kNumMissClasses
               ? missClassName(static_cast<MissClass>(cls))
               : "<invalid>";
}

std::size_t
numClassesFor(TraceContentKind kind)
{
    return kindIsIntra(kind) ? kNumIntraClasses : kNumMissClasses;
}

/** The spec's filters resolved against one trace's metadata. */
struct ResolvedFilters
{
    std::optional<std::uint8_t> cls;
    std::optional<FnId> fn;
    std::optional<Category> category;
    std::uint64_t seqLo = 0;
    std::uint64_t seqHi = ~std::uint64_t(0);
};

bool
resolveFilters(const TraceMeta &meta, const QuerySpec &spec,
               ResolvedFilters &out, std::string &err)
{
    if (!spec.cls.empty()) {
        const std::size_t n = numClassesFor(meta.kind);
        bool found = false;
        for (std::size_t c = 0; c < n; ++c)
            if (spec.cls == clsDisplayName(
                                meta.kind,
                                static_cast<std::uint8_t>(c))) {
                out.cls = static_cast<std::uint8_t>(c);
                found = true;
                break;
            }
        if (!found) {
            err = "unknown miss class '" + spec.cls + "' for a " +
                  std::string(traceContentKindName(meta.kind)) +
                  " trace";
            return false;
        }
    }
    if (!spec.module.empty() || !spec.category.empty()) {
        if (meta.functions.empty()) {
            err = "trace has no function table (module/category "
                  "filters need one; record with the v2 writer)";
            return false;
        }
    }
    if (!spec.module.empty()) {
        bool found = false;
        for (std::size_t id = 0; id < meta.functions.size(); ++id)
            if (meta.functions[id].name == spec.module) {
                out.fn = static_cast<FnId>(id);
                found = true;
                break;
            }
        if (!found) {
            err = "unknown module '" + spec.module +
                  "' (not in the trace's function table)";
            return false;
        }
    }
    if (!spec.category.empty()) {
        bool found = false;
        for (std::size_t c = 0; c < kNumCategories; ++c)
            if (spec.category ==
                categoryName(static_cast<Category>(c))) {
                out.category = static_cast<Category>(c);
                found = true;
                break;
            }
        if (!found) {
            err = "unknown category '" + spec.category + "'";
            return false;
        }
    }
    if (spec.seqLo)
        out.seqLo = *spec.seqLo;
    if (spec.seqHi)
        out.seqHi = *spec.seqHi;
    return true;
}

bool
matches(const MissRecord &m, const TraceMeta &meta,
        const QuerySpec &spec, const ResolvedFilters &f)
{
    if (m.seq < f.seqLo || m.seq >= f.seqHi)
        return false;
    if (spec.cpu && m.cpu != *spec.cpu)
        return false;
    if (f.cls && m.cls != *f.cls)
        return false;
    if (spec.blockLo && m.block < *spec.blockLo)
        return false;
    if (spec.blockHi && m.block >= *spec.blockHi)
        return false;
    if (f.fn && m.fn != *f.fn)
        return false;
    if (f.category) {
        const Category c =
            m.fn < meta.functions.size()
                ? meta.functions[m.fn].category
                : Category::Uncategorized;
        if (c != *f.category)
            return false;
    }
    return true;
}

/**
 * The effective aggregation window: the spec's bounds where given,
 * else the matched records' extent. Empty (lo >= hi) when nothing
 * pins it down.
 */
std::pair<std::uint64_t, std::uint64_t>
effectiveWindow(const QuerySpec &spec,
                const std::vector<MissRecord> &matched)
{
    std::uint64_t lo = 0, hi = 0;
    if (spec.seqLo)
        lo = *spec.seqLo;
    else if (!matched.empty())
        lo = matched.front().seq;
    if (spec.seqHi)
        hi = *spec.seqHi;
    else if (!matched.empty())
        hi = matched.back().seq + 1;
    return {lo, hi};
}

/** Split [lo, hi) into <= n equal-width intervals (last may be short). */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
splitIntervals(std::uint64_t lo, std::uint64_t hi, std::uint32_t n)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    if (hi <= lo)
        return out;
    const std::uint64_t span = hi - lo;
    const std::uint64_t width = (span + n - 1) / n;
    for (std::uint64_t start = lo; start < hi; start += width)
        out.emplace_back(start, std::min(hi, start + width));
    return out;
}

/** Fig2's denominator, expression-for-expression. */
double
pctDenominator(const StreamStats &s)
{
    return std::max<double>(1.0,
                            static_cast<double>(s.totalMisses));
}

/**
 * analyzeStreams() panics on cpu >= numCpus; a trace that decodes
 * cleanly can still carry such records (the cpu column is raw bytes),
 * so the stream aggregates check first and fail with a diagnostic.
 */
bool
cpusInRange(const std::vector<MissRecord> &recs, std::uint32_t numCpus)
{
    const std::uint32_t ncpu = std::max(1u, numCpus);
    for (const MissRecord &m : recs)
        if (m.cpu >= ncpu)
            return false;
    return true;
}

void
buildSummaryRows(const QueryOutput &out, std::vector<QueryRow> &rows)
{
    QueryRow row;
    row.table = "summary";
    row.text = fmt("matched %" PRIu64 " of %" PRIu64
                   " records (decoded %" PRIu64 " of %" PRIu64
                   " chunks)",
                   out.matched, out.scanned, out.chunksDecoded,
                   out.chunksTotal);
    row.metrics = {
        {"matched", static_cast<double>(out.matched)},
        {"scanned", static_cast<double>(out.scanned)},
        {"chunks_decoded", static_cast<double>(out.chunksDecoded)},
        {"chunks_total", static_cast<double>(out.chunksTotal)},
    };
    rows.push_back(std::move(row));
}

void
buildSelectRows(const TraceMeta &meta,
                const std::vector<MissRecord> &matched,
                std::uint64_t limit, std::vector<QueryRow> &rows)
{
    std::uint64_t n = 0;
    for (const MissRecord &m : matched) {
        if (limit > 0 && n >= limit)
            break;
        QueryRow row;
        row.table = "select";
        row.trace = std::to_string(m.seq);
        const std::string fn =
            m.fn < meta.functions.size() && !meta.functions.empty()
                ? meta.functions[m.fn].name
                : std::to_string(m.fn);
        row.label = fn;
        row.text = fmt("%-12" PRIu64 " %016" PRIx64 " %4u %-28s %s",
                       m.seq, static_cast<std::uint64_t>(m.block),
                       m.cpu,
                       std::string(clsDisplayName(meta.kind, m.cls))
                           .c_str(),
                       fn.c_str());
        row.metrics = {
            {"seq", static_cast<double>(m.seq)},
            {"block", static_cast<double>(m.block)},
            {"cpu", static_cast<double>(m.cpu)},
            {"cls", static_cast<double>(m.cls)},
            {"fn", static_cast<double>(m.fn)},
        };
        rows.push_back(std::move(row));
        ++n;
    }
}

void
buildCountRows(const TraceMeta &meta, const QuerySpec &spec,
               const std::vector<MissRecord> &matched,
               std::uint32_t intervals, std::vector<QueryRow> &rows)
{
    const auto [lo, hi] = effectiveWindow(spec, matched);
    const auto ivs = splitIntervals(lo, hi, intervals);
    const std::size_t nCls = numClassesFor(meta.kind);
    std::size_t next = 0; // matched is sorted by seq
    for (const auto &[a, b] : ivs) {
        std::uint64_t total = 0;
        std::vector<std::uint64_t> byCls(nCls, 0);
        while (next < matched.size() && matched[next].seq < b) {
            const MissRecord &m = matched[next++];
            if (m.seq < a)
                continue; // before the first interval
            ++total;
            if (m.cls < nCls)
                ++byCls[m.cls];
        }
        QueryRow row;
        row.table = "counts";
        row.trace = fmt("[%" PRIu64 ",%" PRIu64 ")", a, b);
        std::string text =
            fmt("%-28s %10" PRIu64, row.trace.c_str(), total);
        row.metrics = {
            {"seq_lo", static_cast<double>(a)},
            {"seq_hi", static_cast<double>(b)},
            {"misses", static_cast<double>(total)},
        };
        for (std::size_t c = 0; c < nCls; ++c) {
            const std::string name(clsDisplayName(
                meta.kind, static_cast<std::uint8_t>(c)));
            row.metrics.emplace_back(
                name, static_cast<double>(byCls[c]));
            text += fmt("  %s %" PRIu64, name.c_str(), byCls[c]);
        }
        row.text = std::move(text);
        rows.push_back(std::move(row));
    }
}

bool
buildStreamRows(const TraceMeta &meta,
                const std::vector<MissRecord> &matched,
                std::vector<QueryRow> &rows, std::string &err)
{
    if (!cpusInRange(matched, meta.numCpus)) {
        err = "stream aggregate: record cpu out of range for a " +
              std::to_string(meta.numCpus) + "-cpu trace";
        return false;
    }
    MissTrace t;
    t.misses = matched;
    t.instructions = meta.instructions;
    t.numCpus = meta.numCpus;
    const StreamStats s = analyzeStreams(t);
    const double tot = pctDenominator(s);

    QueryRow row;
    row.table = "streams";
    row.text = fmt("%9.1f%% %9.1f%% %11.1f%% %9.1f%%",
                   100.0 * s.nonRepetitive / tot,
                   100.0 * s.newStream / tot,
                   100.0 * s.recurringStream / tot,
                   100.0 * s.inStreamFraction());
    // Metric names and value expressions match
    // bench/fig2_stream_fraction.cc exactly, so an offline query row
    // over the same records is bit-identical to the live bench row
    // (the tools e2e chain asserts it through the JSON layer).
    row.metrics = {
        {"non_repetitive_pct", 100.0 * s.nonRepetitive / tot},
        {"new_stream_pct", 100.0 * s.newStream / tot},
        {"recurring_stream_pct", 100.0 * s.recurringStream / tot},
        {"in_streams_pct", 100.0 * s.inStreamFraction()},
    };
    rows.push_back(std::move(row));
    return true;
}

bool
buildLengthRows(const TraceMeta &meta, const QuerySpec &spec,
                const std::vector<MissRecord> &matched,
                std::uint32_t intervals, std::vector<QueryRow> &rows,
                std::string &err)
{
    if (!cpusInRange(matched, meta.numCpus)) {
        err = "lengths aggregate: record cpu out of range for a " +
              std::to_string(meta.numCpus) + "-cpu trace";
        return false;
    }
    const auto [lo, hi] = effectiveWindow(spec, matched);
    const auto ivs = splitIntervals(lo, hi, intervals);
    static constexpr std::uint64_t kLenPoints[] = {
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};

    std::size_t next = 0;
    for (const auto &[a, b] : ivs) {
        MissTrace t;
        t.instructions = meta.instructions;
        t.numCpus = meta.numCpus;
        while (next < matched.size() && matched[next].seq < b) {
            if (matched[next].seq >= a)
                t.misses.push_back(matched[next]);
            ++next;
        }
        const StreamStats s = analyzeStreams(t);

        // Weighted stream-length histogram: misses contributed by
        // streams of length in (point/2, point], plus an overflow
        // bucket — the per-interval view of Figure 4 (left).
        std::vector<std::uint64_t> buckets(
            std::size(kLenPoints) + 1, 0);
        for (const auto &[len, w] : s.lengthWeighted) {
            std::size_t slot = std::size(kLenPoints);
            for (std::size_t i = 0; i < std::size(kLenPoints); ++i)
                if (len <= kLenPoints[i]) {
                    slot = i;
                    break;
                }
            buckets[slot] += w;
        }

        QueryRow row;
        row.table = "lengths";
        row.trace = fmt("[%" PRIu64 ",%" PRIu64 ")", a, b);
        row.metrics = {
            {"seq_lo", static_cast<double>(a)},
            {"seq_hi", static_cast<double>(b)},
            {"misses", static_cast<double>(t.misses.size())},
            {"median_len", s.medianStreamLength()},
        };
        std::string text = fmt("%-28s median %6.0f |",
                               row.trace.c_str(),
                               s.medianStreamLength());
        for (std::size_t i = 0; i < std::size(kLenPoints); ++i) {
            row.metrics.emplace_back(
                fmt("len_le_%" PRIu64, kLenPoints[i]),
                static_cast<double>(buckets[i]));
            if (buckets[i] > 0)
                text += fmt(" <=%" PRIu64 ":%" PRIu64, kLenPoints[i],
                            buckets[i]);
        }
        row.metrics.emplace_back(
            "len_gt_4096",
            static_cast<double>(buckets[std::size(kLenPoints)]));
        if (buckets[std::size(kLenPoints)] > 0)
            text += fmt(" >4096:%" PRIu64,
                        buckets[std::size(kLenPoints)]);
        row.text = std::move(text);
        rows.push_back(std::move(row));
    }
    return true;
}

} // namespace

TraceResult<std::vector<MissRecord>>
queryRecords(TraceReader &reader, const QuerySpec &spec)
{
    using Result = TraceResult<std::vector<MissRecord>>;

    const TraceMeta &meta = reader.meta();
    ResolvedFilters f;
    std::string err;
    if (!resolveFilters(meta, spec, f, err))
        return Result::failure(err);

    // Index-driven chunk selection: only chunks that can overlap the
    // seq window are decoded (all of them when no window is set).
    const auto [lo, hi] = reader.chunkRangeForSeq(f.seqLo, f.seqHi);
    std::vector<MissRecord> out;
    for (std::size_t i = lo; i < hi; ++i) {
        auto chunk = reader.readChunk(i);
        if (!chunk)
            return Result::failure("chunk " + std::to_string(i) +
                                   ": " + chunk.error());
        for (const MissRecord &m : *chunk)
            if (matches(m, meta, spec, f))
                out.push_back(m);
    }
    return Result(std::move(out));
}

TraceResult<QueryOutput>
runQuery(TraceReader &reader, const QuerySpec &spec)
{
    using Result = TraceResult<QueryOutput>;

    std::vector<std::string> aggs = spec.aggregates;
    if (aggs.empty())
        aggs = {"summary", "select"};
    for (const std::string &a : aggs)
        if (a != "summary" && a != "select" && a != "counts" &&
            a != "streams" && a != "lengths")
            return Result::failure("unknown aggregate '" + a +
                                   "' (summary, select, counts, "
                                   "streams, lengths)");
    const std::uint32_t intervals =
        std::min<std::uint32_t>(4096,
                                std::max<std::uint32_t>(
                                    1, spec.intervals));

    auto matched = queryRecords(reader, spec);
    if (!matched)
        return Result::failure(matched.error());

    const TraceMeta &meta = reader.meta();
    QueryOutput out;
    out.matched = matched->size();
    out.chunksDecoded = reader.chunksDecoded();
    out.chunksTotal = meta.chunks.size();
    {
        ResolvedFilters f;
        std::string err;
        resolveFilters(meta, spec, f, err); // validated above
        const auto [lo, hi] =
            reader.chunkRangeForSeq(f.seqLo, f.seqHi);
        for (std::size_t i = lo; i < hi; ++i)
            out.scanned += meta.chunks[i].records;
    }

    std::string err;
    for (const std::string &a : aggs) {
        if (a == "summary") {
            buildSummaryRows(out, out.rows);
        } else if (a == "select") {
            buildSelectRows(meta, *matched, spec.limit, out.rows);
        } else if (a == "counts") {
            buildCountRows(meta, spec, *matched, intervals, out.rows);
        } else if (a == "streams") {
            if (!buildStreamRows(meta, *matched, out.rows, err))
                return Result::failure(err);
        } else if (a == "lengths") {
            if (!buildLengthRows(meta, spec, *matched, intervals,
                                 out.rows, err))
                return Result::failure(err);
        }
    }
    return Result(std::move(out));
}

// ---------------------------------------------------------------------------
// Merged archives
// ---------------------------------------------------------------------------

namespace
{

using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE *)>;

void
putU16(std::vector<unsigned char> &out, std::uint16_t v)
{
    out.push_back(static_cast<unsigned char>(v & 0xFF));
    out.push_back(static_cast<unsigned char>(v >> 8));
}

void
putU32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void
putU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint16_t
getU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::vector<unsigned char>
buildArchiveHeader(std::uint32_t memberCount,
                   std::uint64_t catalogOffset)
{
    std::vector<unsigned char> h;
    h.insert(h.end(), kArchiveMagic, kArchiveMagic + 4);
    putU32(h, kArchiveVersion);
    putU32(h, memberCount);
    putU32(h, 0); // flags, reserved
    putU64(h, catalogOffset);
    return h;
}

} // namespace

bool
TraceArchive::isArchive(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        return false;
    unsigned char magic[4];
    return std::fread(magic, 1, 4, f.get()) == 4 &&
           std::memcmp(magic, kArchiveMagic, 4) == 0;
}

TraceResult<TraceArchive>
TraceArchive::open(const std::string &path)
{
    using Result = TraceResult<TraceArchive>;

    FilePtr f(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        return Result::failure("cannot open " + path);
    std::fseek(f.get(), 0, SEEK_END);
    const long end = std::ftell(f.get());
    const std::uint64_t size =
        end < 0 ? 0 : static_cast<std::uint64_t>(end);

    unsigned char head[kArchiveHeaderBytes];
    if (size < kArchiveHeaderBytes ||
        std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        std::fread(head, 1, sizeof(head), f.get()) != sizeof(head))
        return Result::failure(path + ": truncated archive header");
    if (std::memcmp(head, kArchiveMagic, 4) != 0)
        return Result::failure(path +
                               ": bad magic (not a tstream archive)");
    const std::uint32_t version = getU32(head + 4);
    if (version != kArchiveVersion)
        return Result::failure(path + ": unsupported archive version " +
                               std::to_string(version));
    const std::uint32_t memberCount = getU32(head + 8);
    const std::uint64_t catalogOffset = getU64(head + 16);
    if (memberCount > kMaxArchiveMembers)
        return Result::failure(path + ": implausible member count");
    if (catalogOffset < kArchiveHeaderBytes || catalogOffset > size)
        return Result::failure(path + ": catalog offset out of range");

    TraceArchive ar;
    ar.path_ = path;
    if (std::fseek(f.get(),
                   static_cast<long>(catalogOffset), SEEK_SET) != 0)
        return Result::failure(path + ": unreadable catalog");
    std::uint64_t remaining = size - catalogOffset;
    for (std::uint32_t i = 0; i < memberCount; ++i) {
        unsigned char fixed[kCatalogEntryFixedBytes];
        if (remaining < sizeof(fixed) ||
            std::fread(fixed, 1, sizeof(fixed), f.get()) !=
                sizeof(fixed))
            return Result::failure(path + ": truncated catalog");
        remaining -= sizeof(fixed);

        ArchiveMember m;
        m.offset = getU64(fixed);
        m.bytes = getU64(fixed + 8);
        m.configHash = getU64(fixed + 16);
        m.records = getU64(fixed + 24);
        m.instructions = getU64(fixed + 32);
        m.seqFirst = getU64(fixed + 40);
        m.seqLast = getU64(fixed + 48);
        m.kind = static_cast<TraceContentKind>(getU32(fixed + 56));
        m.numCpus = getU32(fixed + 60);
        const std::uint16_t nameLen = getU16(fixed + 64);
        if (nameLen == 0 || nameLen > 255)
            return Result::failure(path +
                                   ": bad member name length");
        if (remaining < nameLen)
            return Result::failure(path + ": truncated catalog");
        m.name.resize(nameLen);
        if (std::fread(&m.name[0], 1, nameLen, f.get()) != nameLen)
            return Result::failure(path + ": truncated catalog");
        remaining -= nameLen;

        if (m.offset < kArchiveHeaderBytes ||
            m.offset > catalogOffset ||
            m.bytes > catalogOffset - m.offset)
            return Result::failure(path + ": member '" + m.name +
                                   "' extends outside the member "
                                   "region");
        if (ar.find(m.name) != nullptr)
            return Result::failure(path + ": duplicate member '" +
                                   m.name + "'");
        ar.members_.push_back(std::move(m));
    }
    if (remaining != 0)
        return Result::failure(path +
                               ": trailing bytes after catalog");
    return Result(std::move(ar));
}

const ArchiveMember *
TraceArchive::find(std::string_view name) const
{
    for (const ArchiveMember &m : members_)
        if (m.name == name)
            return &m;
    return nullptr;
}

TraceResult<TraceReader>
TraceArchive::openMember(const ArchiveMember &m,
                         const TraceOpenOptions &opts) const
{
    return TraceReader::openSlice(path_, m.offset, m.bytes, opts);
}

TraceResult<std::uint64_t>
mergeArchive(const std::vector<ArchiveInput> &inputs,
             const std::string &outPath)
{
    using Result = TraceResult<std::uint64_t>;

    if (inputs.empty())
        return Result::failure("merge-archive needs at least one "
                               "member");
    if (inputs.size() > kMaxArchiveMembers)
        return Result::failure("too many members");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].name.empty() || inputs[i].name.size() > 255)
            return Result::failure("member name must be 1..255 bytes");
        for (std::size_t j = 0; j < i; ++j)
            if (inputs[j].name == inputs[i].name)
                return Result::failure("duplicate member name '" +
                                       inputs[i].name + "'");
    }

    FilePtr out(std::fopen(outPath.c_str(), "wb"), &std::fclose);
    if (!out)
        return Result::failure("cannot write " + outPath);

    // Placeholder header; catalog offset patched once it is known
    // (same crash-consistency pattern as the v2 trace writer).
    auto header = buildArchiveHeader(
        static_cast<std::uint32_t>(inputs.size()), 0);
    if (std::fwrite(header.data(), 1, header.size(), out.get()) !=
        header.size())
        return Result::failure("cannot write " + outPath);

    std::uint64_t pos = kArchiveHeaderBytes;
    std::vector<ArchiveMember> members;
    for (const ArchiveInput &in : inputs) {
        // Validate the member and lift its header + seq extents into
        // the catalog entry.
        auto reader = TraceReader::open(in.path);
        if (!reader)
            return Result::failure(in.name + ": " + reader.error());
        const TraceMeta &meta = reader->meta();

        ArchiveMember m;
        m.name = in.name;
        m.offset = pos;
        m.configHash = meta.configHash;
        m.records = meta.recordCount;
        m.instructions = meta.instructions;
        m.kind = meta.kind;
        m.numCpus = meta.numCpus;
        if (!meta.chunks.empty()) {
            m.seqFirst = meta.chunks.front().firstSeq;
            auto last =
                reader->readChunk(meta.chunks.size() - 1);
            if (!last)
                return Result::failure(in.name + ": " + last.error());
            if (!last->empty())
                m.seqLast = last->back().seq;
        }

        FilePtr src(std::fopen(in.path.c_str(), "rb"), &std::fclose);
        if (!src)
            return Result::failure("cannot reopen " + in.path);
        unsigned char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), src.get())) > 0) {
            if (std::fwrite(buf, 1, n, out.get()) != n)
                return Result::failure("cannot write " + outPath);
            m.bytes += n;
        }
        if (std::ferror(src.get()))
            return Result::failure("cannot read " + in.path);
        pos += m.bytes;
        members.push_back(std::move(m));
    }

    const std::uint64_t catalogOffset = pos;
    std::vector<unsigned char> catalog;
    for (const ArchiveMember &m : members) {
        putU64(catalog, m.offset);
        putU64(catalog, m.bytes);
        putU64(catalog, m.configHash);
        putU64(catalog, m.records);
        putU64(catalog, m.instructions);
        putU64(catalog, m.seqFirst);
        putU64(catalog, m.seqLast);
        putU32(catalog, static_cast<std::uint32_t>(m.kind));
        putU32(catalog, m.numCpus);
        putU16(catalog, static_cast<std::uint16_t>(m.name.size()));
        catalog.insert(catalog.end(), m.name.data(),
                       m.name.data() + m.name.size());
    }
    if (std::fwrite(catalog.data(), 1, catalog.size(), out.get()) !=
        catalog.size())
        return Result::failure("cannot write " + outPath);

    header = buildArchiveHeader(
        static_cast<std::uint32_t>(members.size()), catalogOffset);
    if (std::fseek(out.get(), 0, SEEK_SET) != 0 ||
        std::fwrite(header.data(), 1, header.size(), out.get()) !=
            header.size() ||
        std::fflush(out.get()) != 0)
        return Result::failure("cannot write " + outPath);
    return Result(static_cast<std::uint64_t>(members.size()));
}

} // namespace tstream
