#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/logging.hh"

namespace tstream
{

namespace
{

constexpr char kMagic[4] = {'T', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

/** On-disk record layout (packed manually for portability). */
constexpr std::size_t kRecordBytes = 8 + 8 + 1 + 1 + 2;

void
putU32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void
putU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

bool
saveTrace(const MissTrace &trace, const std::string &path)
{
    std::vector<unsigned char> buf;
    buf.reserve(24 + trace.misses.size() * kRecordBytes);
    buf.insert(buf.end(), kMagic, kMagic + 4);
    putU32(buf, kVersion);
    putU32(buf, trace.numCpus);
    putU64(buf, trace.instructions);
    putU64(buf, trace.misses.size());
    for (const MissRecord &m : trace.misses) {
        putU64(buf, m.seq);
        putU64(buf, m.block);
        buf.push_back(m.cpu);
        buf.push_back(m.cls);
        buf.push_back(static_cast<unsigned char>(m.fn & 0xFF));
        buf.push_back(static_cast<unsigned char>(m.fn >> 8));
    }

    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        return false;
    return std::fwrite(buf.data(), 1, buf.size(), f.get()) ==
           buf.size();
}

MissTrace
loadTrace(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        fatal("loadTrace: cannot open " + path);

    std::fseek(f.get(), 0, SEEK_END);
    const long size = std::ftell(f.get());
    std::fseek(f.get(), 0, SEEK_SET);
    panicIf(size < 28, "loadTrace: truncated header");
    std::vector<unsigned char> buf(static_cast<std::size_t>(size));
    if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size())
        fatal("loadTrace: short read on " + path);

    if (std::memcmp(buf.data(), kMagic, 4) != 0)
        fatal("loadTrace: bad magic in " + path);
    const std::uint32_t version = getU32(buf.data() + 4);
    if (version != kVersion)
        fatal("loadTrace: unsupported version in " + path);

    MissTrace trace;
    trace.numCpus = getU32(buf.data() + 8);
    trace.instructions = getU64(buf.data() + 12);
    const std::uint64_t count = getU64(buf.data() + 20);
    panicIf(buf.size() != 28 + count * kRecordBytes,
            "loadTrace: size mismatch");

    trace.misses.reserve(static_cast<std::size_t>(count));
    const unsigned char *p = buf.data() + 28;
    for (std::uint64_t i = 0; i < count; ++i, p += kRecordBytes) {
        MissRecord m;
        m.seq = getU64(p);
        m.block = getU64(p + 8);
        m.cpu = p[16];
        m.cls = p[17];
        m.fn = static_cast<FnId>(p[18] | (p[19] << 8));
        trace.misses.push_back(m);
    }
    return trace;
}

} // namespace tstream
