#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <set>

#if defined(__unix__) || defined(__APPLE__)
#define TSTREAM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tstream
{

namespace
{

constexpr char kMagic[4] = {'T', 'S', 'T', 'R'};

// ---- v1 (legacy) constants -------------------------------------------------

constexpr std::size_t kV1HeaderBytes = 28;
constexpr std::size_t kV1RecordBytes = 8 + 8 + 1 + 1 + 2;

// ---- v2 constants ----------------------------------------------------------

constexpr std::uint32_t kV2HeaderBytes = 72;
constexpr std::size_t kIndexEntryBytes = 24;
constexpr std::size_t kFieldEntryBytes = 8;

/** Field ids of the v2 per-field descriptor table. */
enum FieldId : std::uint8_t
{
    kFieldSeq = 1,
    kFieldBlock = 2,
    kFieldCpu = 3,
    kFieldCls = 4,
    kFieldFn = 5,
};

/** Field encodings of the v2 descriptor table. */
enum FieldEncoding : std::uint8_t
{
    kEncFixed = 0,       ///< raw little-endian, widthBits wide
    kEncDeltaVarint = 1, ///< zigzag delta from previous record, varint
    kEncVarint = 2,      ///< plain varint
};

/** The descriptor table v2 writers emit (and readers require). */
constexpr TraceField kV2Fields[] = {
    {kFieldSeq, kEncDeltaVarint, 64},
    {kFieldBlock, kEncDeltaVarint, 64},
    {kFieldCpu, kEncFixed, 8},
    {kFieldCls, kEncFixed, 8},
    {kFieldFn, kEncVarint, 16},
};
constexpr std::uint32_t kV2FieldCount =
    sizeof(kV2Fields) / sizeof(kV2Fields[0]);

/** Upper bound on an encoded record (varints maxed out). */
constexpr std::size_t kMaxEncodedRecordBytes = 10 + 10 + 1 + 1 + 3;

/** Lower bound on an encoded record (every column one byte). */
constexpr std::size_t kMinEncodedRecordBytes = 5;

/**
 * Upper bound on LZ4 expansion: one extension byte can add at most
 * 255 bytes of match output. Used to reject index entries whose
 * claimed record count could not fit in their stored bytes, so a
 * tiny crafted file cannot demand a huge decode allocation.
 */
std::uint64_t
maxRawBytes(std::uint64_t storedBytes)
{
    return 255 * storedBytes + 64;
}

/** Records per synthetic chunk when presenting a v1 file. */
constexpr std::uint64_t kV1ChunkRecords = 1 << 20;

/**
 * Writer-side ceiling on records per chunk: keeps even a worst-case
 * encoded chunk (25 B/record) far below the u32 chunk-size fields,
 * so oversized --chunk-records requests cannot wrap them.
 */
constexpr std::uint32_t kMaxChunkRecords = 1 << 24;

// ---- little-endian scalar helpers ------------------------------------------

void
putU16(std::vector<unsigned char> &out, std::uint16_t v)
{
    out.push_back(static_cast<unsigned char>(v & 0xFF));
    out.push_back(static_cast<unsigned char>(v >> 8));
}

void
putU32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void
putU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint16_t
getU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

// ---- varint / zigzag --------------------------------------------------------

void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

bool
getVarint(const unsigned char *&p, const unsigned char *end,
          std::uint64_t &v)
{
    v = 0;
    for (int shift = 0; p < end && shift < 64; shift += 7) {
        const unsigned char b = *p++;
        v |= std::uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false;
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
}

// ---- chunk payload encoding (column-major; see docs/TRACE_FORMAT.md) -------

std::vector<unsigned char>
encodeChunk(const MissRecord *recs, std::size_t n)
{
    std::vector<unsigned char> out;
    out.reserve(n * 6); // typical: small deltas
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        putVarint(out, zigzag(std::int64_t(recs[i].seq - prev)));
        prev = recs[i].seq;
    }
    prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        putVarint(out, zigzag(std::int64_t(recs[i].block - prev)));
        prev = recs[i].block;
    }
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(recs[i].cpu);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(recs[i].cls);
    for (std::size_t i = 0; i < n; ++i)
        putVarint(out, recs[i].fn);
    return out;
}

bool
decodeChunk(const unsigned char *p, std::size_t bytes, std::size_t n,
            std::vector<MissRecord> &out)
{
    const unsigned char *end = p + bytes;
    out.resize(n);
    std::uint64_t prev = 0, v = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!getVarint(p, end, v))
            return false;
        prev = std::uint64_t(std::int64_t(prev) + unzigzag(v));
        out[i].seq = prev;
    }
    prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!getVarint(p, end, v))
            return false;
        prev = std::uint64_t(std::int64_t(prev) + unzigzag(v));
        out[i].block = prev;
    }
    if (std::size_t(end - p) < 2 * n)
        return false;
    for (std::size_t i = 0; i < n; ++i)
        out[i].cpu = *p++;
    for (std::size_t i = 0; i < n; ++i)
        out[i].cls = *p++;
    for (std::size_t i = 0; i < n; ++i) {
        if (!getVarint(p, end, v) || v > 0xFFFF)
            return false;
        out[i].fn = static_cast<FnId>(v);
    }
    return p == end;
}

// ---- stdio helpers ----------------------------------------------------------

using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE *)>;

bool
writeAll(std::FILE *f, const unsigned char *p, std::size_t n)
{
    return std::fwrite(p, 1, n, f) == n;
}

bool
readAt(std::FILE *f, std::uint64_t off, unsigned char *p, std::size_t n)
{
    if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0)
        return false;
    return std::fread(p, 1, n, f) == n;
}

std::uint64_t
fileSize(std::FILE *f)
{
    std::fseek(f, 0, SEEK_END);
    const long s = std::ftell(f);
    return s < 0 ? 0 : static_cast<std::uint64_t>(s);
}

// ---- v1 writer --------------------------------------------------------------

bool
saveTraceV1(const MissTrace &trace, const std::string &path)
{
    std::vector<unsigned char> buf;
    buf.reserve(kV1HeaderBytes + trace.misses.size() * kV1RecordBytes);
    buf.insert(buf.end(), kMagic, kMagic + 4);
    putU32(buf, 1);
    putU32(buf, trace.numCpus);
    putU64(buf, trace.instructions);
    putU64(buf, trace.misses.size());
    for (const MissRecord &m : trace.misses) {
        putU64(buf, m.seq);
        putU64(buf, m.block);
        buf.push_back(m.cpu);
        buf.push_back(m.cls);
        putU16(buf, m.fn);
    }

    FilePtr f(std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        return false;
    return writeAll(f.get(), buf.data(), buf.size());
}

// ---- v2 writer --------------------------------------------------------------

std::vector<unsigned char>
buildV2Header(const MissTrace &trace, const TraceWriteOptions &opts,
              std::uint32_t chunkRecords, std::uint32_t chunkCount,
              std::uint64_t indexOffset)
{
    std::vector<unsigned char> h;
    h.reserve(kV2HeaderBytes);
    h.insert(h.end(), kMagic, kMagic + 4);
    putU32(h, 2);
    putU32(h, kV2HeaderBytes);
    putU32(h, trace.numCpus);
    putU32(h, static_cast<std::uint32_t>(opts.kind));
    putU32(h, static_cast<std::uint32_t>(opts.codec));
    putU32(h, chunkRecords);
    putU32(h, chunkCount);
    putU64(h, trace.instructions);
    putU64(h, trace.misses.size());
    putU64(h, opts.configHash);
    putU64(h, indexOffset);
    putU32(h, kV2FieldCount);
    putU32(h, 0); // flags, reserved
    return h;
}

bool
saveTraceV2(const MissTrace &trace, const std::string &path,
            const TraceWriteOptions &opts)
{
    const Codec *codec =
        codecById(static_cast<std::uint32_t>(opts.codec));
    if (!codec)
        return false;
    const std::uint32_t chunkRecords = std::min(
        kMaxChunkRecords, std::max<std::uint32_t>(1, opts.chunkRecords));

    // Field descriptor table + optional function table.
    std::vector<unsigned char> tables;
    for (const TraceField &fld : kV2Fields) {
        tables.push_back(fld.id);
        tables.push_back(fld.encoding);
        putU16(tables, fld.widthBits);
        putU32(tables, 0); // reserved
    }
    const std::size_t fnCount = opts.registry ? opts.registry->size() : 0;
    putU32(tables, static_cast<std::uint32_t>(fnCount));
    for (std::size_t id = 0; id < fnCount; ++id) {
        const std::string &name =
            opts.registry->name(static_cast<FnId>(id));
        const std::size_t len = std::min<std::size_t>(name.size(), 255);
        putU16(tables, static_cast<std::uint16_t>(id));
        tables.push_back(static_cast<unsigned char>(
            opts.registry->category(static_cast<FnId>(id))));
        tables.push_back(static_cast<unsigned char>(len));
        tables.insert(tables.end(), name.data(), name.data() + len);
    }

    FilePtr f(std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        return false;

    // Placeholder header (chunk count / index offset patched at end).
    auto header = buildV2Header(trace, opts, chunkRecords, 0, 0);
    if (!writeAll(f.get(), header.data(), header.size()) ||
        !writeAll(f.get(), tables.data(), tables.size()))
        return false;

    std::uint64_t pos = kV2HeaderBytes + tables.size();
    std::vector<TraceChunk> index;
    for (std::size_t start = 0; start < trace.misses.size();
         start += chunkRecords) {
        const std::size_t n = std::min<std::size_t>(
            chunkRecords, trace.misses.size() - start);
        const auto raw = encodeChunk(trace.misses.data() + start, n);
        std::vector<unsigned char> packed;
        if (opts.codec != CodecId::None && !raw.empty())
            packed = codec->compress(raw.data(), raw.size());
        const bool usePacked =
            !packed.empty() && packed.size() < raw.size();
        const auto &payload = usePacked ? packed : raw;

        std::vector<unsigned char> chunkHeader;
        putU32(chunkHeader, static_cast<std::uint32_t>(raw.size()));
        putU32(chunkHeader, static_cast<std::uint32_t>(payload.size()));
        if (!writeAll(f.get(), chunkHeader.data(), chunkHeader.size()) ||
            !writeAll(f.get(), payload.data(), payload.size()))
            return false;

        TraceChunk c;
        c.offset = pos;
        c.firstSeq = trace.misses[start].seq;
        c.records = static_cast<std::uint32_t>(n);
        c.storedBytes = static_cast<std::uint32_t>(payload.size());
        index.push_back(c);
        pos += 8 + payload.size();
    }

    const std::uint64_t indexOffset = pos;
    std::vector<unsigned char> indexBytes;
    indexBytes.reserve(index.size() * kIndexEntryBytes);
    for (const TraceChunk &c : index) {
        putU64(indexBytes, c.offset);
        putU64(indexBytes, c.firstSeq);
        putU32(indexBytes, c.records);
        putU32(indexBytes, c.storedBytes);
    }
    if (!writeAll(f.get(), indexBytes.data(), indexBytes.size()))
        return false;

    header = buildV2Header(trace, opts, chunkRecords,
                           static_cast<std::uint32_t>(index.size()),
                           indexOffset);
    if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        !writeAll(f.get(), header.data(), header.size()))
        return false;
    return std::fflush(f.get()) == 0;
}

} // namespace

std::string_view
traceContentKindName(TraceContentKind k)
{
    switch (k) {
      case TraceContentKind::Unknown: return "unknown";
      case TraceContentKind::OffChip: return "off-chip";
      case TraceContentKind::IntraChip: return "intra-chip";
      case TraceContentKind::IntraChipOnChip:
        return "intra-chip (on-chip-satisfied)";
    }
    return "?";
}

bool
saveTrace(const MissTrace &trace, const std::string &path,
          const TraceWriteOptions &opts)
{
    if (opts.version == 1)
        return saveTraceV1(trace, path);
    if (opts.version == 2)
        return saveTraceV2(trace, path, opts);
    return false;
}

TraceResult<TraceReader>
TraceReader::open(const std::string &path, const TraceOpenOptions &opts)
{
    return openImpl(path, 0, std::nullopt, opts);
}

TraceResult<TraceReader>
TraceReader::openSlice(const std::string &path, std::uint64_t offset,
                       std::uint64_t bytes, const TraceOpenOptions &opts)
{
    return openImpl(path, offset, bytes, opts);
}

bool
TraceReader::readBytes(std::uint64_t off, unsigned char *p,
                       std::size_t n) const
{
    if (n == 0)
        return true;
    if (off > size_ || n > size_ - off)
        return false;
    if (map_ != nullptr) {
        std::memcpy(p, map_ + base_ + off, n);
        return true;
    }
    return readAt(file_.get(), base_ + off, p, n);
}

const unsigned char *
TraceReader::viewBytes(std::uint64_t off, std::size_t n) const
{
    if (map_ == nullptr || off > size_ || n > size_ - off)
        return nullptr;
    return map_ + base_ + off;
}

TraceResult<TraceReader>
TraceReader::openImpl(const std::string &path, std::uint64_t offset,
                      std::optional<std::uint64_t> bytes,
                      const TraceOpenOptions &opts)
{
    using Result = TraceResult<TraceReader>;

    TraceReader r;
    r.file_.reset(std::fopen(path.c_str(), "rb"));
    if (!r.file_)
        return Result::failure("cannot open " + path);
    std::FILE *f = r.file_.get();
    const std::uint64_t fileBytes = fileSize(f);
    if (offset > fileBytes || (bytes && *bytes > fileBytes - offset))
        return Result::failure(path + ": slice extends past end of file");
    r.base_ = offset;
    r.size_ = bytes ? *bytes : fileBytes - offset;
    const std::uint64_t size = r.size_;

#ifdef TSTREAM_HAVE_MMAP
    // Map the whole file (the slice is a view into it); a failed mmap
    // silently selects the stdio path, which returns identical bytes.
    if (opts.allowMmap && fileBytes > 0) {
        void *m = ::mmap(nullptr, static_cast<std::size_t>(fileBytes),
                         PROT_READ, MAP_PRIVATE, ::fileno(f), 0);
        if (m != MAP_FAILED) {
            const std::size_t len = static_cast<std::size_t>(fileBytes);
            r.mapping_ = std::shared_ptr<const void>(
                m, [len](const void *p) {
                    ::munmap(const_cast<void *>(p), len);
                });
            r.map_ = static_cast<const unsigned char *>(m);
        }
    }
#else
    (void)opts;
#endif

    unsigned char head[kV2HeaderBytes];
    if (size < 8 || !r.readBytes(0, head, 8))
        return Result::failure(path + ": truncated header");
    if (std::memcmp(head, kMagic, 4) != 0)
        return Result::failure(path + ": bad magic (not a tstream trace)");
    const std::uint32_t version = getU32(head + 4);
    TraceMeta &m = r.meta_;
    m.version = version;

    if (version == 1) {
        if (size < kV1HeaderBytes ||
            !r.readBytes(0, head, kV1HeaderBytes))
            return Result::failure(path + ": truncated v1 header");
        m.numCpus = getU32(head + 8);
        m.instructions = getU64(head + 12);
        m.recordCount = getU64(head + 20);
        m.codec = static_cast<std::uint32_t>(CodecId::None);
        m.chunkRecords = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            m.recordCount, 0xFFFFFFFFu));
        for (const TraceField &fld : kV2Fields)
            m.fields.push_back({fld.id, kEncFixed, fld.widthBits});
        if (size != kV1HeaderBytes + m.recordCount * kV1RecordBytes)
            return Result::failure(path + ": v1 size mismatch");
        // Present the flat v1 payload as bounded synthetic chunks so
        // the chunk fields never overflow u32 and readers stream v1
        // files too.
        for (std::uint64_t start = 0; start < m.recordCount;
             start += kV1ChunkRecords) {
            const std::uint64_t n =
                std::min(kV1ChunkRecords, m.recordCount - start);
            TraceChunk c;
            c.offset = kV1HeaderBytes + start * kV1RecordBytes;
            c.records = static_cast<std::uint32_t>(n);
            c.storedBytes =
                static_cast<std::uint32_t>(n * kV1RecordBytes);
            unsigned char first[8];
            if (!r.readBytes(c.offset, first, 8))
                return Result::failure(path + ": unreadable v1 payload");
            c.firstSeq = getU64(first);
            if (!m.chunks.empty() && c.firstSeq < m.chunks.back().firstSeq)
                return Result::failure(
                    path + ": chunk index firstSeq not non-decreasing");
            m.chunks.push_back(c);
        }
        return Result(std::move(r));
    }

    if (version != 2)
        return Result::failure(path + ": unsupported version " +
                               std::to_string(version));

    if (size < kV2HeaderBytes || !r.readBytes(0, head, kV2HeaderBytes))
        return Result::failure(path + ": truncated v2 header");
    const std::uint32_t headerBytes = getU32(head + 8);
    if (headerBytes < kV2HeaderBytes || headerBytes > 4096 ||
        headerBytes > size)
        return Result::failure(path + ": implausible header size");
    m.numCpus = getU32(head + 12);
    m.kind = static_cast<TraceContentKind>(getU32(head + 16));
    m.codec = getU32(head + 20);
    m.chunkRecords = getU32(head + 24);
    const std::uint32_t chunkCount = getU32(head + 28);
    m.instructions = getU64(head + 32);
    m.recordCount = getU64(head + 40);
    m.configHash = getU64(head + 48);
    const std::uint64_t indexOffset = getU64(head + 56);
    const std::uint32_t fieldCount = getU32(head + 64);

    if (!codecById(m.codec))
        return Result::failure(path + ": unknown codec id " +
                               std::to_string(m.codec));
    if (fieldCount > 64)
        return Result::failure(path + ": implausible field count");

    // Field descriptor table: this reader requires the exact layout
    // it knows how to decode; the descriptors exist so that mismatch
    // is a diagnosable error, not a misparse.
    std::vector<unsigned char> fields(fieldCount * kFieldEntryBytes);
    if (!fields.empty() &&
        !r.readBytes(headerBytes, fields.data(), fields.size()))
        return Result::failure(path + ": truncated field table");
    for (std::uint32_t i = 0; i < fieldCount; ++i) {
        const unsigned char *p = fields.data() + i * kFieldEntryBytes;
        m.fields.push_back({p[0], p[1], getU16(p + 2)});
    }
    if (fieldCount != kV2FieldCount)
        return Result::failure(path + ": unsupported field layout");
    for (std::uint32_t i = 0; i < kV2FieldCount; ++i)
        if (m.fields[i].id != kV2Fields[i].id ||
            m.fields[i].encoding != kV2Fields[i].encoding)
            return Result::failure(path + ": unsupported field layout");

    // Function table.
    std::uint64_t cursor =
        headerBytes + std::uint64_t(fieldCount) * kFieldEntryBytes;
    unsigned char cnt[4];
    if (!r.readBytes(cursor, cnt, 4))
        return Result::failure(path + ": truncated function table");
    cursor += 4;
    const std::uint32_t fnCount = getU32(cnt);
    if (fnCount > 0xFFFF)
        return Result::failure(path + ": implausible function count");
    m.functions.reserve(fnCount);
    for (std::uint32_t i = 0; i < fnCount; ++i) {
        unsigned char entry[4];
        if (!r.readBytes(cursor, entry, 4))
            return Result::failure(path + ": truncated function table");
        cursor += 4;
        const std::uint16_t id = getU16(entry);
        const std::uint8_t cat = entry[2];
        const std::uint8_t len = entry[3];
        if (id != i)
            return Result::failure(path +
                                   ": non-sequential function table");
        if (cat >= kNumCategories)
            return Result::failure(path +
                                   ": bad category in function table");
        std::string name(len, '\0');
        if (len > 0 &&
            !r.readBytes(cursor,
                         reinterpret_cast<unsigned char *>(&name[0]),
                         len))
            return Result::failure(path + ": truncated function table");
        cursor += len;
        m.functions.push_back(
            {std::move(name), static_cast<Category>(cat)});
    }

    // Chunk index.
    if (indexOffset > size ||
        size - indexOffset < std::uint64_t(chunkCount) * kIndexEntryBytes)
        return Result::failure(path + ": truncated chunk index");
    std::vector<unsigned char> idx(std::size_t(chunkCount) *
                                   kIndexEntryBytes);
    if (!idx.empty() &&
        !r.readBytes(indexOffset, idx.data(), idx.size()))
        return Result::failure(path + ": unreadable chunk index");
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < chunkCount; ++i) {
        const unsigned char *p = idx.data() + i * kIndexEntryBytes;
        TraceChunk c;
        c.offset = getU64(p);
        c.firstSeq = getU64(p + 8);
        c.records = getU32(p + 16);
        c.storedBytes = getU32(p + 20);
        if (c.offset + 8 + c.storedBytes > size)
            return Result::failure(path + ": chunk " +
                                   std::to_string(i) +
                                   " extends past end of file");
        if (std::uint64_t(c.records) * kMinEncodedRecordBytes >
            maxRawBytes(c.storedBytes))
            return Result::failure(path + ": chunk " +
                                   std::to_string(i) +
                                   " claims an implausible record "
                                   "count");
        // chunkRangeForSeq() binary-searches this column; a
        // non-monotone index would make it disagree with a full scan,
        // so it is rejected here rather than trusted.
        if (!m.chunks.empty() && c.firstSeq < m.chunks.back().firstSeq)
            return Result::failure(path + ": chunk index firstSeq not "
                                          "non-decreasing at chunk " +
                                   std::to_string(i));
        total += c.records;
        m.chunks.push_back(c);
    }
    if (total != m.recordCount)
        return Result::failure(path + ": record count mismatch (index " +
                               std::to_string(total) + ", header " +
                               std::to_string(m.recordCount) + ")");
    return Result(std::move(r));
}

TraceResult<std::vector<MissRecord>>
TraceReader::readChunk(std::size_t index)
try {
    using Result = TraceResult<std::vector<MissRecord>>;

    if (index >= meta_.chunks.size())
        return Result::failure("chunk index out of range");
    const TraceChunk &c = meta_.chunks[index];

    std::vector<MissRecord> out;
    if (meta_.version == 1) {
        std::vector<unsigned char> buf;
        const unsigned char *p = viewBytes(c.offset, c.storedBytes);
        if (p == nullptr) {
            buf.resize(c.storedBytes);
            if (!readBytes(c.offset, buf.data(), buf.size()))
                return Result::failure("short read on v1 records");
            p = buf.data();
        }
        out.resize(c.records);
        for (std::uint32_t i = 0; i < c.records;
             ++i, p += kV1RecordBytes) {
            out[i].seq = getU64(p);
            out[i].block = getU64(p + 8);
            out[i].cpu = p[16];
            out[i].cls = p[17];
            out[i].fn = static_cast<FnId>(getU16(p + 18));
        }
    } else {
        unsigned char chunkHeader[8];
        if (!readBytes(c.offset, chunkHeader, 8))
            return Result::failure("short read on chunk header");
        const std::uint32_t rawBytes = getU32(chunkHeader);
        const std::uint32_t storedBytes = getU32(chunkHeader + 4);
        if (storedBytes != c.storedBytes)
            return Result::failure("chunk/index size disagreement");
        if (rawBytes < storedBytes ||
            rawBytes < c.records * kMinEncodedRecordBytes ||
            rawBytes > c.records * kMaxEncodedRecordBytes + 16 ||
            rawBytes > maxRawBytes(storedBytes))
            return Result::failure("implausible chunk payload size");

        // Zero-copy when mapped: the stored payload is used in place;
        // a raw-stored (incompressible) chunk decodes straight out of
        // the page cache with no intermediate buffer at all.
        std::vector<unsigned char> stored;
        const unsigned char *storedPtr =
            viewBytes(c.offset + 8, storedBytes);
        if (storedPtr == nullptr) {
            stored.resize(storedBytes);
            if (storedBytes > 0 &&
                !readBytes(c.offset + 8, stored.data(), storedBytes))
                return Result::failure("short read on chunk payload");
            storedPtr = stored.data();
        }

        std::vector<unsigned char> raw;
        const unsigned char *payload = storedPtr;
        if (storedBytes != rawBytes) {
            const Codec *codec = codecById(meta_.codec);
            raw.resize(rawBytes);
            if (!codec->decompress(storedPtr, storedBytes, raw.data(),
                                   rawBytes))
                return Result::failure("corrupt compressed chunk");
            payload = raw.data();
        }

        if (!decodeChunk(payload, rawBytes, c.records, out))
            return Result::failure("corrupt chunk encoding");
    }

    // Index trustworthiness: the decoded records must corroborate the
    // index entry that located them, so that whenever reads succeed,
    // binary-search selection over firstSeq (chunkRangeForSeq) agrees
    // with a full scan (the differential tests rely on this: either a
    // corrupt file fails loudly somewhere, or indexed == reference).
    if (!out.empty()) {
        if (out.front().seq != c.firstSeq)
            return Result::failure(
                "chunk records disagree with index firstSeq");
        for (std::size_t i = 1; i < out.size(); ++i)
            if (out[i].seq < out[i - 1].seq)
                return Result::failure(
                    "seq not non-decreasing within chunk");
        if (index + 1 < meta_.chunks.size() &&
            out.back().seq > meta_.chunks[index + 1].firstSeq)
            return Result::failure(
                "chunk seqs overlap the next chunk's firstSeq");
    }
    ++chunksDecoded_;
    return Result(std::move(out));
} catch (const std::bad_alloc &) {
    // A corrupt index can claim sizes up to ~1000x the file size; an
    // allocation failure is a malformed-input diagnostic, not an
    // abort (see the error contract in trace_io.hh).
    return TraceResult<std::vector<MissRecord>>::failure(
        "chunk too large to allocate");
}

TraceResult<MissTrace>
TraceReader::readAll()
try {
    using Result = TraceResult<MissTrace>;

    MissTrace trace;
    trace.numCpus = meta_.numCpus;
    trace.instructions = meta_.instructions;
    trace.misses.reserve(static_cast<std::size_t>(meta_.recordCount));
    for (std::size_t i = 0; i < meta_.chunks.size(); ++i) {
        auto chunk = readChunk(i);
        if (!chunk)
            return Result::failure("chunk " + std::to_string(i) + ": " +
                                   chunk.error());
        trace.misses.insert(trace.misses.end(), chunk->begin(),
                            chunk->end());
    }
    if (trace.misses.size() != meta_.recordCount)
        return Result::failure("decoded record count mismatch");
    return Result(std::move(trace));
} catch (const std::bad_alloc &) {
    return TraceResult<MissTrace>::failure(
        "trace too large to allocate");
}

std::pair<std::size_t, std::size_t>
TraceReader::chunkRangeForSeq(std::uint64_t t0, std::uint64_t t1) const
{
    const std::vector<TraceChunk> &chunks = meta_.chunks;
    if (t1 <= t0 || chunks.empty())
        return {0, 0};
    const auto less = [](const TraceChunk &c, std::uint64_t v) {
        return c.firstSeq < v;
    };
    // First chunk whose records are entirely >= t1: everything from
    // it on is outside the window.
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(chunks.begin(), chunks.end(), t1, less) -
        chunks.begin());
    // First chunk with firstSeq >= t0 — minus one, because the
    // preceding chunk's extent is unknown from the index alone and
    // may reach into [t0, t1).
    std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(chunks.begin(), chunks.end(), t0, less) -
        chunks.begin());
    if (lo > 0)
        --lo;
    return {std::min(lo, hi), hi};
}

TraceResult<FunctionRegistry>
TraceReader::functions() const
{
    using Result = TraceResult<FunctionRegistry>;

    if (meta_.functions.empty())
        return Result::failure("trace has no function table");
    std::set<std::string> seen;
    for (const TraceFunction &fn : meta_.functions)
        if (!seen.insert(fn.name).second)
            return Result::failure("duplicate name in function table: " +
                                   fn.name);

    FunctionRegistry reg;
    if (meta_.functions[0].name != "<unknown>" ||
        meta_.functions[0].category != Category::Uncategorized)
        return Result::failure("function table does not reserve id 0");
    for (std::size_t id = 1; id < meta_.functions.size(); ++id) {
        const TraceFunction &fn = meta_.functions[id];
        if (reg.intern(fn.name, fn.category) != id)
            return Result::failure("function table does not re-intern "
                                   "to sequential ids");
    }
    return Result(std::move(reg));
}

TraceResult<MissTrace>
loadTrace(const std::string &path)
{
    auto reader = TraceReader::open(path);
    if (!reader)
        return TraceResult<MissTrace>::failure(reader.error());
    return reader->readAll();
}

} // namespace tstream
