/**
 * @file
 * Temporal queries over saved miss traces, and cross-cell merged
 * archives — the trace store's "queryable temporal database" face
 * (ROADMAP; modeled on the language-integrated temporal-query and
 * temporal-DB range/window operators in PAPERS.md).
 *
 * A QuerySpec combines record *filters* (cpu, miss class, module,
 * category, block range, and a half-open `[t0, t1)` seq window) with
 * windowed *aggregates* (summary, matching records, per-interval miss
 * counts, fig2-style stream fractions, per-interval stream-length
 * histograms). Execution is index-driven: a seq window binary-searches
 * the chunk index (TraceReader::chunkRangeForSeq) and decodes only the
 * overlapping chunks — TraceReader::chunksDecoded() exposes exactly
 * how many, and tests/trace_query_test.cc proves the result
 * bit-identical to a naive decode-everything scan on randomized
 * filter/window combinations.
 *
 * A TraceArchive packs several cell traces into one file behind a
 * top-level catalog (member name, content kind, configHash, record /
 * instruction counts, seq extents) so a whole sweep travels as one
 * artifact; members open by catalog entry via TraceReader::openSlice
 * and query like any standalone trace. Byte-level layout:
 * docs/TRACE_FORMAT.md. Everything here follows trace_io.hh's error
 * contract: malformed input fails with a diagnostic TraceResult,
 * never a crash.
 */

#ifndef TSTREAM_TRACE_QUERY_HH
#define TSTREAM_TRACE_QUERY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_io.hh"

namespace tstream
{

/**
 * One temporal query: every set filter must hold for a record to
 * match (conjunction), and each requested aggregate contributes rows
 * to the output. Defaults match everything and summarize.
 */
struct QuerySpec
{
    // ---- filters (all optional, AND-ed) --------------------------

    /** Requesting CPU (node for multi-chip traces). */
    std::optional<std::uint32_t> cpu;

    /**
     * Miss-class name per the trace's content kind: an off-chip
     * trace takes missClassName() names ("Compulsory", ...), an
     * intra-chip trace intraClassName() names ("Coherence:L2", ...).
     */
    std::string cls;

    /**
     * Exact function name from the embedded function table (module
     * filter). Requires a trace with a function table.
     */
    std::string module;

    /**
     * categoryName() of a Table 2 module category ("System calls",
     * ...). Requires a function table to map fn -> category.
     */
    std::string category;

    /** Half-open block-address range [blockLo, blockHi). */
    std::optional<std::uint64_t> blockLo;
    std::optional<std::uint64_t> blockHi;

    /**
     * Half-open temporal window [seqLo, seqHi) on the global miss
     * sequence number — the index-accelerated filter: only chunks
     * overlapping the window are decoded.
     */
    std::optional<std::uint64_t> seqLo;
    std::optional<std::uint64_t> seqHi;

    // ---- aggregates ----------------------------------------------

    /**
     * Which row groups runQuery() emits, in order. Valid names:
     *   summary  one row of match/decode statistics (always cheap)
     *   select   one row per matching record, capped at `limit`
     *   counts   per-interval miss counts, split by miss class
     *   streams  fig2-style stream fractions over the matches
     *            (metric names/values identical to the live bench row)
     *   lengths  per-interval weighted stream-length histogram
     * Empty selects {"summary", "select"}.
     */
    std::vector<std::string> aggregates;

    /**
     * Interval count for the windowed aggregates (counts, lengths).
     * The effective window — [seqLo, seqHi) when given, else the
     * matched records' extent — splits into this many equal-width
     * intervals (the last may be shorter). Clamped to [1, 4096].
     */
    std::uint32_t intervals = 8;

    /** Max `select` rows; 0 = unlimited. */
    std::uint64_t limit = 32;
};

/** One query result row (shape mirrors sim/bench_report BenchRow). */
struct QueryRow
{
    std::string table; ///< aggregate that produced the row
    std::string trace; ///< sub-key: interval "[lo,hi)", record seq, ""
    std::string label; ///< optional sub-label
    std::string text;  ///< the exact printed line (no newline)
    std::vector<std::pair<std::string, double>> metrics;
};

/** Everything runQuery() produces beyond the matched records. */
struct QueryOutput
{
    std::uint64_t matched = 0;       ///< records passing all filters
    std::uint64_t scanned = 0;       ///< records decoded and tested
    std::uint64_t chunksDecoded = 0; ///< chunks actually decoded
    std::uint64_t chunksTotal = 0;   ///< chunks in the trace
    std::vector<QueryRow> rows;      ///< grouped by aggregate, in order
};

/**
 * The matched records of @p spec, in trace order — the primitive the
 * differential tests compare against a naive full scan. Decodes only
 * the chunks chunkRangeForSeq() selects for the spec's seq window
 * (@p reader's chunksDecoded() counter shows exactly which). Fails on
 * unreadable chunks, on a cls/category/module name that does not
 * resolve against this trace, and on filters that need an absent
 * function table.
 */
TraceResult<std::vector<MissRecord>>
queryRecords(TraceReader &reader, const QuerySpec &spec);

/** Run @p spec and build the aggregate rows. */
TraceResult<QueryOutput> runQuery(TraceReader &reader,
                                  const QuerySpec &spec);

// ---------------------------------------------------------------------------
// Merged archives
// ---------------------------------------------------------------------------

/** One catalog entry of a merged archive. */
struct ArchiveMember
{
    std::string name;              ///< cell id, unique in the archive
    std::uint64_t offset = 0;      ///< member's first byte in the file
    std::uint64_t bytes = 0;       ///< member length (a whole trace)
    std::uint64_t configHash = 0;  ///< from the member's header
    std::uint64_t records = 0;
    std::uint64_t instructions = 0;
    std::uint64_t seqFirst = 0;    ///< seq of the first record (0 if none)
    std::uint64_t seqLast = 0;     ///< seq of the last record (0 if none)
    TraceContentKind kind = TraceContentKind::Unknown;
    std::uint32_t numCpus = 0;
};

/**
 * A cross-cell merged archive: member traces stored byte-for-byte
 * behind a top-level catalog, so one file carries a whole sweep and
 * any member opens without touching the others.
 */
class TraceArchive
{
  public:
    /** Cheap magic probe: true when @p path starts with "TSAR". */
    static bool isArchive(const std::string &path);

    /** Open @p path and parse the catalog (no member is touched). */
    static TraceResult<TraceArchive> open(const std::string &path);

    const std::string &path() const { return path_; }
    const std::vector<ArchiveMember> &members() const
    {
        return members_;
    }

    /** Catalog entry named @p name, or nullptr. */
    const ArchiveMember *find(std::string_view name) const;

    /** Open member @p m as a trace (TraceReader::openSlice). */
    TraceResult<TraceReader>
    openMember(const ArchiveMember &m,
               const TraceOpenOptions &opts = {}) const;

  private:
    TraceArchive() = default;

    std::string path_;
    std::vector<ArchiveMember> members_;
};

/** One input to mergeArchive(): the member name plus its trace file. */
struct ArchiveInput
{
    std::string name;
    std::string path;
};

/**
 * Pack @p inputs into a merged archive at @p outPath. Every input must
 * open as a valid trace (its header fields and seq extents are lifted
 * into the catalog); names must be unique and non-empty. On success
 * returns the member count.
 */
TraceResult<std::uint64_t>
mergeArchive(const std::vector<ArchiveInput> &inputs,
             const std::string &outPath);

// ---------------------------------------------------------------------------
// Query document (JSON emission lives in sim/bench_report)
// ---------------------------------------------------------------------------

/**
 * One executed query with its provenance — the payload of
 * `tstream-trace query --json` (schema "tstream-query/v1", serialized
 * by sim/bench_report queryDocToJson()).
 */
struct QueryDoc
{
    std::string source; ///< trace or archive path as given
    std::string member; ///< archive member name; "" for a plain trace
    TraceContentKind kind = TraceContentKind::Unknown;
    std::uint64_t configHash = 0;
    QuerySpec spec;
    QueryOutput output;
};

} // namespace tstream

#endif // TSTREAM_TRACE_QUERY_HH
