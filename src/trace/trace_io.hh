/**
 * @file
 * Binary miss-trace serialization: save collected traces to disk and
 * reload them for offline analysis, so expensive simulations need not
 * be re-run to try a different analysis.
 *
 * Format (little-endian, fixed-width):
 *   magic "TSTR" | u32 version | u32 numCpus | u64 instructions |
 *   u64 count | count x { u64 seq | u64 block | u8 cpu | u8 cls |
 *   u16 fn }
 */

#ifndef TSTREAM_TRACE_TRACE_IO_HH
#define TSTREAM_TRACE_TRACE_IO_HH

#include <string>

#include "trace/record.hh"

namespace tstream
{

/** Serialize @p trace to @p path. @return false on I/O failure. */
bool saveTrace(const MissTrace &trace, const std::string &path);

/**
 * Load a trace previously written by saveTrace().
 * @return the trace; fatal() on malformed input.
 */
MissTrace loadTrace(const std::string &path);

} // namespace tstream

#endif // TSTREAM_TRACE_TRACE_IO_HH
