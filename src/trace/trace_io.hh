/**
 * @file
 * Versioned binary miss-trace serialization: collect a trace once,
 * analyze it many times. Every figure and table of the paper is a
 * different projection over the same per-context miss traces, so the
 * simulation/analysis split runs through this file: benches and the
 * `tstream-trace` CLI write traces here, and all offline analysis
 * (and the bench trace cache) reads them back.
 *
 * Two on-disk versions exist (byte-level layout, worked hexdump and
 * the compatibility policy are in docs/TRACE_FORMAT.md):
 *
 *  - v1 (legacy): fixed-width header + 18-byte records. Read support
 *    is permanent; writing is available via TraceWriteOptions for
 *    tests and migration tooling.
 *  - v2 (current): a self-describing header (per-field descriptors,
 *    experiment config hash, content kind, codec id), an optional
 *    function table (FnId -> name/category, so module attribution
 *    works offline), and the records in independent chunks —
 *    delta+varint column encoding, optionally compressed through
 *    trace/codec.hh — located by a chunk index, so large traces can
 *    be streamed chunk-at-a-time without loading whole files.
 *
 * Error contract: nothing in this API aborts on malformed input.
 * Opening, reading and decoding return TraceResult<T>; failure
 * carries a one-line human-readable diagnostic (bad magic, truncated
 * header, unknown codec id, size mismatch, ...) that callers such as
 * the CLI print verbatim. saveTrace() returns false on I/O failure
 * or unusable options. Only internal invariant violations panic().
 */

#ifndef TSTREAM_TRACE_TRACE_IO_HH
#define TSTREAM_TRACE_TRACE_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/categories.hh"
#include "trace/codec.hh"
#include "trace/record.hh"

namespace tstream
{

/**
 * Minimal expected-style result: either a value or an error message.
 * Test with operator bool before dereferencing; error() is only
 * meaningful on failure.
 */
template <typename T>
class TraceResult
{
  public:
    TraceResult(T value) : value_(std::move(value)) {}

    static TraceResult
    failure(std::string message)
    {
        TraceResult r;
        r.error_ = std::move(message);
        return r;
    }

    explicit operator bool() const { return value_.has_value(); }

    T &operator*() { return *value_; }
    const T &operator*() const { return *value_; }
    T *operator->() { return &*value_; }
    const T *operator->() const { return &*value_; }

    const std::string &error() const { return error_; }

  private:
    TraceResult() = default;

    std::optional<T> value_;
    std::string error_;
};

/** What the records of a trace file are (v2 header `kind`). */
enum class TraceContentKind : std::uint32_t
{
    Unknown = 0,         ///< not recorded (all v1 files)
    OffChip = 1,         ///< off-chip read misses, cls = MissClass
    IntraChip = 2,       ///< all L1 read misses, cls = IntraClass
    IntraChipOnChip = 3, ///< L1 misses satisfied on chip, cls = IntraClass
};

/** Short name of a content kind ("off-chip", ...). */
std::string_view traceContentKindName(TraceContentKind k);

/** Per-field descriptor from the v2 header (self-description). */
struct TraceField
{
    std::uint8_t id = 0;       ///< FieldId (docs/TRACE_FORMAT.md)
    std::uint8_t encoding = 0; ///< FieldEncoding
    std::uint16_t widthBits = 0;
};

/** One function-table entry (FnId is the index). */
struct TraceFunction
{
    std::string name;
    Category category = Category::Uncategorized;
};

/** One chunk-index entry. */
struct TraceChunk
{
    std::uint64_t offset = 0;   ///< file offset of the chunk header
    std::uint64_t firstSeq = 0; ///< seq of the chunk's first record
    std::uint32_t records = 0;
    std::uint32_t storedBytes = 0; ///< on-disk payload size
};

/** Everything known about a trace file without decoding records. */
struct TraceMeta
{
    std::uint32_t version = 0;
    std::uint32_t numCpus = 0;
    TraceContentKind kind = TraceContentKind::Unknown;
    std::uint32_t codec = 0; ///< CodecId as stored
    std::uint32_t chunkRecords = 0;
    std::uint64_t instructions = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t configHash = 0; ///< 0 when not recorded

    std::vector<TraceField> fields;
    std::vector<TraceFunction> functions; ///< empty when no table
    std::vector<TraceChunk> chunks;
};

/** Options for saveTrace(). Defaults write the current v2 format. */
struct TraceWriteOptions
{
    /** 2 (current) or 1 (legacy, for migration/compat tests). */
    std::uint32_t version = 2;

    /** Chunk payload codec; falls back to raw per incompressible
     *  chunk (see trace/codec.hh). */
    CodecId codec = CodecId::Lz4;

    /** Records per chunk (clamped to [1, 2^24]). */
    std::uint32_t chunkRecords = 64 * 1024;

    /** What the records are; stored in the header. */
    TraceContentKind kind = TraceContentKind::Unknown;

    /** sim/experiment.hh configHash() of the producing run; 0 = none. */
    std::uint64_t configHash = 0;

    /**
     * When set, the registry is embedded as the function table so
     * offline analysis can attribute misses to code modules. Names
     * longer than 255 bytes are truncated.
     */
    const FunctionRegistry *registry = nullptr;
};

/** How TraceReader accesses the bytes of a trace file. */
struct TraceOpenOptions
{
    /**
     * Memory-map the file when the platform supports it, so chunk
     * payloads decode zero-copy out of the page cache (raw-stored
     * chunks never pass through an intermediate buffer). false — or
     * an unsupported platform, or a failed mmap — selects the
     * portable streaming (stdio) path; both paths return identical
     * results for identical bytes (tests/trace_query_test.cc proves
     * it differentially).
     */
    bool allowMmap = true;
};

/**
 * Trace reader: parses header, field/function tables and the chunk
 * index on open(), then decodes chunks on demand, so a paper-scale
 * trace can be scanned without materializing it. The backing file is
 * memory-mapped when possible (see TraceOpenOptions) and streamed
 * through stdio otherwise. Understands v1 files as bounded synthetic
 * chunks, and can open a trace embedded inside a larger file (an
 * archive member; trace/query.hh) via openSlice().
 *
 * open() validates the chunk index (in-bounds chunks, plausible
 * record counts, firstSeq non-decreasing) and readChunk() validates
 * decoded records against the index (first record's seq equals the
 * index's firstSeq, seq non-decreasing within the chunk and across
 * the boundary into the next chunk), so whenever reads succeed the
 * index is trustworthy and binary-search time-range selection
 * (chunkRangeForSeq) agrees with a full scan.
 */
class TraceReader
{
  public:
    /** Open @p path and parse all metadata. */
    static TraceResult<TraceReader> open(const std::string &path,
                                         const TraceOpenOptions &opts = {});

    /**
     * Open the trace stored at [@p offset, @p offset + @p bytes) of
     * @p path — an archive member (trace/query.hh). All validation
     * applies relative to the slice.
     */
    static TraceResult<TraceReader>
    openSlice(const std::string &path, std::uint64_t offset,
              std::uint64_t bytes, const TraceOpenOptions &opts = {});

    const TraceMeta &meta() const { return meta_; }

    /** Decode chunk @p index (0-based). Chunks are self-contained. */
    TraceResult<std::vector<MissRecord>> readChunk(std::size_t index);

    /** Decode every chunk into one MissTrace. */
    TraceResult<MissTrace> readAll();

    /** True when the file embeds a function table. */
    bool hasFunctions() const { return !meta_.functions.empty(); }

    /**
     * Rebuild a FunctionRegistry from the embedded function table.
     * Fails when there is no table or the table does not intern back
     * to the same ids (malformed file).
     */
    TraceResult<FunctionRegistry> functions() const;

    /** True when the file is memory-mapped (zero-copy decode path). */
    bool usingMmap() const { return map_ != nullptr; }

    /**
     * Chunks decoded through readChunk() so far — the decode-counter
     * hook the differential tests assert against: a `[t0, t1)` window
     * query must decode only chunks chunkRangeForSeq() selects, never
     * the whole file.
     */
    std::uint64_t chunksDecoded() const { return chunksDecoded_; }

    /**
     * The half-open chunk-index range [lo, hi) that can contain
     * records with seq in [@p t0, @p t1), by binary search over the
     * index's firstSeq column (validated non-decreasing at open).
     * O(log chunks); touches no chunk payload. The range is tight to
     * index granularity: at most one leading chunk whose records all
     * precede @p t0 is included (its extent is unknowable without
     * decoding it).
     */
    std::pair<std::size_t, std::size_t>
    chunkRangeForSeq(std::uint64_t t0, std::uint64_t t1) const;

  private:
    TraceReader() : file_(nullptr, &std::fclose) {}

    /** Read @p n bytes at slice-relative @p off (map or stdio). */
    bool readBytes(std::uint64_t off, unsigned char *p,
                   std::size_t n) const;

    /** Pointer into the mapping at slice-relative @p off, or nullptr
     *  when not mapped (bounds are pre-checked by callers). */
    const unsigned char *viewBytes(std::uint64_t off,
                                   std::size_t n) const;

    static TraceResult<TraceReader>
    openImpl(const std::string &path, std::uint64_t offset,
             std::optional<std::uint64_t> bytes,
             const TraceOpenOptions &opts);

    std::unique_ptr<std::FILE, int (*)(std::FILE *)> file_;
    std::shared_ptr<const void> mapping_; ///< owns the munmap
    const unsigned char *map_ = nullptr;  ///< whole-file mapping
    std::uint64_t base_ = 0;              ///< slice start in the file
    std::uint64_t size_ = 0;              ///< slice byte count
    std::uint64_t chunksDecoded_ = 0;
    TraceMeta meta_;
};

/**
 * Serialize @p trace to @p path per @p opts.
 * @return false on I/O failure or unusable options (unknown version
 *         or codec id).
 */
bool saveTrace(const MissTrace &trace, const std::string &path,
               const TraceWriteOptions &opts = {});

/**
 * Load a whole trace previously written by saveTrace() (any version).
 * Convenience wrapper over TraceReader; failure carries a diagnostic
 * instead of aborting (see the error contract above).
 */
TraceResult<MissTrace> loadTrace(const std::string &path);

} // namespace tstream

#endif // TSTREAM_TRACE_TRACE_IO_HH
