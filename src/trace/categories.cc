#include "trace/categories.hh"

#include "util/logging.hh"

namespace tstream
{

std::string_view
categoryName(Category c)
{
    switch (c) {
      case Category::Uncategorized: return "Uncategorized / Unknown";
      case Category::BulkMemoryCopies: return "Bulk memory copies";
      case Category::SystemCalls: return "System call implementation";
      case Category::KernelScheduler: return "Kernel task scheduler";
      case Category::KernelMmuTrap: return "Kernel MMU & trap handlers";
      case Category::KernelSync: return "Kernel synchronization primitives";
      case Category::KernelOther: return "Kernel - other activity";
      case Category::KernelStreams: return "Kernel STREAMS subsystem";
      case Category::KernelIpAssembly: return "Kernel IP packet assembly";
      case Category::WebWorker: return "Web server worker thread pool";
      case Category::CgiPerlInput: return "CGI - perl input processing";
      case Category::CgiPerlEngine: return "CGI - perl execution engine";
      case Category::CgiPerlOther: return "CGI - perl other activity";
      case Category::KernelBlockDev: return "Kernel block device driver";
      case Category::DbIndexPageTuple:
        return "DB2 index, page & tuple accesses";
      case Category::DbRequestControl: return "DB2 SQL request control";
      case Category::DbIpc: return "DB2 interprocess communication";
      case Category::DbRuntimeInterp: return "DB2 SQL runtime interpreter";
      case Category::DbOther: return "DB2 - other activity";
      case Category::KvHashIndex:
        return "KV hash index & item chains";
      case Category::KvSlabLru: return "KV slab values & LRU reuse";
      case Category::MqTopicLog: return "MQ topic log append & replay";
      case Category::MqCursorIndex:
        return "MQ cursors, index & retention";
      default: return "<invalid>";
    }
}

bool
categoryIsWeb(Category c)
{
    switch (c) {
      case Category::KernelStreams:
      case Category::KernelIpAssembly:
      case Category::WebWorker:
      case Category::CgiPerlInput:
      case Category::CgiPerlEngine:
      case Category::CgiPerlOther:
        return true;
      default:
        return false;
    }
}

bool
categoryIsDb(Category c)
{
    switch (c) {
      case Category::KernelBlockDev:
      case Category::DbIndexPageTuple:
      case Category::DbRequestControl:
      case Category::DbIpc:
      case Category::DbRuntimeInterp:
      case Category::DbOther:
        return true;
      default:
        return false;
    }
}

bool
categoryIsScenario(Category c)
{
    switch (c) {
      case Category::KvHashIndex:
      case Category::KvSlabLru:
      case Category::MqTopicLog:
      case Category::MqCursorIndex:
        return true;
      default:
        return false;
    }
}

FunctionRegistry::FunctionRegistry()
{
    // Reserved id 0.
    names_.emplace_back("<unknown>");
    cats_.push_back(Category::Uncategorized);
    index_.emplace("<unknown>", 0);
}

FnId
FunctionRegistry::intern(std::string_view name, Category cat)
{
    auto it = index_.find(std::string(name));
    if (it != index_.end()) {
        panicIf(cats_[it->second] != cat,
                "FunctionRegistry: category mismatch for " +
                    std::string(name));
        return it->second;
    }
    panicIf(names_.size() >= 0xFFFF, "FunctionRegistry: too many functions");
    const FnId id = static_cast<FnId>(names_.size());
    names_.emplace_back(name);
    cats_.push_back(cat);
    index_.emplace(names_.back(), id);
    return id;
}

} // namespace tstream
