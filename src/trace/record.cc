#include "trace/record.hh"

namespace tstream
{

std::string_view
missClassName(MissClass c)
{
    switch (c) {
      case MissClass::Compulsory: return "Compulsory";
      case MissClass::Coherence: return "Coherence";
      case MissClass::IoCoherence: return "I/O Coherence";
      case MissClass::Replacement: return "Replacement";
      default: return "<invalid>";
    }
}

std::string_view
intraClassName(IntraClass c)
{
    switch (c) {
      case IntraClass::CoherencePeerL1: return "Coherence:Peer-L1";
      case IntraClass::CoherenceL2: return "Coherence:L2";
      case IntraClass::ReplacementL2: return "Replacement:L2";
      case IntraClass::OffChip: return "Off-chip";
      default: return "<invalid>";
    }
}

} // namespace tstream
