/**
 * @file
 * Block codecs for trace chunk payloads.
 *
 * The v2 trace format (trace/trace_io.hh, docs/TRACE_FORMAT.md)
 * compresses each chunk payload independently through a Codec chosen
 * at write time and recorded in the file header, so a reader can
 * negotiate: look the id up with codecById() and reject the file with
 * a diagnostic when the codec is unknown, rather than misparse it.
 *
 * Two codecs are built in:
 *  - None: chunks are stored raw.
 *  - Lz4: a dependency-free implementation of the LZ4 block format
 *    (greedy hash-chain matcher, 64 KiB window). Byte-oriented and
 *    fast to decode, it composes well with the delta+varint column
 *    encoding, which turns recurring temporal streams into literal
 *    byte repeats.
 *
 * Compression is advisory per chunk: when a codec cannot shrink a
 * payload (compress() returns empty or no smaller), the writer stores
 * the chunk raw and the reader detects this from stored == raw size.
 */

#ifndef TSTREAM_TRACE_CODEC_HH
#define TSTREAM_TRACE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tstream
{

/** On-disk codec identifier (u32 in the v2 trace header). */
enum class CodecId : std::uint32_t
{
    None = 0, ///< chunks stored raw
    Lz4 = 1,  ///< LZ4-style block compression (see codec.cc)
};

/** A block compressor/decompressor for trace chunk payloads. */
class Codec
{
  public:
    virtual ~Codec() = default;

    virtual CodecId id() const = 0;
    virtual std::string_view name() const = 0;

    /**
     * Compress @p n bytes at @p src.
     * @return the compressed block, or an empty vector when the input
     *         is empty or incompressible (the caller then stores the
     *         raw payload; see the per-chunk fallback rule above).
     */
    virtual std::vector<unsigned char>
    compress(const unsigned char *src, std::size_t n) const = 0;

    /**
     * Decompress @p srcLen bytes at @p src into exactly @p dstLen
     * bytes at @p dst.
     * @return false when the block is malformed or does not expand to
     *         exactly @p dstLen bytes.
     */
    virtual bool decompress(const unsigned char *src, std::size_t srcLen,
                            unsigned char *dst,
                            std::size_t dstLen) const = 0;
};

/**
 * Codec registered under on-disk id @p id, or nullptr when the id is
 * unknown (codec negotiation failure; the reader reports the id).
 */
const Codec *codecById(std::uint32_t id);

/** Codec by CLI-facing name ("none", "lz4"), or nullptr. */
const Codec *codecByName(std::string_view name);

} // namespace tstream

#endif // TSTREAM_TRACE_CODEC_HH
