/**
 * @file
 * Access and miss records — the wire format between the workload
 * emulators, the cache hierarchy, and the analysis layer.
 *
 * An Access is one memory operation issued by the simulated server
 * stack (including the DMA and non-allocating bulk-store variants
 * whose invalidations produce the paper's I-O coherence misses); a
 * MissRecord is one off-chip (or intra-chip) read miss that survived
 * the hierarchy, annotated with the issuing CPU, function, and the
 * Section 4.1 miss class. MissTrace — the ordered sequence of miss
 * records — is the object every analysis in core/ consumes and the
 * unit trace/trace_io.hh serializes.
 */

#ifndef TSTREAM_TRACE_RECORD_HH
#define TSTREAM_TRACE_RECORD_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "mem/address.hh"
#include "trace/categories.hh"

namespace tstream
{

/** CPU (core or node) identifier. */
using CpuId = std::uint8_t;

/** Kind of memory operation issued by an emulator. */
enum class AccessType : std::uint8_t
{
    Read,          ///< ordinary data read
    Write,         ///< ordinary data write (allocates in cache)
    DmaWrite,      ///< device DMA into memory (invalidates all caches)
    NonAllocWrite, ///< block-store that bypasses cache allocation
                   ///< (Solaris default_copyout-style)
};

/** One memory operation from a workload emulator. */
struct Access
{
    Addr addr = 0;
    std::uint32_t size = 0;
    AccessType type = AccessType::Read;
    CpuId cpu = 0;
    FnId fn = 0;
};

/**
 * Off-chip miss classification following the paper's adaptation of the
 * four C's model (Section 4.1).
 */
enum class MissClass : std::uint8_t
{
    Compulsory,  ///< block never previously accessed by anyone
    Coherence,   ///< written by another processor since last read here
    IoCoherence, ///< written by DMA or a non-allocating bulk copy
    Replacement, ///< everything else (capacity/conflict)

    NumClasses
};

constexpr std::size_t kNumMissClasses =
    static_cast<std::size_t>(MissClass::NumClasses);

/** Human-readable name of an off-chip miss class. */
std::string_view missClassName(MissClass c);

/**
 * Intra-chip (L1) miss classification following the paper's Figure 1
 * (right): cause plus the hierarchy level that supplied the data.
 */
enum class IntraClass : std::uint8_t
{
    CoherencePeerL1, ///< coherence miss supplied by a peer L1
    CoherenceL2,     ///< coherence miss supplied by the shared L2
    ReplacementL2,   ///< L1 replacement miss that hit in L2
    OffChip,         ///< L2 missed too; leaves the chip

    NumClasses
};

constexpr std::size_t kNumIntraClasses =
    static_cast<std::size_t>(IntraClass::NumClasses);

/** Human-readable name of an intra-chip miss class. */
std::string_view intraClassName(IntraClass c);

/** One read miss in a collected trace. */
struct MissRecord
{
    std::uint64_t seq = 0; ///< global order across all CPUs
    BlockId block = 0;     ///< 64 B block number
    CpuId cpu = 0;         ///< requesting CPU (node for multi-chip)
    std::uint8_t cls = 0;  ///< MissClass or IntraClass, per trace kind
    FnId fn = 0;           ///< attributed function
};

/** A collected miss trace plus the instruction count that produced it. */
struct MissTrace
{
    std::vector<MissRecord> misses;
    std::uint64_t instructions = 0; ///< total committed instructions
    unsigned numCpus = 0;

    /** Misses per 1000 instructions. */
    double
    mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(misses.size()) /
                         static_cast<double>(instructions);
    }
};

} // namespace tstream

#endif // TSTREAM_TRACE_RECORD_HH
