/**
 * @file
 * The code-module taxonomy of the paper's Table 2, and the function
 * registry that maps emulated functions to categories.
 *
 * The paper attributes each miss to an enclosing function via call-stack
 * inspection and groups functions into modules by naming convention.
 * Our emulators tag each access with a FunctionId at the source, so the
 * attribution is exact by construction; the registry preserves the
 * Solaris/DB2/perl function names the paper cites so reports read like
 * the original tables.
 */

#ifndef TSTREAM_TRACE_CATEGORIES_HH
#define TSTREAM_TRACE_CATEGORIES_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tstream
{

/** Identifier of an emulated function (index into FunctionRegistry). */
using FnId = std::uint16_t;

/**
 * Miss categories from the paper's Table 2. Cross-application
 * categories come first, then web-specific, then DB2-specific.
 */
enum class Category : std::uint8_t
{
    Uncategorized = 0,
    // Cross-application categories.
    BulkMemoryCopies,
    SystemCalls,
    KernelScheduler,
    KernelMmuTrap,
    KernelSync,
    KernelOther,
    // Web-specific categories.
    KernelStreams,
    KernelIpAssembly,
    WebWorker,
    CgiPerlInput,
    CgiPerlEngine,
    CgiPerlOther,
    // DB2-specific categories.
    KernelBlockDev,
    DbIndexPageTuple,
    DbRequestControl,
    DbIpc,
    DbRuntimeInterp,
    DbOther,
    // Scenario categories (post-paper app modules: the memcached-style
    // key-value store in src/kv and the message broker in src/mq).
    KvHashIndex,
    KvSlabLru,
    MqTopicLog,
    MqCursorIndex,

    NumCategories
};

/** Number of categories as a size_t for table sizing. */
constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(Category::NumCategories);

/** Human-readable name matching the paper's table rows. */
std::string_view categoryName(Category c);

/** True if @p c appears in the web table (Table 3). */
bool categoryIsWeb(Category c);

/** True if @p c appears in the DB2 tables (Tables 4 and 5). */
bool categoryIsDb(Category c);

/** True if @p c appears in the scenario origins table (KV / MQ). */
bool categoryIsScenario(Category c);

/**
 * Registry interning function names and their category assignment.
 *
 * FnId 0 is always the reserved "<unknown>" function in category
 * Uncategorized, so a default-constructed FnId is safe to attribute.
 */
class FunctionRegistry
{
  public:
    FunctionRegistry();

    /**
     * Intern @p name with category @p cat.
     * Re-interning an existing name returns the existing id
     * (the category must match).
     */
    FnId intern(std::string_view name, Category cat);

    /** Category of function @p id. */
    Category
    category(FnId id) const
    {
        return cats_.at(id);
    }

    /** Name of function @p id. */
    const std::string &
    name(FnId id) const
    {
        return names_.at(id);
    }

    /** Number of interned functions (including the reserved id 0). */
    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_;
    std::vector<Category> cats_;
    std::unordered_map<std::string, FnId> index_;
};

} // namespace tstream

#endif // TSTREAM_TRACE_CATEGORIES_HH
