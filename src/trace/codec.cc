#include "trace/codec.hh"

#include <algorithm>
#include <cstring>

namespace tstream
{

namespace
{

constexpr std::size_t kMinMatch = 4;
constexpr int kHashBits = 14;

std::uint32_t
load32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint32_t
hash32(std::uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** LZ4 length extension: 255-run prefix plus a final byte < 255. */
void
putLen(std::vector<unsigned char> &out, std::size_t v)
{
    while (v >= 255) {
        out.push_back(255);
        v -= 255;
    }
    out.push_back(static_cast<unsigned char>(v));
}

class NoneCodec : public Codec
{
  public:
    CodecId id() const override { return CodecId::None; }
    std::string_view name() const override { return "none"; }

    std::vector<unsigned char>
    compress(const unsigned char *, std::size_t) const override
    {
        return {}; // always "incompressible": store raw
    }

    bool
    decompress(const unsigned char *src, std::size_t srcLen,
               unsigned char *dst, std::size_t dstLen) const override
    {
        if (srcLen != dstLen)
            return false;
        std::memcpy(dst, src, srcLen);
        return true;
    }
};

/**
 * LZ4 block format: sequences of (token, literals, 16-bit LE match
 * offset, extended match length). Token high nibble = literal length,
 * low nibble = match length - 4; nibble value 15 chains into putLen()
 * extension bytes. The final sequence is literals only. The standard
 * end-of-block restrictions apply: the last 5 bytes are literals and
 * no match starts within the last 12 bytes.
 */
class Lz4Codec : public Codec
{
  public:
    CodecId id() const override { return CodecId::Lz4; }
    std::string_view name() const override { return "lz4"; }

    std::vector<unsigned char>
    compress(const unsigned char *src, std::size_t n) const override
    {
        std::vector<unsigned char> out;
        if (n == 0)
            return out;
        out.reserve(n);

        auto emit = [&](std::size_t anchor, std::size_t lit,
                        std::size_t off, std::size_t mlen) {
            const std::size_t extMatch = mlen ? mlen - kMinMatch : 0;
            unsigned char token = static_cast<unsigned char>(
                std::min<std::size_t>(lit, 15) << 4);
            if (mlen)
                token |= static_cast<unsigned char>(
                    std::min<std::size_t>(extMatch, 15));
            out.push_back(token);
            if (lit >= 15)
                putLen(out, lit - 15);
            out.insert(out.end(), src + anchor, src + anchor + lit);
            if (mlen) {
                out.push_back(static_cast<unsigned char>(off & 0xFF));
                out.push_back(static_cast<unsigned char>(off >> 8));
                if (extMatch >= 15)
                    putLen(out, extMatch - 15);
            }
        };

        std::size_t ip = 0, anchor = 0;
        if (n > 12) {
            std::vector<std::uint32_t> table(std::size_t(1) << kHashBits,
                                             0); // position + 1; 0 empty
            const std::size_t mflimit = n - 12;
            const std::size_t matchEnd = n - 5;
            while (ip < mflimit) {
                const std::uint32_t h = hash32(load32(src + ip));
                const std::uint32_t cand = table[h];
                table[h] = static_cast<std::uint32_t>(ip + 1);
                if (cand != 0) {
                    const std::size_t mp = cand - 1;
                    if (ip - mp <= 0xFFFF &&
                        load32(src + mp) == load32(src + ip)) {
                        std::size_t mlen = kMinMatch;
                        while (ip + mlen < matchEnd &&
                               src[mp + mlen] == src[ip + mlen])
                            ++mlen;
                        emit(anchor, ip - anchor, ip - mp, mlen);
                        ip += mlen;
                        anchor = ip;
                        continue;
                    }
                }
                ++ip;
            }
        }
        emit(anchor, n - anchor, 0, 0);
        if (out.size() >= n)
            return {}; // incompressible: caller stores raw
        return out;
    }

    bool
    decompress(const unsigned char *src, std::size_t srcLen,
               unsigned char *dst, std::size_t dstLen) const override
    {
        std::size_t ip = 0, op = 0;
        auto readLen = [&](std::size_t &len) -> bool {
            unsigned char b;
            do {
                if (ip >= srcLen)
                    return false;
                b = src[ip++];
                len += b;
            } while (b == 255);
            return true;
        };

        while (ip < srcLen) {
            const unsigned char token = src[ip++];
            std::size_t lit = token >> 4;
            if (lit == 15 && !readLen(lit))
                return false;
            if (ip + lit > srcLen || op + lit > dstLen)
                return false;
            std::memcpy(dst + op, src + ip, lit);
            ip += lit;
            op += lit;
            if (ip == srcLen)
                break; // final sequence: literals only
            if (ip + 2 > srcLen)
                return false;
            const std::size_t off =
                src[ip] | (std::size_t(src[ip + 1]) << 8);
            ip += 2;
            if (off == 0 || off > op)
                return false;
            std::size_t mlen = token & 15;
            if (mlen == 15 && !readLen(mlen))
                return false;
            mlen += kMinMatch;
            if (op + mlen > dstLen)
                return false;
            // Byte-wise copy: matches may overlap their own output.
            for (std::size_t i = 0; i < mlen; ++i, ++op)
                dst[op] = dst[op - off];
        }
        return op == dstLen;
    }
};

const NoneCodec kNone;
const Lz4Codec kLz4;

} // namespace

const Codec *
codecById(std::uint32_t id)
{
    switch (static_cast<CodecId>(id)) {
      case CodecId::None: return &kNone;
      case CodecId::Lz4: return &kLz4;
    }
    return nullptr;
}

const Codec *
codecByName(std::string_view name)
{
    if (name == "none")
        return &kNone;
    if (name == "lz4")
        return &kLz4;
    return nullptr;
}

} // namespace tstream
