#include "gen/key_chooser.hh"

#include <algorithm>
#include <cmath>

namespace tstream
{

std::string_view
keyDistName(KeyDistKind k)
{
    switch (k) {
      case KeyDistKind::Uniform: return "uniform";
      case KeyDistKind::Zipfian: return "zipfian";
      case KeyDistKind::Hotspot: return "hotspot";
      case KeyDistKind::Latest: return "latest";
    }
    return "<invalid>";
}

bool
parseKeyDistName(std::string_view name, KeyDistKind &out)
{
    if (name == "uniform")
        out = KeyDistKind::Uniform;
    else if (name == "zipfian")
        out = KeyDistKind::Zipfian;
    else if (name == "hotspot")
        out = KeyDistKind::Hotspot;
    else if (name == "latest")
        out = KeyDistKind::Latest;
    else
        return false;
    return true;
}

namespace
{

/** Wraps ZipfSampler so default workloads stay bit-identical: one
 *  Rng::uniform() per draw, same inverse-CDF binary search. */
class ZipfianChooser : public KeyChooser
{
  public:
    ZipfianChooser(std::size_t n, double theta)
        : dist_(n, theta)
    {
    }

    std::size_t sample(Rng &rng) override { return dist_.sample(rng); }
    std::size_t size() const override { return dist_.size(); }

  private:
    ZipfSampler dist_;
};

class UniformChooser : public KeyChooser
{
  public:
    explicit UniformChooser(std::size_t n)
        : n_(n)
    {
    }

    std::size_t
    sample(Rng &rng) override
    {
        return static_cast<std::size_t>(rng.below(n_));
    }

    std::size_t size() const override { return n_; }

  private:
    std::size_t n_;
};

/** YCSB hotspot: the first ceil(frac*n) keys absorb prob of the
 *  requests, uniformly; the cold remainder shares the rest. */
class HotspotChooser : public KeyChooser
{
  public:
    HotspotChooser(std::size_t n, double frac, double prob)
        : n_(n),
          hot_(std::min<std::size_t>(
              n - 1,
              std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::ceil(
                         static_cast<double>(n) * frac))))),
          prob_(prob)
    {
    }

    std::size_t
    sample(Rng &rng) override
    {
        if (rng.chance(prob_))
            return static_cast<std::size_t>(rng.below(hot_));
        return hot_ +
               static_cast<std::size_t>(rng.below(n_ - hot_));
    }

    std::size_t size() const override { return n_; }
    std::size_t hotCount() const { return hot_; }

  private:
    std::size_t n_;
    std::size_t hot_;
    double prob_;
};

/**
 * YCSB latest: zipfian over recency. The chooser samples an *offset*
 * behind the insert frontier (offset 0 = the key most recently
 * inserted) so popularity tracks the frontier as the workload writes.
 */
class LatestChooser : public KeyChooser
{
  public:
    LatestChooser(std::size_t n, double theta)
        : n_(n), offsets_(n, theta)
    {
    }

    std::size_t
    sample(Rng &rng) override
    {
        const std::size_t offset = offsets_.sample(rng);
        return (frontier_ + n_ - 1 - offset) % n_;
    }

    void noteInsert() override { frontier_ = (frontier_ + 1) % n_; }

    std::size_t size() const override { return n_; }

  private:
    std::size_t n_;
    ZipfSampler offsets_;
    std::size_t frontier_ = 0;
};

} // namespace

std::unique_ptr<KeyChooser>
makeKeyChooser(const KeyDistSpec &spec, std::size_t n)
{
    switch (spec.kind) {
      case KeyDistKind::Uniform:
        return std::make_unique<UniformChooser>(n);
      case KeyDistKind::Zipfian:
        return std::make_unique<ZipfianChooser>(n, spec.theta);
      case KeyDistKind::Hotspot:
        return std::make_unique<HotspotChooser>(n, spec.hotFrac,
                                                spec.hotProb);
      case KeyDistKind::Latest:
        return std::make_unique<LatestChooser>(n, spec.theta);
    }
    return nullptr;
}

} // namespace tstream
