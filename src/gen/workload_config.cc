#include "gen/workload_config.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace tstream
{

namespace
{

std::vector<std::string>
splitWhitespace(const std::string &line)
{
    std::vector<std::string> tok;
    std::istringstream in(line);
    std::string t;
    while (in >> t)
        tok.push_back(t);
    return tok;
}

/** Strip a trailing "# ..." comment (tokens are whitespace-split, so
 *  a '#' only opens a comment at the start of a token). */
void
dropComment(std::vector<std::string> &tok)
{
    for (std::size_t i = 0; i < tok.size(); ++i)
        if (tok[i][0] == '#') {
            tok.resize(i);
            return;
        }
}

bool
parseDouble(const std::string &text, double &out)
{
    const char *s = text.c_str();
    char *end = nullptr;
    out = std::strtod(s, &end);
    return end && *end == '\0' && end != s;
}

bool
parseCount(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    const char *s = text.c_str();
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end && *end == '\0' && end != s;
}

/** Shortest decimal form of @p v that strtod()s back to exactly v. */
std::string
formatDouble(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

bool
parseWorkloadKindName(const std::string &name, WorkloadKind &out)
{
    if (name == "kv" || name == "kvstore")
        out = WorkloadKind::KvStore;
    else if (name == "broker" || name == "mq")
        out = WorkloadKind::Broker;
    else if (name == "phased-mix" || name == "phased")
        out = WorkloadKind::PhasedMix;
    else
        return false;
    return true;
}

const char *
configKindName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::KvStore: return "kv";
      case WorkloadKind::Broker: return "broker";
      default: return "phased-mix";
    }
}

/**
 * Parse one phase record: tok[0] is the phase kind, the rest are
 * key=value parameters. @p timed selects phased-mix rules (duration
 * required) versus standalone-server rules (duration forbidden).
 * On failure @p err carries the diagnostic without a line prefix.
 */
bool
parsePhaseRecord(const std::vector<std::string> &tok, bool timed,
                 WorkloadPhase &out, std::string &err)
{
    if (tok.empty()) {
        err = "phase wants a kind (kv or broker)";
        return false;
    }
    WorkloadKind kind;
    if (!parseWorkloadKindName(tok[0], kind) ||
        kind == WorkloadKind::PhasedMix) {
        err = "unknown phase kind '" + tok[0] +
              "' (want kv or broker)";
        return false;
    }

    bool haveMix = false, haveDist = false, haveDuration = false;
    bool haveTheta = false, haveFrac = false, haveProb = false;
    double mix = 0, theta = 0, frac = 0, prob = 0;
    std::uint64_t duration = 0;
    KeyDistKind dist = KeyDistKind::Zipfian;

    for (std::size_t i = 1; i < tok.size(); ++i) {
        const std::string &t = tok[i];
        const std::size_t eq = t.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= t.size()) {
            err = "malformed parameter '" + t + "' (want key=value)";
            return false;
        }
        const std::string key = t.substr(0, eq);
        const std::string value = t.substr(eq + 1);
        auto once = [&](bool &have) {
            if (have) {
                err = "duplicate parameter '" + key + "'";
                return false;
            }
            have = true;
            return true;
        };
        if (key == "mix") {
            if (!once(haveMix))
                return false;
            if (!parseDouble(value, mix)) {
                err = "bad number '" + value + "' for 'mix'";
                return false;
            }
            if (mix < 0.0 || mix > 1.0) {
                err = "mix must be within [0, 1]";
                return false;
            }
        } else if (key == "dist") {
            if (!once(haveDist))
                return false;
            if (!parseKeyDistName(value, dist)) {
                err = "unknown distribution '" + value +
                      "' (want uniform, zipfian, hotspot or latest)";
                return false;
            }
        } else if (key == "theta") {
            if (!once(haveTheta))
                return false;
            if (!parseDouble(value, theta)) {
                err = "bad number '" + value + "' for 'theta'";
                return false;
            }
            if (theta <= 0.0 || theta >= 2.0) {
                err = "theta must be within (0, 2)";
                return false;
            }
        } else if (key == "frac") {
            if (!once(haveFrac))
                return false;
            if (!parseDouble(value, frac)) {
                err = "bad number '" + value + "' for 'frac'";
                return false;
            }
            if (frac <= 0.0 || frac >= 1.0) {
                err = "frac must be within (0, 1)";
                return false;
            }
        } else if (key == "prob") {
            if (!once(haveProb))
                return false;
            if (!parseDouble(value, prob)) {
                err = "bad number '" + value + "' for 'prob'";
                return false;
            }
            if (prob <= 0.0 || prob >= 1.0) {
                err = "prob must be within (0, 1)";
                return false;
            }
        } else if (key == "duration") {
            if (!once(haveDuration))
                return false;
            if (!parseCount(value, duration) || duration == 0) {
                err = "duration wants a positive instruction count, "
                      "got '" + value + "'";
                return false;
            }
        } else {
            err = "unknown phase parameter '" + key + "'";
            return false;
        }
    }

    if (!haveMix) {
        err = "phase is missing required parameter 'mix'";
        return false;
    }
    if (!haveDist) {
        err = "phase is missing required parameter 'dist'";
        return false;
    }
    const bool zipfLike = dist == KeyDistKind::Zipfian ||
                          dist == KeyDistKind::Latest;
    if (haveTheta && !zipfLike) {
        err = "'theta' applies only to zipfian/latest distributions";
        return false;
    }
    if ((haveFrac || haveProb) && dist != KeyDistKind::Hotspot) {
        err = "'frac'/'prob' apply only to the hotspot distribution";
        return false;
    }
    if (timed && !haveDuration) {
        err = "phased-mix phases want an explicit duration";
        return false;
    }
    if (!timed && haveDuration) {
        err = "'duration' applies only to phased-mix phases";
        return false;
    }

    out = WorkloadPhase{};
    out.kind = kind;
    out.mix = mix;
    out.duration = timed ? duration : 0;
    out.dist = KeyDistSpec{};
    out.dist.kind = dist;
    if (haveTheta)
        out.dist.theta = theta;
    if (haveFrac)
        out.dist.hotFrac = frac;
    if (haveProb)
        out.dist.hotProb = prob;
    return true;
}

std::string
atLine(std::size_t line, const std::string &msg)
{
    return "line " + std::to_string(line) + ": " + msg;
}

} // namespace

bool
WorkloadConfig::loadFromString(const std::string &text,
                               std::string &err)
{
    WorkloadConfig parsed;
    bool haveWorkload = false;

    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::vector<std::string> tok = splitWhitespace(line);
        dropComment(tok);
        if (tok.empty())
            continue;
        if (tok[0] == "workload") {
            if (haveWorkload) {
                err = atLine(lineno, "duplicate 'workload' line");
                return false;
            }
            if (tok.size() != 2) {
                err = atLine(lineno,
                             "'workload' wants exactly one argument");
                return false;
            }
            if (!parseWorkloadKindName(tok[1], parsed.kind)) {
                err = atLine(lineno,
                             "unknown workload kind '" + tok[1] +
                                 "' (want kv, broker or phased-mix)");
                return false;
            }
            haveWorkload = true;
        } else if (tok[0] == "phase") {
            if (!haveWorkload) {
                err = atLine(
                    lineno,
                    "expected a 'workload' line before any phase");
                return false;
            }
            const bool timed = parsed.kind == WorkloadKind::PhasedMix;
            if (!timed && !parsed.schedule.empty()) {
                err = atLine(
                    lineno,
                    std::string("a ") + configKindName(parsed.kind) +
                        " workload takes exactly one phase line");
                return false;
            }
            WorkloadPhase phase;
            std::string perr;
            const std::vector<std::string> rest(tok.begin() + 1,
                                                tok.end());
            if (!parsePhaseRecord(rest, timed, phase, perr)) {
                err = atLine(lineno, perr);
                return false;
            }
            if (!timed && phase.kind != parsed.kind) {
                err = atLine(
                    lineno,
                    std::string("phase kind '") +
                        configKindName(phase.kind) +
                        "' does not match 'workload " +
                        configKindName(parsed.kind) + "'");
                return false;
            }
            parsed.schedule.phases.push_back(phase);
        } else {
            err = atLine(lineno, "unknown directive '" + tok[0] +
                                     "' (want 'workload' or 'phase')");
            return false;
        }
    }

    if (!haveWorkload) {
        err = "config has no 'workload' line";
        return false;
    }
    if (parsed.schedule.empty()) {
        err = "config has no 'phase' lines";
        return false;
    }
    *this = parsed;
    return true;
}

bool
WorkloadConfig::loadFromFile(const std::string &path, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = path + ": cannot open workload config";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!loadFromString(ss.str(), err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

std::string
WorkloadConfig::serialize() const
{
    std::string out = "workload ";
    out += configKindName(kind);
    out += "\n";
    for (const WorkloadPhase &p : schedule.phases) {
        out += "phase ";
        out += configKindName(p.kind);
        out += " mix=" + formatDouble(p.mix);
        out += " dist=";
        out += keyDistName(p.dist.kind);
        if (p.dist.kind == KeyDistKind::Zipfian ||
            p.dist.kind == KeyDistKind::Latest)
            out += " theta=" + formatDouble(p.dist.theta);
        if (p.dist.kind == KeyDistKind::Hotspot) {
            out += " frac=" + formatDouble(p.dist.hotFrac);
            out += " prob=" + formatDouble(p.dist.hotProb);
        }
        if (kind == WorkloadKind::PhasedMix)
            out += " duration=" + std::to_string(p.duration);
        out += "\n";
    }
    return out;
}

bool
parsePhasesSpec(const std::string &spec, PhaseSchedule &out,
                std::string &err)
{
    PhaseSchedule parsed;
    std::size_t start = 0, recno = 0;
    for (;;) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        ++recno;
        const std::vector<std::string> tok =
            splitWhitespace(spec.substr(start, end - start));
        if (tok.empty()) {
            err = "phase record " + std::to_string(recno) +
                  " is empty (records are separated by ';')";
            return false;
        }
        WorkloadPhase phase;
        std::string perr;
        if (!parsePhaseRecord(tok, /*timed=*/true, phase, perr)) {
            err = "phase record " + std::to_string(recno) + ": " +
                  perr;
            return false;
        }
        parsed.phases.push_back(phase);
        if (end == spec.size())
            break;
        start = end + 1;
    }
    out = parsed;
    return true;
}

} // namespace tstream
