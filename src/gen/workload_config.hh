/**
 * @file
 * Line-oriented workload config files: declarative phase schedules at
 * YCSB fidelity for the scenario workloads. A config names a workload
 * kind and describes each phase as a (kind, op-mix, key-distribution,
 * duration) record with named parameters:
 *
 *     # request mix for the standard phased experiment
 *     workload phased-mix
 *     phase kv     mix=0.90 dist=zipfian theta=0.95 duration=1500000
 *     phase broker mix=0.75 dist=zipfian theta=0.8  duration=1500000
 *
 * Standalone servers take a single duration-less phase:
 *
 *     workload kv
 *     phase kv mix=0.85 dist=hotspot frac=0.2 prob=0.9
 *
 * The full grammar (and every diagnostic) is documented in
 * docs/BENCHMARKING.md. Parsing is strict: unknown directives,
 * unknown or duplicate parameters, out-of-range values and
 * kind/schedule mismatches all fail with a line-numbered, actionable
 * error — a config that loads is a config that runs.
 */

#ifndef TSTREAM_GEN_WORKLOAD_CONFIG_HH
#define TSTREAM_GEN_WORKLOAD_CONFIG_HH

#include <string>

#include "sim/workload.hh"

namespace tstream
{

/** A parsed workload config file: the kind plus its phase schedule. */
struct WorkloadConfig
{
    WorkloadKind kind = WorkloadKind::PhasedMix;
    /** One duration-less phase for kv/broker; >= 1 timed phases for
     *  phased-mix. Never empty after a successful load. */
    PhaseSchedule schedule;

    /**
     * Parse @p text. Returns false and sets @p err to a line-numbered
     * diagnostic on any malformed input; *this is unchanged on
     * failure.
     */
    bool loadFromString(const std::string &text, std::string &err);

    /** Read and parse @p path; errors are prefixed with the path. */
    bool loadFromFile(const std::string &path, std::string &err);

    /**
     * Canonical text form: parseable by loadFromString and value-equal
     * after a round trip (doubles print with the shortest
     * representation that reparses exactly).
     */
    std::string serialize() const;

    bool
    operator==(const WorkloadConfig &o) const
    {
        return kind == o.kind && schedule.phases == o.schedule.phases;
    }
    bool operator!=(const WorkloadConfig &o) const { return !(*this == o); }
};

/**
 * Parse a --phases command-line spec: semicolon-separated phase
 * records in the config-file grammar minus the "phase" keyword, e.g.
 * "kv mix=0.9 dist=zipfian theta=0.99 duration=1500000; broker ...".
 * Records follow phased-mix rules (explicit positive duration).
 */
bool parsePhasesSpec(const std::string &spec, PhaseSchedule &out,
                     std::string &err);

} // namespace tstream

#endif // TSTREAM_GEN_WORKLOAD_CONFIG_HH
