/**
 * @file
 * YCSB-fidelity key choosers: the request-distribution half of
 * config-driven workload generation. A KeyChooser turns an Rng into a
 * stream of keys in [0, n) under a named distribution — zipfian,
 * uniform, hotspot, or latest — so the scenario workloads (KV store,
 * broker, phased mix) can draw their key/topic popularity from a
 * workload config file instead of a hard-coded sampler.
 *
 * Determinism contract: ZipfianChooser consumes exactly one
 * Rng::uniform() per draw and reproduces ZipfSampler bit-for-bit, so
 * swapping the workloads onto choosers leaves every default trace
 * byte-identical.
 */

#ifndef TSTREAM_GEN_KEY_CHOOSER_HH
#define TSTREAM_GEN_KEY_CHOOSER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hh"

namespace tstream
{

/** The supported key distributions (YCSB's request_distribution). */
enum class KeyDistKind
{
    Uniform, ///< every key equally likely
    Zipfian, ///< rank-skewed, theta in (0, 2)
    Hotspot, ///< a hot fraction of the space absorbs most requests
    Latest,  ///< zipfian over recency behind the insert frontier
};

/** Config-file name of a distribution kind. */
std::string_view keyDistName(KeyDistKind k);

/** Parse a distribution name; returns false on unknown names. */
bool parseKeyDistName(std::string_view name, KeyDistKind &out);

/**
 * A fully parameterized key distribution. Only the parameters of the
 * active kind are meaningful, but all fields always carry their
 * defaults so value comparison (and configHash coverage) is total.
 */
struct KeyDistSpec
{
    KeyDistKind kind = KeyDistKind::Zipfian;
    /** Zipfian/latest skew parameter. */
    double theta = 0.95;
    /** Hotspot: fraction of the key space that is hot, in (0, 1). */
    double hotFrac = 0.2;
    /** Hotspot: probability a request targets the hot set, in (0, 1). */
    double hotProb = 0.9;

    bool
    operator==(const KeyDistSpec &o) const
    {
        return kind == o.kind && theta == o.theta &&
               hotFrac == o.hotFrac && hotProb == o.hotProb;
    }
    bool operator!=(const KeyDistSpec &o) const { return !(*this == o); }
};

/**
 * A key chooser over [0, n). Implementations are not thread-safe;
 * each simulated experiment is single-threaded (the driver's
 * parallelism is across cells), so none is needed.
 */
class KeyChooser
{
  public:
    virtual ~KeyChooser() = default;

    /** Draw one key in [0, size()). */
    virtual std::size_t sample(Rng &rng) = 0;

    /**
     * Advance the insert frontier (LatestChooser tracks it; all other
     * distributions ignore the signal). Workloads call this once per
     * store insert / publish.
     */
    virtual void noteInsert() {}

    /** Size of the key space. */
    virtual std::size_t size() const = 0;
};

/** Build a chooser for @p spec over a key space of @p n. @pre n > 0. */
std::unique_ptr<KeyChooser> makeKeyChooser(const KeyDistSpec &spec,
                                           std::size_t n);

} // namespace tstream

#endif // TSTREAM_GEN_KEY_CHOOSER_HH
