/**
 * @file
 * Run telemetry: a dependency-free, thread-safe registry of named
 * counters, gauges, and log-scale histograms, plus nestable timing
 * spans — the observability layer for the experiment fabric.
 *
 * Telemetry is disabled by default and near-zero cost while disabled:
 * every recording entry point is an inline function whose first
 * action is one relaxed atomic load, and no argument is materialized
 * (all hot-path parameters are string_views) unless the flag is set.
 * Enable it with `--telemetry-out FILE` on any bench (forwarded by
 * `tstream-bench run`) or the `TSTREAM_TELEMETRY=FILE` environment
 * variable; at process exit two artifacts are written:
 *
 *  - `FILE` — a metrics snapshot, schema `tstream-telemetry/v1`
 *    (counters, gauges, histogram summaries, span rollups), emitted
 *    through util/json so the document is ordered and diffable;
 *  - the trace timeline next to it (`FILE` with its `.json` suffix
 *    replaced by `.trace.json`) — Chrome trace-event format, loadable
 *    in chrome://tracing or https://ui.perfetto.dev.
 *
 * Telemetry must never perturb results: it only appends to its own
 * registries and writes its own files, so a run with telemetry on is
 * bit-identical (tstream-bench check-equal) to one with it off —
 * tools/CMakeLists.txt and CI prove this on every commit.
 */

#ifndef TSTREAM_OBS_TELEMETRY_HH
#define TSTREAM_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace tstream::telemetry
{

namespace detail
{
extern std::atomic<bool> gEnabled;
void countSlow(std::string_view name, std::uint64_t n);
void gaugeSetSlow(std::string_view name, std::int64_t v);
void gaugeAddSlow(std::string_view name, std::int64_t delta);
void observeSlow(std::string_view name, double value);
} // namespace detail

/** True when telemetry is recording (one relaxed load). */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Add @p n to the counter @p name (creates it at zero). */
inline void
count(std::string_view name, std::uint64_t n = 1)
{
    if (enabled())
        detail::countSlow(name, n);
}

/** Set the gauge @p name to @p v. */
inline void
gaugeSet(std::string_view name, std::int64_t v)
{
    if (enabled())
        detail::gaugeSetSlow(name, v);
}

/** Add @p delta (may be negative) to the gauge @p name. */
inline void
gaugeAdd(std::string_view name, std::int64_t delta)
{
    if (enabled())
        detail::gaugeAddSlow(name, delta);
}

/** Record @p value into the log-scale histogram @p name. */
inline void
observe(std::string_view name, double value)
{
    if (enabled())
        detail::observeSlow(name, value);
}

/**
 * Turn recording on. @p outPath is where the metrics artifact goes at
 * process exit (the trace timeline lands next to it); pass "" for
 * in-memory recording with no exit artifacts (tests). Idempotent; a
 * later call may re-point the output path.
 */
void enable(const std::string &outPath);

/** Stop recording (registries are kept; tests). */
void disable();

/** Drop all recorded counters/gauges/histograms/spans (tests). */
void reset();

/** Current value of a counter; 0 when absent. */
std::uint64_t counterValue(std::string_view name);

/** Current value of a gauge; 0 when absent. */
std::int64_t gaugeValue(std::string_view name);

/** Number of samples recorded into a histogram; 0 when absent. */
std::uint64_t histogramCount(std::string_view name);

/** Number of completed spans recorded so far. */
std::size_t spanCount();

/** Microseconds since the telemetry epoch (steady clock). */
std::int64_t nowMicros();

/**
 * RAII timing span. Construction snapshots the clock and the
 * per-thread nesting depth; destruction records one complete
 * ("ph":"X") trace event. When telemetry is disabled the object is an
 * inert shell: no clock read, no allocation, and arg() is a no-op.
 *
 * Spans nest naturally — a span created while another is live on the
 * same thread records depth parent+1, and the trace viewer stacks
 * them on the thread's track.
 */
class Span
{
  public:
    Span(std::string_view name, std::string_view cat);
    explicit Span(std::string_view name) : Span(name, "run") {}
    ~Span();
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** True when this span will record an event. Call sites that must
     *  build an argument value (format a string, read a clock) should
     *  guard on this so disabled telemetry stays allocation-free. */
    bool active() const { return active_; }

    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, std::int64_t value);
    void arg(std::string_view key, double value);

  private:
    bool active_ = false;
    int depth_ = 0;
    std::int64_t startUs_ = 0;
    std::string name_;
    std::string cat_;
    std::vector<std::pair<std::string, json::Value>> args_;
};

/**
 * Record a complete span from explicit timestamps (both from
 * nowMicros()) — for intervals whose endpoints are observed on
 * different threads, e.g. queue wait between submit and dispatch,
 * where an RAII Span cannot straddle the handoff. No-op when
 * disabled. An optional single argument tags the event.
 */
void recordSpan(std::string_view name, std::string_view cat,
                std::int64_t startUs, std::int64_t endUs,
                std::string_view argKey = {},
                std::string_view argValue = {});

/** Metrics snapshot as a `tstream-telemetry/v1` document. */
json::Value metricsJson();

/** Completed spans as a Chrome trace-event document
 *  (`{"traceEvents": [...]}`, all events "ph":"X"). */
json::Value traceEventsJson();

/**
 * Write both artifacts: metrics to @p path, the span timeline to
 * @p path with a trailing ".json" replaced by ".trace.json" (or
 * ".trace.json" appended when @p path has another suffix). Returns
 * false and sets @p err on the first failure.
 */
bool writeArtifacts(const std::string &path, std::string &err);

/** The trace-timeline path derived from a metrics path. */
std::string tracePathFor(const std::string &metricsPath);

} // namespace tstream::telemetry

#endif // TSTREAM_OBS_TELEMETRY_HH
