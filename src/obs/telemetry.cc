#include "obs/telemetry.hh"

#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.hh"

namespace tstream::telemetry
{

namespace detail
{
std::atomic<bool> gEnabled{false};
} // namespace detail

namespace
{

constexpr int kBuckets = 64;

struct Histogram
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
};

struct SpanEvent
{
    std::string name;
    std::string cat;
    int tid = 0;
    int depth = 0;
    std::int64_t tsUs = 0;
    std::int64_t durUs = 0;
    std::vector<std::pair<std::string, json::Value>> args;
};

// Heterogeneous (string_view) lookup without building a std::string
// on the hit path; std::map keeps metrics output sorted, hence
// deterministic and diffable.
template <typename T>
using NameMap = std::map<std::string, T, std::less<>>;

struct State
{
    std::mutex mu;
    NameMap<std::uint64_t> counters;
    NameMap<std::int64_t> gauges;
    NameMap<Histogram> hists;
    std::vector<SpanEvent> spans;
    std::string outPath;
    bool atexitRegistered = false;
};

State &
state()
{
    // Leaked on purpose: the atexit flush (and spans destroyed during
    // static teardown) must never race a destructed registry.
    static State *s = new State;
    return *s;
}

// Log2 bucket index: bucket 0 holds values < 1 (and non-positive),
// bucket k >= 1 holds [2^(k-1), 2^k).
int
bucketIndex(double v)
{
    if (!(v >= 1.0))
        return 0;
    int idx = 1;
    std::uint64_t bound = 2; // exclusive upper bound of bucket idx
    while (idx < kBuckets - 1 &&
           v >= static_cast<double>(bound)) {
        ++idx;
        bound <<= 1;
    }
    return idx;
}

double
bucketLowerBound(int idx)
{
    if (idx <= 0)
        return 0.0;
    return static_cast<double>(std::uint64_t{1} << (idx - 1));
}

int &
threadDepth()
{
    thread_local int depth = 0;
    return depth;
}

void
flushAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lk(state().mu);
        path = state().outPath;
    }
    if (path.empty())
        return;
    std::string err;
    if (!writeArtifacts(path, err))
        logWarn("telemetry: " + err);
}

// Honor TSTREAM_TELEMETRY=FILE in any binary that links telemetry
// (every bench, tool, and test pulls this TU in via the
// instrumentation seams).
const bool gEnvInit = [] {
    if (const char *e = std::getenv("TSTREAM_TELEMETRY"); e && *e)
        enable(e);
    return true;
}();

} // namespace

namespace detail
{

void
countSlow(std::string_view name, std::uint64_t n)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.counters.find(name);
    if (it == s.counters.end())
        s.counters.emplace(std::string(name), n);
    else
        it->second += n;
}

void
gaugeSetSlow(std::string_view name, std::int64_t v)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.gauges.find(name);
    if (it == s.gauges.end())
        s.gauges.emplace(std::string(name), v);
    else
        it->second = v;
}

void
gaugeAddSlow(std::string_view name, std::int64_t delta)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.gauges.find(name);
    if (it == s.gauges.end())
        s.gauges.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
observeSlow(std::string_view name, double value)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.hists.find(name);
    if (it == s.hists.end())
        it = s.hists.emplace(std::string(name), Histogram{}).first;
    Histogram &h = it->second;
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        if (value < h.min)
            h.min = value;
        if (value > h.max)
            h.max = value;
    }
    ++h.count;
    h.sum += value;
    ++h.buckets[static_cast<std::size_t>(bucketIndex(value))];
}

} // namespace detail

std::int64_t
nowMicros()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
enable(const std::string &outPath)
{
    auto &s = state();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        s.outPath = outPath;
        if (!outPath.empty() && !s.atexitRegistered) {
            std::atexit(flushAtExit);
            s.atexitRegistered = true;
        }
    }
    nowMicros(); // pin the span epoch no later than enable time
    detail::gEnabled.store(true, std::memory_order_release);
}

void
disable()
{
    detail::gEnabled.store(false, std::memory_order_release);
}

void
reset()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.counters.clear();
    s.gauges.clear();
    s.hists.clear();
    s.spans.clear();
}

std::uint64_t
counterValue(std::string_view name)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
}

std::int64_t
gaugeValue(std::string_view name)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.gauges.find(name);
    return it == s.gauges.end() ? 0 : it->second;
}

std::uint64_t
histogramCount(std::string_view name)
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.hists.find(name);
    return it == s.hists.end() ? 0 : it->second.count;
}

std::size_t
spanCount()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.spans.size();
}

Span::Span(std::string_view name, std::string_view cat)
{
    if (!enabled())
        return;
    active_ = true;
    name_.assign(name.data(), name.size());
    cat_.assign(cat.data(), cat.size());
    depth_ = threadDepth()++;
    startUs_ = nowMicros();
}

Span::~Span()
{
    if (!active_)
        return;
    const std::int64_t endUs = nowMicros();
    --threadDepth();
    SpanEvent ev;
    ev.name = std::move(name_);
    ev.cat = std::move(cat_);
    ev.tid = logThreadId();
    ev.depth = depth_;
    ev.tsUs = startUs_;
    ev.durUs = endUs - startUs_;
    ev.args = std::move(args_);
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.spans.push_back(std::move(ev));
}

void
Span::arg(std::string_view key, std::string_view value)
{
    if (!active_)
        return;
    args_.emplace_back(std::string(key), json::Value(value));
}

void
Span::arg(std::string_view key, std::int64_t value)
{
    if (!active_)
        return;
    args_.emplace_back(std::string(key), json::Value(value));
}

void
Span::arg(std::string_view key, double value)
{
    if (!active_)
        return;
    args_.emplace_back(std::string(key), json::Value(value));
}

void
recordSpan(std::string_view name, std::string_view cat,
           std::int64_t startUs, std::int64_t endUs,
           std::string_view argKey, std::string_view argValue)
{
    if (!enabled())
        return;
    SpanEvent ev;
    ev.name.assign(name.data(), name.size());
    ev.cat.assign(cat.data(), cat.size());
    ev.tid = logThreadId();
    ev.depth = threadDepth();
    ev.tsUs = startUs;
    ev.durUs = endUs - startUs;
    if (!argKey.empty())
        ev.args.emplace_back(std::string(argKey),
                             json::Value(argValue));
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.spans.push_back(std::move(ev));
}

json::Value
metricsJson()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);

    json::Value doc = json::Value::object();
    doc["schema"] = "tstream-telemetry/v1";
    doc["pid"] = static_cast<std::int64_t>(::getpid());

    json::Value counters = json::Value::object();
    for (const auto &[name, v] : s.counters)
        counters[name] = v;
    doc["counters"] = std::move(counters);

    json::Value gauges = json::Value::object();
    for (const auto &[name, v] : s.gauges)
        gauges[name] = v;
    doc["gauges"] = std::move(gauges);

    json::Value hists = json::Value::object();
    for (const auto &[name, h] : s.hists) {
        json::Value hv = json::Value::object();
        hv["count"] = h.count;
        hv["sum"] = h.sum;
        hv["min"] = h.min;
        hv["max"] = h.max;
        json::Value buckets = json::Value::array();
        for (int i = 0; i < kBuckets; ++i) {
            if (h.buckets[static_cast<std::size_t>(i)] == 0)
                continue;
            json::Value pair = json::Value::array();
            pair.push(json::Value(bucketLowerBound(i)));
            pair.push(json::Value(
                h.buckets[static_cast<std::size_t>(i)]));
            buckets.push(std::move(pair));
        }
        hv["buckets"] = std::move(buckets);
        hists[name] = std::move(hv);
    }
    doc["histograms"] = std::move(hists);

    // Span rollup: per-name count and total time, sorted by name.
    NameMap<std::pair<std::uint64_t, std::int64_t>> rollup;
    for (const SpanEvent &ev : s.spans) {
        auto &agg = rollup[ev.name];
        ++agg.first;
        agg.second += ev.durUs;
    }
    json::Value spans = json::Value::object();
    spans["count"] = static_cast<std::uint64_t>(s.spans.size());
    json::Value byName = json::Value::object();
    for (const auto &[name, agg] : rollup) {
        json::Value sv = json::Value::object();
        sv["count"] = agg.first;
        sv["totalUs"] = agg.second;
        byName[name] = std::move(sv);
    }
    spans["byName"] = std::move(byName);
    doc["spans"] = std::move(spans);
    return doc;
}

json::Value
traceEventsJson()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.mu);

    const std::int64_t pid = static_cast<std::int64_t>(::getpid());
    json::Value events = json::Value::array();
    for (const SpanEvent &ev : s.spans) {
        json::Value e = json::Value::object();
        e["name"] = ev.name;
        e["cat"] = ev.cat.empty() ? std::string("run") : ev.cat;
        e["ph"] = "X";
        e["ts"] = ev.tsUs;
        e["dur"] = ev.durUs;
        e["pid"] = pid;
        e["tid"] = static_cast<std::int64_t>(ev.tid);
        json::Value args = json::Value::object();
        args["depth"] = static_cast<std::int64_t>(ev.depth);
        for (const auto &[k, v] : ev.args)
            args[k] = v;
        e["args"] = std::move(args);
        events.push(std::move(e));
    }
    json::Value doc = json::Value::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    return doc;
}

std::string
tracePathFor(const std::string &metricsPath)
{
    const std::string suffix = ".json";
    if (metricsPath.size() > suffix.size() &&
        metricsPath.compare(metricsPath.size() - suffix.size(),
                            suffix.size(), suffix) == 0)
        return metricsPath.substr(0, metricsPath.size() -
                                         suffix.size()) +
               ".trace.json";
    return metricsPath + ".trace.json";
}

bool
writeArtifacts(const std::string &path, std::string &err)
{
    if (!json::writeFile(metricsJson(), path, err))
        return false;
    return json::writeFile(traceEventsJson(), tracePathFor(path),
                           err);
}

} // namespace tstream::telemetry
