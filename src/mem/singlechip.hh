/**
 * @file
 * Single-chip CMP model: 4 cores with private L1s over a shared L2,
 * kept coherent with a Piranha-like non-inclusive MOSI protocol.
 *
 * Two traces are collected, matching the paper's contexts (2) and (3):
 *
 *  - off-chip: shared-L2 read misses, classified with the 4C's+I/O
 *    taxonomy where the *chip* is the reader entity — so there is no
 *    processor-coherence off-chip traffic, only I/O coherence, exactly
 *    as the paper observes;
 *  - intra-chip: L1 read misses, classified by cause and supplier
 *    (Coherence:Peer-L1 / Coherence:L2 / Replacement:L2 / Off-chip).
 */

#ifndef TSTREAM_MEM_SINGLECHIP_HH
#define TSTREAM_MEM_SINGLECHIP_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/writer_tracker.hh"

namespace tstream
{

/** Configuration of the single-chip CMP. */
struct SingleChipConfig
{
    unsigned cores = 4;
    CacheConfig l1 = cachecfg::kL1;
    CacheConfig l2 = cachecfg::kL2;
};

/** Piranha-like non-inclusive MOSI chip multiprocessor. */
class SingleChipSystem : public MemorySystem
{
  public:
    explicit SingleChipSystem(const SingleChipConfig &cfg = {});

    void accessBlock(const Access &acc) override;
    void accessBlockRun(const Access *accs, std::size_t n) override;

    unsigned numCpus() const override { return cfg_.cores; }

    /** Probe caches (tests / debugging). */
    std::optional<CohState> probeL1(unsigned core, BlockId blk) const;
    std::optional<CohState> probeL2(BlockId blk) const;

  private:
    void handleRead(const Access &acc, BlockId blk);
    void handleWrite(const Access &acc, BlockId blk);
    void handleIoWrite(const Access &acc, BlockId blk, int writer);

    /** Evicting L1 fill, writing dirty victims back into the L2. */
    void fillL1(unsigned core, BlockId blk, CohState st);

    /**
     * Fetch a block into the L2 from memory (off-chip); classifies and
     * traces the off-chip miss.
     */
    void offChipFill(const Access &acc, BlockId blk);

    SingleChipConfig cfg_;
    std::vector<Cache> l1_;
    Cache l2_;
    WriterTracker intraTracker_; ///< per-core viewpoint
    WriterTracker chipTracker_;  ///< whole-chip viewpoint (off-chip)
};

} // namespace tstream

#endif // TSTREAM_MEM_SINGLECHIP_HH
