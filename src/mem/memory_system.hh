/**
 * @file
 * Abstract interface of a traced multiprocessor memory system.
 *
 * A MemorySystem consumes the access stream produced by the workload
 * emulators (block by block) and collects read-miss traces. Two
 * concrete models exist, matching the paper's Section 3:
 *
 *  - MultiChipSystem: 16-node DSM with MSI; collects the off-chip trace.
 *  - SingleChipSystem: 4-core CMP with MOSI; collects both the off-chip
 *    (shared-L2 miss) trace and the intra-chip (L1 miss) trace.
 */

#ifndef TSTREAM_MEM_MEMORY_SYSTEM_HH
#define TSTREAM_MEM_MEMORY_SYSTEM_HH

#include <cstddef>
#include <cstdint>

#include "mem/address.hh"
#include "trace/record.hh"

namespace tstream
{

/**
 * Prefetcher-in-the-loop hook (core/prefetch_policy.hh). When
 * installed, a concrete model consults it on every off-chip read miss
 * *before* recording the miss: a true return means a previously
 * issued prefetch covers the access (a prefetch buffer at the chip
 * edge absorbs it), and the record is dropped from the trace — so
 * coverage changes the observed miss stream instead of being scored
 * offline. The cache fill itself proceeds either way, keeping the
 * run's cache behaviour identical to the un-hooked run: the recorded
 * trace is exactly the uncovered subsequence of the baseline trace.
 */
class PrefetchLoopHook
{
  public:
    virtual ~PrefetchLoopHook() = default;

    /**
     * Observe the off-chip read miss @p m (called for every miss,
     * warm-up included; @p traced says whether it would be recorded).
     * @return true when a buffered prefetch covers it.
     */
    virtual bool coverOffChipMiss(const MissRecord &m, bool traced) = 0;
};

/** Base class for the two hierarchy models. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Process one block-sized access (addr must identify the block). */
    virtual void accessBlock(const Access &acc) = 0;

    /**
     * Process a run of block-sized accesses, in order. Semantically
     * identical to calling accessBlock() once per element; concrete
     * models override it to dispatch the whole run with a single
     * virtual call (the Engine's batching path), so the per-access
     * cost is a direct call into the protocol handlers.
     */
    virtual void
    accessBlockRun(const Access *accs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            accessBlock(accs[i]);
    }

    /** Number of CPUs (cores or nodes) in the system. */
    virtual unsigned numCpus() const = 0;

    /**
     * Process an access of arbitrary size by splitting it into its
     * constituent blocks.
     */
    void
    access(const Access &acc)
    {
        accessRun(&acc, 1);
    }

    /**
     * Process @p n accesses of arbitrary size, in order: each is split
     * into its constituent blocks and the expanded run is handed to
     * accessBlockRun() in large chunks, amortizing the virtual
     * dispatch over whole runs instead of paying it per block.
     */
    void
    accessRun(const Access *accs, std::size_t n)
    {
        Access run[kRunBlocks];
        std::size_t nb = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Access &acc = accs[i];
            const BlockId first = blockOf(acc.addr);
            const BlockId last = acc.size == 0
                                     ? first
                                     : blockOf(acc.addr + acc.size - 1);
            for (BlockId b = first; b <= last; ++b) {
                if (nb == kRunBlocks) {
                    accessBlockRun(run, nb);
                    nb = 0;
                }
                Access &blk = run[nb++];
                blk = acc;
                blk.addr = blockBase(b);
                blk.size = static_cast<std::uint32_t>(kBlockSize);
            }
        }
        if (nb > 0)
            accessBlockRun(run, nb);
    }

    /** Enable or disable trace collection (disabled during warmup). */
    void setTracing(bool on) { tracing_ = on; }

    /** Install (or clear, with nullptr) the prefetcher-in-the-loop
     *  hook; the caller keeps ownership and must outlive the run. */
    void setPrefetchHook(PrefetchLoopHook *hook) { prefetchHook_ = hook; }

    bool tracing() const { return tracing_; }

    /** Off-chip read-miss trace (MissRecord::cls holds a MissClass). */
    MissTrace &offChipTrace() { return offChip_; }
    const MissTrace &offChipTrace() const { return offChip_; }

    /**
     * Intra-chip L1 read-miss trace (MissRecord::cls holds an
     * IntraClass); empty for the multi-chip model.
     */
    MissTrace &intraChipTrace() { return intraChip_; }
    const MissTrace &intraChipTrace() const { return intraChip_; }

  protected:
    /** Block-expansion chunk size of accessRun(). */
    static constexpr std::size_t kRunBlocks = 128;

    /** Next global sequence number for the intra-chip trace. */
    std::uint64_t
    nextIntraSeq()
    {
        return intraSeq_++;
    }

    /**
     * Record one off-chip read miss, first giving the in-the-loop
     * prefetcher (if any) the chance to cover it. Concrete models call
     * this at their off-chip miss point; without a hook it appends the
     * record exactly as before.
     */
    void
    recordOffChipMiss(BlockId blk, CpuId cpu, std::uint8_t cls, FnId fn)
    {
        const MissRecord rec{offChipSeq_, blk, cpu, cls, fn};
        const bool covered =
            prefetchHook_ &&
            prefetchHook_->coverOffChipMiss(rec, tracing_);
        if (tracing_ && !covered) {
            offChip_.misses.push_back(rec);
            offChipSeq_++;
        }
    }

    bool tracing_ = false;
    PrefetchLoopHook *prefetchHook_ = nullptr;
    MissTrace offChip_;
    MissTrace intraChip_;
    std::uint64_t offChipSeq_ = 0;
    std::uint64_t intraSeq_ = 0;
};

} // namespace tstream

#endif // TSTREAM_MEM_MEMORY_SYSTEM_HH
