/**
 * @file
 * Abstract interface of a traced multiprocessor memory system.
 *
 * A MemorySystem consumes the access stream produced by the workload
 * emulators (block by block) and collects read-miss traces. Two
 * concrete models exist, matching the paper's Section 3:
 *
 *  - MultiChipSystem: 16-node DSM with MSI; collects the off-chip trace.
 *  - SingleChipSystem: 4-core CMP with MOSI; collects both the off-chip
 *    (shared-L2 miss) trace and the intra-chip (L1 miss) trace.
 */

#ifndef TSTREAM_MEM_MEMORY_SYSTEM_HH
#define TSTREAM_MEM_MEMORY_SYSTEM_HH

#include <cstdint>

#include "mem/address.hh"
#include "trace/record.hh"

namespace tstream
{

/** Base class for the two hierarchy models. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Process one block-sized access (addr must identify the block). */
    virtual void accessBlock(const Access &acc) = 0;

    /** Number of CPUs (cores or nodes) in the system. */
    virtual unsigned numCpus() const = 0;

    /**
     * Process an access of arbitrary size by splitting it into its
     * constituent blocks.
     */
    void
    access(const Access &acc)
    {
        const BlockId first = blockOf(acc.addr);
        const BlockId last =
            acc.size == 0 ? first : blockOf(acc.addr + acc.size - 1);
        Access blk = acc;
        for (BlockId b = first; b <= last; ++b) {
            blk.addr = blockBase(b);
            blk.size = static_cast<std::uint32_t>(kBlockSize);
            accessBlock(blk);
        }
    }

    /** Enable or disable trace collection (disabled during warmup). */
    void setTracing(bool on) { tracing_ = on; }

    bool tracing() const { return tracing_; }

    /** Off-chip read-miss trace (MissRecord::cls holds a MissClass). */
    MissTrace &offChipTrace() { return offChip_; }
    const MissTrace &offChipTrace() const { return offChip_; }

    /**
     * Intra-chip L1 read-miss trace (MissRecord::cls holds an
     * IntraClass); empty for the multi-chip model.
     */
    MissTrace &intraChipTrace() { return intraChip_; }
    const MissTrace &intraChipTrace() const { return intraChip_; }

  protected:
    /** Next global sequence number for the off-chip trace. */
    std::uint64_t
    nextOffChipSeq()
    {
        return offChipSeq_++;
    }

    /** Next global sequence number for the intra-chip trace. */
    std::uint64_t
    nextIntraSeq()
    {
        return intraSeq_++;
    }

    bool tracing_ = false;
    MissTrace offChip_;
    MissTrace intraChip_;
    std::uint64_t offChipSeq_ = 0;
    std::uint64_t intraSeq_ = 0;
};

} // namespace tstream

#endif // TSTREAM_MEM_MEMORY_SYSTEM_HH
