#include "mem/singlechip.hh"

namespace tstream
{

SingleChipSystem::SingleChipSystem(const SingleChipConfig &cfg)
    : cfg_(cfg), l2_(cfg.l2), intraTracker_(cfg.cores), chipTracker_(1)
{
    panicIf(cfg.cores == 0 || cfg.cores > 32,
            "SingleChipSystem: core count must be in [1, 32]");
    l1_.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        l1_.emplace_back(cfg.l1);
    offChip_.numCpus = cfg.cores;
    intraChip_.numCpus = cfg.cores;
}

std::optional<CohState>
SingleChipSystem::probeL1(unsigned core, BlockId blk) const
{
    return l1_[core].probe(blk);
}

std::optional<CohState>
SingleChipSystem::probeL2(BlockId blk) const
{
    return l2_.probe(blk);
}

void
SingleChipSystem::fillL1(unsigned core, BlockId blk, CohState st)
{
    auto evicted = l1_[core].insert(blk, st);
    if (evicted && dirty(evicted->state)) {
        // Non-inclusive hierarchy: dirty L1 victims are written back
        // into the L2 (allocating there).
        auto l2evict = l2_.insert(evicted->block, CohState::Modified);
        (void)l2evict; // L2 victim writes back to memory implicitly.
    }
}

void
SingleChipSystem::offChipFill(const Access &acc, BlockId blk)
{
    const MissClass cls = chipTracker_.classifyRead(blk, 0);
    recordOffChipMiss(blk, acc.cpu, static_cast<std::uint8_t>(cls),
                      acc.fn);
    l2_.insert(blk, CohState::Shared);
}

void
SingleChipSystem::accessBlock(const Access &acc)
{
    const BlockId blk = blockOf(acc.addr);
    switch (acc.type) {
      case AccessType::Read:
        handleRead(acc, blk);
        break;
      case AccessType::Write:
        handleWrite(acc, blk);
        break;
      case AccessType::DmaWrite:
        handleIoWrite(acc, blk, kWriterDma);
        break;
      case AccessType::NonAllocWrite:
        handleIoWrite(acc, blk, kWriterCopyout);
        break;
    }
}

void
SingleChipSystem::accessBlockRun(const Access *accs, std::size_t n)
{
    // One virtual call for the whole run; every element dispatches
    // directly into the protocol handlers.
    for (std::size_t i = 0; i < n; ++i)
        SingleChipSystem::accessBlock(accs[i]);
}

void
SingleChipSystem::handleRead(const Access &acc, BlockId blk)
{
    const unsigned core = acc.cpu;

    // L1 hit.
    if (l1_[core].lookup(blk))
        return;

    // L1 read miss: determine cause before updating history.
    const bool cohCause = intraTracker_.coherenceCaused(blk, core);
    (void)intraTracker_.classifyRead(blk, core);

    // Find an on-chip supplier: a peer L1 with an owned/modified (or,
    // because the hierarchy is non-inclusive, even shared) copy, or the
    // shared L2.
    int peer = -1;
    bool peerDirty = false;
    for (unsigned p = 0; p < cfg_.cores && peer < 0; ++p) {
        if (p == core)
            continue;
        if (auto st = l1_[p].probe(blk)) {
            peer = static_cast<int>(p);
            peerDirty = dirty(*st);
        }
    }

    const bool l2Hit = l2_.probe(blk).has_value();

    IntraClass icls;
    if (peer >= 0 && (peerDirty || !l2Hit)) {
        // Peer L1 supplies. Dirty owners downgrade M -> O and keep
        // ownership (Piranha-style); the requestor fills Shared. A
        // dirty-peer supply is a cache-to-cache transfer and counts
        // as Coherence:Peer-L1 regardless of the reader's history
        // (classification by supplier, as in the paper's Figure 1
        // right); a clean-peer supply of a merely-L2-evicted block is
        // replacement traffic.
        if (peerDirty)
            l1_[static_cast<unsigned>(peer)].setState(blk, CohState::Owned);
        icls = (peerDirty || cohCause) ? IntraClass::CoherencePeerL1
                                       : IntraClass::ReplacementL2;
        fillL1(core, blk, CohState::Shared);
    } else if (l2Hit) {
        l2_.lookup(blk); // refresh LRU
        icls = cohCause ? IntraClass::CoherenceL2
                        : IntraClass::ReplacementL2;
        fillL1(core, blk, CohState::Shared);
    } else {
        icls = IntraClass::OffChip;
        offChipFill(acc, blk);
        fillL1(core, blk, CohState::Shared);
    }

    if (tracing_) {
        intraChip_.misses.push_back(MissRecord{
            nextIntraSeq(), blk, static_cast<CpuId>(core),
            static_cast<std::uint8_t>(icls), acc.fn});
    }
}

void
SingleChipSystem::handleWrite(const Access &acc, BlockId blk)
{
    const unsigned core = acc.cpu;
    intraTracker_.recordWrite(blk, static_cast<int>(core));
    chipTracker_.recordWrite(blk, 0);

    // Write hit in Modified: done.
    if (auto st = l1_[core].probe(blk); st && *st == CohState::Modified) {
        l1_[core].lookup(blk); // refresh LRU
        return;
    }

    // Invalidate peers; ownership moves to this core's L1.
    for (unsigned p = 0; p < cfg_.cores; ++p)
        if (p != core)
            l1_[p].invalidate(blk);
    // The L2 copy (if any) becomes stale; drop it. The up-to-date copy
    // lives in this L1 in Modified and is written back on eviction.
    l2_.invalidate(blk);

    // A store to a block absent from the chip allocates silently (store
    // misses are not part of the paper's read-miss traces).
    if (!l2_.probe(blk) && !l1_[core].probe(blk))
        chipTracker_.recordTouch(blk);

    fillL1(core, blk, CohState::Modified);
}

void
SingleChipSystem::handleIoWrite(const Access &acc, BlockId blk, int writer)
{
    (void)acc;
    intraTracker_.recordWrite(blk, writer);
    chipTracker_.recordWrite(blk, writer);
    for (unsigned p = 0; p < cfg_.cores; ++p)
        l1_[p].invalidate(blk);
    l2_.invalidate(blk);
}

} // namespace tstream
