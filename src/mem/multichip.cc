#include "mem/multichip.hh"

namespace tstream
{

MultiChipSystem::MultiChipSystem(const MultiChipConfig &cfg)
    : cfg_(cfg), tracker_(cfg.nodes)
{
    panicIf(cfg.nodes == 0 || cfg.nodes > 32,
            "MultiChipSystem: node count must be in [1, 32]");
    l1_.reserve(cfg.nodes);
    l2_.reserve(cfg.nodes);
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        l1_.emplace_back(cfg.l1);
        l2_.emplace_back(cfg.l2);
    }
    offChip_.numCpus = cfg.nodes;
}

const MultiChipSystem::DirEntry *
MultiChipSystem::dirEntry(BlockId blk) const
{
    auto it = dir_.find(blk);
    return it == dir_.end() ? nullptr : &it->second;
}

std::optional<CohState>
MultiChipSystem::probeL1(unsigned node, BlockId blk) const
{
    return l1_[node].probe(blk);
}

std::optional<CohState>
MultiChipSystem::probeL2(unsigned node, BlockId blk) const
{
    return l2_[node].probe(blk);
}

void
MultiChipSystem::invalidateNode(unsigned node, BlockId blk)
{
    l1_[node].invalidate(blk);
    l2_[node].invalidate(blk);
}

void
MultiChipSystem::fillL2(unsigned node, BlockId blk, CohState st)
{
    auto evicted = l2_[node].insert(blk, st);
    if (evicted) {
        // Maintain L1 subset of L2 within a node: back-invalidate.
        l1_[node].invalidate(evicted->block);
        // Update the directory: the node no longer caches the victim.
        auto it = dir_.find(evicted->block);
        if (it != dir_.end()) {
            it->second.sharers &= ~(1u << node);
            if (it->second.owner == static_cast<int>(node))
                it->second.owner = -1; // implicit writeback to memory
            if (it->second.sharers == 0 && it->second.owner < 0)
                dir_.erase(it);
        }
    }
}

void
MultiChipSystem::accessBlock(const Access &acc)
{
    const BlockId blk = blockOf(acc.addr);
    switch (acc.type) {
      case AccessType::Read:
        handleRead(acc, blk);
        break;
      case AccessType::Write:
        handleWrite(acc, blk);
        break;
      case AccessType::DmaWrite:
        handleIoWrite(acc, blk, kWriterDma);
        break;
      case AccessType::NonAllocWrite:
        handleIoWrite(acc, blk, kWriterCopyout);
        break;
    }
}

void
MultiChipSystem::accessBlockRun(const Access *accs, std::size_t n)
{
    // One virtual call for the whole run; every element dispatches
    // directly into the protocol handlers.
    for (std::size_t i = 0; i < n; ++i)
        MultiChipSystem::accessBlock(accs[i]);
}

void
MultiChipSystem::handleRead(const Access &acc, BlockId blk)
{
    const unsigned node = acc.cpu;

    // L1 hit: nothing further.
    if (l1_[node].lookup(blk))
        return;

    // L2 hit: refill L1 from the local L2 (intra-node, untraced in the
    // multi-chip context).
    if (auto st = l2_[node].lookup(blk)) {
        l1_[node].insert(blk, *st);
        return;
    }

    // Off-chip read miss: classify, trace (unless an in-the-loop
    // prefetch covers it), and fetch.
    const MissClass cls = tracker_.classifyRead(blk, node);
    recordOffChipMiss(blk, static_cast<CpuId>(node),
                      static_cast<std::uint8_t>(cls), acc.fn);

    DirEntry &de = dir_[blk];
    if (de.owner >= 0 && de.owner != static_cast<int>(node)) {
        // Remote owner supplies and downgrades to Shared (writeback).
        const unsigned o = static_cast<unsigned>(de.owner);
        l2_[o].setState(blk, CohState::Shared);
        l1_[o].setState(blk, CohState::Shared);
        de.sharers |= 1u << o;
        de.owner = -1;
    }
    de.sharers |= 1u << node;

    fillL2(node, blk, CohState::Shared);
    l1_[node].insert(blk, CohState::Shared);
}

void
MultiChipSystem::handleWrite(const Access &acc, BlockId blk)
{
    const unsigned node = acc.cpu;
    tracker_.recordWrite(blk, static_cast<int>(node));

    // Write hit in Modified: done.
    if (auto st = l2_[node].probe(blk); st && *st == CohState::Modified) {
        l2_[node].lookup(blk); // refresh LRU
        l1_[node].insert(blk, CohState::Modified);
        return;
    }

    // Upgrade or write miss: invalidate all other copies.
    DirEntry &de = dir_[blk];
    for (unsigned n = 0; n < cfg_.nodes; ++n) {
        if (n == node)
            continue;
        if ((de.sharers & (1u << n)) || de.owner == static_cast<int>(n))
            invalidateNode(n, blk);
    }
    de.sharers = 1u << node;
    de.owner = static_cast<int>(node);

    fillL2(node, blk, CohState::Modified);
    l1_[node].insert(blk, CohState::Modified);
}

void
MultiChipSystem::handleIoWrite(const Access &acc, BlockId blk, int writer)
{
    (void)acc;
    tracker_.recordWrite(blk, writer);

    // I/O writes invalidate every cached copy and do not allocate.
    auto it = dir_.find(blk);
    if (it != dir_.end()) {
        for (unsigned n = 0; n < cfg_.nodes; ++n)
            if ((it->second.sharers & (1u << n)) ||
                it->second.owner == static_cast<int>(n))
                invalidateNode(n, blk);
        dir_.erase(it);
    }
}

} // namespace tstream
