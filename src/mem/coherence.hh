/**
 * @file
 * Coherence states shared by the MSI (multi-chip) and MOSI
 * (single-chip, Piranha-like) protocol models.
 *
 * Coherence is central to the reproduction: the paper's Section 4.1
 * taxonomy splits read misses by whether a remote writer invalidated
 * the block (coherence miss), a DMA/bulk copy did (I-O coherence), or
 * the block was evicted (replacement), and Figure 1 shows coherence
 * dominating the multi-chip contexts. These states drive the
 * invalidation behavior in mem/multichip.hh and mem/singlechip.hh
 * that produces exactly those miss classes.
 */

#ifndef TSTREAM_MEM_COHERENCE_HH
#define TSTREAM_MEM_COHERENCE_HH

#include <cstdint>
#include <string_view>

namespace tstream
{

/**
 * Per-line coherence state. The multi-chip MSI model uses
 * {Invalid, Shared, Modified}; the single-chip MOSI model additionally
 * uses Owned (dirty but shared, supplier on peer misses).
 */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Owned,
    Modified,
};

/** True if the state confers read permission. */
constexpr bool
readable(CohState s)
{
    return s != CohState::Invalid;
}

/** True if the state confers write permission without upgrade. */
constexpr bool
writable(CohState s)
{
    return s == CohState::Modified;
}

/** True if the line holds the only up-to-date copy (must write back). */
constexpr bool
dirty(CohState s)
{
    return s == CohState::Modified || s == CohState::Owned;
}

/** Short name for debugging. */
constexpr std::string_view
cohStateName(CohState s)
{
    switch (s) {
      case CohState::Invalid: return "I";
      case CohState::Shared: return "S";
      case CohState::Owned: return "O";
      case CohState::Modified: return "M";
    }
    return "?";
}

} // namespace tstream

#endif // TSTREAM_MEM_COHERENCE_HH
