/**
 * @file
 * Set-associative cache with true-LRU replacement.
 *
 * This is a functional (timing-free) model: the paper collects traces
 * with in-order execution and no memory-system stalls, so all we need
 * is hit/miss/eviction behaviour and per-line coherence state.
 */

#ifndef TSTREAM_MEM_CACHE_HH
#define TSTREAM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/address.hh"
#include "mem/coherence.hh"
#include "util/logging.hh"

namespace tstream
{

/** Geometry of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    unsigned ways = 1;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (kBlockSize * ways);
    }
};

/** Standard configurations from the paper's system models. */
namespace cachecfg
{
/** 64 KB 2-way L1 (per paper: split I/D; we model the D side). */
constexpr CacheConfig kL1{64 * 1024, 2};
/** 8 MB 16-way L2. */
constexpr CacheConfig kL2{8 * 1024 * 1024, 16};
} // namespace cachecfg

/**
 * A set-associative cache of coherence-stated blocks.
 *
 * The cache stores no data, only (tag, state, lru) tuples. Insertion
 * returns the victim, if any, so callers can maintain inclusion or
 * write-back invariants.
 */
class Cache
{
  public:
    /** Result of a lookup. */
    struct Line
    {
        BlockId block;
        CohState state;
    };

    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p blk. On a hit the LRU stamp is refreshed and the
     * line's state is returned; on a miss std::nullopt.
     */
    std::optional<CohState> lookup(BlockId blk);

    /** Like lookup() but without touching LRU state (for probes). */
    std::optional<CohState> probe(BlockId blk) const;

    /**
     * Insert @p blk in @p st, evicting the LRU way if the set is full.
     * @return the evicted line, if any.
     */
    std::optional<Line> insert(BlockId blk, CohState st);

    /**
     * Change the state of a resident block.
     * @return false if the block is not resident.
     */
    bool setState(BlockId blk, CohState st);

    /**
     * Invalidate @p blk if resident.
     * @return the line's prior state, if it was resident.
     */
    std::optional<CohState> invalidate(BlockId blk);

    /** Number of resident (non-invalid) lines. */
    std::size_t residentCount() const;

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Way
    {
        BlockId tag = 0;
        CohState state = CohState::Invalid;
        std::uint64_t lru = 0;
    };

    std::uint64_t setIndex(BlockId blk) const { return blk & setMask_; }

    /** Find the way holding @p blk in its set, or -1. */
    int findWay(std::uint64_t set, BlockId blk) const;

    CacheConfig cfg_;
    std::uint64_t setMask_;
    unsigned ways_;
    std::vector<Way> lines_; ///< sets * ways, row-major
    std::uint64_t tick_ = 0;
};

} // namespace tstream

#endif // TSTREAM_MEM_CACHE_HH
