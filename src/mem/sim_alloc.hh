/**
 * @file
 * Simulated address-space layout and allocators.
 *
 * Workload emulators allocate their data structures out of a simulated
 * physical address space; no backing storage exists, only addresses.
 * The layout mirrors the process/kernel split the paper's attribution
 * relies on: kernel text and heap, the database buffer pool, per-process
 * user heaps, and DMA target regions.
 *
 * Two allocation disciplines are provided because buffer *reuse* is the
 * paper's key distinction between repetitive and non-repetitive I/O
 * (web copies reuse buffers and repeat; DSS copies do not and don't):
 *
 *  - BumpAllocator: monotonically increasing addresses, never reused.
 *  - RecyclingAllocator: LIFO free list over fixed-size chunks, so the
 *    same addresses are handed out again and again.
 */

#ifndef TSTREAM_MEM_SIM_ALLOC_HH
#define TSTREAM_MEM_SIM_ALLOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address.hh"
#include "util/logging.hh"

namespace tstream
{

/** Well-known segment base addresses of the simulated machine. */
namespace seg
{
constexpr Addr kKernelText = 0x0100'0000'0000ull;
constexpr Addr kKernelHeap = 0x0200'0000'0000ull;
constexpr Addr kBufferPool = 0x0400'0000'0000ull;
constexpr Addr kUserBase = 0x0800'0000'0000ull;
constexpr Addr kUserStride = 0x0010'0000'0000ull; // per-process spacing
constexpr Addr kDmaRegion = 0x0C00'0000'0000ull;
constexpr Addr kSegmentSize = 0x0100'0000'0000ull;

/** Base of the user heap for simulated process @p pid. */
constexpr Addr
userHeap(unsigned pid)
{
    return kUserBase + pid * kUserStride;
}
} // namespace seg

/**
 * Monotonic bump allocator over a segment. Addresses are never reused,
 * which models streaming allocation (fresh kernel buffers, growing
 * tables).
 */
class BumpAllocator
{
  public:
    /**
     * @param base First address handed out.
     * @param limit One past the last allocatable address.
     */
    BumpAllocator(Addr base, Addr limit)
        : base_(base), next_(base), limit_(limit)
    {
        panicIf(base >= limit, "BumpAllocator: empty segment");
    }

    /** Allocate @p size bytes with @p align alignment (power of two). */
    Addr
    alloc(Addr size, Addr align = 8)
    {
        Addr a = (next_ + align - 1) & ~(align - 1);
        panicIf(a + size > limit_, "BumpAllocator: segment exhausted");
        next_ = a + size;
        return a;
    }

    /** Allocate a block-aligned region. */
    Addr
    allocBlocks(Addr n_blocks)
    {
        return alloc(n_blocks * kBlockSize, kBlockSize);
    }

    /** Bytes consumed so far. */
    Addr used() const { return next_ - base_; }

    Addr base() const { return base_; }

  private:
    Addr base_;
    Addr next_;
    Addr limit_;
};

/**
 * Fixed-chunk recycling allocator: a LIFO free list over a bump arena.
 * Freed chunks are handed out again first, so allocation sequences
 * revisit the same addresses — the behaviour that makes web I/O buffers
 * repetitive in the paper's analysis. A small amount of magazine-layer
 * jitter (kmem-cache style) can be enabled so the reuse order is
 * near-LIFO rather than exactly periodic.
 */
class RecyclingAllocator
{
  public:
    /**
     * @param base Segment base.
     * @param limit Segment limit.
     * @param chunk Chunk size in bytes (block-aligned internally).
     * @param jitter Choose among the last @p jitter freed chunks
     *               pseudo-randomly (1 = exact LIFO).
     */
    RecyclingAllocator(Addr base, Addr limit, Addr chunk,
                       unsigned jitter = 4)
        : arena_(base, limit),
          chunk_((chunk + kBlockSize - 1) & ~(kBlockSize - 1)),
          jitter_(jitter == 0 ? 1 : jitter)
    {
    }

    /** Allocate one chunk, preferring recently freed ones. */
    Addr
    alloc()
    {
        if (!free_.empty()) {
            // xorshift step for deterministic magazine jitter.
            jstate_ ^= jstate_ << 13;
            jstate_ ^= jstate_ >> 7;
            jstate_ ^= jstate_ << 17;
            const std::size_t window =
                free_.size() < jitter_ ? free_.size() : jitter_;
            const std::size_t pick =
                free_.size() - 1 - (jstate_ % window);
            const Addr a = free_[pick];
            free_[pick] = free_.back();
            free_.pop_back();
            return a;
        }
        return arena_.alloc(chunk_, kBlockSize);
    }

    /** Return a chunk to the free list. */
    void free(Addr a) { free_.push_back(a); }

    Addr chunkSize() const { return chunk_; }

    std::size_t freeCount() const { return free_.size(); }

  private:
    BumpAllocator arena_;
    Addr chunk_;
    std::size_t jitter_;
    std::uint64_t jstate_ = 0x2545F4914F6CDD1Dull;
    std::vector<Addr> free_;
};

} // namespace tstream

#endif // TSTREAM_MEM_SIM_ALLOC_HH
