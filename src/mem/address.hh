/**
 * @file
 * Simulated physical address space: geometry constants and helpers.
 *
 * The whole toolkit works on a 64-bit simulated physical address space.
 * Cache-relevant geometry matches the paper's system models: 64-byte
 * cache blocks and 4 KB OS pages (the paper's Figure 4 attributes the
 * stream-length step at 4 KB to the Solaris page size).
 */

#ifndef TSTREAM_MEM_ADDRESS_HH
#define TSTREAM_MEM_ADDRESS_HH

#include <cstdint>

namespace tstream
{

/** A simulated physical byte address. */
using Addr = std::uint64_t;

/** A cache-block number (Addr >> kBlockBits). */
using BlockId = std::uint64_t;

/** log2 of the cache block size. */
constexpr unsigned kBlockBits = 6;

/** Cache block size in bytes (64 B, as in the paper's models). */
constexpr Addr kBlockSize = Addr{1} << kBlockBits;

/** log2 of the OS page size. */
constexpr unsigned kPageBits = 12;

/** OS page size in bytes (4 KB; Solaris base page). */
constexpr Addr kPageSize = Addr{1} << kPageBits;

/** Cache blocks per OS page (64). */
constexpr Addr kBlocksPerPage = kPageSize / kBlockSize;

/** Block number containing byte address @p a. */
constexpr BlockId
blockOf(Addr a)
{
    return a >> kBlockBits;
}

/** First byte address of block @p b. */
constexpr Addr
blockBase(BlockId b)
{
    return b << kBlockBits;
}

/** Page number containing byte address @p a. */
constexpr std::uint64_t
pageOf(Addr a)
{
    return a >> kPageBits;
}

/** Align @p a down to its block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(kBlockSize - 1);
}

/** Number of blocks an access of @p size bytes at @p a touches. */
constexpr unsigned
blocksSpanned(Addr a, std::uint32_t size)
{
    if (size == 0)
        return 0;
    const BlockId first = blockOf(a);
    const BlockId last = blockOf(a + size - 1);
    return static_cast<unsigned>(last - first + 1);
}

} // namespace tstream

#endif // TSTREAM_MEM_ADDRESS_HH
