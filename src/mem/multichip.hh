/**
 * @file
 * Multi-chip DSM model: N nodes, each with a private L1 and a large
 * private L2, kept coherent with a directory-based MSI protocol.
 *
 * Mirrors the paper's 16-node distributed-shared-memory system (64 KB
 * 2-way L1, 8 MB 16-way L2, MSI). The model is functional: the traced
 * events are off-chip read misses (L2 read misses), classified with the
 * 4C's+I/O taxonomy per node.
 */

#ifndef TSTREAM_MEM_MULTICHIP_HH
#define TSTREAM_MEM_MULTICHIP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/writer_tracker.hh"

namespace tstream
{

/** Configuration of the multi-chip DSM. */
struct MultiChipConfig
{
    unsigned nodes = 16;
    CacheConfig l1 = cachecfg::kL1;
    CacheConfig l2 = cachecfg::kL2;
};

/** Directory-based MSI multi-chip multiprocessor. */
class MultiChipSystem : public MemorySystem
{
  public:
    explicit MultiChipSystem(const MultiChipConfig &cfg = {});

    void accessBlock(const Access &acc) override;
    void accessBlockRun(const Access *accs, std::size_t n) override;

    unsigned numCpus() const override { return cfg_.nodes; }

    /** Directory entry state, exposed for tests. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< bitmask over nodes
        int owner = -1;            ///< node holding Modified, or -1
    };

    /** Probe the directory (tests / debugging). */
    const DirEntry *dirEntry(BlockId blk) const;

    /** Probe a node's caches (tests / debugging). */
    std::optional<CohState> probeL1(unsigned node, BlockId blk) const;
    std::optional<CohState> probeL2(unsigned node, BlockId blk) const;

  private:
    void handleRead(const Access &acc, BlockId blk);
    void handleWrite(const Access &acc, BlockId blk);
    void handleIoWrite(const Access &acc, BlockId blk, int writer);

    /** Remove @p node from sharers/owner and invalidate its caches. */
    void invalidateNode(unsigned node, BlockId blk);

    /** Handle an L2 insertion's possible eviction at @p node. */
    void fillL2(unsigned node, BlockId blk, CohState st);

    MultiChipConfig cfg_;
    std::vector<Cache> l1_;
    std::vector<Cache> l2_;
    std::unordered_map<BlockId, DirEntry> dir_;
    WriterTracker tracker_;
};

} // namespace tstream

#endif // TSTREAM_MEM_MULTICHIP_HH
