/**
 * @file
 * Exact last-writer / ever-touched tracking for miss classification.
 *
 * The paper's Section 4.1 taxonomy needs, at each read miss, to know
 * whether the block was (a) ever accessed before by anyone (else
 * Compulsory), (b) written since the reader's last read, and by whom:
 * another processor (Coherence), a DMA transfer or non-allocating bulk
 * copy (I/O Coherence), or nobody relevant (Replacement).
 *
 * A WriterTracker is instantiated per *classification viewpoint*: the
 * multi-chip system classifies per node; the single-chip off-chip view
 * treats the whole chip as one reader (so processor-to-processor
 * communication never appears as off-chip coherence, matching the
 * paper); the intra-chip view classifies per core.
 */

#ifndef TSTREAM_MEM_WRITER_TRACKER_HH
#define TSTREAM_MEM_WRITER_TRACKER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/address.hh"
#include "trace/record.hh"

namespace tstream
{

/** Sentinel writer ids for I/O-class writes. */
constexpr int kWriterDma = -1;
constexpr int kWriterCopyout = -2;

/** Tracks per-block write history and per-reader read versions. */
class WriterTracker
{
  public:
    /** @param readers Number of reader entities (nodes/cores/chips). */
    explicit WriterTracker(unsigned readers)
        : lastRead_(readers)
    {
    }

    /**
     * Record a write to @p blk by @p writer (a reader-entity id, or
     * kWriterDma / kWriterCopyout).
     */
    void
    recordWrite(BlockId blk, int writer)
    {
        Info &bi = info_[blk];
        bi.version++;
        bi.writer = writer;
    }

    /**
     * Classify a read miss on @p blk by reader @p reader and update
     * history (ever-touched and the reader's last-read version).
     *
     * Following the paper's definitions strictly, Coherence and I/O
     * Coherence require a *prior read at this reader*: a block this
     * reader has never read cannot have been invalidated out of its
     * cache, so its first read here is Compulsory (if globally cold)
     * or Replacement (cold at this cache only).
     */
    MissClass
    classifyRead(BlockId blk, unsigned reader)
    {
        auto [it, fresh] = info_.try_emplace(blk);
        Info &bi = it->second;

        MissClass cls;
        auto rit = lastRead_[reader].find(blk);
        if (fresh || !bi.touched) {
            cls = MissClass::Compulsory;
        } else if (rit == lastRead_[reader].end()) {
            cls = MissClass::Replacement; // cold at this reader
        } else if (bi.version > rit->second) {
            if (bi.writer == kWriterDma || bi.writer == kWriterCopyout)
                cls = MissClass::IoCoherence;
            else if (bi.writer != static_cast<int>(reader))
                cls = MissClass::Coherence;
            else
                cls = MissClass::Replacement;
        } else {
            cls = MissClass::Replacement;
        }

        bi.touched = true;
        if (rit == lastRead_[reader].end())
            lastRead_[reader].emplace(blk, bi.version);
        else
            rit->second = bi.version;
        return cls;
    }

    /**
     * True if a read by @p reader would be coherence-caused, i.e. the
     * block was written (by anyone but the reader, or by I/O) since the
     * reader's last read. Does not update history; use for the
     * intra-chip cause split before classifyRead().
     */
    bool
    coherenceCaused(BlockId blk, unsigned reader) const
    {
        auto it = info_.find(blk);
        if (it == info_.end() || !it->second.touched)
            return false;
        const Info &bi = it->second;
        auto rit = lastRead_[reader].find(blk);
        if (rit == lastRead_[reader].end())
            return false; // never read here: cannot be an invalidation
        return bi.version > rit->second &&
               bi.writer != static_cast<int>(reader);
    }

    /** Mark a block touched without classifying (e.g. store misses). */
    void
    recordTouch(BlockId blk)
    {
        info_[blk].touched = true;
    }

    /** Number of distinct blocks ever seen. */
    std::size_t distinctBlocks() const { return info_.size(); }

  private:
    struct Info
    {
        std::uint32_t version = 0;
        int writer = 0;
        bool touched = false;
    };

    std::unordered_map<BlockId, Info> info_;
    std::vector<std::unordered_map<BlockId, std::uint32_t>> lastRead_;
};

} // namespace tstream

#endif // TSTREAM_MEM_WRITER_TRACKER_HH
