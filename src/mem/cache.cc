#include "mem/cache.hh"

#include <bit>

namespace tstream
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), ways_(cfg.ways)
{
    const std::uint64_t sets = cfg.numSets();
    panicIf(sets == 0 || (sets & (sets - 1)) != 0,
            "Cache: set count must be a nonzero power of two");
    panicIf(ways_ == 0, "Cache: zero ways");
    setMask_ = sets - 1;
    lines_.resize(sets * ways_);
}

int
Cache::findWay(std::uint64_t set, BlockId blk) const
{
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        const Way &way = lines_[base + w];
        if (way.state != CohState::Invalid && way.tag == blk)
            return static_cast<int>(w);
    }
    return -1;
}

std::optional<CohState>
Cache::lookup(BlockId blk)
{
    const std::uint64_t set = setIndex(blk);
    const int w = findWay(set, blk);
    if (w < 0)
        return std::nullopt;
    Way &way = lines_[set * ways_ + w];
    way.lru = ++tick_;
    return way.state;
}

std::optional<CohState>
Cache::probe(BlockId blk) const
{
    const std::uint64_t set = setIndex(blk);
    const int w = findWay(set, blk);
    if (w < 0)
        return std::nullopt;
    return lines_[set * ways_ + w].state;
}

std::optional<Cache::Line>
Cache::insert(BlockId blk, CohState st)
{
    panicIf(st == CohState::Invalid, "Cache::insert of Invalid state");
    const std::uint64_t set = setIndex(blk);
    const std::size_t base = set * ways_;

    // Re-insertion of a resident block just updates state and LRU.
    const int hit = findWay(set, blk);
    if (hit >= 0) {
        Way &way = lines_[base + hit];
        way.state = st;
        way.lru = ++tick_;
        return std::nullopt;
    }

    // Prefer an invalid way; otherwise evict the LRU way.
    int victim = -1;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = lines_[base + w];
        if (way.state == CohState::Invalid) {
            victim = static_cast<int>(w);
            oldest = 0;
            break;
        }
        if (way.lru < oldest) {
            oldest = way.lru;
            victim = static_cast<int>(w);
        }
    }

    Way &way = lines_[base + victim];
    std::optional<Line> evicted;
    if (way.state != CohState::Invalid)
        evicted = Line{way.tag, way.state};
    way.tag = blk;
    way.state = st;
    way.lru = ++tick_;
    return evicted;
}

bool
Cache::setState(BlockId blk, CohState st)
{
    const std::uint64_t set = setIndex(blk);
    const int w = findWay(set, blk);
    if (w < 0)
        return false;
    lines_[set * ways_ + w].state = st;
    return true;
}

std::optional<CohState>
Cache::invalidate(BlockId blk)
{
    const std::uint64_t set = setIndex(blk);
    const int w = findWay(set, blk);
    if (w < 0)
        return std::nullopt;
    Way &way = lines_[set * ways_ + w];
    const CohState prior = way.state;
    way.state = CohState::Invalid;
    return prior;
}

std::size_t
Cache::residentCount() const
{
    std::size_t n = 0;
    for (const Way &w : lines_)
        if (w.state != CohState::Invalid)
            ++n;
    return n;
}

} // namespace tstream
