#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>

namespace tstream
{

std::string
LogHistogram::render(const std::string &label) const
{
    std::string out = label + "\n";
    char line[160];
    for (unsigned d = 0; d < decades_; ++d) {
        std::uint64_t decadeCount = 0;
        for (unsigned s = 0; s < perDecade_; ++s)
            decadeCount += counts_[d * perDecade_ + s];
        const double frac =
            total_ == 0 ? 0.0
                        : static_cast<double>(decadeCount) /
                              static_cast<double>(total_);
        const int bar = static_cast<int>(frac * 50.0 + 0.5);
        std::snprintf(line, sizeof(line), "  [1e%u,1e%u)  %6.1f%%  %s\n",
                      d, d + 1, 100.0 * frac,
                      std::string(static_cast<std::size_t>(bar), '#')
                          .c_str());
        out += line;
    }
    return out;
}

void
WeightedCdf::sortSamples() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
WeightedCdf::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    sortSamples();
    const double target = total_ * p / 100.0;
    std::uint64_t run = 0;
    for (const auto &[v, w] : samples_) {
        run += w;
        if (static_cast<double>(run) >= target)
            return static_cast<double>(v);
    }
    return static_cast<double>(samples_.back().first);
}

double
WeightedCdf::cumulativeAt(std::uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    sortSamples();
    std::uint64_t run = 0;
    for (const auto &[v, w] : samples_) {
        if (v > value)
            break;
        run += w;
    }
    return static_cast<double>(run) / static_cast<double>(total_);
}

std::string
WeightedCdf::render(const std::string &label,
                    const std::vector<std::uint64_t> &points) const
{
    std::string out = label + "\n";
    char line[160];
    for (auto pt : points) {
        std::snprintf(line, sizeof(line), "  len <= %-8llu  %6.1f%%\n",
                      static_cast<unsigned long long>(pt),
                      100.0 * cumulativeAt(pt));
        out += line;
    }
    return out;
}

} // namespace tstream
