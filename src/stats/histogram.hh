/**
 * @file
 * Log-bucketed histograms, weighted CDFs, and simple ASCII rendering —
 * the presentation layer for Figure 4-style distributions.
 *
 * Stream lengths and reuse distances span seven decades (Sections
 * 4.4-4.5), so the figures bucket them logarithmically and weight each
 * stream by its contribution (its length) rather than counting streams
 * equally; this header provides exactly those two operations for the
 * fig4 and ablation benches.
 */

#ifndef TSTREAM_STATS_HISTOGRAM_HH
#define TSTREAM_STATS_HISTOGRAM_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace tstream
{

/**
 * Histogram over a logarithmic domain [1, 10^decades), with
 * @p bucketsPerDecade sub-buckets per decade. Values of 0 land in the
 * first bucket; values beyond the top decade clamp to the last.
 */
class LogHistogram
{
  public:
    LogHistogram(unsigned decades, unsigned buckets_per_decade)
        : decades_(decades), perDecade_(buckets_per_decade),
          counts_(decades * buckets_per_decade, 0)
    {
    }

    /** Add @p weight at @p value. */
    void
    add(std::uint64_t value, std::uint64_t weight = 1)
    {
        counts_[bucketOf(value)] += weight;
        total_ += weight;
    }

    /** Bucket index for @p value. */
    std::size_t
    bucketOf(std::uint64_t value) const
    {
        if (value <= 1)
            return 0;
        const double lg = std::log10(static_cast<double>(value));
        auto b = static_cast<std::size_t>(lg * perDecade_);
        return b >= counts_.size() ? counts_.size() - 1 : b;
    }

    /** Lower bound of bucket @p b. */
    double
    bucketLow(std::size_t b) const
    {
        return std::pow(10.0, static_cast<double>(b) / perDecade_);
    }

    std::uint64_t total() const { return total_; }

    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Fraction of weight in bucket @p b (0..1). */
    double
    fraction(std::size_t b) const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(counts_[b]) /
                         static_cast<double>(total_);
    }

    /**
     * Fraction of weight at or below @p value (0..1) using bucket
     * granularity.
     */
    double
    cumulativeAt(std::uint64_t value) const
    {
        if (total_ == 0)
            return 0.0;
        const std::size_t limit = bucketOf(value);
        std::uint64_t run = 0;
        for (std::size_t b = 0; b <= limit; ++b)
            run += counts_[b];
        return static_cast<double>(run) / static_cast<double>(total_);
    }

    /**
     * Render an ASCII profile: one row per decade boundary with a bar
     * proportional to that decade's share.
     */
    std::string render(const std::string &label) const;

  private:
    unsigned decades_;
    unsigned perDecade_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Weighted empirical CDF over integer values (stream lengths).
 * Values are aggregated exactly; percentile queries interpolate on the
 * weight axis.
 */
class WeightedCdf
{
  public:
    void
    add(std::uint64_t value, std::uint64_t weight)
    {
        samples_.emplace_back(value, weight);
        total_ += weight;
        sorted_ = false;
    }

    /** Weighted percentile, p in [0, 100]. */
    double percentile(double p) const;

    /** Fraction of weight at or below @p value. */
    double cumulativeAt(std::uint64_t value) const;

    std::uint64_t total() const { return total_; }

    /** Render cumulative values at the given points. */
    std::string render(const std::string &label,
                       const std::vector<std::uint64_t> &points) const;

  private:
    void sortSamples() const;

    mutable std::vector<std::pair<std::uint64_t, std::uint64_t>> samples_;
    mutable bool sorted_ = true;
    std::uint64_t total_ = 0;
};

} // namespace tstream

#endif // TSTREAM_STATS_HISTOGRAM_HH
