/**
 * @file
 * Phased/mixed workload composition (YCSBR-PhasedWorkload-style): one
 * server node hosting both the KV store and the broker, with worker
 * threads whose op mix follows a cyclic (kind, op-mix, duration)
 * phase schedule measured on the engine's global instruction counter.
 *
 * Determinism contract: the phase active at instruction I is a pure
 * function of the schedule (PhaseSchedule::ordinalAt), and every
 * worker reseeds its private op RNG from (seed, phase ordinal,
 * worker id) the moment it first observes a new ordinal — so the op
 * stream within a phase depends only on the seed and the phase, not
 * on how many ops earlier phases happened to issue. The experiment
 * configHash covers the schedule, so phased cells cache correctly.
 */

#ifndef TSTREAM_SIM_PHASED_WORKLOAD_HH
#define TSTREAM_SIM_PHASED_WORKLOAD_HH

#include <memory>
#include <vector>

#include "gen/key_chooser.hh"
#include "kv/kvstore.hh"
#include "mq/broker.hh"
#include "sim/workload.hh"

namespace tstream
{

/** Tunables of the phased mix. */
struct PhasedConfig
{
    /** Sub-engines are scaled-down relative to the standalone apps
     *  (two apps share one node). */
    KvConfig kv{/*keys=*/120'000, /*buckets=*/16'384,
                /*capacity=*/40'000, /*valueBlocksMax=*/8,
                /*zipf=*/0.95};
    MqConfig mq{/*topics=*/32, /*segmentBlocks=*/64,
                /*retentionSegments=*/16, /*zipf=*/0.8};
    unsigned workers = 32;
    unsigned connections = 128;
    /** Bytes replayed per broker-consume op. */
    std::uint32_t consumeBytes = 6 * 1024;

    PhaseSchedule schedule; ///< filled by makeWorkload (never empty)
    std::uint64_t seed = 42;

    void
    rescale(double s)
    {
        kv.rescale(s);
        mq.rescale(s);
        workers = std::max(4u, static_cast<unsigned>(workers * s));
        connections =
            std::max(16u, static_cast<unsigned>(connections * s));
    }
};

/** The phased KV/broker mix. */
class PhasedWorkload : public Workload
{
  public:
    explicit PhasedWorkload(const PhasedConfig &cfg)
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view name() const override { return "PhasedMix"; }

    const PhaseSchedule &schedule() const { return cfg_.schedule; }

    /** Ops issued under KV phases / broker phases (diagnostics). */
    std::uint64_t kvOps() const { return kvOps_; }
    std::uint64_t mqOps() const { return mqOps_; }

    /** One observed phase transition (worker 0's view). */
    struct PhaseSwitch
    {
        std::uint64_t ordinal;      ///< the ordinal switched *to*
        std::uint64_t instructions; ///< engine counter at observation
    };

    /** Worker 0's phase-transition log (bounded). */
    const std::vector<PhaseSwitch> &switchLog() const
    {
        return switches_;
    }

  private:
    class Listener;
    class Worker;

    /** Shared node state. */
    struct Shared
    {
        std::unique_ptr<KvStore> store;
        std::unique_ptr<Broker> broker;
        /**
         * One chooser per schedule phase (index = ordinal % phases):
         * KV phases choose keys in [0, kv.keys), broker phases choose
         * topics in [0, mq.topics), each under its phase's dist spec.
         */
        std::vector<std::unique_ptr<KeyChooser>> phaseDist;

        std::vector<std::uint32_t> connFd;
        std::vector<Addr> connPcb;
        std::vector<Addr> connNetbuf;
        std::vector<Addr> workerBuf;

        ProcDesc serverProc{};
        FnId fnParse = 0;
    };

    PhasedConfig cfg_;
    Shared sh_;
    std::uint64_t kvOps_ = 0, mqOps_ = 0;
    std::vector<PhaseSwitch> switches_;
};

} // namespace tstream

#endif // TSTREAM_SIM_PHASED_WORKLOAD_HH
