/**
 * @file
 * Versioned machine-readable bench reports — the `--json` output of
 * every figure/table bench and the interchange format of the
 * tstream-bench front-end.
 *
 * One *bench document* (schema "tstream-bench/v3") describes one
 * bench binary's (possibly sharded or fleet) run: the budgets, the
 * total grid size, and one entry per executed cell carrying the cell
 * id, its configHash() provenance, wall/sim time, and the bench's
 * rows — each row holds both the exact printed table line (`text`)
 * and the named numeric metrics behind it, so a JSON report is
 * bit-identical to the printed table and still machine-comparable. A
 * cell whose execution exhausted its retries is recorded as a
 * *failure row*: `failed.cause` + `attempts`, with no table rows —
 * the sweep keeps going and the failure travels through merge and
 * check-equal instead of disappearing. Shard/worker documents of the
 * same bench merge into the unsharded document (exact cover of the
 * grid is verified; a *failed* cell covers its index, a *missing*
 * cell is still an error — the two are never conflated); equivalence
 * ignores non-deterministic fields (wall time, cache hits, jobs,
 * shard) so "merged fleet run equals unsharded run" is a checkable
 * invariant. Several bench documents bundle into a *combined report*
 * (schema "tstream-bench-report/v3").
 *
 * v1 -> v2 (scenario-subsystem PR): the nine-workload grid, the
 * origins benches' self-contained `origins_block` rows, and the
 * l2-sweep per-workload label changed the *row* content without any
 * field-level change, so the version was bumped to keep `--resume`
 * (which reuses stored rows verbatim) from silently mixing row
 * shapes across binaries.
 *
 * v2 -> v3 (fleet PR): cells gained `attempts` and the optional
 * `failed` object, and a cell with a failure row deliberately has no
 * table rows — a v2 consumer would misread such a cell as "ran fine,
 * produced nothing", so the version was bumped. Old reports are
 * rejected with a schema error; re-run the bench to regenerate.
 *
 * Field-by-field schema documentation: docs/BENCHMARKING.md.
 */

#ifndef TSTREAM_SIM_BENCH_REPORT_HH
#define TSTREAM_SIM_BENCH_REPORT_HH

#include <string>
#include <vector>

#include "sim/driver.hh"
#include "trace/query.hh"
#include "util/json.hh"

namespace tstream
{

inline constexpr std::string_view kBenchDocSchema = "tstream-bench/v3";
inline constexpr std::string_view kBenchReportSchema =
    "tstream-bench-report/v3";
inline constexpr std::string_view kQueryDocSchema = "tstream-query/v1";

/** One printed table row with its machine-readable metrics. */
struct BenchRow
{
    std::string table; ///< which printed table/panel the row is in
    std::string trace; ///< trace kind or sweep key ("multi-chip", "4MB")
    std::string label; ///< optional sub-key (e.g. origin category)
    /** Optional prefetch-policy name (core/prefetch_policy.hh) for
     *  rows produced under a named policy (ext_prefetcher --policy /
     *  --budget-sweep); serialized only when non-empty, so documents
     *  without policy rows are byte-identical to pre-field reports. */
    std::string policy;
    std::string text;  ///< the exact printed line (no trailing newline)
    std::vector<std::pair<std::string, double>> metrics;
};

/** One executed cell inside a bench document. */
struct BenchCell
{
    std::size_t index = 0;
    std::string id;
    std::string workload;
    std::string context;
    std::uint64_t configHash = 0;
    bool cacheHit = false;
    double wallSeconds = 0.0;
    std::uint64_t instructions = 0;
    unsigned attempts = 1; ///< execution attempts consumed
    /** Failure row: the cell exhausted its retries; rows is empty and
     *  failureCause says why (e.g. "timeout after 500ms"). */
    bool failed = false;
    std::string failureCause;
    std::vector<BenchRow> rows;
};

/** One bench binary's (possibly sharded) run. */
struct BenchDoc
{
    std::string bench; ///< binary name, e.g. "fig2_stream_fraction"
    bool quick = false;
    BenchBudgets budgets;
    std::size_t gridCells = 0; ///< total grid size (cover check)
    ShardSpec shard;
    unsigned jobs = 0;
    std::vector<BenchCell> cells; ///< ascending by index
};

/** Build a report cell from a driver result plus the bench's rows. */
BenchCell makeBenchCell(const CellResult &res,
                        std::vector<BenchRow> rows);

/**
 * `--resume` support: load the reusable cells of the prior report at
 * @p path for @p benchName over the current @p grid. A missing file
 * succeeds with no cells (first run). An existing file must match
 * exactly — schema version (readBenchDocs rejects others), bench
 * name, quick flag, budgets, grid size, and every stored cell's id
 * and configHash() against the current grid — otherwise the load
 * fails with a description in @p err rather than silently mixing
 * results from different configurations. On success @p out holds the
 * stored cells in ascending grid order.
 */
bool loadResumeCells(const std::string &path,
                     const std::string &benchName, bool quick,
                     const BenchBudgets &budgets,
                     const std::vector<Cell> &grid,
                     std::vector<BenchCell> &out, std::string &err);

json::Value benchDocToJson(const BenchDoc &doc);

/** Parse one bench document; false + @p err on schema mismatch. */
bool benchDocFromJson(const json::Value &v, BenchDoc &out,
                      std::string &err);

/** Serialize @p doc to @p path (pretty JSON). */
bool writeBenchDoc(const BenchDoc &doc, const std::string &path,
                   std::string &err);

/** A combined report bundling several bench documents. */
json::Value combinedReportToJson(const std::vector<BenchDoc> &docs);

/**
 * Read bench documents from @p path: accepts a single bench document
 * or a combined report (appends every contained document).
 */
bool readBenchDocs(const std::string &path, std::vector<BenchDoc> &out,
                   std::string &err);

/**
 * Merge shard/worker documents of one bench into the unsharded
 * document: headers (bench, quick, budgets, grid size) must agree and
 * the union must cover every grid index exactly. A *failed* cell
 * covers its index (the failure row is carried into the merged
 * document); a *missing* cell is an error naming the absent indexes —
 * the two are distinct outcomes and neither is dropped silently.
 * Duplicate cells: a successful copy beats a failed one (another
 * worker recovered the cell), two successful copies must be
 * equivalent, and of two failed copies the first is kept (causes may
 * legitimately differ between workers).
 */
bool mergeBenchDocs(const std::vector<BenchDoc> &docs, BenchDoc &out,
                    std::string &err);

/**
 * Deterministic-content equivalence: bench, quick, budgets, grid
 * size, and every cell's (index, id, workload, context, configHash,
 * instructions, rows) must match exactly; wallSeconds, cacheHit,
 * attempts, jobs and shard are execution details and ignored. A cell
 * present on one side only, a cell that failed on either side, and a
 * metric mismatch each produce a distinct diagnostic in @p why naming
 * the cell — a failure row is never silently "equal" to anything.
 */
bool benchDocsEquivalent(const BenchDoc &a, const BenchDoc &b,
                         std::string &why);

/**
 * Subset equivalence for restricted-grid runs (`--workload FILE`
 * narrows a bench to the configured workload): every cell of @p sub
 * must have a cell with the same id in @p full whose deterministic
 * content (workload, context, configHash, instructions, rows)
 * matches; @p full may hold additional cells, and grid size / cell
 * indexes are ignored since the restricted grid renumbers from zero.
 * Bench name, quick flag and budgets must still agree. Backs
 * `tstream-bench check-equal --subset`.
 */
bool benchDocIsSubset(const BenchDoc &sub, const BenchDoc &full,
                      std::string &why);

// ---------------------------------------------------------------------------
// Query documents — the `--json` output of `tstream-trace query`
// (schema "tstream-query/v1"). Rows share the bench rows' JSON shape
// ({table, trace, label, text, metrics}), so the fig2-equality e2e
// chain can compare a query's `streams` row against a live bench row
// value-for-value through the same serializer.
// ---------------------------------------------------------------------------

json::Value queryDocToJson(const QueryDoc &doc);

/** Serialize @p doc to @p path (pretty JSON). */
bool writeQueryDoc(const QueryDoc &doc, const std::string &path,
                   std::string &err);

// ---------------------------------------------------------------------------
// Perf-series comparison — the primitive behind `tstream-bench
// compare` and the CI perf-regression gate (docs/BENCHMARKING.md).
// ---------------------------------------------------------------------------

/** One named perf measurement. Time in nanoseconds; lower is better. */
struct PerfSample
{
    std::string name;
    double timeNs = 0.0;
};

/**
 * Load the perf series of the report at @p path. Two formats are
 * recognized:
 *
 *  - Google Benchmark JSON (`--benchmark_out_format=json`): one
 *    sample per "iteration" entry (aggregates are skipped), named by
 *    `name`, valued by `cpu_time` normalized to ns via `time_unit`.
 *    Repeated names (repetitions) keep the fastest run.
 *  - tstream-bench documents / combined reports: one sample per
 *    cell, named "<bench>/<cell id>", valued by `wall_seconds`.
 *
 * Anything else (including structurally broken reports) fails with a
 * description in @p err.
 */
bool loadPerfSeries(const std::string &path,
                    std::vector<PerfSample> &out, std::string &err);

/** One row of a perf comparison. */
struct PerfDelta
{
    enum class Status : std::uint8_t
    {
        Ok,        ///< within threshold in both directions
        Improved,  ///< faster than 1/maxRegress
        Regressed, ///< slower than maxRegress — gate failure
        Missing,   ///< in the baseline but not the current report
        Fresh,     ///< in the current report only — not gated
    };

    std::string name;
    double baseNs = 0.0;
    double currentNs = 0.0;
    double ratio = 0.0; ///< current / base (0 when either is absent)
    Status status = Status::Ok;
};

/** Gate parameters for comparePerfSeries(). */
struct PerfGateOptions
{
    /**
     * A series regresses when current/base is strictly greater than
     * this ratio (ratio == threshold still passes).
     */
    double maxRegress = 1.25;

    /**
     * Gate only these series (exact names). Empty = every baseline
     * series is gated. A named series absent from the baseline is
     * reported Missing, so a typo cannot silently disable the gate.
     */
    std::vector<std::string> series;
};

/** Result of a perf comparison. */
struct PerfComparison
{
    std::vector<PerfDelta> rows; ///< baseline order, then Fresh rows
    std::size_t regressed = 0;
    std::size_t missing = 0;
    std::size_t fresh = 0;
    bool pass = true; ///< no gated series Regressed or Missing
};

/**
 * Compare @p current against @p base: every (gated) baseline series
 * must be present and within opts.maxRegress; series only in
 * @p current are reported Fresh and never fail the gate.
 */
PerfComparison comparePerfSeries(const std::vector<PerfSample> &base,
                                 const std::vector<PerfSample> &current,
                                 const PerfGateOptions &opts);

// ---------------------------------------------------------------------------
// Perf trend — `tstream-bench trend`: one series' trajectory across an
// ordered sequence of archived reports (e.g. BENCH_perf.json artifacts
// from successive commits).
// ---------------------------------------------------------------------------

/** One series across the report sequence. */
struct TrendSeries
{
    std::string name;
    /** Aligned with TrendTable::labels; 0 = absent from that report. */
    std::vector<double> timesNs;
    /** last present value / first present value; 0 with <2 points. */
    double lastVsFirst = 0.0;
};

/** The trend of every (filtered) series across the inputs. */
struct TrendTable
{
    std::vector<std::string> labels; ///< one per input report, in order
    std::vector<TrendSeries> rows;   ///< first-appearance order
};

/**
 * Align the per-report sample sets of an ordered sequence of reports
 * (@p labels names them, typically file paths or commit ids) into one
 * table. @p filter restricts to exact series names (empty = all).
 * Pure over already-loaded samples so it unit-tests without files;
 * `tstream-bench trend` feeds it one loadPerfSeries() result per
 * report and optionally gates lastVsFirst against --max-regress.
 */
TrendTable computeTrend(const std::vector<std::string> &labels,
                        const std::vector<std::vector<PerfSample>> &series,
                        const std::vector<std::string> &filter);

} // namespace tstream

#endif // TSTREAM_SIM_BENCH_REPORT_HH
