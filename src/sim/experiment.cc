#include "sim/experiment.hh"

#include "kernel/kernel.hh"
#include "sim/engine.hh"

namespace tstream
{

std::string_view
contextName(SystemContext c)
{
    switch (c) {
      case SystemContext::MultiChip: return "multi-chip";
      case SystemContext::SingleChip: return "single-chip";
    }
    return "<invalid>";
}

MissTrace
ExperimentResult::intraChipOnChip() const
{
    MissTrace t;
    t.numCpus = intraChip.numCpus;
    t.instructions = intraChip.instructions;
    for (const MissRecord &m : intraChip.misses)
        if (static_cast<IntraClass>(m.cls) != IntraClass::OffChip)
            t.misses.push_back(m);
    return t;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    std::unique_ptr<MemorySystem> sys;
    if (cfg.context == SystemContext::MultiChip)
        sys = std::make_unique<MultiChipSystem>(cfg.multiChip);
    else
        sys = std::make_unique<SingleChipSystem>(cfg.singleChip);

    Engine eng(std::move(sys), cfg.seed);
    Kernel kern(eng);

    auto workload = makeWorkload(cfg.workload, cfg.scale);
    workload->setup(kern);

    // Warm caches, TLBs, the buffer pool and the classifier history
    // without tracing (the paper warms thousands of transactions).
    eng.setTracing(false);
    kern.run(cfg.warmupInstructions);

    // Measure.
    eng.setTracing(true);
    kern.run(cfg.measureInstructions);
    eng.finalizeTraces();

    ExperimentResult res;
    res.offChip = std::move(eng.memory().offChipTrace());
    res.intraChip = std::move(eng.memory().intraChipTrace());
    res.registry = eng.registry();
    res.instructions = eng.totalInstructions();
    return res;
}

} // namespace tstream
