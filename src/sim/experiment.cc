#include "sim/experiment.hh"

#include <cstring>

#include "core/prefetch_policy.hh"
#include "kernel/kernel.hh"
#include "sim/engine.hh"
#include "util/logging.hh"

namespace tstream
{

std::string_view
contextName(SystemContext c)
{
    switch (c) {
      case SystemContext::MultiChip: return "multi-chip";
      case SystemContext::SingleChip: return "single-chip";
    }
    return "<invalid>";
}

MissTrace
ExperimentResult::intraChipOnChip() const
{
    MissTrace t;
    t.numCpus = intraChip.numCpus;
    t.instructions = intraChip.instructions;
    for (const MissRecord &m : intraChip.misses)
        if (static_cast<IntraClass>(m.cls) != IntraClass::OffChip)
            t.misses.push_back(m);
    return t;
}

namespace
{

/** FNV-1a accumulation step. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
mixCache(std::uint64_t h, const CacheConfig &c)
{
    h = mix(h, c.sizeBytes);
    return mix(h, c.ways);
}

std::uint64_t
mixDouble(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(v) == sizeof(bits));
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(h, bits);
}

} // namespace

std::uint64_t
configHash(const ExperimentConfig &cfg)
{
    std::uint64_t h = 14695981039346656037ULL;
    // Schema salt: bump when the trace-affecting fields change.
    h = mix(h, 0x7453545233ULL); // "tSTR3"
    h = mix(h, static_cast<std::uint64_t>(cfg.workload));
    h = mix(h, static_cast<std::uint64_t>(cfg.context));
    h = mix(h, cfg.warmupInstructions);
    h = mix(h, cfg.measureInstructions);
    h = mix(h, cfg.seed);
    h = mixDouble(h, cfg.scale);
    if (workloadIsScenario(cfg.workload)) {
        // Hash the *resolved* schedule — including every key-
        // distribution parameter — so an explicit copy of the
        // compiled-in defaults (e.g. a checked-in workload config
        // spelling them out) collides with the defaulted field, and
        // any real change in mix, duration or distribution
        // re-simulates instead of reusing a stale cached trace.
        const PhaseSchedule sched =
            resolvedSchedule(cfg.workload, cfg.phases);
        h = mix(h, sched.phases.size());
        for (const WorkloadPhase &p : sched.phases) {
            h = mix(h, static_cast<std::uint64_t>(p.kind));
            h = mixDouble(h, p.mix);
            h = mix(h, p.duration);
            h = mix(h, static_cast<std::uint64_t>(p.dist.kind));
            h = mixDouble(h, p.dist.theta);
            h = mixDouble(h, p.dist.hotFrac);
            h = mixDouble(h, p.dist.hotProb);
        }
    }
    if (cfg.context == SystemContext::MultiChip) {
        h = mix(h, cfg.multiChip.nodes);
        h = mixCache(h, cfg.multiChip.l1);
        h = mixCache(h, cfg.multiChip.l2);
    } else {
        h = mix(h, cfg.singleChip.cores);
        h = mixCache(h, cfg.singleChip.l1);
        h = mixCache(h, cfg.singleChip.l2);
    }
    if (cfg.prefetchLoop.enabled) {
        // In-the-loop prefetching thins the recorded trace, so every
        // knob that can change coverage is trace-affecting. Mixed only
        // when enabled: the default (offline) hash — and with it the
        // trace cache and all pre-existing provenance — is untouched.
        h = mix(h, 0x50464C31ULL); // "PFL1"
        for (const char c : cfg.prefetchLoop.policy)
            h = mix(h, static_cast<std::uint64_t>(
                           static_cast<unsigned char>(c)));
        h = mix(h, cfg.prefetchLoop.ts.historyEntries);
        h = mix(h, cfg.prefetchLoop.ts.replayDepth);
        h = mix(h, cfg.prefetchLoop.ts.bufferBlocks);
        h = mix(h, cfg.prefetchLoop.ts.crossCpu ? 1 : 0);
        h = mix(h, cfg.prefetchLoop.strideDegree);
    }
    return h;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    std::unique_ptr<MemorySystem> sys;
    if (cfg.context == SystemContext::MultiChip)
        sys = std::make_unique<MultiChipSystem>(cfg.multiChip);
    else
        sys = std::make_unique<SingleChipSystem>(cfg.singleChip);

    Engine eng(std::move(sys), cfg.seed);
    Kernel kern(eng);

    // Prefetcher-in-the-loop: install the hook before warm-up so the
    // predictor trains alongside the caches (warm-up misses are
    // observed but never recorded either way).
    std::unique_ptr<PrefetchLoopEngine> loop;
    if (cfg.prefetchLoop.enabled) {
        PrefetchPolicyParams params;
        params.ts = cfg.prefetchLoop.ts;
        params.strideDegree = cfg.prefetchLoop.strideDegree;
        auto policy = makePrefetchPolicy(cfg.prefetchLoop.policy, params);
        panicIf(!policy, "runExperiment: unknown prefetch policy '" +
                             cfg.prefetchLoop.policy + "'");
        loop = std::make_unique<PrefetchLoopEngine>(
            std::move(policy), cfg.prefetchLoop.ts.bufferBlocks);
        loop->attach(eng.memory());
    }

    WorkloadSpec spec;
    spec.kind = cfg.workload;
    spec.scale = cfg.scale;
    spec.seed = cfg.seed;
    spec.phases = cfg.phases;
    auto workload = makeWorkload(spec);
    workload->setup(kern);

    // Warm caches, TLBs, the buffer pool and the classifier history
    // without tracing (the paper warms thousands of transactions).
    eng.setTracing(false);
    kern.run(cfg.warmupInstructions);

    // Measure.
    eng.setTracing(true);
    kern.run(cfg.measureInstructions);
    eng.finalizeTraces();

    ExperimentResult res;
    res.offChip = std::move(eng.memory().offChipTrace());
    res.intraChip = std::move(eng.memory().intraChipTrace());
    res.registry = eng.registry();
    res.instructions = eng.totalInstructions();
    if (loop) {
        res.prefetchEnabled = true;
        res.prefetch = loop->stats();
        res.prefetchCoveredTraced = loop->coveredTraced();
    }
    return res;
}

} // namespace tstream
