#include "sim/experiment.hh"

#include <cstring>

#include "kernel/kernel.hh"
#include "sim/engine.hh"

namespace tstream
{

std::string_view
contextName(SystemContext c)
{
    switch (c) {
      case SystemContext::MultiChip: return "multi-chip";
      case SystemContext::SingleChip: return "single-chip";
    }
    return "<invalid>";
}

MissTrace
ExperimentResult::intraChipOnChip() const
{
    MissTrace t;
    t.numCpus = intraChip.numCpus;
    t.instructions = intraChip.instructions;
    for (const MissRecord &m : intraChip.misses)
        if (static_cast<IntraClass>(m.cls) != IntraClass::OffChip)
            t.misses.push_back(m);
    return t;
}

namespace
{

/** FNV-1a accumulation step. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
mixCache(std::uint64_t h, const CacheConfig &c)
{
    h = mix(h, c.sizeBytes);
    return mix(h, c.ways);
}

} // namespace

std::uint64_t
configHash(const ExperimentConfig &cfg)
{
    std::uint64_t h = 14695981039346656037ULL;
    // Schema salt: bump when the trace-affecting fields change.
    h = mix(h, 0x7453545232ULL); // "tSTR2"
    h = mix(h, static_cast<std::uint64_t>(cfg.workload));
    h = mix(h, static_cast<std::uint64_t>(cfg.context));
    h = mix(h, cfg.warmupInstructions);
    h = mix(h, cfg.measureInstructions);
    h = mix(h, cfg.seed);
    std::uint64_t scaleBits = 0;
    static_assert(sizeof(cfg.scale) == sizeof(scaleBits));
    std::memcpy(&scaleBits, &cfg.scale, sizeof(scaleBits));
    h = mix(h, scaleBits);
    if (cfg.workload == WorkloadKind::PhasedMix) {
        // Hash the *resolved* schedule so an explicit copy of the
        // default mix and an empty (defaulted) field collide, and any
        // real schedule change re-simulates.
        const PhaseSchedule sched = cfg.phases.empty()
                                        ? PhaseSchedule::standardMix()
                                        : cfg.phases;
        h = mix(h, sched.phases.size());
        for (const WorkloadPhase &p : sched.phases) {
            h = mix(h, static_cast<std::uint64_t>(p.kind));
            std::uint64_t mixBits = 0;
            static_assert(sizeof(p.mix) == sizeof(mixBits));
            std::memcpy(&mixBits, &p.mix, sizeof(mixBits));
            h = mix(h, mixBits);
            h = mix(h, p.duration);
        }
    }
    if (cfg.context == SystemContext::MultiChip) {
        h = mix(h, cfg.multiChip.nodes);
        h = mixCache(h, cfg.multiChip.l1);
        h = mixCache(h, cfg.multiChip.l2);
    } else {
        h = mix(h, cfg.singleChip.cores);
        h = mixCache(h, cfg.singleChip.l1);
        h = mixCache(h, cfg.singleChip.l2);
    }
    return h;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    std::unique_ptr<MemorySystem> sys;
    if (cfg.context == SystemContext::MultiChip)
        sys = std::make_unique<MultiChipSystem>(cfg.multiChip);
    else
        sys = std::make_unique<SingleChipSystem>(cfg.singleChip);

    Engine eng(std::move(sys), cfg.seed);
    Kernel kern(eng);

    WorkloadSpec spec;
    spec.kind = cfg.workload;
    spec.scale = cfg.scale;
    spec.seed = cfg.seed;
    spec.phases = cfg.phases;
    auto workload = makeWorkload(spec);
    workload->setup(kern);

    // Warm caches, TLBs, the buffer pool and the classifier history
    // without tracing (the paper warms thousands of transactions).
    eng.setTracing(false);
    kern.run(cfg.warmupInstructions);

    // Measure.
    eng.setTracing(true);
    kern.run(cfg.measureInstructions);
    eng.finalizeTraces();

    ExperimentResult res;
    res.offChip = std::move(eng.memory().offChipTrace());
    res.intraChip = std::move(eng.memory().intraChipTrace());
    res.registry = eng.registry();
    res.instructions = eng.totalInstructions();
    return res;
}

} // namespace tstream
