/**
 * @file
 * Web-serving workload: Apache-like and Zeus-like HTTP servers under
 * SPECweb99-style load with FastCGI perl dynamic content (paper
 * Table 1: 16 K connections, FastCGI, worker threading model).
 *
 * The request path follows the paper's Section 5.1 anatomy: poll(2)
 * accept loop, worker threads, NIC DMA into reused network buffers,
 * STREAMS pipes between the server and a pool of perl processes, the
 * perl interpreter generating dynamic pages, kernel-to-user copies
 * from reused buffers, and IP packet assembly on the response path.
 * Static requests stream pages from a shared file cache through
 * copyout. The HTTP server's own code touches little memory — the
 * paper's "surprising" 3% — because the work happens in the kernel
 * and the CGI processes.
 */

#ifndef TSTREAM_SIM_WEB_WORKLOAD_HH
#define TSTREAM_SIM_WEB_WORKLOAD_HH

#include <deque>
#include <memory>
#include <vector>

#include "kernel/streams.hh"
#include "sim/workload.hh"
#include "web/perl.hh"

namespace tstream
{

/** Tunables of the web workload. */
struct WebConfig
{
    enum class Server
    {
        Apache,
        Zeus,
    };

    Server server = Server::Apache;
    unsigned workers = 48;
    unsigned perlProcs = 12;
    /** Modeled connection pool (stands in for 16 K slow clients). */
    unsigned connections = 256;
    /** Requests served per worker quantum (Zeus batches more). */
    unsigned batch = 1;
    double dynamicFraction = 0.30;
    /** Shared file-cache pages (16 MB at defaults = 2x L2). */
    unsigned fileCachePages = 4096;
    unsigned files = 2000;
    double fileZipf = 0.9;

    static WebConfig
    apache()
    {
        return WebConfig{};
    }

    static WebConfig
    zeus()
    {
        WebConfig c;
        c.server = Server::Zeus;
        c.workers = 16;
        c.perlProcs = 8;
        c.batch = 3;
        return c;
    }

    void
    rescale(double s)
    {
        fileCachePages = std::max(
            64u, static_cast<unsigned>(fileCachePages * s));
        connections =
            std::max(16u, static_cast<unsigned>(connections * s));
        workers = std::max(4u, static_cast<unsigned>(workers * s));
        perlProcs = std::max(2u, static_cast<unsigned>(perlProcs * s));
    }
};

/** The web application. */
class WebWorkload : public Workload
{
  public:
    explicit WebWorkload(const WebConfig &cfg = WebConfig::apache())
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view
    name() const override
    {
        return cfg_.server == WebConfig::Server::Apache ? "Apache"
                                                        : "Zeus";
    }

    std::uint64_t requestsServed() const { return served_; }

  private:
    class Listener;
    class Worker;
    class PerlProc;

    /** Shared server state. */
    struct Shared
    {
        // Per-connection kernel state.
        std::vector<std::uint32_t> connFd;
        std::vector<Addr> connPcb;
        std::vector<Addr> connNetbuf; ///< reused NIC landing buffers

        // Work distribution.
        std::deque<std::uint32_t> pendingConns;
        std::deque<std::uint32_t> freeConns;
        std::unique_ptr<SimCondVar> workCv;
        Addr workQueueBlock = 0;

        // FastCGI plumbing (per perl process).
        std::vector<std::unique_ptr<StreamsQueue>> reqPipe;
        std::vector<std::unique_ptr<StreamsQueue>> respPipe;
        std::vector<std::unique_ptr<SimCondVar>> perlCv;
        std::vector<std::unique_ptr<PerlProcess>> perl;
        std::vector<std::deque<std::uint32_t>> pendingWorker;

        // Per-worker state.
        std::vector<std::unique_ptr<SimCondVar>> respCv;
        std::vector<Addr> reqBuf, respBuf;

        // Static content.
        Addr fileCache = 0;
        std::vector<std::uint32_t> filePages; ///< pages per file
        std::vector<std::uint32_t> fileStart; ///< first cache page
        std::unique_ptr<ZipfSampler> fileDist;
        Addr vhostTable = 0;

        ProcDesc serverProc{};
        FnId fnParse = 0, fnQueue = 0, fnLog = 0;
    };

    WebConfig cfg_;
    Shared sh_;
    std::uint64_t served_ = 0;
};

} // namespace tstream

#endif // TSTREAM_SIM_WEB_WORKLOAD_HH
