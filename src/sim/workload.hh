/**
 * @file
 * Workload interface and the application suite of the paper's Table 1:
 * Web (Apache, Zeus under SPECweb99-style load), OLTP (TPC-C-style on
 * the DB2-like engine), and DSS (TPC-H-style queries 1, 2, 17).
 */

#ifndef TSTREAM_SIM_WORKLOAD_HH
#define TSTREAM_SIM_WORKLOAD_HH

#include <memory>
#include <string>

#include "kernel/kernel.hh"

namespace tstream
{

/** The six applications of the paper's evaluation. */
enum class WorkloadKind
{
    Apache,
    Zeus,
    Oltp,
    DssQ1,
    DssQ2,
    DssQ17,
};

/** Short name as used in the paper's figures. */
std::string_view workloadName(WorkloadKind k);

/** True for the DB2-backed workloads (Tables 4/5 rows). */
bool workloadIsDb(WorkloadKind k);

/** A runnable application: allocates state and spawns its threads. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Allocate simulated structures and spawn tasks into @p kern. */
    virtual void setup(Kernel &kern) = 0;

    virtual std::string_view name() const = 0;
};

/**
 * Build a workload.
 * @param scale Footprint scale factor (1.0 = defaults documented in
 *              DESIGN.md; smaller values shrink tables/pools for fast
 *              tests).
 */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       double scale = 1.0);

} // namespace tstream

#endif // TSTREAM_SIM_WORKLOAD_HH
