/**
 * @file
 * Workload interface, the application suite of the paper's Table 1
 * (Apache, Zeus, DB2-OLTP, DSS queries 1/2/17), and the post-paper
 * scenario suite: a memcached-shaped key-value store (src/kv), a
 * message broker (src/mq), and a phased mix that sequences
 * (kind, op-mix, duration) phases over both with deterministic
 * per-phase seeding.
 */

#ifndef TSTREAM_SIM_WORKLOAD_HH
#define TSTREAM_SIM_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gen/key_chooser.hh"
#include "kernel/kernel.hh"

namespace tstream
{

/** The six applications of the paper plus the scenario suite. */
enum class WorkloadKind
{
    Apache,
    Zeus,
    Oltp,
    DssQ1,
    DssQ2,
    DssQ17,
    KvStore,   ///< in-memory key-value store (src/kv)
    Broker,    ///< message broker (src/mq)
    PhasedMix, ///< phased KV/broker mix (sim/phased_workload.hh)
};

/** Short name as used in the figures. */
std::string_view workloadName(WorkloadKind k);

/** True for the DB2-backed workloads (Tables 4/5 rows). */
bool workloadIsDb(WorkloadKind k);

/** True for the post-paper scenario workloads (KV/broker/mix). */
bool workloadIsScenario(WorkloadKind k);

// ---- phased composition -----------------------------------------------------

/**
 * One phase of a phased workload: which application module the op
 * stream targets, its op mix, and how long the phase lasts. Durations
 * are committed instructions, measured on the engine's global
 * instruction counter, so phase edges are deterministic for a seed.
 */
struct WorkloadPhase
{
    /** Op target: WorkloadKind::KvStore or WorkloadKind::Broker. */
    WorkloadKind kind = WorkloadKind::KvStore;
    /**
     * Op mix in [0,1]: for KV phases the GET fraction (the rest are
     * SETs with occasional DELETEs); for broker phases the consume
     * fraction (the rest are publishes).
     */
    double mix = 0.9;
    /** Phase length in committed instructions. */
    std::uint64_t duration = 1'500'000;
    /**
     * Key (KV phases) / topic (broker phases) popularity distribution
     * over the app's key space (gen/key_chooser.hh). The default —
     * zipfian theta 0.95 — matches the standalone apps' historical
     * hard-coded samplers.
     */
    KeyDistSpec dist{};

    bool
    operator==(const WorkloadPhase &o) const
    {
        return kind == o.kind && mix == o.mix &&
               duration == o.duration && dist == o.dist;
    }
    bool operator!=(const WorkloadPhase &o) const { return !(*this == o); }
};

/**
 * A cyclic phase schedule. Phase i covers the half-open instruction
 * interval [start_i, start_i + duration_i) within each cycle, so the
 * op mix switches exactly at the configured edges: the phase at
 * instruction (edge - 1) is still i, the phase at instruction edge is
 * already i + 1. Runs longer than one cycle wrap around; the phase
 * *ordinal* keeps increasing across cycles (cycle * phases + index),
 * which is what the per-phase reseeding keys on.
 */
struct PhaseSchedule
{
    std::vector<WorkloadPhase> phases;

    bool empty() const { return phases.empty(); }

    /** Instructions in one full cycle. */
    std::uint64_t
    cycleLength() const
    {
        std::uint64_t n = 0;
        for (const WorkloadPhase &p : phases)
            n += p.duration;
        return n;
    }

    /** Monotonic phase ordinal at absolute instruction count. */
    std::uint64_t ordinalAt(std::uint64_t instructions) const;

    /** The phase a given ordinal executes. */
    const WorkloadPhase &
    at(std::uint64_t ordinal) const
    {
        return phases[static_cast<std::size_t>(ordinal %
                                               phases.size())];
    }

    /**
     * The default PhasedMix schedule: a read-heavy KV phase, a
     * delivery-heavy broker phase, a write-heavy KV phase (slab/LRU
     * churn), and an ingest-heavy broker phase (append + retention),
     * cycling.
     */
    static PhaseSchedule standardMix();
};

/**
 * The schedule a spec (kind, phases) actually executes, with defaults
 * resolved so equivalent specs compare (and hash) equal:
 *
 * - PhasedMix: @p phases, or standardMix() when empty.
 * - KvStore / Broker: @p phases (a single duration-less phase set by a
 *   workload config file), or the single phase describing the app's
 *   compiled-in defaults — KV: the default GET fraction over a
 *   zipfian(KvConfig.zipf) key distribution; broker: the default
 *   consumer task fraction over a zipfian(MqConfig.zipf) topic
 *   distribution.
 * - Paper workloads: always empty (they take no schedule).
 *
 * configHash() hashes this resolved form, so a config file spelling
 * out today's defaults lands in the same trace-cache cell as a run of
 * the compiled-in binary.
 */
PhaseSchedule resolvedSchedule(WorkloadKind kind,
                               const PhaseSchedule &phases);

/** A runnable application: allocates state and spawns its threads. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Allocate simulated structures and spawn tasks into @p kern. */
    virtual void setup(Kernel &kern) = 0;

    virtual std::string_view name() const = 0;
};

/**
 * Everything needed to build a workload. The paper's six applications
 * use only (kind, scale); the scenario suite also consumes the seed
 * (per-phase reseeding) and, for PhasedMix, the phase schedule.
 */
struct WorkloadSpec
{
    WorkloadKind kind = WorkloadKind::Oltp;
    /** Footprint scale factor (1.0 = defaults documented in
     *  DESIGN.md; smaller values shrink tables/pools for fast
     *  tests). */
    double scale = 1.0;
    /** Experiment seed (drives deterministic per-phase seeding). */
    std::uint64_t seed = 42;
    /**
     * Phase schedule (scenario workloads only; empty = the compiled-in
     * defaults, see resolvedSchedule()). For KvStore/Broker a
     * non-empty schedule must be a single duration-less phase (the op
     * mix + key distribution of the standalone server), as produced by
     * gen/workload_config.hh.
     */
    PhaseSchedule phases;
};

/** Build a workload from a full spec. */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec);

/** Convenience overload: default seed and phase schedule. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       double scale = 1.0);

} // namespace tstream

#endif // TSTREAM_SIM_WORKLOAD_HH
